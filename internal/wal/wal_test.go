package wal

import (
	"bytes"
	"errors"
	"testing"

	"github.com/eosdb/eos/internal/disk"
)

func newLog(t testing.TB, pages disk.PageNum) (*Log, *disk.Volume) {
	t.Helper()
	vol := disk.MustNewVolume(256, pages, disk.CostModel{})
	return New(vol, 0), vol
}

func TestAppendScanRoundTrip(t *testing.T) {
	l, _ := newLog(t, 64)
	recs := []*Record{
		{Txn: 1, Type: RecBegin},
		{Txn: 1, Type: RecInsert, Object: 7, Off: 100, Data: []byte("hello world")},
		{Txn: 1, Type: RecDelete, Object: 7, Off: 5, N: 3, OldData: []byte("llo")},
		{Txn: 1, Type: RecCommit},
	}
	var lsns []uint64
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Errorf("LSNs not increasing: %v", lsns)
		}
	}
	var got []*Record
	if err := l.Scan(0, func(r *Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		w := recs[i]
		if r.Txn != w.Txn || r.Type != w.Type || r.Object != w.Object ||
			r.Off != w.Off || r.N != w.N ||
			!bytes.Equal(r.Data, w.Data) || !bytes.Equal(r.OldData, w.OldData) {
			t.Errorf("record %d: got %+v want %+v", i, r, w)
		}
	}
}

func TestCrashDropsUnforcedRecords(t *testing.T) {
	l, vol := newLog(t, 64)
	if _, err := l.Append(&Record{Txn: 1, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecInsert, Data: []byte("durable")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	// The commit record was never forced.
	vol.Crash()

	l2, recs, err := Recover(vol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (commit lost)", len(recs))
	}
	if recs[1].Type != RecInsert || !bytes.Equal(recs[1].Data, []byte("durable")) {
		t.Errorf("recovered record = %+v", recs[1])
	}
	// Appends continue at the recovered tail.
	if _, err := l2.Append(&Record{Txn: 2, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	var count int
	l2.Scan(0, func(*Record) error { count++; return nil })
	if count != 3 {
		t.Errorf("records after resumed append = %d, want 3", count)
	}
}

func TestMultiPageRecords(t *testing.T) {
	l, vol := newLog(t, 64)
	big := make([]byte, 1000) // ~4 pages at 256-byte pages
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecAppend, Data: big}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	_, recs, err := Recover(vol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[0].Data, big) {
		t.Fatalf("big record lost: %d records", len(recs))
	}
}

func TestLogFull(t *testing.T) {
	l, _ := newLog(t, 2)
	payload := make([]byte, 300)
	if _, err := l.Append(&Record{Type: RecAppend, Data: payload}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecAppend, Data: payload}); !errors.Is(err, ErrLogFull) {
		t.Errorf("err = %v, want ErrLogFull", err)
	}
}

func TestResetClearsEverything(t *testing.T) {
	l, vol := newLog(t, 16)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(&Record{Txn: uint64(i), Type: RecBegin}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	newBase := l.Base() + uint64(l.Tail())
	if err := l.Reset(newBase); err != nil {
		t.Fatal(err)
	}
	if l.Tail() != 0 {
		t.Errorf("tail = %d after reset", l.Tail())
	}
	if l.Base() != newBase {
		t.Errorf("base = %d after reset, want %d", l.Base(), newBase)
	}
	// A single new record, then crash: recovery must see exactly one —
	// no phantom pre-reset records.
	if _, err := l.Append(&Record{Txn: 9, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	_, recs, err := Recover(vol, newBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Txn != 9 {
		t.Fatalf("recovered %d records (want 1, txn 9)", len(recs))
	}
}

func TestRecTypeStrings(t *testing.T) {
	for _, rt := range []RecType{RecBegin, RecCommit, RecAbort, RecCreate, RecDestroy,
		RecAppend, RecInsert, RecDelete, RecReplace, RecTruncate, RecCheckpoint} {
		if rt.String() == "" || rt.String()[0] == 'r' && rt.String() != "replace" {
			t.Errorf("missing String for %d", rt)
		}
	}
	if RecType(99).String() != "rectype(99)" {
		t.Error("unknown type string")
	}
}

func TestCorruptRecordStopsScan(t *testing.T) {
	l, vol := newLog(t, 16)
	if _, err := l.Append(&Record{Txn: 1, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	// Flush the buffered tail so the corruption below is not simply
	// overwritten by Scan's own flush.
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second record's checksum area on disk.
	raw, _ := vol.Read(0, 1)
	raw[recHeaderSize+10] ^= 0xFF
	vol.WritePages(0, 1, raw)

	var count int
	if err := l.Scan(0, func(*Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("scanned %d records past corruption, want 1", count)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, _ := newLog(t, 256)
	const goroutines = 8
	const perG = 40
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				if _, err := l.Append(&Record{Txn: uint64(g), Type: RecBegin, Off: int64(i)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// Every record intact, LSNs strictly increasing.
	var prev uint64
	count := 0
	if err := l.Scan(0, func(r *Record) error {
		if r.LSN <= prev {
			t.Errorf("LSN order violated: %d after %d", r.LSN, prev)
		}
		prev = r.LSN
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != goroutines*perG {
		t.Errorf("scanned %d records, want %d", count, goroutines*perG)
	}
}

func BenchmarkAppendRecord(b *testing.B) {
	vol := disk.MustNewVolume(4096, 1<<16, disk.CostModel{})
	l := New(vol, 0)
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(&Record{Txn: 1, Type: RecInsert, Off: int64(i), Data: payload}); err != nil {
			if errors.Is(err, ErrLogFull) {
				b.StopTimer()
				if err := l.Reset(l.Base() + uint64(l.Tail())); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				continue
			}
			b.Fatal(err)
		}
	}
}

func BenchmarkForce(b *testing.B) {
	vol := disk.MustNewVolume(4096, 1<<16, disk.CostModel{})
	l := New(vol, 0)
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(&Record{Txn: 1, Type: RecCommit, Data: payload}); err != nil {
			b.StopTimer()
			if err := l.Reset(l.Base() + uint64(l.Tail())); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
		if err := l.Force(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBufferedAppendDoesNoIO(t *testing.T) {
	l, vol := newLog(t, 64)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(&Record{Txn: 1, Type: RecInsert, Data: make([]byte, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if w := vol.Stats().Writes; w != 0 {
		t.Fatalf("buffered appends issued %d volume writes, want 0", w)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if w := vol.Stats().Writes; w != 1 {
		t.Fatalf("force issued %d volume writes, want 1 batched write", w)
	}
	st := l.Stats()
	if st.Appends != 10 || st.LeaderForces != 1 || st.FlushedBytes == 0 {
		t.Fatalf("stats after force: %+v", st)
	}
}

func TestForceNoopWhenNothingAppended(t *testing.T) {
	l, vol := newLog(t, 64)
	if _, err := l.Append(&Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	before := vol.Stats()
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	after := vol.Stats()
	if after.Writes != before.Writes || after.Accesses() != before.Accesses() {
		t.Fatalf("redundant force touched the volume: before %+v after %+v", before, after)
	}
	if st := l.Stats(); st.ForceNoops != 1 {
		t.Fatalf("ForceNoops = %d, want 1 (stats %+v)", st.ForceNoops, st)
	}
}

func TestSerialModeAppendsWriteThrough(t *testing.T) {
	l, vol := newLog(t, 64)
	if err := l.SetGroupCommit(false); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	if w := vol.Stats().Writes; w != 2 {
		t.Fatalf("serial appends issued %d writes, want 2", w)
	}
	// Every serial force leads, even back to back.
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.LeaderForces != 2 || st.ForceNoops != 0 || st.Piggybacks != 0 {
		t.Fatalf("serial force stats: %+v", st)
	}
	var count int
	if err := l.Scan(0, func(*Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("scanned %d records, want 2", count)
	}
}

func TestGroupCommitPiggyback(t *testing.T) {
	vol := disk.MustNewVolume(256, 1024,
		disk.CostModel{SeekMicros: 80, TransferMicrosPerPage: 5})
	l := New(vol, 0)
	vol.SetLatency(true, 1) // serialize device access like a single 1992 disk
	defer vol.SetLatency(false, 0)

	const goroutines = 8
	const perG = 25
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				lsn, err := l.Append(&Record{Txn: uint64(g), Type: RecCommit, Off: int64(i)})
				if err != nil {
					done <- err
					return
				}
				if err := l.ForceLSN(lsn); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Forces != goroutines*perG {
		t.Fatalf("Forces = %d, want %d", st.Forces, goroutines*perG)
	}
	// With 8 committers contending for the force path, most requests must
	// be satisfied by another committer's batch: physical force batches
	// should be well under the request count.
	if st.LeaderForces >= st.Forces {
		t.Fatalf("no batching: LeaderForces %d >= Forces %d", st.LeaderForces, st.Forces)
	}
	if st.Piggybacks+st.ForceNoops == 0 {
		t.Fatalf("no piggybacked forces at 8 committers: %+v", st)
	}
}

// TestForcedPrefixSurvivesCrash is the §4.5 durability proof for group
// commit: an acknowledged ForceLSN means that record — and every record
// before it — survives a crash, and recovery replays exactly a
// contiguous prefix that covers every acknowledgement.  The log volume
// is armed to fail mid-run, so some committers see errors; those must
// NOT be required to survive, but every success must.
func TestForcedPrefixSurvivesCrash(t *testing.T) {
	l, vol := newLog(t, 1024)
	boom := errors.New("injected log device failure")
	vol.FailAfter(6, boom)

	var ackedThrough uint64 // highest LSN successfully forced
	for i := 0; i < 200; i++ {
		lsn, err := l.Append(&Record{Txn: uint64(i), Type: RecCommit})
		if err != nil {
			if errors.Is(err, boom) {
				break
			}
			t.Fatal(err)
		}
		if err := l.ForceLSN(lsn); err != nil {
			if errors.Is(err, boom) {
				continue // not acked; may or may not survive
			}
			t.Fatal(err)
		}
		ackedThrough = lsn
	}
	vol.ClearFault()
	vol.Crash()

	rl, recs, err := Recover(vol, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery yields a contiguous prefix...
	var end int64
	for _, r := range recs {
		if int64(r.LSN) != end+1 {
			t.Fatalf("recovered records are not a contiguous prefix: LSN %d after end %d", r.LSN, end)
		}
		end = int64(r.LSN-1) +
			int64(recHeaderSize+len(r.Data)+len(r.OldData)+len(r.Extents)*extentEncBytes)
	}
	// ...that covers every acknowledged commit.
	if int64(ackedThrough) > end+1 {
		t.Fatalf("acked LSN %d lost: recovered prefix ends at %d", ackedThrough, end)
	}
	if ackedThrough == 0 {
		t.Fatal("test armed the fault too early: nothing was ever acked")
	}
	if rl.Tail() != end {
		t.Fatalf("recovered tail %d, want %d", rl.Tail(), end)
	}
}
