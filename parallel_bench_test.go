package eos_test

// Parallel read-path benchmarks.  Two store configurations are compared:
//
//   - serialized: single pool shard, sequential segment reads, no
//     prefetch, volume queue depth 1 — the original design, in which one
//     global mutex kept at most one transfer in flight at any moment.
//   - parallel: sharded pool, fanned-out segment reads, prefetching
//     readers, queue depth 16 — the concurrent read path.
//
// The *Lat benchmarks run the volume in latency-simulation mode (a
// modern-flash cost model, each request sleeping its modelled duration)
// so the benchmark measures what the software concurrency actually buys:
// overlapping outstanding transfers.  The *Mem benchmarks run against
// the raw in-memory volume and bound the locking overhead itself.
//
// Run with: go test -bench ParallelRead -cpu=1,8 -benchtime=200x

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

const (
	parObjects = 16
	parObjSize = 256 << 10
	parPage    = 4096
)

// fastDiskModel approximates a modern flash device, scaled so one 64 KB
// transfer sleeps ~160 µs: benchmarks stay short while I/O still
// dominates memcpy.
func fastDiskModel() disk.CostModel {
	return disk.CostModel{SeekMicros: 80, RotationalMicros: 0, TransferMicrosPerPage: 5}
}

type parStore struct {
	vol  *disk.Volume
	objs []*eos.Object
}

var parStores = map[string]*parStore{}
var parStoresMu sync.Mutex

// parStoreFor builds (once per configuration) a store holding parObjects
// objects of parObjSize bytes, appended in chunks so each object spans
// several segments and multi-segment reads exercise the fan-out path.
func parStoreFor(b *testing.B, name string, opts eos.Options) *parStore {
	b.Helper()
	parStoresMu.Lock()
	defer parStoresMu.Unlock()
	if st, ok := parStores[name]; ok {
		return st
	}
	vol := disk.MustNewVolume(parPage, 8192, fastDiskModel())
	logVol := disk.MustNewVolume(parPage, 1024, fastDiskModel())
	s, err := eos.Format(vol, logVol, opts)
	if err != nil {
		b.Fatal(err)
	}
	objs := make([]*eos.Object, parObjects)
	for i := range objs {
		o, err := s.Create(fmt.Sprintf("par-%d", i), 0)
		if err != nil {
			b.Fatal(err)
		}
		chunk := make([]byte, 32<<10)
		for off := 0; off < parObjSize; off += len(chunk) {
			for j := range chunk {
				chunk[j] = byte(i + off + j)
			}
			if err := o.Append(chunk); err != nil {
				b.Fatal(err)
			}
		}
		objs[i] = o
	}
	st := &parStore{vol: vol, objs: objs}
	parStores[name] = st
	return st
}

var serializedOpts = eos.Options{Threshold: 8, PoolShards: 1}
var parallelOpts = eos.Options{Threshold: 8, PoolShards: 8, ReadConcurrency: 4}

// benchRead64KB measures aggregate throughput of concurrent 64 KB reads
// at random offsets across the object set.
func benchRead64KB(b *testing.B, st *parStore) {
	b.SetBytes(64 << 10)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		buf := make([]byte, 64<<10)
		for pb.Next() {
			o := st.objs[rng.Intn(len(st.objs))]
			off := int64(rng.Intn(parObjSize - 64<<10))
			if err := o.ReadAt(buf, off); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParallelRead64KBLat(b *testing.B) {
	b.Run("serialized", func(b *testing.B) {
		st := parStoreFor(b, "serialized", serializedOpts)
		st.vol.SetLatency(true, 1)
		defer st.vol.SetLatency(false, 0)
		benchRead64KB(b, st)
	})
	b.Run("parallel", func(b *testing.B) {
		st := parStoreFor(b, "parallel", parallelOpts)
		st.vol.SetLatency(true, 16)
		defer st.vol.SetLatency(false, 0)
		benchRead64KB(b, st)
	})
}

func BenchmarkParallelRead64KBMem(b *testing.B) {
	b.Run("serialized", func(b *testing.B) {
		benchRead64KB(b, parStoreFor(b, "serialized", serializedOpts))
	})
	b.Run("parallel", func(b *testing.B) {
		benchRead64KB(b, parStoreFor(b, "parallel", parallelOpts))
	})
}

// benchScan measures full sequential scans through prefetching (or not)
// readers, with per-byte consumer work on every chunk — the workload
// readahead exists for: the next transfer's latency hides behind the
// processing of the current chunk.
func benchScan(b *testing.B, st *parStore, prefetch bool) {
	b.SetBytes(parObjSize)
	var seq atomic.Int64
	var sink atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		buf := make([]byte, 64<<10)
		for pb.Next() {
			o := st.objs[rng.Intn(len(st.objs))]
			r := o.NewReader()
			r.SetPrefetch(prefetch)
			var acc byte
			for {
				n, err := r.Read(buf)
				if n == 0 || err != nil {
					break
				}
				for _, c := range buf[:n] {
					acc ^= c
				}
			}
			sink.Add(int64(acc))
		}
	})
}

func BenchmarkParallelScanLat(b *testing.B) {
	b.Run("serialized", func(b *testing.B) {
		st := parStoreFor(b, "serialized", serializedOpts)
		st.vol.SetLatency(true, 1)
		defer st.vol.SetLatency(false, 0)
		benchScan(b, st, false)
	})
	b.Run("parallel", func(b *testing.B) {
		st := parStoreFor(b, "parallel", parallelOpts)
		st.vol.SetLatency(true, 16)
		defer st.vol.SetLatency(false, 0)
		benchScan(b, st, true)
	})
}

func BenchmarkParallelScanMem(b *testing.B) {
	b.Run("serialized", func(b *testing.B) {
		benchScan(b, parStoreFor(b, "serialized", serializedOpts), false)
	})
	b.Run("parallel", func(b *testing.B) {
		benchScan(b, parStoreFor(b, "parallel", parallelOpts), true)
	})
}
