package atomicfield_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analyzertest.Run(t, "../testdata", atomicfield.Analyzer, "atomicfield_bad", "atomicfield_clean")
}
