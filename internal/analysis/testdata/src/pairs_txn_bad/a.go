// Package pairs_txn_bad holds transaction-lifecycle violations the
// pairs analyzer must report: a Begin whose transaction can reach a
// function exit neither committed nor aborted.
package pairs_txn_bad

import "eos"

// leakOnMidError returns a mid-transaction error without aborting, so
// the transaction's two-phase locks are never released.
func leakOnMidError(s *eos.Store, data []byte) error {
	t, err := s.Begin() // want "txn leak: Begin\\(t\\) can reach a function exit without Commit/CommitNoForce/Abort\\(t\\)"
	if err != nil {
		return err
	}
	if err := t.Append(1, data); err != nil {
		return err
	}
	return t.Commit()
}

// neverFinished starts a transaction and forgets it entirely.
func neverFinished(s *eos.Store, data []byte) {
	t, err := s.Begin() // want "txn leak: Begin\\(t\\) can reach a function exit without Commit/CommitNoForce/Abort\\(t\\)"
	if err != nil {
		return
	}
	_ = t.Append(1, data)
}

// commitSkippedOnBranch finishes only one branch.
func commitSkippedOnBranch(s *eos.Store, data []byte, publish bool) error {
	t, err := s.Begin() // want "txn leak: Begin\\(t\\) can reach a function exit without Commit/CommitNoForce/Abort\\(t\\)"
	if err != nil {
		return err
	}
	if !publish {
		return nil
	}
	if err := t.Append(1, data); err != nil {
		_ = t.Abort()
		return err
	}
	return t.Commit()
}
