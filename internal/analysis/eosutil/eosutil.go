// Package eosutil provides the small shared vocabulary of the eoslint
// analyzers: type-aware matching of method and function calls against
// the storage engine's API surface.
//
// Matching is by package *name* and type name rather than full import
// path, so the analyzers work unchanged against both the real engine
// packages (github.com/eosdb/eos/internal/buffer, ...) and the
// minimal stand-in packages the analysistest fixtures declare.
package eosutil

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/types/typeutil"
)

// Callee returns the *types.Func called by call, or nil if the callee
// is not statically known (interface method values, func-typed
// variables, conversions).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	return typeutil.StaticCallee(info, call)
}

// ReceiverType returns the named receiver type of fn (unwrapping one
// pointer), or nil when fn is not a method.
func ReceiverType(fn *types.Func) *types.TypeName {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// IsMethod reports whether fn is the method pkgName.typeName.method
// (receiver may be a pointer).  pkgName is the short package name, not
// the import path.
func IsMethod(fn *types.Func, pkgName, typeName, method string) bool {
	if fn == nil || fn.Name() != method {
		return false
	}
	tn := ReceiverType(fn)
	return tn != nil && tn.Name() == typeName &&
		tn.Pkg() != nil && tn.Pkg().Name() == pkgName
}

// IsMethodCall reports whether call invokes pkgName.typeName.<one of
// methods>, returning the matched method name.
func IsMethodCall(info *types.Info, call *ast.CallExpr, pkgName, typeName string, methods ...string) (string, bool) {
	fn := Callee(info, call)
	for _, m := range methods {
		if IsMethod(fn, pkgName, typeName, m) {
			return m, true
		}
	}
	return "", false
}

// CalleeAny returns the *types.Func a call refers to, resolving
// interface method calls as well as static ones (unlike Callee, which
// returns nil for dynamic dispatch).  For an interface call the
// returned func is the interface's method declaration.
func CalleeAny(info *types.Info, call *ast.CallExpr) *types.Func {
	if fn := typeutil.StaticCallee(info, call); fn != nil {
		return fn
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// namedRecv returns the defining TypeName of fn's receiver, whether
// the receiver is a (possibly pointer to) named struct or an
// interface.
func namedRecv(fn *types.Func) *types.TypeName {
	if tn := ReceiverType(fn); tn != nil {
		return tn
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if named, ok := sig.Recv().Type().(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// IsMethodCallAny is IsMethodCall extended to interface method calls:
// it reports whether call invokes pkgName.typeName.<one of methods>
// where typeName may be a struct or an interface, returning the
// matched method name.
func IsMethodCallAny(info *types.Info, call *ast.CallExpr, pkgName, typeName string, methods ...string) (string, bool) {
	fn := CalleeAny(info, call)
	if fn == nil {
		return "", false
	}
	tn := namedRecv(fn)
	if tn == nil || tn.Name() != typeName ||
		tn.Pkg() == nil || tn.Pkg().Name() != pkgName {
		return "", false
	}
	for _, m := range methods {
		if fn.Name() == m {
			return m, true
		}
	}
	return "", false
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (full import path; package-level functions are not
// faked by fixtures, so the precise path is fine here).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// ErrorType is the types.Interface of the built-in error type.
var ErrorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t implements the built-in error
// interface (and is not the untyped nil).
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, ErrorType)
}
