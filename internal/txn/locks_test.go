package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func table() *LockTable { return NewLockTable(200 * time.Millisecond) }

func TestSharedLocksCoexist(t *testing.T) {
	lt := table()
	for txn := uint64(1); txn <= 3; txn++ {
		if err := lt.LockObject(txn, 7, Shared); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
	}
	if lt.Held(1) != 1 || lt.Held(3) != 1 {
		t.Error("shared locks not all granted")
	}
}

func TestExclusiveBlocksAndTimesOut(t *testing.T) {
	lt := table()
	if err := lt.LockObject(1, 7, Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := lt.LockObject(2, 7, Shared)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Error("timed out too early")
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	lt := table()
	if err := lt.LockObject(1, 7, Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- lt.LockObject(2, 7, Exclusive)
	}()
	time.Sleep(20 * time.Millisecond)
	lt.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatalf("waiter: %v", err)
	}
}

func TestRangeLocksDisjointCoexist(t *testing.T) {
	lt := table()
	if err := lt.LockRange(1, 7, Exclusive, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := lt.LockRange(2, 7, Exclusive, 100, 200); err != nil {
		t.Fatalf("disjoint range blocked: %v", err)
	}
	if err := lt.LockRange(3, 7, Exclusive, 50, 150); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("overlapping range granted: %v", err)
	}
}

func TestObjectLockBlocksRanges(t *testing.T) {
	lt := table()
	if err := lt.LockObject(1, 7, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lt.LockRange(2, 7, Shared, 0, 10); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("range granted under object X lock: %v", err)
	}
}

func TestReentrantLocks(t *testing.T) {
	lt := table()
	if err := lt.LockObject(1, 7, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lt.LockObject(1, 7, Exclusive); err != nil {
		t.Fatalf("re-lock by holder: %v", err)
	}
	if err := lt.LockRange(1, 7, Shared, 5, 10); err != nil {
		t.Fatalf("sub-range by holder: %v", err)
	}
	if lt.Held(1) != 1 {
		t.Errorf("held = %d, want 1 (re-entrant no-ops)", lt.Held(1))
	}
}

func TestInvalidRange(t *testing.T) {
	lt := table()
	if err := lt.LockRange(1, 7, Shared, 10, 10); err == nil {
		t.Error("empty range accepted")
	}
	if err := lt.LockRange(1, 7, Shared, -1, 10); err == nil {
		t.Error("negative range accepted")
	}
}

func TestFIFOOrderingPreventsStarvation(t *testing.T) {
	lt := NewLockTable(2 * time.Second)
	if err := lt.LockObject(1, 7, Shared); err != nil {
		t.Fatal(err)
	}
	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer arrives first
		defer wg.Done()
		if err := lt.LockObject(2, 7, Exclusive); err != nil {
			t.Errorf("writer: %v", err)
		}
		writerDone.Store(true)
		lt.ReleaseAll(2)
	}()
	time.Sleep(30 * time.Millisecond)
	go func() { // later reader must queue behind the writer
		defer wg.Done()
		if err := lt.LockObject(3, 7, Shared); err != nil {
			t.Errorf("reader: %v", err)
		}
		if !writerDone.Load() {
			t.Error("reader overtook the queued writer")
		}
		lt.ReleaseAll(3)
	}()
	time.Sleep(30 * time.Millisecond)
	lt.ReleaseAll(1)
	wg.Wait()
}

func TestConcurrentStress(t *testing.T) {
	lt := NewLockTable(5 * time.Second)
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := lt.LockObject(id, 1, Exclusive); err != nil {
					t.Errorf("txn %d: %v", id, err)
					return
				}
				v := atomic.AddInt64(&counter, 1)
				if v != 1 {
					t.Errorf("mutual exclusion violated: %d", v)
				}
				atomic.AddInt64(&counter, -1)
				lt.ReleaseAll(id)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
}
