// SARIF 2.1.0 conversion for the -sarif mode: the `go vet -json`
// diagnostic stream becomes a single-run static-analysis log suitable
// for GitHub code scanning, with one reportingDescriptor per analyzer
// in the suite (metadata taken from the analyzers' own Doc strings).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	eosanalysis "github.com/eosdb/eos/internal/analysis"
)

// diag is one parsed diagnostic from the `go vet -json` stream.
type diag struct {
	Analyzer string
	File     string
	Line     int
	Column   int
	Message  string
	Related  []related
}

// related is a secondary position attached to a diagnostic — for
// forcedom, the failed dominating-force candidate; for racecheck, the
// lockset-disjoint conflicting access.
type related struct {
	File    string
	Line    int
	Column  int
	Message string
}

// collectDiagnostics parses a `go vet -json` stream (interleaved
// `# package` comment lines and per-package JSON objects) into a flat
// diagnostic list.
func collectDiagnostics(stream []byte) []diag {
	var clean []byte
	for _, line := range bytes.Split(stream, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean = append(clean, line...)
		clean = append(clean, '\n')
	}
	type vetRelated struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	type vetDiag struct {
		Posn    string       `json:"posn"`
		Message string       `json:"message"`
		Related []vetRelated `json:"related"`
	}
	var diags []diag
	dec := json.NewDecoder(bytes.NewReader(clean))
	for {
		var unit map[string]map[string][]vetDiag
		if err := dec.Decode(&unit); err != nil {
			return diags // end of stream or malformed tail
		}
		for _, byAnalyzer := range unit {
			for analyzer, list := range byAnalyzer {
				for _, d := range list {
					file, line, col := splitPosn(d.Posn)
					var rel []related
					for _, r := range d.Related {
						rf, rl, rc := splitPosn(r.Posn)
						rel = append(rel, related{
							File: rf, Line: rl, Column: rc, Message: r.Message,
						})
					}
					diags = append(diags, diag{
						Analyzer: analyzer,
						File:     file,
						Line:     line,
						Column:   col,
						Message:  d.Message,
						Related:  rel,
					})
				}
			}
		}
	}
}

// splitPosn splits a "file:line:col" position (the file part may
// itself contain colons only on exotic platforms; parse from the
// right).
func splitPosn(posn string) (file string, line, col int) {
	file = posn
	line, col = 1, 1
	if i := strings.LastIndex(file, ":"); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			col = n
			file = file[:i]
		}
	}
	if i := strings.LastIndex(file, ":"); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			line = n
			file = file[:i]
		}
	}
	return file, line, col
}

// relativeURI makes file relative to the working directory when
// possible: code-scanning matches results to checkout paths, and
// %SRCROOT% marks the base as the repository root.
func relativeURI(file string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID              string    `json:"id"`
	ShortDesc       sarifText `json:"shortDescription"`
	FullDesc        sarifText `json:"fullDescription"`
	DefaultSeverity struct {
		Level string `json:"level"`
	} `json:"defaultConfiguration"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Related   []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
	Message  *sarifText    `json:"message,omitempty"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF emits the diagnostics as a SARIF 2.1.0 log.  Rules cover
// the whole suite (not just analyzers that fired) so code scanning
// can show the full rule inventory.
func writeSARIF(w io.Writer, diags []diag) error {
	var rules []sarifRule
	for _, a := range eosanalysis.Analyzers() {
		short := a.Doc
		if i := strings.IndexByte(short, '\n'); i >= 0 {
			short = short[:i]
		}
		r := sarifRule{
			ID:        a.Name,
			ShortDesc: sarifText{Text: short},
			FullDesc:  sarifText{Text: a.Doc},
		}
		r.DefaultSeverity.Level = "warning"
		rules = append(rules, r)
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				Physical: sarifPhysical{
					Artifact: sarifArtifact{
						URI:       relativeURI(d.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Line,
						StartColumn: d.Column,
					},
				},
			}},
		}
		for _, r := range d.Related {
			msg := sarifText{Text: r.Message}
			res.Related = append(res.Related, sarifLocation{
				Physical: sarifPhysical{
					Artifact: sarifArtifact{
						URI:       relativeURI(r.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   r.Line,
						StartColumn: r.Column,
					},
				},
				Message: &msg,
			})
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "eoslint",
				InformationURI: "https://github.com/eosdb/eos",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&log); err != nil {
		return fmt.Errorf("encode sarif: %w", err)
	}
	return nil
}
