// Package pairs_epoch_bad holds epoch-guard violations the pairs
// analyzer must report: an Enter whose guard can reach a function exit
// without Exit.  A leaked guard pins its epoch forever, so retired
// pages are never returned to the free space map.
package pairs_epoch_bad

import "txn"

// read is a stand-in snapshot read.
func read() error { return nil }

// leakOnError enters an epoch and returns a mid-read error without
// exiting, pinning the epoch for the life of the process.
func leakOnError(em *txn.EpochManager) error {
	g := em.Enter() // want "epoch leak: Enter\\(g\\) can reach a function exit without Exit\\(g\\)"
	if err := read(); err != nil {
		return err
	}
	return g.Exit()
}

// neverExited enters an epoch and forgets the guard entirely (the
// branch-condition read does not hand ownership off).
func neverExited(em *txn.EpochManager) {
	g := em.Enter() // want "epoch leak: Enter\\(g\\) can reach a function exit without Exit\\(g\\)"
	if g == nil {
		return
	}
}

// exitSkippedOnBranch exits on only one branch.
func exitSkippedOnBranch(em *txn.EpochManager, fast bool) error {
	g := em.Enter() // want "epoch leak: Enter\\(g\\) can reach a function exit without Exit\\(g\\)"
	if fast {
		return nil
	}
	return g.Exit()
}
