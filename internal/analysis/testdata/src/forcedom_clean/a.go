// Package forcedom_clean mirrors the fixed tree: every §8.1 ordering
// is discharged — directly, through a may-force helper, or through a
// justified eoslint:ignore — so the analyzer must stay silent.
package forcedom_clean

import (
	"os"
	"sync/atomic"

	"buddy"
	"disk"
	"lob"
	"wal"
)

// Store mirrors the engine root: checkpoint meta writers, the backing
// volume, and the quarantine barrier stamp.
type Store struct {
	vol            *disk.FileVolume
	buddy          *buddy.Manager
	barrierDurable atomic.Uint64
}

func (s *Store) writeHeader() error  { return nil }
func (s *Store) writeCatalog() error { return nil }

// forceDurable is the force helper: callers discharge their device
// obligations through its may-force summary.
func (s *Store) forceDurable() error {
	return s.vol.ForceAllExcept(nil)
}

// Txn mirrors the transaction type.
type Txn struct {
	log *wal.Log
	obj *lob.Object
	s   *Store
}

// Replace forces the pre-image record before the in-place overwrite
// (the PR 8 fix shape).
func (t *Txn) Replace(off int64, p []byte) error {
	lsn, err := t.log.Append(wal.Record{Type: wal.RecUpdate})
	if err != nil {
		return err
	}
	if err := t.log.ForceLSN(lsn); err != nil {
		return err
	}
	return t.obj.Replace(off, p)
}

// ReplaceVia discharges through a helper on the force side and
// overwrites through a helper on the mutate side: both directions of
// the interprocedural summary.
func (t *Txn) ReplaceVia(off int64, p []byte) error {
	if _, err := t.log.Append(wal.Record{Type: wal.RecUpdate}); err != nil {
		return err
	}
	if err := t.forceTail(); err != nil {
		return err
	}
	return t.applyReplace(off, p)
}

func (t *Txn) forceTail() error { return t.log.Force() }

func (t *Txn) applyReplace(off int64, p []byte) error {
	return t.obj.Replace(off, p)
}

// Checkpoint is the two-phase barrier: force data pages, write the
// header and catalog, force them, then publish the quarantine stamp.
func (s *Store) Checkpoint() error {
	if err := s.vol.ForceAllExcept(nil); err != nil {
		return err
	}
	if err := s.writeHeader(); err != nil {
		return err
	}
	if err := s.writeCatalog(); err != nil {
		return err
	}
	if err := s.vol.Force(0, 1); err != nil {
		return err
	}
	s.barrierDurable.Store(1)
	return nil
}

// Abort makes compensations durable through the force helper before
// the abort record exists.  The undo itself replays pre-images whose
// own records were forced when they were written, which rule 1 cannot
// see — the justified ignore stops the exposure at its source instead
// of propagating it to every caller.
func (t *Txn) Abort() error {
	if err := t.undo(); err != nil {
		return err
	}
	if err := t.s.forceDurable(); err != nil {
		return err
	}
	rec := wal.Record{Type: wal.RecAbort}
	if _, err := t.log.Append(rec); err != nil {
		return err
	}
	return t.log.Force()
}

func (t *Txn) undo() error {
	//eoslint:ignore forcedom -- undo replays pre-images whose update records were forced before the original overwrite
	return t.obj.Replace(0, nil)
}

// Release consults the quarantine barrier before returning extents.
func (s *Store) Release(start buddy.PageNum, n int) error {
	if s.barrierDurable.Load() == 0 {
		return nil
	}
	return s.buddy.Free(start, n)
}

// Save is the temp+rename+dirsync pattern of disk.SaveFile: the
// directory sync covers the success exit, and the failure return is
// exempt.
func Save(tmp, path string) error {
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return disk.SyncDir(".")
}

// SaveVia sees no open rename through Save's summary.
func SaveVia(tmp, path string) error {
	return Save(tmp, path)
}
