// Package buddy is a stand-in for the engine's buddy allocator with
// the allocate/free shapes the pairs analyzer matches on.
package buddy

// PageNum numbers a page.
type PageNum int64

// Manager is the stand-in buddy-system allocation manager.
type Manager struct{}

// Alloc allocates exactly n physically contiguous pages.
func (m *Manager) Alloc(n int) (PageNum, error) { return 0, nil }

// AllocUpTo allocates between 1 and n contiguous pages.
func (m *Manager) AllocUpTo(n int) (PageNum, int, error) { return 0, n, nil }

// Free returns previously allocated pages.
func (m *Manager) Free(p PageNum, n int) error { return nil }
