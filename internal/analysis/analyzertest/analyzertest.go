// Package analyzertest runs an analyzer against fixture packages and
// checks its diagnostics against expectations, mirroring the core of
// golang.org/x/tools/go/analysis/analysistest.
//
// The x/tools analysistest package depends on go/packages, which is
// not part of the toolchain-vendored subset of x/tools this repo
// builds against, so this harness loads fixtures itself: each fixture
// package lives in testdata/src/<path>/, is parsed and type-checked
// with the standard library resolved from source (offline), and local
// fixture imports resolved from sibling testdata directories.
//
// Expectations use the analysistest comment syntax: a comment
//
//	// want "regexp" ["regexp" ...]
//
// on a source line asserts that the analyzer reports, on that exact
// line, one diagnostic matching each regexp.  Diagnostics without a
// matching expectation and expectations without a matching diagnostic
// both fail the test, so a fixture with no want comments asserts the
// analyzer is silent ("clean" fixtures guarding false positives).
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes each named fixture package under dir (conventionally
// "testdata") with a and checks the diagnostics against the fixtures'
// want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, path := range pkgPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			fp, err := l.load(path)
			if err != nil {
				t.Fatalf("loading fixture %q: %v", path, err)
			}
			diags, err := runAnalyzer(a, fp, make(map[*analysis.Analyzer]interface{}))
			if err != nil {
				t.Fatalf("running %s on %q: %v", a.Name, path, err)
			}
			check(t, fp, diags)
		})
	}
}

// Count analyzes one fixture package with a and returns the number of
// diagnostics, without checking want comments.  The fixture smoke test
// uses it to assert that each bad fixture still produces findings — a
// guard against a silently-neutered pass whose want comments were
// edited away along with its detection logic.
func Count(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) int {
	t.Helper()
	fp, err := newLoader(dir).load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", pkgPath, err)
	}
	diags, err := runAnalyzer(a, fp, make(map[*analysis.Analyzer]interface{}))
	if err != nil {
		t.Fatalf("running %s on %q: %v", a.Name, pkgPath, err)
	}
	return len(diags)
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader loads fixture packages, resolving imports from testdata
// first and the standard library (from source) second.
type loader struct {
	srcDir string
	fset   *token.FileSet
	std    types.Importer
	cache  map[string]*fixturePkg
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcDir: filepath.Join(dir, "src"),
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*fixturePkg),
	}
}

// Import implements types.Importer over testdata-local packages with a
// standard-library fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.srcDir, path)); err == nil {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the fixture package at srcDir/path.
func (l *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.cache[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.srcDir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{fset: l.fset, files: files, pkg: pkg, info: info}
	l.cache[path] = fp
	return fp, nil
}

// runAnalyzer runs a (and, recursively, its Requires) over fp,
// returning a's diagnostics.  results memoizes prerequisite results.
func runAnalyzer(a *analysis.Analyzer, fp *fixturePkg, results map[*analysis.Analyzer]interface{}) ([]analysis.Diagnostic, error) {
	resultOf := make(map[*analysis.Analyzer]interface{})
	for _, req := range a.Requires {
		if _, ok := results[req]; !ok {
			if _, err := runAnalyzer(req, fp, results); err != nil {
				return nil, fmt.Errorf("prerequisite %s: %w", req.Name, err)
			}
		}
		resultOf[req] = results[req]
	}
	var diags []analysis.Diagnostic
	facts := newFactStore()
	pass := &analysis.Pass{
		Analyzer:          a,
		Fset:              fp.fset,
		Files:             fp.files,
		Pkg:               fp.pkg,
		TypesInfo:         fp.info,
		TypesSizes:        types.SizesFor("gc", "amd64"),
		ResultOf:          resultOf,
		Report:            func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:          os.ReadFile,
		ImportObjectFact:  facts.importObjectFact,
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  facts.exportObjectFact,
		ExportPackageFact: func(analysis.Fact) {},
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
		AllObjectFacts:    facts.allObjectFacts,
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	results[a] = res
	return diags, nil
}

// factStore is a minimal in-memory object-fact table, enough for
// prerequisite analyzers (ctrlflow) that export facts within one
// package.  Cross-package fact import is not supported; fixtures keep
// fact-relevant code in one package.
type factStore struct {
	facts map[factKey]analysis.Fact
}

type factKey struct {
	obj types.Object
	typ reflect.Type
}

func newFactStore() *factStore {
	return &factStore{facts: make(map[factKey]analysis.Fact)}
}

func (s *factStore) exportObjectFact(obj types.Object, fact analysis.Fact) {
	s.facts[factKey{obj, reflect.TypeOf(fact)}] = fact
}

func (s *factStore) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	if f, ok := s.facts[factKey{obj, reflect.TypeOf(fact)}]; ok {
		reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
		return true
	}
	return false
}

func (s *factStore) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for k, f := range s.facts {
		out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
	}
	return out
}

// expectation is one want regexp at a file line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	met  bool
}

var wantRe = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)`)

// check matches diagnostics against want comments.
func check(t *testing.T, fp *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	var expects []*expectation
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fp.fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, m[1]) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					expects = append(expects, &expectation{
						file: pos.Filename, line: pos.Line, rx: rx, raw: raw,
					})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fp.fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if !e.met && e.file == pos.Filename && e.line == pos.Line && e.rx.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

// splitQuoted extracts the quoted regexps of one want comment.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "*/")
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		if s[0] != '"' {
			t.Fatalf("%s: malformed want comment near %q (expected quoted regexp)", pos, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s: unterminated want regexp in %q", pos, s)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %q: %v", pos, s[:end+1], err)
		}
		out = append(out, raw)
		s = s[end+1:]
	}
	return out
}
