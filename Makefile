GO ?= go

.PHONY: build test race lint eoslint lint-ssa bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full static analysis: eoslint plus golangci-lint and govulncheck
# when installed (scripts/lint.sh skips missing external tools).
lint:
	scripts/lint.sh

# Just the repo's own invariant analyzers.
eoslint:
	scripts/lint.sh eoslint

# Just the whole-program passes (deadlock, walfirstip, leaksip).
lint-ssa:
	scripts/lint.sh --ssa

bench:
	scripts/bench_regress.sh
