// Command eosbench regenerates the experiment tables of the EOS
// reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured results).
//
// Usage:
//
//	eosbench                 # run every experiment
//	eosbench -exp e5,e6      # run selected experiments
//	eosbench -list           # list experiment IDs
//	eosbench -backend file   # run on real temp-dir page files
//
// The default backend is the cost-modelled simulator, whose time column
// is deterministic modelled microseconds.  With -backend file the same
// experiments run against real file-backed volumes (pread/pwrite/
// fdatasync), and the time column becomes measured wall clock.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/eosdb/eos/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (e1..e15) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	backend := flag.String("backend", "sim", "volume backend: sim (modelled costs) or file (real temp-dir page files)")
	dir := flag.String("dir", "", "file backend: directory for volume files (default: system temp dir)")
	flag.Parse()

	switch *backend {
	case "sim":
	case "file":
		bench.UseFileBackend = true
		bench.FileBackendDir = *dir
		defer bench.CleanupFileVolumes()
	default:
		fmt.Fprintf(os.Stderr, "eosbench: unknown backend %q (want sim or file)\n", *backend)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "eosbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "eosbench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *csv {
			fmt.Printf("# %s: %s\n", tab.ID, tab.Title)
			tab.FprintCSV(os.Stdout)
			fmt.Println()
			_ = start
		} else {
			tab.Fprint(os.Stdout)
			fmt.Printf("  (%s wall clock)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		bench.CleanupFileVolumes() // os.Exit skips the deferred sweep
		os.Exit(1)
	}
}
