// Package disk is a stand-in for the engine's disk backend with the
// shapes the analyzers match on: the Batch submit/wait discipline of
// the async dispatcher and the FileVolume open→close lifecycle.
package disk

// PageNum indexes a page within a volume.
type PageNum int64

// SQE is a submission-queue entry.
type SQE struct {
	Start PageNum
	Buf   []byte
}

// CQE is a completion-queue entry.
type CQE struct {
	SQE SQE
	Err error
}

// Dispatcher hands out batches.
type Dispatcher struct{}

// NewBatch opens a completion context.
func (d *Dispatcher) NewBatch() *Batch { return &Batch{} }

// Batch tracks one submitter's in-flight requests.
type Batch struct{}

// Submit enqueues one request.
func (b *Batch) Submit(sqe SQE) error { return nil }

// Wait harvests every outstanding completion.
func (b *Batch) Wait() ([]CQE, error) { return nil, nil }

// FileOptions configures a file volume.
type FileOptions struct {
	Direct      bool
	CrashShadow bool
}

// FileVolume is the stand-in file-backed volume.
type FileVolume struct{}

// Close releases the backing descriptor.
func (v *FileVolume) Close() error { return nil }

// WritePages writes pages (here: a no-op use of the volume).
func (v *FileVolume) WritePages(start PageNum, n int, data []byte) error { return nil }

// CreateFileVolume creates a file-backed volume.
func CreateFileVolume(path string, pageSize int, pages PageNum, opts FileOptions) (*FileVolume, error) {
	return &FileVolume{}, nil
}

// OpenFileVolume opens an existing file-backed volume.
func OpenFileVolume(path string, opts FileOptions) (*FileVolume, error) {
	return &FileVolume{}, nil
}

// Force makes n pages starting at start durable.
func (v *FileVolume) Force(start PageNum, n int) error { return nil }

// ForceAll makes every written page durable.
func (v *FileVolume) ForceAll() error { return nil }

// ForceAllExcept makes every written page durable except those in skip.
func (v *FileVolume) ForceAllExcept(skip map[PageNum]bool) error { return nil }

// Device is the stand-in backend interface with the durability surface
// forcedom matches on.
type Device interface {
	WritePages(start PageNum, n int, data []byte) error
	Force(start PageNum, n int) error
	ForceAll() error
	ForceAllExcept(skip map[PageNum]bool) error
}

// SyncDir fsyncs a directory, making its entries durable.
func SyncDir(dir string) error { return nil }
