// Command eoslint runs the storage engine's custom static analyzers
// (pinpair, lockorder, atomicfield, walfirst, errwrap) over Go
// packages.
//
// Usage:
//
//	go run ./cmd/eoslint ./...     # analyze packages (drives go vet)
//	eoslint help [analyzer]        # describe analyzers and flags
//
// The binary speaks the `go vet -vettool` unitchecker protocol
// (-V=full, -flags, unit.cfg); invoked with ordinary package patterns
// it re-executes itself through `go vet -vettool=<self>`, so one
// binary serves both as the driver and as the vet backend, and the
// analysis benefits from go vet's build cache and modular fact
// propagation.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	eosanalysis "github.com/eosdb/eos/internal/analysis"
)

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(eosanalysis.Analyzers()...) // does not return
	}

	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "eoslint: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	args := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "eoslint: %v\n", err)
		os.Exit(1)
	}
}

// vetProtocol reports whether args look like a `go vet -vettool`
// invocation (or an explicit unitchecker request such as `help`)
// rather than package patterns.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || a == "help" ||
			strings.HasPrefix(a, "-V") || strings.HasPrefix(a, "-flags") {
			return true
		}
	}
	return false
}
