// Package racecheck_clean holds every shape the lockset rule must stay
// silent on: consistently guarded fields, atomics, channels,
// constructor-fresh writes, annotated fields, and helpers whose lock is
// inherited through eos:requires.
package racecheck_clean

import (
	"sync"
	"sync/atomic"
)

type gauge struct {
	mu sync.Mutex
	n  int          // guarded everywhere (directly or via eos:requires)
	a  atomic.Int64 // hardware-ordered: exempt
	// lo is covered by an external guard the guardedby analyzer owns.
	lo int // eos:guardedby Pool.flushMu
	ch chan int // channels synchronize themselves
}

// New writes n before the value escapes: constructor-fresh, exempt.
func New() *gauge {
	g := &gauge{ch: make(chan int)}
	g.n = 1
	return g
}

// Start is the concurrency root.
func Start(g *gauge) {
	go g.work()
}

func (g *gauge) work() {
	g.mu.Lock()
	g.bumpLocked()
	g.mu.Unlock()
	g.a.Add(1)
	<-g.ch
}

// bumpLocked inherits the lock from its caller; the seed token g.mu
// canonicalizes to gauge.mu against the receiver.
//
// eos:requires g.mu
func (g *gauge) bumpLocked() {
	g.n++
}

// Read holds the same lock: the intersection stays {gauge.mu}.
func (g *gauge) Read() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Send touches only the channel field: not a candidate.
func (g *gauge) Send(v int) {
	g.ch <- v
}

// Open is a constructor (it returns the candidate-owning type), so
// populate — reachable only from it — runs pre-publication and its
// bare write through a non-fresh parameter is exempt.
func Open() (*gauge, error) {
	g := New()
	populate(g)
	return g, nil
}

func populate(g *gauge) {
	g.n = 7
}

// session instances are driven by one goroutine at a time by API
// contract: its fields are not lockset candidates even though Run's
// spawn and Flush would otherwise conflict on buf.
//
// eos:confined
type session struct {
	mu  sync.Mutex
	buf []byte
}

// Run drives the session on its own goroutine.
func Run(s *session) {
	go s.loop()
}

func (s *session) loop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, 1)
}

// Flush may only be called after Run's goroutine has exited.
func (s *session) Flush() {
	s.buf = nil
}
