package buddy

import (
	"errors"
	"fmt"
	"sync"

	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

// ManagerStats aggregates allocation activity across all spaces.
type ManagerStats struct {
	Allocs         int64
	Frees          int64
	SpacesVisited  int64 // buddy space directories consulted
	SpacesSkipped  int64 // visits avoided by the superdirectory
	FailedAttempts int64 // directory visits that could not satisfy a request
}

// Manager multiplexes allocation over a set of buddy spaces and maintains
// the superdirectory of §3.3: an in-memory array with the size of the
// largest free segment in each space.  Entries start optimistically at
// the maximum possible value; the first wrong guess about a space corrects
// its entry.  The superdirectory is protected by a short-duration latch,
// never by transaction locks.
type Manager struct {
	mu       sync.Mutex // the latch
	pool     *buffer.Pool
	spaces   []*Space // eos:guardedby mu -- append-only; snapshot under mu before probing
	super    []int    // eos:guardedby mu -- optimistic max free segment size per space, pages
	useSuper bool
	stats    ManagerStats // eos:guardedby mu
}

// NewManager creates a manager over an initial (possibly empty) set of
// spaces.  If useSuperdirectory is false every allocation probes space
// directories in order until one succeeds — the behaviour the
// superdirectory exists to avoid; keeping it switchable supports the
// superdirectory ablation experiment.
func NewManager(pool *buffer.Pool, useSuperdirectory bool) *Manager {
	return &Manager{pool: pool, useSuper: useSuperdirectory}
}

// AddSpace registers a space with the manager.  Its superdirectory entry
// starts at the maximum segment size, per §3.3 ("Initially, it indicates
// that each buddy space ... contains a free segment of the maximum size
// possible.  This information may be erroneous.").
func (m *Manager) AddSpace(s *Space) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spaces = append(m.spaces, s)
	m.super = append(m.super, s.MaxSegmentPages())
}

// Spaces returns the registered spaces.
func (m *Manager) Spaces() []*Space {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Space, len(m.spaces))
	copy(out, m.spaces)
	return out
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// FormatVolume lays a store out on a fresh volume: numSpaces buddy spaces
// of capacity data pages each, packed from firstPage as
// [directory][data...] repeatedly.  It returns a manager over the new
// spaces.
func FormatVolume(pool *buffer.Pool, vol disk.Device, firstPage disk.PageNum, numSpaces, capacity int, useSuperdirectory bool) (*Manager, error) {
	m := NewManager(pool, useSuperdirectory)
	page := firstPage
	for i := 0; i < numSpaces; i++ {
		if page+1+disk.PageNum(capacity) > vol.NumPages() {
			return nil, fmt.Errorf("%w: volume too small for %d spaces of %d pages", ErrBadRequest, numSpaces, capacity)
		}
		s, err := FormatSpace(pool, page, page+1, capacity, vol)
		if err != nil {
			return nil, err
		}
		m.AddSpace(s)
		page += 1 + disk.PageNum(capacity)
	}
	return m, nil
}

// candidates returns the indexes of spaces worth visiting for a request
// that needs a free block of blockPages, most promising first, and counts
// superdirectory skips.  Caller holds the latch.
//
// eos:requires m.mu
func (m *Manager) candidatesLocked(blockPages int) []int {
	idx := make([]int, 0, len(m.spaces))
	for i := range m.spaces {
		if m.useSuper && m.super[i] < blockPages {
			m.stats.SpacesSkipped++
			continue
		}
		idx = append(idx, i)
	}
	return idx
}

// noteVisitLocked records the corrected superdirectory entry after a space
// directory has been examined.  Caller holds the latch.
//
// eos:requires m.mu
func (m *Manager) noteVisitLocked(i int) {
	m.stats.SpacesVisited++
	m.super[i] = m.spaces[i].LastMaxFree()
}

// Alloc allocates n physically contiguous pages from some space and
// returns the starting volume page.
func (m *Manager) Alloc(n int) (disk.PageNum, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: allocation of %d pages", ErrBadRequest, n)
	}
	block := 1 << uint(ceilPow2Type(n))
	m.mu.Lock()
	cands := m.candidatesLocked(block)
	// Snapshot: AddSpace may append (and reallocate) m.spaces while the
	// per-space directory probes below run outside the latch.
	spaces := append([]*Space(nil), m.spaces...)
	m.mu.Unlock()
	for _, i := range cands {
		p, err := spaces[i].Alloc(n)
		m.mu.Lock()
		m.noteVisitLocked(i)
		if err == nil {
			m.stats.Allocs++
			m.mu.Unlock()
			return p, nil
		}
		m.stats.FailedAttempts++
		m.mu.Unlock()
		if !errors.Is(err, ErrNoSpace) {
			return 0, err
		}
	}
	return 0, ErrNoSpace
}

// AllocUpTo allocates up to n contiguous pages, preferring the space whose
// superdirectory entry is largest so that big requests fragment as little
// as possible.  It returns the starting volume page and the page count
// obtained.
func (m *Manager) AllocUpTo(n int) (disk.PageNum, int, error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: allocation of %d pages", ErrBadRequest, n)
	}
	m.mu.Lock()
	order := make([]int, 0, len(m.spaces))
	for i := range m.spaces {
		order = append(order, i)
	}
	if m.useSuper {
		// Visit larger superdirectory entries first.
		for a := 1; a < len(order); a++ {
			for b := a; b > 0 && m.super[order[b]] > m.super[order[b-1]]; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
	}
	spaces := append([]*Space(nil), m.spaces...)
	m.mu.Unlock()
	for _, i := range order {
		p, got, err := spaces[i].AllocUpTo(n)
		m.mu.Lock()
		m.noteVisitLocked(i)
		if err == nil {
			m.stats.Allocs++
			m.mu.Unlock()
			return p, got, nil
		}
		m.stats.FailedAttempts++
		m.mu.Unlock()
		if !errors.Is(err, ErrNoSpace) {
			return 0, 0, err
		}
	}
	return 0, 0, ErrNoSpace
}

// Free returns n pages starting at volume page p to the owning space.
func (m *Manager) Free(p disk.PageNum, n int) error {
	s := m.owner(p)
	if s == nil {
		return fmt.Errorf("%w: page %d belongs to no space", ErrBadRequest, p)
	}
	if err := s.Free(p, n); err != nil {
		return err
	}
	m.mu.Lock()
	m.stats.Frees++
	for i := range m.spaces {
		if m.spaces[i] == s {
			m.noteVisitLocked(i)
			break
		}
	}
	m.mu.Unlock()
	return nil
}

// owner finds the space containing volume page p.
func (m *Manager) owner(p disk.PageNum) *Space {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.spaces {
		if s.Contains(p) {
			return s
		}
	}
	return nil
}

// Reserve allocates the exact page range [p, p+n) in its owning space;
// the range must not straddle spaces.
func (m *Manager) Reserve(p disk.PageNum, n int) error {
	s := m.owner(p)
	if s == nil {
		return fmt.Errorf("%w: page %d belongs to no space", ErrBadRequest, p)
	}
	if !s.Contains(p + disk.PageNum(n) - 1) {
		return fmt.Errorf("%w: range [%d,%d) straddles spaces", ErrBadRequest, p, p+disk.PageNum(n))
	}
	if err := s.Reserve(p, n); err != nil {
		return err
	}
	m.mu.Lock()
	for i := range m.spaces {
		if m.spaces[i] == s {
			m.noteVisitLocked(i)
			break
		}
	}
	m.mu.Unlock()
	return nil
}

// FreePages totals free pages across all spaces.
func (m *Manager) FreePages() (int, error) {
	total := 0
	for _, s := range m.Spaces() {
		n, err := s.FreePages()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// MaxSegmentPages reports the largest single allocation any space
// supports.
func (m *Manager) MaxSegmentPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	max := 0
	for _, s := range m.spaces {
		if mp := s.MaxSegmentPages(); mp > max {
			max = mp
		}
	}
	return max
}

// Check validates every space.
func (m *Manager) Check() error {
	for _, s := range m.Spaces() {
		if err := s.Check(); err != nil {
			return err
		}
	}
	return nil
}
