package eos

import (
	"errors"
	"fmt"
	"io"

	"github.com/eosdb/eos/internal/lob"
)

// Reader adapts a large object to io.Reader, io.ReaderAt, io.Seeker and
// io.WriterTo, so objects plug into the standard streaming ecosystem
// (io.Copy to play the paper's digital sound recordings, bufio.Scanner
// over a stored document, and so on).  A Reader tracks its own position;
// multiple Readers over one object are independent.
//
// Reads observe the object's current content.  WriterTo streams in
// segment-size pieces, preserving the multi-page contiguous transfers
// that make EOS sequential reads fast.
//
// With sequential prefetch enabled (Options.SequentialPrefetch or
// SetPrefetch), a Reader that observes consecutive forward reads issues
// an asynchronous readahead of the bytes up to the end of the next
// segment into a private staging buffer, overlapping the next transfer
// with the caller's processing of the current one.  The readahead never
// spans a segment boundary, preserving the paper's one-request-per-
// segment transfer discipline, and staged bytes are served only if the
// object's mutation counter is unchanged since before the readahead
// started — any concurrent update invalidates the staging conservatively.
type Reader struct {
	o   *Object
	pos int64

	prefetch bool  // readahead enabled
	expect   int64 // position that would continue the current run
	seqRuns  int   // consecutive sequential Read calls observed

	staged   prefetched      // validated readahead bytes not yet consumed
	inflight chan prefetched // outstanding readahead, capacity 1
}

// prefetched is one readahead result: data staged from byte off, read at
// object version ver.
type prefetched struct {
	off  int64
	data []byte
	ver  int64
	err  error
}

// seqRunThreshold is how many consecutive sequential reads arm the
// prefetcher; the first read of a run never pays for speculation.
const seqRunThreshold = 2

// maxPrefetchBytes caps one readahead, bounding per-reader memory even
// when segments are huge.
const maxPrefetchBytes = 1 << 20

// NewReader returns a Reader positioned at byte 0.  Prefetch starts in
// the store-wide default (Options.SequentialPrefetch).
func (o *Object) NewReader() *Reader {
	return &Reader{o: o, prefetch: o.s.opts.SequentialPrefetch}
}

// SetPrefetch enables or disables sequential readahead for this Reader,
// overriding the store default.  Disabling drops any staged bytes.
func (r *Reader) SetPrefetch(on bool) {
	r.prefetch = on
	if !on {
		r.collect()
		r.staged = prefetched{}
	}
}

// collect waits for an outstanding readahead, if any, and stages its
// result.
func (r *Reader) collect() {
	if r.inflight == nil {
		return
	}
	r.staged = <-r.inflight
	r.inflight = nil
}

// stagedValid reports whether the staged bytes can serve position pos:
// they begin exactly there, the readahead succeeded, and no mutation has
// been admitted since before the readahead read the object.
func (r *Reader) stagedValid(pos int64) bool {
	return r.staged.data != nil &&
		r.staged.err == nil &&
		r.staged.off == pos &&
		r.staged.ver == r.o.e.obj.Version()
}

// issueReadahead starts an asynchronous read of [from, end of the
// segment containing from), capped at maxPrefetchBytes, unless a
// readahead is already outstanding.
func (r *Reader) issueReadahead(from, size int64) {
	if r.inflight != nil || from >= size {
		return
	}
	r.o.e.latch.RLock()
	ver := r.o.e.obj.Version()
	segStart, segLen, err := r.o.e.obj.SegmentRangeAt(from)
	r.o.e.latch.RUnlock()
	if err != nil {
		return
	}
	n := segStart + segLen - from
	if n > maxPrefetchBytes {
		n = maxPrefetchBytes
	}
	if n <= 0 {
		return
	}
	ch := make(chan prefetched, 1)
	r.inflight = ch
	o := r.o
	go func() {
		buf := make([]byte, n)
		err := o.ReadAt(buf, from)
		ch <- prefetched{off: from, data: buf, ver: ver, err: err}
	}()
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	size := r.o.Size()
	if r.pos >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if n > size-r.pos {
		n = size - r.pos
	}
	if r.pos == r.expect {
		r.seqRuns++
	} else {
		r.seqRuns = 1
	}
	if r.prefetch {
		r.collect()
		if r.stagedValid(r.pos) {
			// Serve from the staging buffer; a short read at a segment
			// boundary is fine for io.Reader.
			served := copy(p[:n], r.staged.data)
			r.staged.off += int64(served)
			r.staged.data = r.staged.data[served:]
			if len(r.staged.data) == 0 {
				r.staged = prefetched{}
			}
			r.pos += int64(served)
			r.expect = r.pos
			r.issueReadahead(r.pos, size)
			return served, nil
		}
		r.staged = prefetched{}
	}
	if err := r.o.ReadAt(p[:n], r.pos); err != nil {
		return 0, err
	}
	r.pos += n
	r.expect = r.pos
	if r.prefetch && r.seqRuns >= seqRunThreshold {
		r.issueReadahead(r.pos, size)
	}
	return int(n), nil
}

// ReadAt implements io.ReaderAt; it does not move the position.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	size := r.o.Size()
	if off < 0 {
		return 0, fmt.Errorf("eos: negative offset %d", off)
	}
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if n > size-off {
		n = size - off
		short = true
	}
	if err := r.o.ReadAt(p[:n], off); err != nil {
		return 0, err
	}
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.pos
	case io.SeekEnd:
		base = r.o.Size()
	default:
		return 0, fmt.Errorf("eos: invalid whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("eos: negative seek position %d", pos)
	}
	r.pos = pos
	return pos, nil
}

// WriteTo implements io.WriterTo, streaming the rest of the object in
// large chunks through Read so sequential prefetch applies.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	var total int64
	for {
		n, err := r.Read(buf)
		if n > 0 {
			wn, werr := w.Write(buf[:n])
			total += int64(wn)
			if werr != nil {
				return total, werr
			}
			if wn < n {
				return total, io.ErrShortWrite
			}
		}
		if errors.Is(err, io.EOF) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// Segments lists the object's physical layout: each leaf segment's
// logical offset, length, first volume page, and page count.
func (o *Object) Segments() ([]lob.SegmentInfo, error) {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Segments()
}
