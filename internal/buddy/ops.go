package buddy

import "fmt"

// allocAny allocates n physically contiguous pages, 1 <= n <= 2^maxType.
// Following §3.2, it obtains a free block of 2^ceil(lg n) pages, carves
// allocated sub-segments from the binary representation of n left to
// right, and returns the free tail pieces — the binary representation of
// 2^t - n in reverse — to the free space.  The whole run [start, start+n)
// is physically contiguous; only the last page of the run may end up
// partially used by the client.
func (d dir) allocAny(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: allocation of %d pages", ErrBadRequest, n)
	}
	t := ceilPow2Type(n)
	if t > d.maxType() {
		return 0, fmt.Errorf("%w: %d pages exceeds max segment %d", ErrBadRequest, n, 1<<d.maxType())
	}
	s, err := d.allocPow2(t)
	if err != nil {
		return 0, err
	}
	if n == 1<<t {
		return s, nil
	}
	// Re-encode the allocated prefix, then free the tail.  Prefix first,
	// so tail coalescing observes allocated buddies.
	for _, p := range alignedPieces(s, n, d.maxType()) {
		d.markAlloc(p.start, p.typ)
	}
	for _, p := range alignedPieces(s+n, (1<<t)-n, d.maxType()) {
		d.freePow2(p.start, p.typ)
	}
	return s, nil
}

// allocUpTo allocates up to n contiguous pages, returning the run start
// and the number of pages actually obtained (>= 1).  It degrades
// gracefully when the space is fragmented: if no free block can cover n,
// the largest free segment is taken whole.  Clients (the large object
// manager storing an object in a sequence of segments) call this in a
// loop.
func (d dir) allocUpTo(n int) (start, got int, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: allocation of %d pages", ErrBadRequest, n)
	}
	if max := 1 << d.maxType(); n > max {
		n = max
	}
	jmax := d.maxFreeType()
	if jmax < 0 {
		return 0, 0, ErrNoSpace
	}
	if ceilPow2Type(n) <= jmax {
		start, err = d.allocAny(n)
		return start, n, err
	}
	start, err = d.allocPow2(jmax)
	return start, 1 << jmax, err
}

// freeRange frees any sub-range [start, start+n) of previously allocated
// pages (§3.2: "a client may selectively free any portion of a previously
// allocated segment").  Allocated segments straddling the range boundary
// are re-encoded as the canonical aligned decomposition of their kept
// parts; the freed pages coalesce with free buddies iteratively.
func (d dir) freeRange(start, n int) error {
	if n <= 0 || start < 0 || start+n > d.capacity() {
		return fmt.Errorf("%w: free of pages [%d,%d) in capacity %d", ErrBadRequest, start, start+n, d.capacity())
	}
	// Verify the whole range is allocated and find the boundary segments.
	leftStart := -1
	rightEnd := -1
	for p := start; p < start+n; {
		s0, t0, alloc, err := d.segContaining(p)
		if err != nil {
			return err
		}
		if !alloc {
			return fmt.Errorf("%w: page %d", ErrDoubleFree, p)
		}
		if leftStart == -1 {
			leftStart = s0
		}
		rightEnd = s0 + (1 << t0)
		p = rightEnd
	}
	// Re-encode kept parts before freeing so coalescing sees them as
	// allocated.
	if leftStart < start {
		for _, p := range alignedPieces(leftStart, start-leftStart, d.maxType()) {
			d.markAlloc(p.start, p.typ)
		}
	}
	if rightEnd > start+n {
		for _, p := range alignedPieces(start+n, rightEnd-(start+n), d.maxType()) {
			d.markAlloc(p.start, p.typ)
		}
	}
	for _, p := range alignedPieces(start, n, d.maxType()) {
		d.freePow2(p.start, p.typ)
	}
	return nil
}

// reserveRange allocates the exact page range [start, start+n), which
// must currently be free.  Used by recovery and fsck to rebuild the
// allocation state from the set of reachable pages: every free segment
// overlapping the range is flipped to allocated, then the surplus around
// the range is returned through freeRange, restoring canonical form.
func (d dir) reserveRange(start, n int) error {
	if n <= 0 || start < 0 || start+n > d.capacity() {
		return fmt.Errorf("%w: reserve of pages [%d,%d) in capacity %d", ErrBadRequest, start, start+n, d.capacity())
	}
	lo, hi := -1, -1
	for p := start; p < start+n; {
		s0, t0, alloc, err := d.segContaining(p)
		if err != nil {
			return err
		}
		if alloc {
			return fmt.Errorf("%w: page %d already allocated", ErrBadRequest, p)
		}
		if lo == -1 {
			lo = s0
		}
		hi = s0 + (1 << t0)
		d.decCount(t0)
		d.markAlloc(s0, t0)
		p = hi
	}
	if lo < start {
		if err := d.freeRange(lo, start-lo); err != nil {
			return err
		}
	}
	if hi > start+n {
		if err := d.freeRange(start+n, hi-(start+n)); err != nil {
			return err
		}
	}
	return nil
}

// checkInvariants validates the directory against the canonical buddy
// invariants; used by tests and the fsck path of eosctl.  It verifies
// that (1) the amap parses into a partition of [0, capacity), (2) the
// count array matches the free segments present, and (3) no free segment
// has an equal-size free buddy (everything coalesced).
func (d dir) checkInvariants() error {
	counts := make([]int, d.maxType()+1)
	type seg struct {
		start, typ int
		alloc      bool
	}
	var segs []seg
	for p := 0; p < d.capacity(); {
		typ, alloc, err := d.segStartingAt(p)
		if err != nil {
			return err
		}
		if p%(1<<typ) != 0 {
			return fmt.Errorf("%w: segment at %d of size %d misaligned", ErrCorrupt, p, 1<<typ)
		}
		if p+(1<<typ) > d.capacity() {
			return fmt.Errorf("%w: segment at %d of size %d exceeds capacity", ErrCorrupt, p, 1<<typ)
		}
		if !alloc {
			counts[typ]++
		}
		segs = append(segs, seg{p, typ, alloc})
		p += 1 << typ
	}
	for t := 0; t <= d.maxType(); t++ {
		if counts[t] != d.count(t) {
			return fmt.Errorf("%w: count[%d]=%d but %d free segments found", ErrCorrupt, t, d.count(t), counts[t])
		}
	}
	free := make(map[int]int) // start -> typ
	for _, s := range segs {
		if !s.alloc {
			free[s.start] = s.typ
		}
	}
	for start, typ := range free {
		if typ == d.maxType() {
			continue // cannot merge beyond the maximum segment type
		}
		buddy := start ^ (1 << typ)
		if bt, ok := free[buddy]; ok && bt == typ && buddy+(1<<typ) <= d.capacity() {
			return fmt.Errorf("%w: free buddies %d and %d of size %d not coalesced", ErrCorrupt, start, buddy, 1<<typ)
		}
	}
	return nil
}
