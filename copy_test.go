package eos

import (
	"bytes"
	"errors"
	"testing"
)

func TestCopyObject(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	src, _ := s.Create("src", 16)
	data := pat(77, 120000)
	if err := src.Append(data); err != nil {
		t.Fatal(err)
	}
	// Fragment the source so the copy's layout demonstrably improves.
	for i := 0; i < 10; i++ {
		if err := src.Insert(int64(i*9000), pat(i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := src.Read(0, src.Size())

	if err := s.CopyObject("src", "dst"); err != nil {
		t.Fatal(err)
	}
	dst, err := s.Open("dst")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.Read(0, dst.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("copy content mismatch")
	}
	if dst.Threshold() != src.Threshold() {
		t.Errorf("threshold not inherited: %d vs %d", dst.Threshold(), src.Threshold())
	}
	us, _ := src.Usage()
	ud, _ := dst.Usage()
	if ud.SegmentCount > us.SegmentCount {
		t.Errorf("copy more fragmented than source: %d vs %d segments", ud.SegmentCount, us.SegmentCount)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}

	// Errors.
	if err := s.CopyObject("missing", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("copy of missing source: %v", err)
	}
	if err := s.CopyObject("src", "dst"); !errors.Is(err, ErrExists) {
		t.Errorf("copy onto existing destination: %v", err)
	}
}

func TestCopyEmptyObject(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	s.Create("empty", 0)
	if err := s.CopyObject("empty", "empty2"); err != nil {
		t.Fatal(err)
	}
	o, err := s.Open("empty2")
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 0 {
		t.Errorf("size = %d", o.Size())
	}
}
