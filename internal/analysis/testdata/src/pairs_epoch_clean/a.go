// Package pairs_epoch_clean holds correct epoch-guard usage the pairs
// analyzer must stay silent on.
package pairs_epoch_clean

import "txn"

// read is a stand-in snapshot read.
func read() error { return nil }

// Snapshot is a stand-in owner a guard's ownership transfers into.
type Snapshot struct {
	g *txn.EpochGuard
}

// deferred exits via defer, covering every path.
func deferred(em *txn.EpochManager) error {
	g := em.Enter()
	defer g.Exit()
	return read()
}

// everyPath exits explicitly on each path.
func everyPath(em *txn.EpochManager) error {
	g := em.Enter()
	if err := read(); err != nil {
		_ = g.Exit()
		return err
	}
	return g.Exit()
}

// handedOff stores the guard into a snapshot; the new owner's Close
// path carries the Exit, so tracking stops at the store.
func handedOff(em *txn.EpochManager) *Snapshot {
	g := em.Enter()
	return &Snapshot{g: g}
}
