package lob

import (
	"fmt"

	"github.com/eosdb/eos/internal/disk"
)

// Delete removes n bytes starting at byte off (§4.3.2).
//
// Entire subtrees inside the range are deleted first, without touching a
// single leaf segment — the address and size of each segment live in its
// parent index node and go straight to the buddy system.  At the
// boundaries, the left segment keeps its prefix in place; the right
// segment's split page is copied into a fresh segment N (segments cannot
// have holes) and its tail pages survive in place as R.  As in insert,
// reshuffling may migrate bytes into N, and — unlike B-trees or EXODUS —
// a partial segment delete may create new entries for the parents.
func (o *Object) Delete(off, n int64) error {
	if err := o.checkRange(off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	o.bumpVersion()
	o.m.st.deletes.Add(1)
	if err := o.Trim(); err != nil {
		return err
	}
	m := o.m
	ps := int64(m.vol.PageSize())
	maxSegBytes := int64(m.alloc.MaxSegmentPages()) * ps
	lo, hi := off, off+n

	// Step 1: locate the boundary segments.
	sl, startL, parentN, err := o.findSegment(lo)
	if err != nil {
		return err
	}
	sr, startR, _, err := o.findSegment(hi - 1)
	if err != nil {
		return err
	}
	same := startL == startR
	t := o.effectiveThreshold(parentN)

	// Step 2: geometry.  L keeps S's bytes left of the first deleted
	// byte; within S', page Q holds the last deleted byte, N receives
	// Q's surviving suffix, R is S''s pages right of Q.
	lc := lo - startL
	relR := hi - startR
	scr := sr.bytes
	pagesSR := pagesFor(scr, int(ps))
	q := (relR - 1) / ps
	qb := (relR - 1) - q*ps
	qc := ps
	if q == int64(pagesSR)-1 {
		qc = scr - q*ps
	}
	nc := qc - (qb + 1)
	var rc int64
	if q < int64(pagesSR)-1 {
		rc = scr - (q+1)*ps
	}

	// Step 3: reshuffle — skipped when Nc = 0 ("go to step 5").
	var res reshuffleResult
	if nc == 0 {
		res = reshuffleResult{lc: lc, rc: rc}
	} else {
		res = reshuffle(lc, nc, rc, t, int(ps), maxSegBytes)
		m.st.bytesReshuffled.Add(res.moveL + res.moveR)
		m.st.pagesReshuffled.Add((res.moveL + res.moveR) / ps)
	}

	// Step 4: materialize N (one read from S' covering Q's suffix plus
	// R's migrated prefix — contiguous — and, if bytes migrate from L, a
	// second read from S).
	var newSegs []entry
	if res.nc > 0 {
		nbuf := make([]byte, 0, res.nc)
		if res.moveL > 0 {
			part := make([]byte, res.moveL)
			if err := m.readSegRange(sl.ptr, lc-res.moveL, part); err != nil {
				return err
			}
			nbuf = append(nbuf, part...)
		}
		baseLen := qc - (qb + 1)
		part := make([]byte, baseLen+res.moveR)
		if err := m.readSegRange(sr.ptr, q*ps+qb+1, part); err != nil {
			return err
		}
		nbuf = append(nbuf, part...)
		if int64(len(nbuf)) != res.nc {
			return fmt.Errorf("lob: internal error: N has %d bytes, expected %d", len(nbuf), res.nc)
		}
		newSegs, err = m.allocSegments(res.nc)
		if err != nil {
			return err
		}
		if err := o.writeNewSegments(newSegs, nbuf); err != nil {
			return err
		}
	}
	if res.rc > 0 && res.moveR%ps != 0 {
		return fmt.Errorf("lob: internal error: partial-page move from surviving R")
	}

	// Free boundary pages and build the replacement entries.
	keepL := pagesFor(res.lc, int(ps))
	rKeep := pagesSR
	if res.rc > 0 {
		rKeep = int(q) + 1 + int(res.moveR/ps)
	}
	var repl []entry
	if res.lc > 0 {
		repl = append(repl, entry{bytes: res.lc, ptr: sl.ptr})
	}
	repl = append(repl, newSegs...)
	if res.rc > 0 {
		repl = append(repl, entry{bytes: res.rc, ptr: sr.ptr + disk.PageNum(rKeep)})
	}

	if same {
		kept := res.lc > 0 || res.nc > 0 || res.rc > 0
		if kept {
			if keepL < rKeep {
				if err := m.alloc.Free(sl.ptr+disk.PageNum(keepL), rKeep-keepL); err != nil {
					return err
				}
			}
		}
		return o.spliceLeafRange(startL, startL+sl.bytes, repl, kept, kept)
	}

	// Distinct boundary segments: free S's tail if L survives (else the
	// splice frees S whole), and S''s head if R or N keeps part of S'.
	skipFirst := res.lc > 0
	if skipFirst {
		pagesSL := pagesFor(sl.bytes, int(ps))
		if keepL < pagesSL {
			if err := m.alloc.Free(sl.ptr+disk.PageNum(keepL), pagesSL-keepL); err != nil {
				return err
			}
		}
	}
	skipLast := res.rc > 0
	if skipLast {
		if err := m.alloc.Free(sr.ptr, rKeep); err != nil {
			return err
		}
	}
	return o.spliceLeafRange(startL, startR+scr, repl, skipFirst, skipLast)
}

// Truncate shortens the object to newSize bytes.  Truncation to zero is
// equivalent to deleting the whole content; like all deletions ending on
// the object's last byte, it completes without reading any data page.
func (o *Object) Truncate(newSize int64) error {
	if newSize < 0 || newSize > o.size {
		return fmt.Errorf("%w: truncate to %d of %d", ErrOutOfBounds, newSize, o.size)
	}
	if newSize == o.size {
		return nil
	}
	return o.Delete(newSize, o.size-newSize)
}
