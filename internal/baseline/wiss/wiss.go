// Package wiss implements the Wisconsin Storage System's long data item
// scheme (Chou, DeWitt, Katz & Klug 1985) as a comparison baseline.
//
// A long object is a sequence of slices, each at most one page, addressed
// by a directory stored as a regular record that may grow to about the
// size of a page.  With 4 KB pages the directory holds roughly 400
// entries, bounding objects at about 1.6 MB — the object-size ceiling §2
// of the EOS paper criticizes, alongside the loss of physical
// sequentiality from page-at-a-time slice allocation.
//
// Slices are kept between half-full and full, B-tree style, so storage
// utilization stays good while every slice touch costs a seek.
package wiss

import (
	"errors"
	"fmt"

	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
)

// Errors returned by the WiSS baseline.
var (
	// ErrOutOfBounds is returned for ranges outside the object.
	ErrOutOfBounds = errors.New("wiss: byte range out of bounds")
	// ErrTooLarge is returned when the slice directory would overflow its
	// one-page budget — WiSS long items have a hard size ceiling.
	ErrTooLarge = errors.New("wiss: object exceeds directory capacity")
)

// directory entry cost on the directory page: 2-byte length + 8-byte page
// address, as in the original (address and size of each slice).
const dirEntryBytes = 10

// slice is one data page holding up to a page of object bytes.
type slice struct {
	page  disk.PageNum
	bytes int
}

// Object is one WiSS long data item.
type Object struct {
	vol    disk.Device
	alloc  lob.Allocator
	slices []slice
	size   int64
}

// New creates an empty long data item.
func New(vol disk.Device, alloc lob.Allocator) *Object {
	return &Object{vol: vol, alloc: alloc}
}

// MaxSlices reports the directory capacity for the volume's page size.
func (o *Object) MaxSlices() int { return o.vol.PageSize() / dirEntryBytes }

// MaxBytes reports the object size ceiling.
func (o *Object) MaxBytes() int64 {
	return int64(o.MaxSlices()) * int64(o.vol.PageSize())
}

// Size returns the object length in bytes.
func (o *Object) Size() int64 { return o.size }

// SliceCount reports the number of slices.
func (o *Object) SliceCount() int { return len(o.slices) }

func (o *Object) checkRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > o.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, off, off+n, o.size)
	}
	return nil
}

// locate returns the slice index containing byte off and the byte offset
// where that slice starts; off == size maps past the last slice.
func (o *Object) locate(off int64) (int, int64) {
	var cum int64
	for i := range o.slices {
		if off < cum+int64(o.slices[i].bytes) {
			return i, cum
		}
		cum += int64(o.slices[i].bytes)
	}
	return len(o.slices), cum
}

func (o *Object) readSlice(i int) ([]byte, error) {
	buf := make([]byte, o.vol.PageSize())
	if err := o.vol.ReadPages(o.slices[i].page, 1, buf); err != nil {
		return nil, err
	}
	return buf[:o.slices[i].bytes], nil
}

func (o *Object) writeSlice(page disk.PageNum, data []byte) error {
	buf := make([]byte, o.vol.PageSize())
	copy(buf, data)
	return o.vol.WritePages(page, 1, buf)
}

// Read returns n bytes from byte offset off.
func (o *Object) Read(off, n int64) ([]byte, error) {
	if err := o.checkRange(off, n); err != nil {
		return nil, err
	}
	out := make([]byte, 0, n)
	i, start := o.locate(off)
	for int64(len(out)) < n && i < len(o.slices) {
		data, err := o.readSlice(i)
		if err != nil {
			return nil, err
		}
		lo := off + int64(len(out)) - start
		take := int64(len(data)) - lo
		if take > n-int64(len(out)) {
			take = n - int64(len(out))
		}
		out = append(out, data[lo:lo+take]...)
		start += int64(len(data))
		i++
	}
	return out, nil
}

// Replace overwrites bytes in place, slice by slice.
func (o *Object) Replace(off int64, data []byte) error {
	if err := o.checkRange(off, int64(len(data))); err != nil {
		return err
	}
	i, start := o.locate(off)
	pos := int64(0)
	for pos < int64(len(data)) {
		cur, err := o.readSlice(i)
		if err != nil {
			return err
		}
		lo := off + pos - start
		take := int64(len(cur)) - lo
		if take > int64(len(data))-pos {
			take = int64(len(data)) - pos
		}
		copy(cur[lo:], data[pos:pos+take])
		if err := o.writeSlice(o.slices[i].page, cur); err != nil {
			return err
		}
		pos += take
		start += int64(len(cur))
		i++
	}
	return nil
}

// Append appends data at the end.
func (o *Object) Append(data []byte) error {
	return o.Insert(o.size, data)
}

// Insert inserts data at byte off, splitting slices as needed.
func (o *Object) Insert(off int64, data []byte) error {
	if off < 0 || off > o.size {
		return fmt.Errorf("%w: insert at %d of %d", ErrOutOfBounds, off, o.size)
	}
	if len(data) == 0 {
		return nil
	}
	ps := o.vol.PageSize()
	i, start := o.locate(off)

	// Collect the affected slice's bytes (if any) and splice in memory.
	var merged []byte
	if i < len(o.slices) {
		cur, err := o.readSlice(i)
		if err != nil {
			return err
		}
		cut := off - start
		merged = append(merged, cur[:cut]...)
		merged = append(merged, data...)
		merged = append(merged, cur[cut:]...)
	} else if i > 0 && o.slices[i-1].bytes < ps {
		// Appending: fill the last slice first.
		i--
		cur, err := o.readSlice(i)
		if err != nil {
			return err
		}
		merged = append(merged, cur...)
		merged = append(merged, data...)
	} else {
		merged = data
	}

	// Rewrite slice i as ceil(len/ps) slices, each at least half full.
	newSlices, err := o.layoutSlices(merged)
	if err != nil {
		return err
	}
	if len(o.slices)-boolInt(i < len(o.slices))+len(newSlices) > o.MaxSlices() {
		// Free the fresh pages before failing, best-effort: the
		// slice-count overflow is the error worth reporting.
		for _, s := range newSlices {
			_ = o.alloc.Free(s.page, 1)
		}
		return fmt.Errorf("%w: %d slices (max %d)", ErrTooLarge, len(o.slices)+len(newSlices), o.MaxSlices())
	}
	if i < len(o.slices) {
		if err := o.alloc.Free(o.slices[i].page, 1); err != nil {
			return err
		}
		o.slices = append(o.slices[:i:i], append(newSlices, o.slices[i+1:]...)...)
	} else {
		o.slices = append(o.slices, newSlices...)
	}
	o.size += int64(len(data))
	return nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// layoutSlices writes data into freshly allocated one-page slices,
// distributing bytes so every slice is at least half full.
func (o *Object) layoutSlices(data []byte) ([]slice, error) {
	ps := o.vol.PageSize()
	n := len(data)
	count := (n + ps - 1) / ps
	if count == 0 {
		return nil, nil
	}
	base := n / count
	extra := n % count
	out := make([]slice, 0, count)
	pos := 0
	for k := 0; k < count; k++ {
		sz := base
		if k < extra {
			sz++
		}
		pg, err := o.alloc.Alloc(1)
		if err != nil {
			for _, s := range out {
				_ = o.alloc.Free(s.page, 1)
			}
			return nil, err
		}
		if err := o.writeSlice(pg, data[pos:pos+sz]); err != nil {
			return nil, err
		}
		out = append(out, slice{page: pg, bytes: sz})
		pos += sz
	}
	return out, nil
}

// Delete removes n bytes starting at off.
func (o *Object) Delete(off, n int64) error {
	if err := o.checkRange(off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	ps := o.vol.PageSize()
	lo, hi := off, off+n

	li, lstart := o.locate(lo)
	// Gather surviving boundary bytes.
	var keep []byte
	lcur, err := o.readSlice(li)
	if err != nil {
		return err
	}
	keep = append(keep, lcur[:lo-lstart]...)

	// Walk forward freeing covered slices.
	i, start := li, lstart
	for i < len(o.slices) && start < hi {
		sl := o.slices[i]
		end := start + int64(sl.bytes)
		if end > hi {
			cur, err := o.readSlice(i)
			if err != nil {
				return err
			}
			keep = append(keep, cur[hi-start:]...)
		}
		if err := o.alloc.Free(sl.page, 1); err != nil {
			return err
		}
		start = end
		i++
	}
	newSlices, err := o.layoutSlices(keep)
	if err != nil {
		return err
	}
	o.slices = append(o.slices[:li:li], append(newSlices, o.slices[i:]...)...)
	o.size -= n

	// Keep slices at least half full: merge a lone small boundary slice
	// with a neighbour when possible.
	o.rebalance(li, ps)
	return nil
}

// rebalance merges the slice at index i (if underfull) with a neighbour.
func (o *Object) rebalance(i, ps int) {
	if i >= len(o.slices) || len(o.slices) < 2 {
		return
	}
	if o.slices[i].bytes >= ps/2 {
		return
	}
	j := i + 1
	if j >= len(o.slices) {
		j = i - 1
		i, j = j, i
	}
	a, err := o.readSlice(i)
	if err != nil {
		return
	}
	b, err := o.readSlice(j)
	if err != nil {
		return
	}
	mergedBytes := append(append([]byte{}, a...), b...)
	newSlices, err := o.layoutSlices(mergedBytes)
	if err != nil {
		return
	}
	_ = o.alloc.Free(o.slices[i].page, 1)
	_ = o.alloc.Free(o.slices[j].page, 1)
	o.slices = append(o.slices[:i:i], append(newSlices, o.slices[j+1:]...)...)
}

// Destroy frees every slice.
func (o *Object) Destroy() error {
	for _, s := range o.slices {
		if err := o.alloc.Free(s.page, 1); err != nil {
			return err
		}
	}
	o.slices = nil
	o.size = 0
	return nil
}

// Usage reports data bytes, allocated data pages, and directory pages.
func (o *Object) Usage() (dataBytes int64, dataPages, indexPages int) {
	return o.size, len(o.slices), 1
}
