package buddy

import (
	"fmt"
	"testing"

	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

func benchSpace(b *testing.B) *Space {
	b.Helper()
	vol := disk.MustNewVolume(4096, 16008, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 8)
	s, err := FormatSpace(pool, 0, 1, 16000, vol)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkAllocFree(b *testing.B) {
	for _, size := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("pages-%d", size), func(b *testing.B) {
			s := benchSpace(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := s.Alloc(size)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Free(p, size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAllocArbitrarySize(b *testing.B) {
	s := benchSpace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 1 + i%100
		p, err := s.Alloc(n)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Free(p, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocateFreeFragmented(b *testing.B) {
	s := benchSpace(b)
	// Fragment: allocate everything in 4-page pieces, free every other.
	var runs []disk.PageNum
	for {
		p, err := s.Alloc(4)
		if err != nil {
			break
		}
		runs = append(runs, p)
	}
	for i := 0; i < len(runs); i += 2 {
		if err := s.Free(runs[i], 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.LocateFree(2); err != nil {
			b.Fatal(err)
		}
	}
}
