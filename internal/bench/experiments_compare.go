package bench

import (
	"fmt"
	"math/rand"

	"github.com/eosdb/eos/internal/baseline/exodus"
	"github.com/eosdb/eos/internal/baseline/starburst"
	"github.com/eosdb/eos/internal/baseline/wiss"
	"github.com/eosdb/eos/internal/lob"
)

// sysObj is the uniform face the comparison experiments drive: every
// system under test — EOS and the three §2 baselines — implements it.
type sysObj interface {
	AppendHint(data []byte, hint int64) error
	Read(off, n int64) ([]byte, error)
	Insert(off int64, data []byte) error
	Delete(off, n int64) error
	Size() int64
	Usage() (dataBytes int64, dataPages, indexPages int, err error)
	Destroy() error
}

type eosObj struct{ o *lob.Object }

func (e eosObj) AppendHint(d []byte, h int64) error { return e.o.AppendWithHint(d, h) }
func (e eosObj) Read(off, n int64) ([]byte, error)  { return e.o.Read(off, n) }
func (e eosObj) Insert(off int64, d []byte) error   { return e.o.Insert(off, d) }
func (e eosObj) Delete(off, n int64) error          { return e.o.Delete(off, n) }
func (e eosObj) Size() int64                        { return e.o.Size() }
func (e eosObj) Destroy() error                     { return e.o.Destroy() }
func (e eosObj) Usage() (int64, int, int, error) {
	u, err := e.o.Usage()
	return u.DataBytes, u.SegmentPages, u.IndexPages, err
}

type exoObj struct{ o *exodus.Object }

func (e exoObj) AppendHint(d []byte, _ int64) error { return e.o.Append(d) }
func (e exoObj) Read(off, n int64) ([]byte, error)  { return e.o.Read(off, n) }
func (e exoObj) Insert(off int64, d []byte) error   { return e.o.Insert(off, d) }
func (e exoObj) Delete(off, n int64) error          { return e.o.Delete(off, n) }
func (e exoObj) Size() int64                        { return e.o.Size() }
func (e exoObj) Destroy() error                     { return e.o.Destroy() }
func (e exoObj) Usage() (int64, int, int, error)    { return e.o.Usage() }

type sbObj struct{ o *starburst.LongField }

func (s sbObj) AppendHint(d []byte, h int64) error { return s.o.AppendWithHint(d, h) }
func (s sbObj) Read(off, n int64) ([]byte, error)  { return s.o.Read(off, n) }
func (s sbObj) Insert(off int64, d []byte) error   { return s.o.Insert(off, d) }
func (s sbObj) Delete(off, n int64) error          { return s.o.Delete(off, n) }
func (s sbObj) Size() int64                        { return s.o.Size() }
func (s sbObj) Destroy() error                     { return s.o.Destroy() }
func (s sbObj) Usage() (int64, int, int, error) {
	b, d, i := s.o.Usage()
	return b, d, i, nil
}

type wissObj struct{ o *wiss.Object }

func (w wissObj) AppendHint(d []byte, _ int64) error { return w.o.Append(d) }
func (w wissObj) Read(off, n int64) ([]byte, error)  { return w.o.Read(off, n) }
func (w wissObj) Insert(off int64, d []byte) error   { return w.o.Insert(off, d) }
func (w wissObj) Delete(off, n int64) error          { return w.o.Delete(off, n) }
func (w wissObj) Size() int64                        { return w.o.Size() }
func (w wissObj) Destroy() error                     { return w.o.Destroy() }
func (w wissObj) Usage() (int64, int, int, error) {
	b, d, i := w.o.Usage()
	return b, d, i, nil
}

// systemDef names a system and builds a fresh object over a stack.
type systemDef struct {
	name     string
	maxBytes int64 // 0 = unlimited
	make     func(st *Stack) (sysObj, error)
}

func systems() []systemDef {
	return []systemDef{
		{"EOS (T=8)", 0, func(st *Stack) (sysObj, error) {
			return eosObj{st.LM.NewObject(8)}, nil
		}},
		{"EXODUS (leaf=4p)", 0, func(st *Stack) (sysObj, error) {
			o, err := exodus.New(st.Vol, st.Pool, st.Buddy, 4)
			return exoObj{o}, err
		}},
		{"Starburst", 0, func(st *Stack) (sysObj, error) {
			return sbObj{starburst.New(st.Vol, st.Buddy)}, nil
		}},
		// WiSS objects are capped by the one-page slice directory; keep a
		// few slices of headroom so the update phases of the experiments
		// do not overflow it.
		{"WiSS", int64(benchPageSize/10-8) * benchPageSize, func(st *Stack) (sysObj, error) {
			return wissObj{wiss.New(st.Vol, st.Buddy)}, nil
		}},
	}
}

// buildObject creates an object of the given size on a fresh stack,
// appending in 16 KB chunks with the full size as a hint.
func buildObject(sys systemDef, size int64) (*Stack, sysObj, error) {
	st, err := NewStack(int(size/(benchSpaceCap*benchPageSize))+2, lobDefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	o, err := sys.make(st)
	if err != nil {
		return nil, nil, err
	}
	chunk := Pattern(1, 16384)
	remaining := size
	for remaining > 0 {
		c := chunk
		if remaining < int64(len(c)) {
			c = c[:remaining]
		}
		if err := o.AppendHint(c, remaining); err != nil {
			return nil, nil, err
		}
		remaining -= int64(len(c))
	}
	return st, o, nil
}

// E7Comparison regenerates the cross-system study the paper summarises
// from [Bili91b]: per-operation I/O for EOS against EXODUS, Starburst,
// and WiSS.
func E7Comparison() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "cross-system comparison (§2, [Bili91b])",
		Claim:   "EOS matches Starburst on creation and sequential reads while handling inserts/deletes gracefully; EXODUS/WiSS scatter pages and seek per block; WiSS caps object size",
		Headers: []string{"system", "size", "create IO(pg/seeks)", "scan IO(pg/seeks)", "rand-4KB (pg/seeks)", "ins-1KB (pg/seeks)", "del-1KB (pg/seeks)", "util"},
	}
	sizes := []int64{64 << 10, 1 << 20}
	for _, size := range sizes {
		for _, sys := range systems() {
			if sys.maxBytes > 0 && size > sys.maxBytes {
				t.AddRow(sys.name, fmtSize(size), "exceeds max object size", "-", "-", "-", "-", "-")
				continue
			}
			st, o, err := buildObject(sys, size)
			if err != nil {
				return nil, err
			}
			// Create I/O: rebuild cold on a second stack for a clean count.
			st2, err := NewStack(int(size/(benchSpaceCap*benchPageSize))+2, lobDefaultConfig())
			if err != nil {
				return nil, err
			}
			o2, err := sys.make(st2)
			if err != nil {
				return nil, err
			}
			if err := st2.ResetIO(); err != nil {
				return nil, err
			}
			if err := o2.AppendHint(Pattern(1, int(size)), size); err != nil {
				return nil, err
			}
			if err := st2.Pool.FlushAll(); err != nil {
				return nil, err
			}
			create := st2.Vol.Stats()

			if err := st.ColdIO(); err != nil {
				return nil, err
			}
			if _, err := o.Read(0, o.Size()); err != nil {
				return nil, err
			}
			scan := st.Vol.Stats()

			if err := st.ColdIO(); err != nil {
				return nil, err
			}
			if _, err := o.Read(size/2, 4096); err != nil {
				return nil, err
			}
			randRead := st.Vol.Stats()

			if err := st.ColdIO(); err != nil {
				return nil, err
			}
			if err := o.Insert(size/2, Pattern(2, 1024)); err != nil {
				return nil, err
			}
			if err := st.Pool.FlushAll(); err != nil {
				return nil, err
			}
			ins := st.Vol.Stats()

			if err := st.ColdIO(); err != nil {
				return nil, err
			}
			if err := o.Delete(size/2, 1024); err != nil {
				return nil, err
			}
			if err := st.Pool.FlushAll(); err != nil {
				return nil, err
			}
			del := st.Vol.Stats()

			dataBytes, dataPages, indexPages, err := o.Usage()
			if err != nil {
				return nil, err
			}
			util := float64(dataBytes) / (float64(dataPages+indexPages) * benchPageSize)
			f := func(pages, seeks int64) string { return fmt.Sprintf("%d/%d", pages, seeks) }
			t.AddRow(sys.name, fmtSize(size),
				f(create.PagesMoved(), create.Seeks),
				f(scan.PagesMoved(), scan.Seeks),
				f(randRead.PagesMoved(), randRead.Seeks),
				f(ins.PagesMoved(), ins.Seeks),
				f(del.PagesMoved(), del.Seeks),
				fmtPct(util))
		}
	}
	t.Notes = append(t.Notes, "IO cells are pages-moved/seeks, cold caches; PS = 1 KB")
	return t, nil
}

// E8Fragmentation measures internal fragmentation: EOS wastes less than
// one page per segment (§3: the Seltzer/Stonebraker fragmentation
// concern does not apply because only a segment's last page is partial).
func E8Fragmentation() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "internal fragmentation (§1 obj. 5, §3)",
		Claim:   "\"the unused portion of an allocated segment is always less than a page\"; storage utilization close to 100%",
		Headers: []string{"system", "object size", "segments/blocks", "data pages", "wasted KB", "waste/segment (pages)", "util"},
	}
	for _, size := range []int64{10 << 10, 64 << 10, 1 << 20} {
		for _, sys := range systems() {
			if sys.maxBytes > 0 && size > sys.maxBytes {
				continue
			}
			_, o, err := buildObject(sys, size)
			if err != nil {
				return nil, err
			}
			// Fragment with a handful of mid-object inserts.
			rng := rand.New(rand.NewSource(size))
			for i := 0; i < 10; i++ {
				if err := o.Insert(int64(rng.Intn(int(o.Size()))), Pattern(i, 100)); err != nil {
					return nil, err
				}
			}
			dataBytes, dataPages, indexPages, err := o.Usage()
			if err != nil {
				return nil, err
			}
			segments := countSegments(o)
			wasted := int64(dataPages)*benchPageSize - dataBytes
			perSeg := float64(wasted) / float64(segments) / benchPageSize
			util := float64(dataBytes) / (float64(dataPages+indexPages) * benchPageSize)
			t.AddRow(sys.name, fmtSize(size), fmt.Sprint(segments), fmt.Sprint(dataPages),
				fmt.Sprintf("%.1f", float64(wasted)/1024), fmtF(perSeg), fmtPct(util))
		}
	}
	return t, nil
}

// countSegments asks each concrete system for its unit count.
func countSegments(o sysObj) int {
	switch v := o.(type) {
	case eosObj:
		u, _ := v.o.Usage()
		return u.SegmentCount
	case exoObj:
		n, _ := v.o.BlockCount()
		return n
	case sbObj:
		return v.o.SegmentCount()
	case wissObj:
		return v.o.SliceCount()
	}
	return 0
}

// E13UpdateCostVsObjectSize shows the paper's objective 3: EOS update
// cost depends on the bytes involved, not the object size, while
// Starburst's insert copies everything right of the update point.
func E13UpdateCostVsObjectSize() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "small-insert cost vs object size (§1 obj. 3 vs Starburst)",
		Claim:   "\"the cost of the piece-wise operations must depend on the number of bytes involved in the operation, rather than the size of the entire object\"; Starburst copies all segments right of the update",
		Headers: []string{"system", "object size", "insert: pages moved", "insert: seeks", "sim time"},
	}
	for _, size := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		for _, sys := range systems() {
			if sys.maxBytes > 0 && size > sys.maxBytes {
				continue
			}
			st, o, err := buildObject(sys, size)
			if err != nil {
				return nil, err
			}
			if err := st.ColdIO(); err != nil {
				return nil, err
			}
			if err := o.Insert(1000, Pattern(4, 1024)); err != nil {
				return nil, err
			}
			if err := st.Pool.FlushAll(); err != nil {
				return nil, err
			}
			s := st.Vol.Stats()
			t.AddRow(sys.name, fmtSize(size), fmtI(s.PagesMoved()), fmtI(s.Seeks), fmtMS(s.Micros))
		}
	}
	t.Notes = append(t.Notes, "1 KB inserted near the front (offset 1000); EOS and EXODUS stay flat, Starburst grows linearly")
	return t, nil
}

func fmtSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprint(b)
}
