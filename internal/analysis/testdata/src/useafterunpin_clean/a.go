// Package useafterunpin_clean holds correct page-image lifetimes the
// analyzer must accept without diagnostics.
package useafterunpin_clean

import "buffer"

// useThenUnpin finishes with the image before releasing.
func useThenUnpin(pool *buffer.Pool, pg buffer.PageID) (byte, error) {
	img, err := pool.Fix(pg)
	if err != nil {
		return 0, err
	}
	b := img[0]
	return b, pool.Unpin(pg)
}

// deferredUnpin releases at function exit: every body use happens
// while the pin is held.
func deferredUnpin(pool *buffer.Pool, pg buffer.PageID) byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return 0
	}
	defer pool.Unpin(pg)
	img[0] = 1
	return img[0]
}

// refixed re-fixes the page into the same variable: the new image is
// freshly pinned, so uses after it are fine.
func refixed(pool *buffer.Pool, pg buffer.PageID) byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return 0
	}
	_ = img[0]
	_ = pool.Unpin(pg)
	img, err = pool.Fix(pg)
	if err != nil {
		return 0
	}
	b := img[0]
	_ = pool.Unpin(pg)
	return b
}

// otherPage unpins a different page: img's pin is still held.
func otherPage(pool *buffer.Pool, pg, other buffer.PageID) byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return 0
	}
	_ = pool.Unpin(other)
	b := img[0]
	_ = pool.Unpin(pg)
	return b
}

// branchLocal uses and releases the image consistently on each branch.
func branchLocal(pool *buffer.Pool, pg buffer.PageID, early bool) byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return 0
	}
	if early {
		b := img[0]
		_ = pool.Unpin(pg)
		return b
	}
	b := img[1]
	_ = pool.Unpin(pg)
	return b
}

// loopRefix fixes, uses, and unpins each page per iteration; tracking
// ends at each new Fix into the loop variable.
func loopRefix(pool *buffer.Pool, pages []buffer.PageID) int {
	sum := 0
	for _, pg := range pages {
		img, err := pool.Fix(pg)
		if err != nil {
			return 0
		}
		sum += int(img[0])
		_ = pool.Unpin(pg)
	}
	return sum
}

// suppressedWithReason documents why the late use is safe.
func suppressedWithReason(pool *buffer.Pool, pg buffer.PageID) byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return 0
	}
	snapshot := img[0]
	_ = pool.Unpin(pg)
	//eoslint:ignore useafterunpin -- reads a copied header byte, not the frame; img retained for a later re-fix comparison in debug builds
	_ = img
	_ = snapshot
	return snapshot
}
