package eos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
)

// TestSoakCrashRecovery is the end-to-end torture test: random
// transactions over several objects, randomly committed (durably or
// log-force-only), aborted, interleaved with checkpoints and full
// crash-recovery cycles, verified against an in-memory model after
// every round.
func TestSoakCrashRecovery(t *testing.T) {
	seeds := []int64{2026, 7, 424242}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			soakRun(t, seed, Options{Threshold: 4})
		})
		t.Run(fmt.Sprintf("seed%d-rangelock", seed), func(t *testing.T) {
			soakRun(t, seed, Options{Threshold: 4, RangeLocking: true})
		})
	}
}

func soakRun(t *testing.T, seed int64, opts Options) {
	vol := disk.MustNewVolume(512, 8192, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(512, 8192, disk.DefaultCostModel())
	s, err := Format(vol, logVol, opts)
	if err != nil {
		t.Fatal(err)
	}

	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(seed))

	// Seed a few objects.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("soak-%d", i)
		o, err := s.Create(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		data := pat(i, 2000+i*500)
		if err := o.Append(data); err != nil {
			t.Fatal(err)
		}
		model[name] = data
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	verify := func(round int) {
		t.Helper()
		names := s.List()
		if len(names) != len(model) {
			t.Fatalf("round %d: %d objects, model has %d", round, len(names), len(model))
		}
		for name, want := range model {
			o, err := s.Open(name)
			if err != nil {
				t.Fatalf("round %d: open %q: %v", round, name, err)
			}
			if o.Size() != int64(len(want)) {
				t.Fatalf("round %d: %q size %d, want %d", round, name, o.Size(), len(want))
			}
			if len(want) == 0 {
				continue
			}
			got, err := o.Read(0, o.Size())
			if err != nil {
				t.Fatalf("round %d: read %q: %v", round, name, err)
			}
			if !bytes.Equal(got, want) {
				lo, hi := -1, -1
				for i := range want {
					if got[i] != want[i] {
						if lo == -1 {
							lo = i
						}
						hi = i
					}
				}
				t.Fatalf("round %d: %q content diverged in [%d,%d] of %d", round, name, lo, hi, len(want))
			}
		}
		if err := s.Check(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	names := func() []string {
		out := make([]string, 0, len(model))
		for n := range model {
			out = append(out, n)
		}
		// Deterministic order for the seeded RNG.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}

	for round := 0; round < 60; round++ {
		ns := names()
		tx, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		// Work on a private copy of the model; promote on commit.
		work := map[string][]byte{}
		for k, v := range model {
			work[k] = append([]byte{}, v...)
		}
		ops := 1 + rng.Intn(4)
		failed := false
		for op := 0; op < ops && !failed; op++ {
			name := ns[rng.Intn(len(ns))]
			cur := work[name]
			switch k := rng.Intn(10); {
			case k < 2: // append
				data := pat(round*100+op, 1+rng.Intn(1500))
				if testing.Verbose() {
					t.Logf("  r%d op%d append %s n=%d", round, op, name, len(data))
				}
				if err := tx.Append(name, data); err != nil {
					t.Fatalf("round %d append: %v", round, err)
				}
				work[name] = append(cur, data...)
			case k < 5 && len(cur) > 0: // insert
				data := pat(round*100+op, 1+rng.Intn(800))
				off := int64(rng.Intn(len(cur) + 1))
				if testing.Verbose() {
					t.Logf("  r%d op%d insert %s off=%d n=%d", round, op, name, off, len(data))
				}
				if err := tx.Insert(name, off, data); err != nil {
					t.Fatalf("round %d insert: %v", round, err)
				}
				work[name] = append(cur[:off:off], append(append([]byte{}, data...), cur[off:]...)...)
			case k < 7 && len(cur) > 1: // delete
				n := int64(1 + rng.Intn(len(cur)/2))
				off := int64(rng.Intn(len(cur) - int(n) + 1))
				if testing.Verbose() {
					t.Logf("  r%d op%d delete %s off=%d n=%d", round, op, name, off, n)
				}
				if err := tx.Delete(name, off, n); err != nil {
					t.Fatalf("round %d delete: %v", round, err)
				}
				work[name] = append(cur[:off:off], cur[off+n:]...)
			case k < 9 && len(cur) > 0: // replace
				n := 1 + rng.Intn(minInt(len(cur), 600))
				off := int64(rng.Intn(len(cur) - n + 1))
				data := pat(round*100+op, n)
				if testing.Verbose() {
					t.Logf("  r%d op%d replace %s off=%d n=%d", round, op, name, off, n)
				}
				if err := tx.Replace(name, off, data); err != nil {
					t.Fatalf("round %d replace: %v", round, err)
				}
				copy(work[name][off:], data)
			default: // create a new object inside the txn
				nn := fmt.Sprintf("soak-r%d-%d", round, op)
				if err := tx.Create(nn, 0); err != nil {
					t.Fatalf("round %d create: %v", round, err)
				}
				data := pat(round, 1+rng.Intn(900))
				if err := tx.Append(nn, data); err != nil {
					t.Fatalf("round %d append-new: %v", round, err)
				}
				work[nn] = data
			}
		}

		outcome := rng.Intn(5)
		if testing.Verbose() {
			t.Logf("round %d: ops=%d outcome=%d", round, ops, outcome)
		}
		switch outcome {
		case 0: // durable commit
			if err := tx.Commit(); err != nil {
				t.Fatalf("round %d commit: %v", round, err)
			}
			model = work
		case 1, 2: // fast commit
			if err := tx.CommitNoForce(); err != nil {
				t.Fatalf("round %d fast commit: %v", round, err)
			}
			model = work
		case 3: // abort
			if err := tx.Abort(); err != nil {
				t.Fatalf("round %d abort: %v", round, err)
			}
		case 4: // crash with the txn in flight
			vol.Crash()
			logVol.Crash()
			s, err = Open(vol, logVol, opts)
			if err != nil {
				t.Fatalf("round %d recovery: %v", round, err)
			}
		}

		// Occasionally checkpoint or crash between transactions.
		post := rng.Intn(8)
		if testing.Verbose() {
			t.Logf("round %d: post=%d", round, post)
		}
		switch post {
		case 0:
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("round %d checkpoint: %v", round, err)
			}
		case 1:
			vol.Crash()
			logVol.Crash()
			s, err = Open(vol, logVol, opts)
			if err != nil {
				t.Fatalf("round %d recovery: %v", round, err)
			}
		}

		verify(round)
	}

	// Final deep validation.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pattern computes the self-validating byte stored at offset off of
// stress object i: readers can check any byte against only (i, off),
// without synchronizing with the writers.
func pattern(i int, off int64) byte { return byte(int64(i)*31 + off) }

// TestConcurrentReadersOneWriterPerObject exercises the parallel read
// path end to end under the race detector: per object, one writer
// mutates (pattern-preserving appends, replaces, truncates, compacts)
// while several readers — random ReadAt callers and a sequential
// prefetching scanner — continuously validate content, and a background
// goroutine takes checkpoints and stats snapshots.  Every mutation
// preserves the byte = pattern(obj, offset) invariant, so any bytes a
// reader observes must validate regardless of interleaving.
func TestConcurrentReadersOneWriterPerObject(t *testing.T) {
	const (
		numObjects = 6
		readersPer = 2
		maxSize    = 96 << 10
		duration   = 300 // writer iterations per object
	)
	vol := disk.MustNewVolume(2048, 24576, disk.CostModel{})
	logVol := disk.MustNewVolume(2048, 1024, disk.CostModel{})
	s, err := Format(vol, logVol, Options{
		Threshold:          4,
		PoolShards:         8,
		ReadConcurrency:    4,
		SequentialPrefetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	objs := make([]*Object, numObjects)
	for i := range objs {
		o, err := s.Create(fmt.Sprintf("stress-%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 32<<10)
		for j := range data {
			data[j] = pattern(i, int64(j))
		}
		if err := o.Append(data); err != nil {
			t.Fatal(err)
		}
		objs[i] = o
	}

	var (
		writers  sync.WaitGroup
		readers  sync.WaitGroup
		stop     atomic.Bool
		fail     atomic.Value  // first error string
		progress atomic.Uint64 // writer/checkpointer heartbeat
	)
	report := func(format string, args ...any) {
		fail.CompareAndSwap(nil, fmt.Sprintf(format, args...))
		stop.Store(true)
	}

	// Deadlock watchdog: every writer iteration and checkpoint bumps
	// the heartbeat; once writers are done the counter goes quiet, so
	// a wedged reader during drain also trips it.  A flat heartbeat
	// for 30s means the run is deadlocked — the failure mode the
	// lockorder/deadlock analyzers exist to prevent — so fail fast
	// with a full goroutine dump instead of hanging until the go test
	// timeout obscures who holds what.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		var last uint64
		stale := 0
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-watchdogDone:
				return
			case <-ticker.C:
			}
			if cur := progress.Load(); cur != last {
				last, stale = cur, 0
				continue
			}
			if stale++; stale >= 30 {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				panic(fmt.Sprintf("soak watchdog: no worker progress for %ds, likely deadlock; goroutine dump:\n\n%s", stale, buf[:n]))
			}
		}
	}()

	// One writer per object.
	for i, o := range objs {
		writers.Add(1)
		go func(i int, o *Object) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			for it := 0; it < duration && !stop.Load(); it++ {
				progress.Add(1)
				size := o.Size()
				switch op := rng.Intn(10); {
				case op < 4 && size < maxSize: // append
					n := 1 + rng.Intn(8<<10)
					data := make([]byte, n)
					for j := range data {
						data[j] = pattern(i, size+int64(j))
					}
					if err := o.Append(data); err != nil {
						report("obj %d append: %v", i, err)
						return
					}
				case op < 7 && size > 0: // pattern-preserving replace
					off := int64(rng.Intn(int(size)))
					n := int64(1 + rng.Intn(4<<10))
					if off+n > size {
						n = size - off
					}
					data := make([]byte, n)
					for j := range data {
						data[j] = pattern(i, off+int64(j))
					}
					if err := o.Replace(off, data); err != nil {
						report("obj %d replace: %v", i, err)
						return
					}
				case op < 9 && size > 8<<10: // truncate
					if err := o.Truncate(size - int64(rng.Intn(4<<10))); err != nil {
						report("obj %d truncate: %v", i, err)
						return
					}
				default:
					if err := o.Compact(); err != nil {
						report("obj %d compact: %v", i, err)
						return
					}
				}
			}
		}(i, o)
	}

	// Random-access readers.
	for i, o := range objs {
		for r := 0; r < readersPer; r++ {
			readers.Add(1)
			go func(i, r int, o *Object) {
				defer readers.Done()
				rng := rand.New(rand.NewSource(int64(2000 + i*10 + r)))
				buf := make([]byte, 16<<10)
				for !stop.Load() {
					size := o.Size()
					if size == 0 {
						continue
					}
					off := int64(rng.Intn(int(size)))
					n := int64(1 + rng.Intn(len(buf)))
					if off+n > size {
						n = size - off
					}
					if err := o.ReadAt(buf[:n], off); err != nil {
						// The object may have shrunk between Size and
						// ReadAt; anything else is a real failure.
						if errors.Is(err, lob.ErrOutOfBounds) {
							continue
						}
						report("obj %d read: %v", i, err)
						return
					}
					for j := int64(0); j < n; j++ {
						if buf[j] != pattern(i, off+j) {
							report("obj %d: byte %d = %d, want %d", i, off+j, buf[j], pattern(i, off+j))
							return
						}
					}
				}
			}(i, r, o)
		}
	}

	// Sequential prefetching scanners.
	for i, o := range objs {
		readers.Add(1)
		go func(i int, o *Object) {
			defer readers.Done()
			r := o.NewReader()
			buf := make([]byte, 8<<10)
			var pos int64
			for !stop.Load() {
				n, err := r.Read(buf)
				if err != nil {
					// EOF restarts the scan; out-of-bounds means a
					// concurrent truncate beat us — rewind.
					if err == io.EOF || errors.Is(err, lob.ErrOutOfBounds) {
						if _, err := r.Seek(0, io.SeekStart); err != nil {
							report("obj %d seek: %v", i, err)
							return
						}
						pos = 0
						continue
					}
					report("obj %d scan: %v", i, err)
					return
				}
				for j := 0; j < n; j++ {
					if buf[j] != pattern(i, pos+int64(j)) {
						report("obj %d scan: byte %d = %d, want %d", i, pos+int64(j), buf[j], pattern(i, pos+int64(j)))
						return
					}
				}
				pos += int64(n)
			}
		}(i, o)
	}

	// Lock-free snapshot scanners: capture a committed root, scan it
	// fully, and validate every byte — all mutations preserve byte =
	// pattern(obj, offset), so the frozen view must validate too.
	for i := range objs {
		readers.Add(1)
		go func(i int) {
			defer readers.Done()
			name := fmt.Sprintf("stress-%d", i)
			for !stop.Load() {
				sn, err := s.OpenSnapshot(name)
				if err != nil {
					report("obj %d snapshot: %v", i, err)
					return
				}
				buf := make([]byte, 16<<10)
				size := sn.Size()
				for pos := int64(0); pos < size && !stop.Load(); {
					n, err := sn.ReadAt(buf, pos)
					if err != nil && err != io.EOF {
						report("obj %d snapshot read: %v", i, err)
						sn.Close()
						return
					}
					for j := 0; j < n; j++ {
						if buf[j] != pattern(i, pos+int64(j)) {
							report("obj %d snapshot: byte %d = %d, want %d", i, pos+int64(j), buf[j], pattern(i, pos+int64(j)))
							sn.Close()
							return
						}
					}
					pos += int64(n)
				}
				if err := sn.Close(); err != nil {
					report("obj %d snapshot close: %v", i, err)
					return
				}
			}
		}(i)
	}

	// Checkpoints and stats snapshots while everything runs.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for !stop.Load() {
			progress.Add(1)
			if err := s.Checkpoint(); err != nil {
				report("checkpoint: %v", err)
				return
			}
			st := s.Stats()
			if st.PoolHitRate < 0 || st.PoolHitRate > 1 {
				report("hit rate %v out of range", st.PoolHitRate)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Writers finishing ends the run: flag the readers down, drain
	// everyone, then verify structural integrity at quiescence.
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}
