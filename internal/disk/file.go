package disk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Two persistence shapes exist, and this file is the bridge between
// them:
//
//   - Volume *images* (SaveFile/LoadVolume): a flat snapshot of a
//     simulator volume's durable state, for the command-line tools.
//     Saving implies a ForceAll (a tool exiting cleanly is a clean
//     shutdown) and a loaded volume starts with everything durable.
//
//   - FileVolume's *native* format: a live page file the real backend
//     reads and writes in place (see filevol.go).
//
// MigrateToFile and MigrateToSim convert between the backends by
// copying pages through the Device interface, so a store formatted on
// the simulator can move to real files and back without the engine
// noticing.

const (
	imageMagic   = 0xE05F11E1
	imageVersion = 1
)

// SaveFile forces all writes and stores the volume image at path.  The
// image is written to a temporary sibling and renamed into place after
// an fsync, so an interrupted save can never leave a torn image where a
// good one (or nothing) used to be; the directory is fsynced afterwards
// so the rename itself survives a crash.
func (v *Volume) SaveFile(path string) error {
	if err := v.ForceAll(); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = func() error {
		w := bufio.NewWriter(f)
		var hdr [20]byte
		binary.BigEndian.PutUint32(hdr[0:], imageMagic)
		binary.BigEndian.PutUint32(hdr[4:], imageVersion)
		binary.BigEndian.PutUint32(hdr[8:], uint32(v.pageSize))
		binary.BigEndian.PutUint64(hdr[12:], uint64(v.numPages))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		v.mu.Lock()
		_, err := w.Write(v.durable)
		v.mu.Unlock()
		if err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// LoadVolume reads a volume image previously written by SaveFile.  The
// model parameterizes the simulated cost accounting of the new volume.
func LoadVolume(path string, model CostModel) (*Volume, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("disk: short volume image: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != imageMagic ||
		binary.BigEndian.Uint32(hdr[4:]) != imageVersion {
		return nil, fmt.Errorf("disk: %s is not a volume image", path)
	}
	pageSize := int(binary.BigEndian.Uint32(hdr[8:]))
	numPages := PageNum(binary.BigEndian.Uint64(hdr[12:]))
	v, err := NewVolume(pageSize, numPages, model)
	if err != nil {
		return nil, err
	}
	// The volume is not yet shared, but take mu anyway so the image
	// restore obeys the same discipline as every other page-data access.
	v.mu.Lock()
	_, err = io.ReadFull(r, v.durable)
	if err != nil {
		v.mu.Unlock()
		return nil, fmt.Errorf("disk: truncated volume image: %w", err)
	}
	copy(v.data, v.durable)
	v.mu.Unlock()
	return v, nil
}

// migrateChunk is how many pages CopyDevice moves per request — large
// enough to amortize per-request cost, small enough to bound the copy
// buffer.
const migrateChunk = 64

// CopyDevice copies every page of src into dst and forces the result.
// The geometries must match exactly.  Fault injection and tracing on
// either side apply as for any other I/O.
func CopyDevice(dst, src Device) error {
	if dst.PageSize() != src.PageSize() || dst.NumPages() != src.NumPages() {
		return fmt.Errorf("disk: migrate geometry mismatch: %d pages x %d bytes -> %d pages x %d bytes",
			src.NumPages(), src.PageSize(), dst.NumPages(), dst.PageSize())
	}
	pageSize := src.PageSize()
	total := src.NumPages()
	buf := make([]byte, migrateChunk*pageSize)
	for p := PageNum(0); p < total; p += migrateChunk {
		n := migrateChunk
		if rem := int(total - p); rem < n {
			n = rem
		}
		chunk := buf[:n*pageSize]
		if err := src.ReadPages(p, n, chunk); err != nil {
			return fmt.Errorf("disk: migrate read pages [%d,%d): %w", p, int64(p)+int64(n), err)
		}
		if err := dst.WritePages(p, n, chunk); err != nil {
			return fmt.Errorf("disk: migrate write pages [%d,%d): %w", p, int64(p)+int64(n), err)
		}
	}
	return dst.ForceAll()
}

// MigrateToFile exports src (any backend, typically the simulator)
// into a new file-backed volume at path with identical geometry.  On
// error the partially-written file is removed.
func MigrateToFile(src Device, path string, opts FileOptions) (*FileVolume, error) {
	fv, err := CreateFileVolume(path, src.PageSize(), src.NumPages(), opts)
	if err != nil {
		return nil, err
	}
	if err := CopyDevice(fv, src); err != nil {
		_ = fv.Close()
		_ = os.Remove(path)
		return nil, err
	}
	return fv, nil
}

// MigrateToSim imports src (any backend, typically a FileVolume) into
// a new simulator volume with identical geometry, costed by model.
// The copy itself is excluded from the new volume's statistics.
func MigrateToSim(src Device, model CostModel) (*Volume, error) {
	v, err := NewVolume(src.PageSize(), src.NumPages(), model)
	if err != nil {
		return nil, err
	}
	if err := CopyDevice(v, src); err != nil {
		return nil, err
	}
	v.ResetStats()
	return v, nil
}
