// Package buffer implements a page buffer pool over a disk volume.
//
// The EOS design routes small, hot pages — buddy space directories and
// large-object index nodes — through a conventional pin/unpin buffer pool,
// while leaf segments bypass the pool entirely and are transferred with
// direct multi-page I/O (the whole point of keeping a segment physically
// contiguous is to move it in one request).  The pool implements LRU
// replacement among unpinned frames and write-back of dirty frames.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"github.com/eosdb/eos/internal/disk"
)

// Common pool errors.
var (
	// ErrNoFrames is returned when every frame is pinned and a new page is
	// requested.
	ErrNoFrames = errors.New("buffer: all frames pinned")
	// ErrNotPinned is returned when Unpin is called on a page that has no
	// pinned frame.
	ErrNotPinned = errors.New("buffer: page not pinned")
)

// Stats reports pool effectiveness.
type Stats struct {
	Hits      int64 // fix requests satisfied from memory
	Misses    int64 // fix requests that read from disk
	Evictions int64 // frames recycled
	Flushes   int64 // dirty frames written back
}

type frame struct {
	page    disk.PageNum
	data    []byte
	pins    int
	dirty   bool
	lruElem *list.Element // non-nil iff pins == 0
}

// Pool is a fixed-capacity page cache.  It is safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	vol      *disk.Volume
	capacity int
	frames   map[disk.PageNum]*frame
	lru      *list.List // of disk.PageNum, front = most recently unpinned
	stats    Stats
}

// NewPool creates a pool of capacity frames over vol.
func NewPool(vol *disk.Volume, capacity int) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("buffer: invalid capacity %d", capacity)
	}
	return &Pool{
		vol:      vol,
		capacity: capacity,
		frames:   make(map[disk.PageNum]*frame, capacity),
		lru:      list.New(),
	}, nil
}

// MustNewPool is NewPool that panics on error.
func MustNewPool(vol *disk.Volume, capacity int) *Pool {
	p, err := NewPool(vol, capacity)
	if err != nil {
		panic(err)
	}
	return p
}

// Stats returns a snapshot of the pool statistics.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Fix pins page pg and returns its in-memory image.  The caller may read
// the returned slice, and may modify it if it marks the page dirty before
// unpinning.  The slice remains valid until Unpin.
func (p *Pool) Fix(pg disk.PageNum) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	if f, ok := p.frames[pg]; ok {
		p.stats.Hits++
		if f.lruElem != nil {
			p.lru.Remove(f.lruElem)
			f.lruElem = nil
		}
		f.pins++
		return f.data, nil
	}

	p.stats.Misses++
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	if err := p.vol.ReadPages(pg, 1, f.data); err != nil {
		p.releaseFrameLocked(f)
		return nil, err
	}
	f.page = pg
	f.pins = 1
	f.dirty = false
	p.frames[pg] = f
	return f.data, nil
}

// FixNew pins page pg without reading it from disk, returning a zeroed
// image.  Used when a page is about to be fully initialized (fresh index
// nodes, fresh directory pages); it saves the pointless read.
func (p *Pool) FixNew(pg disk.PageNum) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	if f, ok := p.frames[pg]; ok {
		// Already resident: treat as an ordinary hit but zero the image,
		// matching the "fresh page" contract.
		p.stats.Hits++
		if f.lruElem != nil {
			p.lru.Remove(f.lruElem)
			f.lruElem = nil
		}
		f.pins++
		for i := range f.data {
			f.data[i] = 0
		}
		f.dirty = true
		return f.data, nil
	}
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.page = pg
	f.pins = 1
	f.dirty = true
	p.frames[pg] = f
	return f.data, nil
}

// allocFrameLocked returns a free frame, evicting the LRU unpinned frame
// if the pool is full.  Caller holds p.mu.
func (p *Pool) allocFrameLocked() (*frame, error) {
	if len(p.frames) < p.capacity {
		return &frame{data: make([]byte, p.vol.PageSize())}, nil
	}
	back := p.lru.Back()
	if back == nil {
		return nil, ErrNoFrames
	}
	victimPage := back.Value.(disk.PageNum)
	victim := p.frames[victimPage]
	p.lru.Remove(back)
	victim.lruElem = nil
	if victim.dirty {
		if err := p.vol.WritePages(victim.page, 1, victim.data); err != nil {
			return nil, err
		}
		p.stats.Flushes++
	}
	delete(p.frames, victimPage)
	p.stats.Evictions++
	return victim, nil
}

// releaseFrameLocked discards a frame whose fill failed.
func (p *Pool) releaseFrameLocked(f *frame) {
	// The frame was never entered into p.frames; nothing to do, it is
	// garbage collected.  Kept as a function for symmetry and future
	// free-list reuse.
	_ = f
}

// MarkDirty records that the pinned image of pg has been modified and must
// be written back before eviction.
func (p *Pool) MarkDirty(pg disk.PageNum) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pg]
	if !ok || f.pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, pg)
	}
	f.dirty = true
	return nil
}

// Unpin releases one pin on pg.  When the pin count reaches zero the frame
// becomes eligible for eviction.
func (p *Pool) Unpin(pg disk.PageNum) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pg]
	if !ok || f.pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, pg)
	}
	f.pins--
	if f.pins == 0 {
		f.lruElem = p.lru.PushFront(f.page)
	}
	return nil
}

// FlushPage writes pg back to disk if it is resident and dirty.
func (p *Pool) FlushPage(pg disk.PageNum) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pg]
	if !ok || !f.dirty {
		return nil
	}
	if err := p.vol.WritePages(f.page, 1, f.data); err != nil {
		return err
	}
	f.dirty = false
	p.stats.Flushes++
	return nil
}

// FlushAll writes every dirty resident frame back to disk.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if !f.dirty {
			continue
		}
		if err := p.vol.WritePages(f.page, 1, f.data); err != nil {
			return err
		}
		f.dirty = false
		p.stats.Flushes++
	}
	return nil
}

// Discard drops pg from the pool without writing it back, regardless of
// dirty state.  Used when a shadowed page is abandoned.
func (p *Pool) Discard(pg disk.PageNum) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pg]
	if !ok {
		return
	}
	if f.lruElem != nil {
		p.lru.Remove(f.lruElem)
	}
	delete(p.frames, pg)
}

// DiscardAll drops every frame without writing anything back.  Used to
// model volatile state loss when simulating a crash.
func (p *Pool) DiscardAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[disk.PageNum]*frame, p.capacity)
	p.lru.Init()
}

// PinnedFrames reports how many frames are currently pinned — zero at
// any quiescent point; tests use it to detect pin leaks.
func (p *Pool) PinnedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// Resident reports whether pg currently occupies a frame.
func (p *Pool) Resident(pg disk.PageNum) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[pg]
	return ok
}
