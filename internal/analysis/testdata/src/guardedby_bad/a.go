// Package guardedby_bad holds eos:guardedby violations the analyzer
// must report.
package guardedby_bad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // eos:guardedby mu
}

// unlockedRead loads the guarded field with no lock at all.
func unlockedRead(c *counter) int {
	return c.n // want "read of counter.n without holding c.mu"
}

// unlockedWrite stores with no lock.
func unlockedWrite(c *counter) {
	c.n = 7 // want "write to counter.n without holding c.mu"
}

// releasedTooEarly unlocks before the last store.
func releasedTooEarly(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "write to counter.n without holding c.mu"
}

// lockedOnOneBranch joins a locked path with an unlocked one: the
// intersection no longer holds the mutex.
func lockedOnOneBranch(c *counter, cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n = 1 // want "write to counter.n without holding c.mu"
	if cond {
		c.mu.Unlock()
	}
}

type table struct {
	mu   sync.RWMutex
	rows map[string]int // eos:guardedby mu
}

// writeUnderReadLock holds only the shared latch across a store.
func writeUnderReadLock(t *table, k string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.rows[k] = 1 // want "write to table.rows with only a read lock on t.mu"
}

// wrongReceiver locks one table but touches another.
func wrongReceiver(a, b *table, k string) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return b.rows[k] // want "read of table.rows without holding b.mu"
}

// helperNeedsRequires accesses the field with the lock held by its
// caller but does not declare it.
func helperNeedsRequires(c *counter) int {
	return c.n // want "read of counter.n without holding c.mu"
}

type typoed struct {
	mu sync.Mutex
	// eos:guardedby mux /* want "eos:guardedby names \"mux\", which is not a field of typoed" */
	n int
}

// use keeps the structs and fields referenced.
func use(t *typoed) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// suppressedWithoutReason is ignored but gives no justification.
func suppressedWithoutReason(c *counter) int {
	//eoslint:ignore guardedby
	return c.n // want "eoslint:ignore guardedby without a '-- reason' clause"
}
