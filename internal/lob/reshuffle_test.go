package lob

import (
	"testing"
	"testing/quick"
)

// TestReshuffleConservation: reshuffling moves bytes between L, N, and R
// but never creates or destroys them, and the moves are consistent with
// the final counts.
func TestReshuffleConservation(t *testing.T) {
	const ps = 100
	f := func(l16, n16, r16 uint16, t8 uint8) bool {
		lc := int64(l16 % 2000)
		nc := int64(n16%2000) + 1 // N nonempty (callers skip Nc == 0)
		rc := int64(r16 % 2000)
		T := int(t8%16) + 1
		maxSegBytes := int64(128 * ps)
		res := reshuffle(lc, nc, rc, T, ps, maxSegBytes)
		if res.lc+res.nc+res.rc != lc+nc+rc {
			return false
		}
		if res.moveL != lc-res.lc || res.moveR != rc-res.rc {
			return false
		}
		if res.moveL < 0 || res.moveR < 0 || res.lc < 0 || res.rc < 0 {
			return false
		}
		// Surviving R loses only whole pages (its prefix pages are full),
		// so the remainder stays consistent with in-place page retention.
		if res.rc > 0 && res.moveR%int64(ps) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestReshuffleThresholdInvariant: after page reshuffling, no unsafe
// segment survives next to N unless merging would exceed the maximum
// segment size.
func TestReshuffleThresholdInvariant(t *testing.T) {
	const ps = 100
	f := func(l16, n16, r16 uint16, t8 uint8) bool {
		lc := int64(l16 % 3000)
		nc := int64(n16%3000) + 1
		rc := int64(r16 % 3000)
		T := int(t8%8) + 2
		maxSegBytes := int64(128 * ps)
		res := reshuffle(lc, nc, rc, T, ps, maxSegBytes)
		unsafe := func(c int64) bool { return c > 0 && pagesFor(c, ps) < T }
		// The threshold phase (3.1-3.3) runs before byte reshuffling
		// (3.4), which may still shave L's partial last page -- up to one
		// page -- without a re-check, exactly as the paper specifies.  So:
		//
		//   R unsafe => merging it was blocked by the max-segment cap
		//               (3.4 absorbs a one-page R fully or not at all,
		//               so it never newly makes R unsafe);
		//   L unsafe => the cap blocked it, or it is within one page of
		//               safe (a 3.4 byte move's worth);
		//   N unsafe => a neighbour has been drained or was absent
		//               (N only ever grows).
		if unsafe(res.rc) && res.rc+res.nc <= maxSegBytes {
			return false
		}
		if unsafe(res.lc) && res.lc+res.nc <= maxSegBytes &&
			pagesFor(res.lc, ps) < T-1 {
			return false
		}
		if unsafe(res.nc) && res.lc > 0 && res.rc > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestByteReshuffleEliminatesPartialPages reproduces the §4.3.1 step 3
// cases directly.
func TestByteReshuffleCases(t *testing.T) {
	const ps = 100
	cases := []struct {
		name       string
		lc, nc, rc int64
		wantMoveL  int64
		wantMoveR  int64
	}{
		// L's partial last page (30 bytes) fits N's last page (40 used):
		// eliminate it.
		{"absorb L tail", 230, 140, 0, 30, 0},
		// Single-page R (50 bytes) fits N's last page: absorb R.
		{"absorb single-page R", 0, 140, 50, 0, 50},
		// Both fit together (30 + 20 + 40 <= 100): move both.
		{"absorb both", 230, 140, 20, 30, 20},
		// Neither fits: balance L and N's last pages (90 vs 40 -> move 25).
		{"balance", 290, 140, 0, 25, 0},
		// N's last page exactly full: nothing moves.
		{"N full", 230, 200, 150, 0, 0},
	}
	for _, c := range cases {
		res := reshuffle(c.lc, c.nc, c.rc, 1, ps, 1<<20)
		if res.moveL != c.wantMoveL || res.moveR != c.wantMoveR {
			t.Errorf("%s: moves = (%d,%d), want (%d,%d)",
				c.name, res.moveL, res.moveR, c.wantMoveL, c.wantMoveR)
		}
	}
}

// TestPageReshuffleMergesUnsafeNeighbour reproduces §4.4 step 3.2: an
// unsafe neighbour merges into N entirely.
func TestPageReshuffleMergesUnsafeNeighbour(t *testing.T) {
	const ps = 100
	// L = 2 pages (unsafe at T=4), N = 1 page, R = 10 pages (safe).
	res := reshuffle(200, 100, 1000, 4, ps, 1<<20)
	if res.lc != 0 {
		t.Errorf("unsafe L not fully merged: lc = %d", res.lc)
	}
	if pagesFor(res.nc, ps) < 4 && res.rc > 0 {
		t.Errorf("N still unsafe (%d bytes) with R available", res.nc)
	}
}

// TestPageReshuffleFeedsUnsafeN reproduces §4.4 step 3.3: a safe
// neighbour donates pages until N is safe.
func TestPageReshuffleFeedsUnsafeN(t *testing.T) {
	const ps = 100
	// L and R both safe (6 pages each); N = 1 page, T = 4.
	res := reshuffle(600, 100, 600, 4, ps, 1<<20)
	if pagesFor(res.nc, ps) < 4 {
		t.Errorf("N not made safe: %d bytes", res.nc)
	}
	// The donor was one of the neighbours; totals conserved.
	if res.lc+res.nc+res.rc != 1300 {
		t.Error("bytes not conserved")
	}
}

// TestPageReshuffleRespectsMaxSegment reproduces §4.4 rule 3.1c: when
// merging would exceed the maximum segment, fall through to byte
// reshuffling.
func TestPageReshuffleRespectsMaxSegment(t *testing.T) {
	const ps = 100
	maxSegBytes := int64(10 * ps)
	// L unsafe (2 pages of a T=4 world) but N is at 9.5 pages: merging
	// 200 + 950 > 1000 overflows.
	res := reshuffle(200, 950, 0, 4, ps, maxSegBytes)
	if res.nc > maxSegBytes {
		t.Errorf("N exceeded max segment: %d", res.nc)
	}
	if res.lc == 0 {
		t.Error("L was merged despite the max segment cap")
	}
}

func TestLastPageBytes(t *testing.T) {
	cases := []struct {
		c    int64
		want int64
	}{{0, 0}, {1, 1}, {99, 99}, {100, 100}, {101, 1}, {250, 50}}
	for _, c := range cases {
		if got := lastPageBytes(c.c, 100); got != c.want {
			t.Errorf("lastPageBytes(%d) = %d, want %d", c.c, got, c.want)
		}
	}
}
