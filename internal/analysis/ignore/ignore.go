// Package ignore implements eoslint's diagnostic suppression comments.
//
// A comment of the form
//
//	//eoslint:ignore <name>[,<name>...] -- <reason>
//
// on the same line as a diagnostic, or on the line immediately above
// it, suppresses diagnostics from the named analyzers ("all" matches
// every analyzer).  The same directive inside a function's doc comment
// suppresses the named analyzers for the whole function body.  The
// reason is mandatory: an invariant exception with no stated
// justification is itself reported by each analyzer through Report.
package ignore

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const prefix = "eoslint:ignore"

// directive is one parsed //eoslint:ignore comment.
type directive struct {
	names  []string
	reason string
}

// span is a function body covered by a doc-comment directive.
type span struct {
	start, end token.Pos
	directive
}

// List holds the parsed suppression directives of one package.
type List struct {
	pass *analysis.Pass
	// byLine maps file:line to the directives ending on that line.
	byLine map[string][]directive
	// spans are function bodies suppressed by doc-comment directives.
	spans []span
}

// For parses every //eoslint:ignore directive in the files of pass.
func For(pass *analysis.Pass) *List {
	l := &List{pass: pass, byLine: make(map[string][]directive)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.End())
				key := lineKey(pos.Filename, pos.Line)
				l.byLine[key] = append(l.byLine[key], d)
			}
		}
		// A directive in a function's doc comment covers its whole body.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if d, ok := parse(c.Text); ok {
					l.spans = append(l.spans, span{start: fn.Body.Pos(), end: fn.Body.End(), directive: d})
				}
			}
		}
	}
	return l
}

// parse extracts a directive from one comment's text.
func parse(text string) (directive, bool) {
	text = strings.TrimPrefix(text, "//")
	if !strings.HasPrefix(text, prefix) {
		return directive{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	var reason string
	if i := strings.Index(rest, "--"); i >= 0 {
		reason = strings.TrimSpace(rest[i+2:])
		rest = strings.TrimSpace(rest[:i])
	}
	names := strings.Split(rest, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return directive{names: names, reason: reason}, true
}

func lineKey(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// match returns the directive suppressing analyzer name at pos, if any.
func (l *List) match(pos token.Pos, name string) (directive, bool) {
	p := l.pass.Fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range l.byLine[lineKey(p.Filename, line)] {
			for _, n := range d.names {
				if n == name || n == "all" {
					return d, true
				}
			}
		}
	}
	for _, s := range l.spans {
		if pos < s.start || pos > s.end {
			continue
		}
		for _, n := range s.names {
			if n == name || n == "all" {
				return s.directive, true
			}
		}
	}
	return directive{}, false
}

// Report emits a diagnostic for the analyzer of pass at pos unless an
// //eoslint:ignore directive covers it.  A covering directive with no
// "-- reason" clause is reported instead: exceptions to a storage
// invariant must say why they are safe.
func (l *List) Report(pos token.Pos, format string, args ...interface{}) {
	d, ok := l.match(pos, l.pass.Analyzer.Name)
	if !ok {
		l.pass.Reportf(pos, format, args...)
		return
	}
	if d.reason == "" {
		l.pass.Reportf(pos, "eoslint:ignore %s without a '-- reason' clause", l.pass.Analyzer.Name)
	}
}
