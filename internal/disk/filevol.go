package disk

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
	"unsafe"
)

// FileVolume is the real-I/O Device backend: pages live in an ordinary
// file and every request is a positional system call — pread/pwrite at
// page offsets (os.File.ReadAt/WriteAt), a vectored pwritev for
// WriteRun on Linux (with a portable sequential-write fallback), and
// fdatasync for Force.  Stats mirror the simulator's accounting, except
// that Micros records *measured* wall-clock time instead of modelled
// time, and Syncs counts the fdatasync calls the durability boundary
// actually issued.
//
// The file starts with one page-sized header block (geometry and
// flags); data page p lives at byte offset (p+1)*PageSize, so every
// transfer is page-aligned — the alignment O_DIRECT requires.
//
// Crash simulation: the recovery tests need the simulator's "unforced
// writes are lost" semantics on this backend too.  With
// FileOptions.CrashShadow enabled, the volume snapshots the pre-image
// of every page the first time it is written after a force; Crash
// writes those pre-images back, so the file reverts exactly to its
// last forced state.  The shadow costs one pread per first-touch and
// is meant for tests — benchmarks leave it off.
//
// A FileVolume is safe for concurrent use: reads and writes are
// positional (the kernel serializes overlapping extents), the shadow
// map sits under mu, and the accounting under accMu.  Neither lock is
// ever held across a data transfer, so concurrent requests overlap in
// the kernel.
type FileVolume struct {
	f        *os.File
	path     string
	pageSize int
	numPages PageNum
	direct   bool

	// mu guards the crash-shadow map and the closed flag.  Rank 62 in
	// the lattice: taken after any engine latch, before accMu.
	mu       sync.Mutex
	shadowOn bool
	shadow   map[PageNum][]byte // eos:guardedby mu -- pre-images of unforced pages
	closed   bool               // eos:guardedby mu

	// accMu guards the accounting and fault state, exactly like the
	// simulator's.  Held only for counter updates, never across I/O.
	accMu   sync.Mutex
	stats   Stats   // eos:guardedby accMu
	headPos PageNum // eos:guardedby accMu -- page following the last transfer; -1 unknown

	faultAfter int64 // eos:guardedby accMu
	faultErr   error // eos:guardedby accMu
	// tornPages >= 0 arms torn-write injection: the next WriteRun
	// writes only its first tornPages pages, then fails with tornErr —
	// a partial writev, as a real crash mid-vector would leave it.
	tornPages int64 // eos:guardedby accMu
	tornErr   error // eos:guardedby accMu

	tracer func(TraceEvent) // eos:guardedby accMu
}

// FileOptions configures a FileVolume.
type FileOptions struct {
	// Direct opens the file with O_DIRECT, bypassing the OS page cache.
	// Transfers then go through a bounce buffer aligned to
	// directAlign; the page size must be a multiple of 512.  Not every
	// filesystem supports it — Create/Open fail cleanly where the
	// kernel refuses.  Unsupported off Linux.
	Direct bool
	// CrashShadow tracks pre-images of unforced pages so Crash() can
	// revert them (the simulator's durability semantics).  Costs one
	// pread the first time a page is written after a force; enable for
	// crash-recovery tests, leave off for benchmarks.
	CrashShadow bool
}

const (
	fileMagic   = 0xE05D15C1
	fileVersion = 1
	// directAlign is the bounce-buffer alignment used for O_DIRECT:
	// 4096 satisfies every current logical block size.
	directAlign = 4096
	// flagDirectFormatted records in the header that the volume was
	// created for direct I/O (informational).
	flagDirectFormatted = 1 << 0
)

// CreateFileVolume creates (or truncates) a file-backed volume at path
// with the given geometry.  The file is sized up front — (numPages+1)
// pages — so writes never extend it and pwritev needs no append
// handling; unwritten pages read back as zeroes through the hole.
func CreateFileVolume(path string, pageSize int, numPages PageNum, opts FileOptions) (*FileVolume, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("disk: invalid page size %d", pageSize)
	}
	if numPages <= 0 {
		return nil, fmt.Errorf("disk: invalid volume size %d pages", numPages)
	}
	if opts.Direct && pageSize%512 != 0 {
		return nil, fmt.Errorf("disk: O_DIRECT requires a page size that is a multiple of 512, got %d", pageSize)
	}
	f, err := openFileVolume(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, opts.Direct)
	if err != nil {
		return nil, err
	}
	v := newFileVolume(f, path, pageSize, numPages, opts)
	if err := f.Truncate((int64(numPages) + 1) * int64(pageSize)); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("disk: presize %s: %w", path, err)
	}
	hdr := v.buffer(pageSize)
	binary.BigEndian.PutUint32(hdr[0:], fileMagic)
	binary.BigEndian.PutUint32(hdr[4:], fileVersion)
	binary.BigEndian.PutUint32(hdr[8:], uint32(pageSize))
	binary.BigEndian.PutUint64(hdr[12:], uint64(numPages))
	var flags uint32
	if opts.Direct {
		flags |= flagDirectFormatted
	}
	binary.BigEndian.PutUint32(hdr[20:], flags)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("disk: write header %s: %w", path, err)
	}
	// Full sync (not fdatasync): the header and the file size are
	// metadata a reopen depends on.
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("disk: sync %s: %w", path, err)
	}
	// The file's own durability means nothing if its directory entry is
	// lost: a crash right after create would roll the directory back and
	// the volume — log file included — simply would not exist.
	if err := SyncDir(filepath.Dir(path)); err != nil {
		_ = f.Close()
		return nil, err
	}
	return v, nil
}

// SyncDir fsyncs a directory, making the entries it holds (file
// creations and renames) durable.  POSIX durability is two-level:
// fsync(file) persists content and inode, but the name→inode mapping
// lives in the directory, which needs its own fsync.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("disk: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("disk: sync dir %s: %w", dir, err)
	}
	return nil
}

// OpenFileVolume opens an existing file-backed volume, reading its
// geometry from the header block.
func OpenFileVolume(path string, opts FileOptions) (*FileVolume, error) {
	f, err := openFileVolume(path, os.O_RDWR, opts.Direct)
	if err != nil {
		return nil, err
	}
	// The geometry is unknown until the header is read; a 4096-byte
	// aligned probe satisfies O_DIRECT for every supported page size
	// of at least 512 bytes (smaller direct pages are rejected at
	// create time).
	probe := alignedBlock(directAlign)
	if n, err := f.ReadAt(probe, 0); err != nil && n < 24 {
		_ = f.Close()
		return nil, fmt.Errorf("disk: %s: short volume header: %w", path, err)
	}
	if binary.BigEndian.Uint32(probe[0:]) != fileMagic ||
		binary.BigEndian.Uint32(probe[4:]) != fileVersion {
		_ = f.Close()
		return nil, fmt.Errorf("disk: %s is not a file volume", path)
	}
	pageSize := int(binary.BigEndian.Uint32(probe[8:]))
	numPages := PageNum(binary.BigEndian.Uint64(probe[12:]))
	if pageSize <= 0 || numPages <= 0 {
		_ = f.Close()
		return nil, fmt.Errorf("disk: %s: corrupt geometry %d pages x %d bytes", path, numPages, pageSize)
	}
	if opts.Direct && pageSize%512 != 0 {
		_ = f.Close()
		return nil, fmt.Errorf("disk: O_DIRECT requires a page size that is a multiple of 512, got %d", pageSize)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if want := (int64(numPages) + 1) * int64(pageSize); st.Size() < want {
		_ = f.Close()
		return nil, fmt.Errorf("disk: %s truncated: %d bytes, want %d", path, st.Size(), want)
	}
	return newFileVolume(f, path, pageSize, numPages, opts), nil
}

func newFileVolume(f *os.File, path string, pageSize int, numPages PageNum, opts FileOptions) *FileVolume {
	var shadow map[PageNum][]byte
	if opts.CrashShadow {
		shadow = make(map[PageNum][]byte)
	}
	return &FileVolume{
		f:         f,
		path:      path,
		pageSize:  pageSize,
		numPages:  numPages,
		direct:    opts.Direct,
		shadowOn:  opts.CrashShadow,
		shadow:    shadow,
		headPos:   -1,
		tornPages: -1,
	}
}

// Path reports the backing file's path.
func (v *FileVolume) Path() string { return v.path }

// PageSize reports the volume's page size in bytes.
func (v *FileVolume) PageSize() int { return v.pageSize }

// NumPages reports the volume's capacity in pages.
func (v *FileVolume) NumPages() PageNum { return v.numPages }

// DirectIO reports whether the volume bypasses the OS page cache.
func (v *FileVolume) DirectIO() bool { return v.direct }

// Stats returns a snapshot of the accumulated I/O statistics.
func (v *FileVolume) Stats() Stats {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	return v.stats
}

// ResetStats zeroes the statistics counters and forgets the head
// position so the next request is charged a seek.
func (v *FileVolume) ResetStats() {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.stats = Stats{}
	v.headPos = -1
}

// SetTracer installs fn to observe every read and write; nil disables
// tracing.  Invoked with the accounting lock held; it must be fast and
// must not call back into the volume.
func (v *FileVolume) SetTracer(fn func(TraceEvent)) {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.tracer = fn
}

// FailAfter arms fault injection: after n more successful requests,
// every read and write fails with err until ClearFault.
func (v *FileVolume) FailAfter(n int64, err error) {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.faultAfter = n
	v.faultErr = err
}

// ClearFault disarms fault injection (both FailAfter and FailWriteRun).
func (v *FileVolume) ClearFault() {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.faultErr = nil
	v.tornPages = -1
	v.tornErr = nil
}

// FailWriteRun arms torn-write injection: the next WriteRun writes only
// its first pages pages to the file, then fails with err — the state a
// crash mid-pwritev leaves behind.  Single-page writes are unaffected.
// Disarmed by ClearFault or by firing once.
func (v *FileVolume) FailWriteRun(pages int, err error) {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.tornPages = int64(pages)
	v.tornErr = err
}

// off returns the byte offset of page p (the header occupies the first
// page-sized block).
func (v *FileVolume) off(p PageNum) int64 {
	return (int64(p) + 1) * int64(v.pageSize)
}

func (v *FileVolume) checkRange(start PageNum, n int) error {
	if n < 0 || start < 0 || PageNum(int64(start)+int64(n)) > v.numPages {
		return fmt.Errorf("%w: pages [%d,%d) of %d", ErrOutOfRange, start, int64(start)+int64(n), v.numPages)
	}
	return nil
}

// begin accounts one request: fault budget, counters, seek detection,
// tracing.  Wall-clock time is added separately by endTimed.
func (v *FileVolume) begin(start PageNum, n int, write, run bool) error {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	if v.faultErr != nil {
		if v.faultAfter > 0 {
			v.faultAfter--
		} else {
			return v.faultErr
		}
	}
	if write {
		v.stats.Writes++
		v.stats.PagesWritten += int64(n)
		if run {
			v.stats.RunWrites++
			v.stats.CoalescedPages += int64(n - 1)
		}
	} else {
		v.stats.Reads++
		v.stats.PagesRead += int64(n)
	}
	seek := v.headPos != start
	if seek {
		v.stats.Seeks++
	}
	v.headPos = start + PageNum(n)
	if v.tracer != nil {
		v.tracer(TraceEvent{Write: write, Start: start, Pages: n, Seek: seek})
	}
	return nil
}

// endTimed adds the measured duration of one request to the stats.
func (v *FileVolume) endTimed(began time.Time) {
	micros := time.Since(began).Microseconds()
	v.accMu.Lock()
	v.stats.Micros += micros
	v.accMu.Unlock()
}

// takeTorn consumes an armed torn-write injection, if any.
func (v *FileVolume) takeTorn() (int, error, bool) {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	if v.tornPages < 0 {
		return 0, nil, false
	}
	k, err := int(v.tornPages), v.tornErr
	v.tornPages, v.tornErr = -1, nil
	return k, err, true
}

// buffer returns a transfer buffer of n bytes: page-cache mode uses an
// ordinary allocation, direct mode an alignedBlock.
func (v *FileVolume) buffer(n int) []byte {
	if v.direct {
		return alignedBlock(n)
	}
	return make([]byte, n)
}

// alignedBlock allocates n bytes whose base address is directAlign-
// aligned, as O_DIRECT transfers require.
func alignedBlock(n int) []byte {
	raw := make([]byte, n+directAlign)
	off := int(directAlign-uintptr(unsafe.Pointer(&raw[0]))%directAlign) % directAlign
	return raw[off : off+n : off+n]
}

// ReadPages reads n physically contiguous pages starting at page start
// into buf (exactly n*PageSize bytes) with one pread.
func (v *FileVolume) ReadPages(start PageNum, n int, buf []byte) error {
	if len(buf) != n*v.pageSize {
		return fmt.Errorf("%w: got %d bytes for %d pages", ErrBadLength, len(buf), n)
	}
	if err := v.checkRange(start, n); err != nil {
		return err
	}
	if err := v.begin(start, n, false, false); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	began := time.Now()
	defer v.endTimed(began)
	if v.direct {
		bounce := alignedBlock(len(buf))
		if _, err := v.f.ReadAt(bounce, v.off(start)); err != nil {
			return fmt.Errorf("disk: pread %s: %w", v.path, err)
		}
		copy(buf, bounce)
		return nil
	}
	if _, err := v.f.ReadAt(buf, v.off(start)); err != nil {
		return fmt.Errorf("disk: pread %s: %w", v.path, err)
	}
	return nil
}

// Read allocates and returns the content of n contiguous pages.
func (v *FileVolume) Read(start PageNum, n int) ([]byte, error) {
	buf := make([]byte, n*v.pageSize)
	if err := v.ReadPages(start, n, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// shadowSave snapshots the pre-image of every not-yet-shadowed page in
// [start, start+n) so Crash can revert the write about to happen.  The
// pread bypasses accounting: it is simulation bookkeeping, not workload
// I/O.
func (v *FileVolume) shadowSave(start PageNum, n int) error {
	if !v.shadowOn {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := 0; i < n; i++ {
		p := start + PageNum(i)
		if _, ok := v.shadow[p]; ok {
			continue
		}
		pre := v.buffer(v.pageSize)
		if _, err := v.f.ReadAt(pre, v.off(p)); err != nil {
			return fmt.Errorf("disk: shadow pread %s: %w", v.path, err)
		}
		v.shadow[p] = pre
	}
	return nil
}

// WritePages writes n physically contiguous pages starting at page
// start with one pwrite.  The write is volatile until a Force covers
// it.
func (v *FileVolume) WritePages(start PageNum, n int, buf []byte) error {
	if len(buf) != n*v.pageSize {
		return fmt.Errorf("%w: got %d bytes for %d pages", ErrBadLength, len(buf), n)
	}
	if err := v.checkRange(start, n); err != nil {
		return err
	}
	if err := v.begin(start, n, true, false); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if err := v.shadowSave(start, n); err != nil {
		return err
	}
	began := time.Now()
	defer v.endTimed(began)
	if v.direct {
		bounce := alignedBlock(len(buf))
		copy(bounce, buf)
		buf = bounce
	}
	if _, err := v.f.WriteAt(buf, v.off(start)); err != nil {
		return fmt.Errorf("disk: pwrite %s: %w", v.path, err)
	}
	return nil
}

// WriteRun gather-writes len(pages) physically contiguous pages
// starting at page start in a single vectored request (pwritev on
// Linux; a sequential per-page fallback elsewhere).  Each element must
// be exactly one page.
func (v *FileVolume) WriteRun(start PageNum, pages [][]byte) error {
	n := len(pages)
	for i, p := range pages {
		if len(p) != v.pageSize {
			return fmt.Errorf("%w: run page %d has %d bytes, want %d", ErrBadLength, i, len(p), v.pageSize)
		}
	}
	if err := v.checkRange(start, n); err != nil {
		return err
	}
	if err := v.begin(start, n, true, true); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if err := v.shadowSave(start, n); err != nil {
		return err
	}
	if k, terr, armed := v.takeTorn(); armed {
		if k > n {
			k = n
		}
		if k > 0 {
			if err := v.writeRunPages(start, pages[:k]); err != nil {
				return err
			}
		}
		return terr
	}
	began := time.Now()
	defer v.endTimed(began)
	return v.writeRunPages(start, pages)
}

// writeRunPages performs the physical run write.
func (v *FileVolume) writeRunPages(start PageNum, pages [][]byte) error {
	if v.direct {
		// Direct mode coalesces the run into one aligned buffer and a
		// single pwrite: the copy is the price of alignment, and a
		// lone contiguous transfer is what O_DIRECT rewards.
		bounce := alignedBlock(len(pages) * v.pageSize)
		for i, p := range pages {
			copy(bounce[i*v.pageSize:], p)
		}
		if _, err := v.f.WriteAt(bounce, v.off(start)); err != nil {
			return fmt.Errorf("disk: pwrite %s: %w", v.path, err)
		}
		return nil
	}
	if err := pwritevFull(v.f, pages, v.off(start)); err != nil {
		return fmt.Errorf("disk: pwritev %s: %w", v.path, err)
	}
	return nil
}

// Force makes the current contents of n pages starting at start
// durable via fdatasync.  fdatasync has no byte-range form, so the
// whole file's data is synced; the range still bounds which shadow
// pre-images are dropped, preserving the simulator's crash semantics
// for the pages outside it.
func (v *FileVolume) Force(start PageNum, n int) error {
	if err := v.checkRange(start, n); err != nil {
		return err
	}
	v.mu.Lock()
	if v.shadowOn {
		for i := 0; i < n; i++ {
			delete(v.shadow, start+PageNum(i))
		}
	}
	v.mu.Unlock()
	return v.sync()
}

// ForceAll makes every written page durable.
func (v *FileVolume) ForceAll() error {
	v.mu.Lock()
	if v.shadowOn {
		v.shadow = make(map[PageNum][]byte)
	}
	v.mu.Unlock()
	return v.sync()
}

// ForceAllExcept makes every written page durable except those in
// skip, which stay volatile.  Physically fdatasync makes everything
// durable — "volatile" here means the skipped pages' shadow pre-images
// are retained, so a simulated Crash still reverts them; that is
// exactly the contract the transaction layer needs (one transaction's
// commit must not make another's in-place writes survive a crash).
func (v *FileVolume) ForceAllExcept(skip map[PageNum]bool) error {
	v.mu.Lock()
	if v.shadowOn {
		for p := range v.shadow {
			if !skip[p] {
				delete(v.shadow, p)
			}
		}
	}
	v.mu.Unlock()
	return v.sync()
}

// sync issues the backend's durability barrier (fdatasync on Linux)
// and counts it.
func (v *FileVolume) sync() error {
	began := time.Now()
	err := fdatasyncFile(v.f)
	v.accMu.Lock()
	v.stats.Syncs++
	v.stats.Micros += time.Since(began).Microseconds()
	v.accMu.Unlock()
	if err != nil {
		return fmt.Errorf("disk: fdatasync %s: %w", v.path, err)
	}
	return nil
}

// DirtyPages reports how many written pages have not been forced.
// Zero when crash shadowing is disabled (nothing is tracked).
func (v *FileVolume) DirtyPages() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.shadow)
}

// Crash simulates a power failure: every unforced page reverts to its
// shadowed pre-image and the statistics reset.  Requires CrashShadow;
// without it the file's current contents simply stand (a crash between
// syncs on a real device may preserve them — or not).
func (v *FileVolume) Crash() error {
	v.mu.Lock()
	for p, pre := range v.shadow {
		if _, err := v.f.WriteAt(pre, v.off(p)); err != nil {
			v.mu.Unlock()
			return fmt.Errorf("disk: crash revert %s: %w", v.path, err)
		}
	}
	if v.shadowOn {
		v.shadow = make(map[PageNum][]byte)
	}
	v.mu.Unlock()
	if err := v.sync(); err != nil {
		return err
	}
	v.accMu.Lock()
	v.stats = Stats{}
	v.headPos = -1
	v.accMu.Unlock()
	return nil
}

// Close releases the file handle.  Idempotent.
func (v *FileVolume) Close() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil
	}
	v.closed = true
	v.mu.Unlock()
	return v.f.Close()
}
