package analysis_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis"
	"github.com/eosdb/eos/internal/analysis/analyzertest"
)

// badFixtures maps every analyzer to the bad-fixture packages that must
// keep tripping it.  scripts/lint.sh --fixtures runs this test as its
// smoke step: the per-analyzer tests already pin exact positions and
// messages via want comments, but those comments travel with the
// fixtures — a pass neutered together with its fixtures would still be
// green there.  Requiring a nonzero count per bad fixture from the
// registry's own analyzer instances catches that failure mode, and
// catches a bad fixture dropped from this table by construction (every
// registry analyzer must appear).
var badFixtures = map[string][]string{
	"pairs": {
		"pairs_pin_bad", "pairs_mutex_bad", "pairs_txn_bad",
		"pairs_alloc_bad", "pairs_epoch_bad", "pairs_iosubmit_bad",
		"pairs_filevol_bad",
	},
	"lockorder":     {"lockorder_bad"},
	"atomicfield":   {"atomicfield_bad"},
	"walfirst":      {"walfirst_bad"},
	"errwrap":       {"errwrap_bad"},
	"useafterunpin": {"useafterunpin_bad"},
	"guardedby":     {"guardedby_bad"},
	"deadlock":      {"deadlock_bad"},
	"walfirstip":    {"walfirstip_bad"},
	"leaksip":       {"leaksip_bad"},
	"forcedom":      {"forcedom_bad"},
	"racecheck":     {"racecheck_bad"},
	"unusedignore":  {"unusedignore_bad"},
}

// TestBadFixturesProduceDiagnostics asserts every registered analyzer
// still finds at least one violation in each of its bad fixtures.
func TestBadFixturesProduceDiagnostics(t *testing.T) {
	for _, a := range analysis.Analyzers() {
		pkgs, ok := badFixtures[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no bad-fixture entry; add it to badFixtures", a.Name)
			continue
		}
		for _, pkg := range pkgs {
			pkg := pkg
			t.Run(a.Name+"/"+pkg, func(t *testing.T) {
				if n := analyzertest.Count(t, "testdata", a, pkg); n == 0 {
					t.Errorf("%s produced 0 diagnostics on %s; the pass may be neutered", a.Name, pkg)
				}
			})
		}
	}
	for name := range badFixtures {
		found := false
		for _, a := range analysis.Analyzers() {
			if a.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("badFixtures names %q, which is not a registered analyzer", name)
		}
	}
}
