package disk

// Device is the volume abstraction the rest of the engine is written
// against: a linear array of fixed-size pages with contiguous multi-page
// transfers, vectored run writes, an explicit durability boundary
// (Force*), I/O accounting, and the fault/crash hooks the recovery tests
// drive.  Two implementations exist:
//
//   - Volume, the simulator: pages live in memory, every request is
//     charged against a parametric seek/transfer cost model, and crash
//     semantics (which writes survive) are modelled exactly.  It is the
//     deterministic substrate for the paper-reproduction experiments.
//
//   - FileVolume, the real backend: pages live in an ordinary file,
//     reads and writes are positional pread/pwrite at page offsets,
//     WriteRun is a vectored pwritev, and Force is fdatasync.  Stats
//     record measured wall-clock time instead of modelled time, so the
//     same benchmarks produce hardware-grounded numbers.
//
// Both implementations are safe for concurrent use.  Code written
// against Device (the buffer pool, the WAL, the buddy allocator, the
// LOB manager, the store) runs unmodified on either backend.
type Device interface {
	// PageSize reports the page size in bytes.
	PageSize() int
	// NumPages reports the capacity in pages.
	NumPages() PageNum

	// ReadPages reads n physically contiguous pages starting at start
	// into buf, which must be exactly n*PageSize bytes.
	ReadPages(start PageNum, n int, buf []byte) error
	// Read allocates and returns the content of n contiguous pages.
	Read(start PageNum, n int) ([]byte, error)
	// WritePages writes n physically contiguous pages starting at
	// start.  The write is volatile until a Force covers it.
	WritePages(start PageNum, n int, buf []byte) error
	// WriteRun gather-writes len(pages) contiguous pages starting at
	// start in one request; each element must be exactly one page.
	WriteRun(start PageNum, pages [][]byte) error

	// Force makes the current contents of n pages starting at start
	// durable: they survive a crash.
	Force(start PageNum, n int) error
	// ForceAll makes every written page durable.
	ForceAll() error
	// ForceAllExcept makes every written page durable except those in
	// skip, which stay volatile (see the transaction layer for why).
	ForceAllExcept(skip map[PageNum]bool) error
	// DirtyPages reports how many written pages have not been forced.
	DirtyPages() int

	// Stats returns a snapshot of the accumulated I/O statistics.
	Stats() Stats
	// ResetStats zeroes the counters and forgets the head position.
	ResetStats()
	// SetTracer installs fn to observe every request; nil disables.
	SetTracer(fn func(TraceEvent))

	// FailAfter arms fault injection: after n more successful requests
	// every request fails with err until ClearFault.
	FailAfter(n int64, err error)
	// ClearFault disarms fault injection.
	ClearFault()
	// Crash simulates a power failure: every page reverts to its last
	// forced image (when the backend tracks one) and volatile state is
	// lost.  Statistics reset, as a restarted system observes a cold
	// device.
	Crash() error

	// Close releases the backend's resources (a no-op for the
	// simulator).  The device must not be used afterwards.
	Close() error
}

// Compile-time interface checks: both backends implement Device.
var (
	_ Device = (*Volume)(nil)
	_ Device = (*FileVolume)(nil)
)
