// Package wal implements the write-ahead log for EOS recovery (§4.5).
//
// The paper's recovery design pairs two mechanisms: replace operations are
// logged (they modify leaf pages in place without touching index nodes),
// while insert, delete, and append shadow the index pages they modify and
// never overwrite existing leaf pages.  Because no control information is
// kept on leaf segments, "the log record of all updates must contain the
// operation that caused the update as well as its parameters, and the log
// sequence number of the update must be placed in the root page of the
// object to ensure that the update can be undone or redone idempotently."
//
// The log lives on its own volume (a separate log disk, as is
// conventional) and is an append-only sequence of length-prefixed,
// checksummed records.  LSNs are monotonic across the store's whole
// life: each log epoch (the records between two truncations) has a
// base, and a record's LSN is base + its byte offset + 1.  Truncation
// advances the base past every LSN the old epoch issued, so the LSN
// guard in object roots stays valid without ever rewinding — and a
// recovery scan can recognize (and ignore) records from a stale epoch
// whose zeroing write was lost in a crash, because their LSNs do not
// match the base the store header says is current.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"github.com/eosdb/eos/internal/disk"
)

// RecType identifies a log record.
type RecType uint8

// Log record types: transaction control plus one per logical operation.
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecCreate   // object created
	RecDestroy  // object destroyed
	RecAppend   // Data appended at the end
	RecInsert   // Data inserted at Off
	RecDelete   // N bytes deleted at Off; OldData holds them for undo
	RecReplace  // Data written at Off; OldData holds the previous bytes
	RecTruncate // object truncated to Off; OldData holds the cut tail
	RecCheckpoint
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "begin"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecCreate:
		return "create"
	case RecDestroy:
		return "destroy"
	case RecAppend:
		return "append"
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecReplace:
		return "replace"
	case RecTruncate:
		return "truncate"
	case RecCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("rectype(%d)", uint8(t))
}

// Extent is a physical byte range on the data volume: Len bytes starting
// Off bytes into page Page.  Replace records carry the extents they
// overwrote so that recovery can physically undo a loser transaction's
// in-place writes — the other operations never overwrite live pages and
// need no undo (§4.5).
type Extent struct {
	Page int64
	Off  int32
	Len  int32
}

// Record is one log entry.  Data and OldData carry the operation's bytes:
// Data is what redo needs, OldData what undo needs.
type Record struct {
	LSN     uint64 // assigned by Append; byte offset in the log
	Txn     uint64
	Type    RecType
	Object  uint64
	Off     int64
	N       int64
	Data    []byte
	OldData []byte
	Extents []Extent // physical locations of OldData (replace only)
}

// Errors returned by the log.
var (
	// ErrLogFull is returned when the log volume has no room.
	ErrLogFull = errors.New("wal: log volume full")
	// ErrCorruptRecord is returned for torn or damaged records during
	// scans; scanning stops at the first such record.
	ErrCorruptRecord = errors.New("wal: corrupt record")
)

const (
	recHeaderSize  = 4 + 4 + 8 + 8 + 1 + 8 + 8 + 8 + 4 + 4 + 2 // crc,len,lsn,txn,type,obj,off,n,dlen,olen,extents
	extentEncBytes = 8 + 4 + 4
)

// Stats counts log activity.  Snapshot with Log.Stats; the group-commit
// counters make the batching observable: LeaderForces is the number of
// physical flush+force batches, while ForceNoops and Piggybacks count
// the force requests that were satisfied without issuing any I/O of
// their own.
type Stats struct {
	Appends      int64 // records appended
	Forces       int64 // Force/ForceLSN requests
	ForceNoops   int64 // requests whose target was already durable on entry
	Piggybacks   int64 // requests covered by another committer's force while queued
	LeaderForces int64 // physical flush+force batches issued
	FlushedBytes int64 // bytes written to the volume by batched flushes
}

// Log is an append-only write-ahead log over a dedicated volume.  It is
// safe for concurrent use.
//
// Appends copy the encoded record into an in-memory tail buffer; the
// buffer reaches the log volume only when a force flushes it, so a
// transaction's worth of records costs zero log I/O until commit.
// Forces use leader/follower group commit: concurrent committers queue
// on forceMu, the first (the leader) writes the whole buffered tail in
// one positional write — one seek however many records the batch holds
// — and forces it; the followers wake to find their commit LSNs already
// durable and return without touching the device.  A force whose target
// is already durable returns immediately without any lock but mu.
type Log struct {
	// forceMu serializes the flush+force I/O of group-commit leaders.
	// Followers queue on it and usually find their records durable once
	// they acquire it.  Acquired before mu (rank 45 in the lattice).
	forceMu sync.Mutex

	mu       sync.Mutex
	vol      disk.Device
	ps       int
	base     uint64 // eos:guardedby mu -- LSN of the epoch start; record at offset o has LSN base+o+1
	grouped  bool   // eos:guardedby mu -- buffered appends + group commit (default); false = serial baseline
	buf      []byte // eos:guardedby mu -- records appended but not yet written to the volume
	bufStart int64  // eos:guardedby mu -- log byte offset of buf[0]; == bytes written to the volume
	tail     int64  // eos:guardedby mu -- next append offset (bytes), including the buffer
	forced   int64  // eos:guardedby mu -- offset through which records are durable
	stats    Stats  // eos:guardedby mu
}

// New creates an empty log on vol.  base is the LSN epoch base the
// store header records (0 for a fresh store); the first record gets
// LSN base+1.
func New(vol disk.Device, base uint64) *Log {
	return &Log{vol: vol, ps: vol.PageSize(), base: base, grouped: true}
}

// Base returns the current epoch base: every record in the log has
// LSN > Base(), and every record of earlier epochs had LSN <= Base().
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// SetGroupCommit enables (the default) or disables the buffered tail
// and group commit.  Disabled, the log reproduces the original serial
// write path — every Append issues its own positional write and every
// force leads — which the write-path benchmarks use as their baseline.
// Disabling flushes any buffered records first.
func (l *Log) SetGroupCommit(on bool) error {
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	if _, err := l.flushHoldingForceMu(); err != nil {
		return err
	}
	l.mu.Lock()
	l.grouped = on
	l.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the log activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// encode serializes r (LSN must already be set).
func encode(r *Record) []byte {
	buf := make([]byte, recHeaderSize+len(r.Data)+len(r.OldData)+len(r.Extents)*extentEncBytes)
	binary.BigEndian.PutUint32(buf[4:], uint32(len(buf)))
	binary.BigEndian.PutUint64(buf[8:], r.LSN)
	binary.BigEndian.PutUint64(buf[16:], r.Txn)
	buf[24] = byte(r.Type)
	binary.BigEndian.PutUint64(buf[25:], r.Object)
	binary.BigEndian.PutUint64(buf[33:], uint64(r.Off))
	binary.BigEndian.PutUint64(buf[41:], uint64(r.N))
	binary.BigEndian.PutUint32(buf[49:], uint32(len(r.Data)))
	binary.BigEndian.PutUint32(buf[53:], uint32(len(r.OldData)))
	binary.BigEndian.PutUint16(buf[57:], uint16(len(r.Extents)))
	off := recHeaderSize
	off += copy(buf[off:], r.Data)
	off += copy(buf[off:], r.OldData)
	for _, e := range r.Extents {
		binary.BigEndian.PutUint64(buf[off:], uint64(e.Page))
		binary.BigEndian.PutUint32(buf[off+8:], uint32(e.Off))
		binary.BigEndian.PutUint32(buf[off+12:], uint32(e.Len))
		off += extentEncBytes
	}
	binary.BigEndian.PutUint32(buf[0:], crc32.ChecksumIEEE(buf[4:]))
	return buf
}

// decode parses one record from buf, returning it and its encoded size.
func decode(buf []byte) (*Record, int, error) {
	if len(buf) < recHeaderSize {
		return nil, 0, ErrCorruptRecord
	}
	size := int(binary.BigEndian.Uint32(buf[4:]))
	if size < recHeaderSize || size > len(buf) {
		return nil, 0, ErrCorruptRecord
	}
	if crc32.ChecksumIEEE(buf[4:size]) != binary.BigEndian.Uint32(buf[0:]) {
		return nil, 0, ErrCorruptRecord
	}
	r := &Record{
		LSN:    binary.BigEndian.Uint64(buf[8:]),
		Txn:    binary.BigEndian.Uint64(buf[16:]),
		Type:   RecType(buf[24]),
		Object: binary.BigEndian.Uint64(buf[25:]),
		Off:    int64(binary.BigEndian.Uint64(buf[33:])),
		N:      int64(binary.BigEndian.Uint64(buf[41:])),
	}
	dlen := int(binary.BigEndian.Uint32(buf[49:]))
	olen := int(binary.BigEndian.Uint32(buf[53:]))
	next := int(binary.BigEndian.Uint16(buf[57:]))
	if dlen < 0 || olen < 0 || recHeaderSize+dlen+olen+next*extentEncBytes != size {
		return nil, 0, ErrCorruptRecord
	}
	off := recHeaderSize
	if dlen > 0 {
		r.Data = append([]byte{}, buf[off:off+dlen]...)
	}
	off += dlen
	if olen > 0 {
		r.OldData = append([]byte{}, buf[off:off+olen]...)
	}
	off += olen
	for i := 0; i < next; i++ {
		r.Extents = append(r.Extents, Extent{
			Page: int64(binary.BigEndian.Uint64(buf[off:])),
			Off:  int32(binary.BigEndian.Uint32(buf[off+8:])),
			Len:  int32(binary.BigEndian.Uint32(buf[off+12:])),
		})
		off += extentEncBytes
	}
	return r, size, nil
}

// Append places r at the tail of the log, assigns its LSN, and returns
// it.  The record is not durable until a force covers it; in grouped
// mode (the default) it is not even written to the volume until then —
// the bytes land in the in-memory tail buffer, so Append does no I/O.
func (l *Log) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.base + uint64(l.tail) + 1 // LSN 0 means "never logged"
	buf := encode(r)
	if l.tail+int64(len(buf)) > int64(l.vol.NumPages())*int64(l.ps) {
		return 0, ErrLogFull
	}
	if l.grouped {
		l.buf = append(l.buf, buf...)
	} else {
		if err := l.writeAt(l.tail, buf); err != nil {
			return 0, err
		}
		l.bufStart = l.tail + int64(len(buf))
	}
	l.tail += int64(len(buf))
	l.stats.Appends++
	return r.LSN, nil
}

// writeAt writes raw bytes at a byte offset, read-modifying boundary
// pages so earlier records on shared pages survive.
func (l *Log) writeAt(off int64, data []byte) error {
	ps := int64(l.ps)
	first := off / ps
	last := (off + int64(len(data)) - 1) / ps
	npages := int(last - first + 1)
	raw := make([]byte, npages*l.ps)
	if off%ps != 0 {
		if err := l.vol.ReadPages(disk.PageNum(first), 1, raw[:l.ps]); err != nil {
			return err
		}
	}
	copy(raw[off-first*ps:], data)
	return l.vol.WritePages(disk.PageNum(first), npages, raw)
}

// Force makes every appended record durable.  When nothing has been
// appended since the last force it returns immediately without touching
// the volume (the historical implementation forced the file anyway).
func (l *Log) Force() error {
	l.mu.Lock()
	target := l.tail
	l.mu.Unlock()
	return l.forceTo(target)
}

// ForceLSN makes the record with the given LSN — and every record
// before it — durable.  This is the group-commit entry point: the
// caller blocks until some leader's force covers lsn, whether it led
// that force itself or piggybacked on a concurrent committer's.  A
// caller is never released successfully unless a force covering its
// LSN actually succeeded; when the leader's I/O fails, each queued
// follower retries as leader and surfaces its own error.
func (l *Log) ForceLSN(lsn uint64) error {
	return l.forceTo(int64(lsn - l.Base()))
}

// forceTo makes the log durable through byte offset target.  Because
// forces always advance `forced` to a record boundary past the target
// record's start, forced >= target implies the whole record is durable.
func (l *Log) forceTo(target int64) error {
	l.mu.Lock()
	l.stats.Forces++
	if l.grouped && l.forced >= target {
		l.stats.ForceNoops++
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	l.mu.Lock()
	if l.grouped && l.forced >= target {
		// A leader force covered us while we queued: piggyback.
		l.stats.Piggybacks++
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	return l.leadForce()
}

// leadForce flushes the buffered tail in one positional write and
// forces every log page not yet durable.  Caller holds forceMu.
func (l *Log) leadForce() error {
	l.mu.Lock()
	forcedBefore := l.forced
	l.mu.Unlock()
	end, err := l.flushHoldingForceMu()
	if err != nil {
		return err
	}
	if end > 0 {
		// Only the pages written since the last force can be non-durable;
		// the page holding the forced boundary may have been extended.
		firstPage := forcedBefore / int64(l.ps)
		lastPage := (end + int64(l.ps) - 1) / int64(l.ps)
		if lastPage > firstPage {
			if err := l.vol.Force(disk.PageNum(firstPage), int(lastPage-firstPage)); err != nil {
				return err
			}
		}
	}
	l.mu.Lock()
	if end > l.forced {
		l.forced = end
	}
	l.stats.LeaderForces++
	l.mu.Unlock()
	return nil
}

// flushHoldingForceMu writes the buffered records to the volume (no
// force) and returns the flushed end offset.  Records appended while
// the write is in flight stay buffered for the next flush.  Caller
// holds forceMu.
func (l *Log) flushHoldingForceMu() (int64, error) {
	l.mu.Lock()
	start := l.bufStart
	data := l.buf[:len(l.buf):len(l.buf)]
	l.mu.Unlock()
	if len(data) == 0 {
		return start, nil
	}
	if err := l.writeAt(start, data); err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.buf = l.buf[len(data):]
	l.bufStart = start + int64(len(data))
	l.stats.FlushedBytes += int64(len(data))
	l.mu.Unlock()
	return start + int64(len(data)), nil
}

// Tail returns the log length in bytes.
func (l *Log) Tail() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// Scan reads every intact record from byte offset start, invoking fn in
// order.  Scanning stops cleanly at the first torn or zero record — the
// crash-truncated tail — and at the first record whose LSN does not
// match the current epoch base (a leftover from before a truncation
// whose zeroing write the crash swallowed; everything such a record
// describes was durable before the truncation began, so skipping it is
// exactly right).  Buffered records are part of the log's logical
// contents, so Scan writes them out first (without forcing).
func (l *Log) Scan(start int64, fn func(*Record) error) error {
	l.forceMu.Lock()
	_, err := l.flushHoldingForceMu()
	l.forceMu.Unlock()
	if err != nil {
		return err
	}
	base := l.Base()
	total := int64(l.vol.NumPages()) * int64(l.ps)
	off := start
	for off+int64(recHeaderSize) <= total {
		// Read the header area (up to two pages) to learn the size.
		head := make([]byte, recHeaderSize)
		if err := l.readAt(off, head); err != nil {
			return err
		}
		size := int(binary.BigEndian.Uint32(head[4:]))
		if size < recHeaderSize || off+int64(size) > total {
			return nil // truncated tail
		}
		buf := make([]byte, size)
		if err := l.readAt(off, buf); err != nil {
			return err
		}
		r, n, err := decode(buf)
		if err != nil {
			return nil // torn record: stop
		}
		if r.LSN != base+uint64(off)+1 {
			return nil // stale epoch: record predates the last truncation
		}
		if err := fn(r); err != nil {
			return err
		}
		off += int64(n)
	}
	return nil
}

// readAt reads raw bytes at a byte offset.
func (l *Log) readAt(off int64, buf []byte) error {
	ps := int64(l.ps)
	first := off / ps
	last := (off + int64(len(buf)) - 1) / ps
	npages := int(last - first + 1)
	raw := make([]byte, npages*l.ps)
	if err := l.vol.ReadPages(disk.PageNum(first), npages, raw); err != nil {
		return err
	}
	copy(buf, raw[off-first*ps:])
	return nil
}

// Recover reattaches a log after a crash: it scans from byte 0 to find
// the durable tail and positions appends there.  base is the epoch base
// the store header recorded; records whose LSNs belong to an earlier
// epoch are ignored.  It returns the records found.
func Recover(vol disk.Device, base uint64) (*Log, []*Record, error) {
	l := New(vol, base)
	var recs []*Record
	if err := l.Scan(0, func(r *Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return nil, nil, err
	}
	// The log is not yet shared, but take mu anyway so the positioning
	// stores obey the same discipline as every other tail update.
	l.mu.Lock()
	if n := len(recs); n > 0 {
		last := recs[n-1]
		// Tail = last record's end offset.
		l.tail = int64(last.LSN-base-1) +
			int64(recHeaderSize+len(last.Data)+len(last.OldData)+len(last.Extents)*extentEncBytes)
	}
	l.forced = l.tail
	l.bufStart = l.tail
	l.mu.Unlock()
	return l, recs, nil
}

// Reset truncates the log (after a checkpoint has made everything it
// describes — including the new epoch base in the store header — fully
// durable) and starts a new LSN epoch at newBase, which must be at
// least Base()+Tail() so the new epoch's LSNs outrank every record the
// old epoch issued.  The whole log volume is zeroed so that stale
// records from before the checkpoint can never be mistaken for live
// ones by a later recovery scan; should the zeroing itself be lost in
// a crash, the old records' LSNs no longer match the header's base and
// the recovery scan rejects them.
func (l *Log) Reset(newBase uint64) error {
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if newBase < l.base+uint64(l.tail) {
		return fmt.Errorf("wal: reset base %d would rewind LSNs (epoch end %d)",
			newBase, l.base+uint64(l.tail))
	}
	zero := make([]byte, int64(l.vol.NumPages())*int64(l.ps))
	if err := l.vol.WritePages(0, int(l.vol.NumPages()), zero); err != nil {
		return err
	}
	if err := l.vol.Force(0, int(l.vol.NumPages())); err != nil {
		return err
	}
	l.base = newBase
	l.tail = 0
	l.forced = 0
	l.buf = l.buf[:0]
	l.bufStart = 0
	return nil
}
