package buffer

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/eosdb/eos/internal/disk"
)

func newPoolT(t *testing.T, pageSize int, pages disk.PageNum, capacity int) (*Pool, *disk.Volume) {
	t.Helper()
	vol := disk.MustNewVolume(pageSize, pages, disk.CostModel{})
	return MustNewPool(vol, capacity), vol
}

func TestNewPoolValidation(t *testing.T) {
	vol := disk.MustNewVolume(64, 8, disk.CostModel{})
	if _, err := NewPool(vol, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewPool(vol, -3); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestFixReadsThrough(t *testing.T) {
	pool, vol := newPoolT(t, 64, 8, 4)
	want := bytes.Repeat([]byte{7}, 64)
	if err := vol.WritePages(2, 1, want); err != nil {
		t.Fatal(err)
	}
	got, err := pool.Fix(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("Fix returned wrong page image")
	}
	if err := pool.Unpin(2); err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Errorf("stats = %+v, want 1 miss", s)
	}
}

func TestFixHitAvoidsDisk(t *testing.T) {
	pool, vol := newPoolT(t, 64, 8, 4)
	if _, err := pool.Fix(1); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(1)
	before := vol.Stats().Reads
	if _, err := pool.Fix(1); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(1)
	if vol.Stats().Reads != before {
		t.Error("second Fix hit the disk")
	}
	if s := pool.Stats(); s.Hits != 1 {
		t.Errorf("hits = %d, want 1", s.Hits)
	}
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	pool, vol := newPoolT(t, 64, 8, 2)
	img, err := pool.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(img, bytes.Repeat([]byte{5}, 64))
	pool.MarkDirty(0)
	pool.Unpin(0)

	// Fill the pool so page 0 is evicted.
	for _, pg := range []disk.PageNum{1, 2} {
		if _, err := pool.Fix(pg); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(pg)
	}
	got, err := vol.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{5}, 64)) {
		t.Error("dirty page was not written back on eviction")
	}
	if s := pool.Stats(); s.Flushes != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 flush 1 eviction", s)
	}
}

func TestAllPinnedErrors(t *testing.T) {
	pool, _ := newPoolT(t, 64, 8, 2)
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fix(1); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fix(2); err == nil {
		t.Error("Fix succeeded with all frames pinned")
	}
	pool.Unpin(0)
	if _, err := pool.Fix(2); err != nil {
		t.Errorf("Fix after Unpin: %v", err)
	}
}

func TestPinCountsNested(t *testing.T) {
	pool, _ := newPoolT(t, 64, 8, 1)
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(0)
	// Still pinned once: the only frame must not be evictable.
	if _, err := pool.Fix(1); err == nil {
		t.Error("evicted a pinned frame")
	}
	pool.Unpin(0)
	if _, err := pool.Fix(1); err != nil {
		t.Errorf("Fix after full unpin: %v", err)
	}
}

func TestUnpinErrors(t *testing.T) {
	pool, _ := newPoolT(t, 64, 8, 2)
	if err := pool.Unpin(3); err == nil {
		t.Error("Unpin of unknown page succeeded")
	}
	if err := pool.MarkDirty(3); err == nil {
		t.Error("MarkDirty of unknown page succeeded")
	}
}

func TestFixNewSkipsRead(t *testing.T) {
	pool, vol := newPoolT(t, 64, 8, 2)
	before := vol.Stats().Reads
	img, err := pool.FixNew(5)
	if err != nil {
		t.Fatal(err)
	}
	if vol.Stats().Reads != before {
		t.Error("FixNew read from disk")
	}
	if !bytes.Equal(img, make([]byte, 64)) {
		t.Error("FixNew image not zeroed")
	}
	copy(img, bytes.Repeat([]byte{9}, 64))
	pool.Unpin(5)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got, _ := vol.Read(5, 1)
	if !bytes.Equal(got, bytes.Repeat([]byte{9}, 64)) {
		t.Error("FixNew content not flushed")
	}
}

func TestFlushPageAndAll(t *testing.T) {
	pool, vol := newPoolT(t, 64, 8, 4)
	for _, pg := range []disk.PageNum{0, 1} {
		img, err := pool.Fix(pg)
		if err != nil {
			t.Fatal(err)
		}
		img[0] = byte(10 + pg)
		pool.MarkDirty(pg)
		pool.Unpin(pg)
	}
	if err := pool.FlushPage(0); err != nil {
		t.Fatal(err)
	}
	got, _ := vol.Read(0, 1)
	if got[0] != 10 {
		t.Error("FlushPage did not persist page 0")
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got, _ = vol.Read(1, 1)
	if got[0] != 11 {
		t.Error("FlushAll did not persist page 1")
	}
	// Flushing a clean page is a no-op.
	f := pool.Stats().Flushes
	if err := pool.FlushPage(0); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Flushes != f {
		t.Error("flushing clean page counted a flush")
	}
}

func TestDiscardDropsDirtyData(t *testing.T) {
	pool, vol := newPoolT(t, 64, 8, 4)
	img, err := pool.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	img[0] = 42
	pool.MarkDirty(0)
	pool.Unpin(0)
	pool.Discard(0)
	got, _ := vol.Read(0, 1)
	if got[0] != 0 {
		t.Error("Discard wrote the page back")
	}
	if pool.Resident(0) {
		t.Error("page still resident after Discard")
	}
}

// TestDiscardWhilePinnedDooms checks the epoch-reclamation interplay:
// discarding a pinned page must not rip the frame out from under its
// reader.  The frame is doomed — still readable through the existing
// pin, never written back — and disappears at the final Unpin.
func TestDiscardWhilePinnedDooms(t *testing.T) {
	pool, vol := newPoolT(t, 64, 8, 4)
	img, err := pool.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	img[0] = 42
	pool.MarkDirty(0)
	pool.Discard(0) // pinned: dooms instead of removing
	if !pool.Resident(0) {
		t.Fatal("pinned frame removed by Discard")
	}
	if img[0] != 42 {
		t.Fatal("doomed frame content changed under the pin")
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got, _ := vol.Read(0, 1)
	if got[0] != 0 {
		t.Fatal("doomed frame written back")
	}
	if err := pool.Unpin(0); err != nil {
		t.Fatal(err)
	}
	if pool.Resident(0) {
		t.Error("doomed frame survived its last Unpin")
	}
	// The page is reusable afresh: FixNew must hand out a clean frame.
	img2, err := pool.FixNew(0)
	if err != nil {
		t.Fatal(err)
	}
	if img2[0] != 0 {
		t.Error("FixNew returned stale doomed content")
	}
	pool.Unpin(0)
}

// TestDiscardNestedPinsDooms covers multiple pins: the doom sticks
// until the last pin drops.
func TestDiscardNestedPinsDooms(t *testing.T) {
	pool, _ := newPoolT(t, 64, 8, 4)
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	pool.MarkDirty(0)
	pool.Discard(0)
	if err := pool.Unpin(0); err != nil {
		t.Fatal(err)
	}
	if !pool.Resident(0) {
		t.Fatal("doomed frame removed before its last pin dropped")
	}
	if err := pool.Unpin(0); err != nil {
		t.Fatal(err)
	}
	if pool.Resident(0) {
		t.Error("doomed frame survived its last Unpin")
	}
}

func TestDiscardAllSimulatesCrash(t *testing.T) {
	pool, vol := newPoolT(t, 64, 8, 4)
	for pg := disk.PageNum(0); pg < 3; pg++ {
		img, err := pool.Fix(pg)
		if err != nil {
			t.Fatal(err)
		}
		img[0] = 1
		pool.MarkDirty(pg)
		pool.Unpin(pg)
	}
	pool.DiscardAll()
	for pg := disk.PageNum(0); pg < 3; pg++ {
		if pool.Resident(pg) {
			t.Errorf("page %d resident after DiscardAll", pg)
		}
		got, _ := vol.Read(pg, 1)
		if got[0] != 0 {
			t.Errorf("page %d leaked to disk", pg)
		}
	}
}

func TestLRUOrder(t *testing.T) {
	pool, _ := newPoolT(t, 64, 16, 3)
	touch := func(pg disk.PageNum) {
		t.Helper()
		if _, err := pool.Fix(pg); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(pg)
	}
	touch(0)
	touch(1)
	touch(2)
	touch(0) // 1 is now LRU
	touch(3) // evicts 1
	if pool.Resident(1) {
		t.Error("page 1 should have been evicted")
	}
	for _, pg := range []disk.PageNum{0, 2, 3} {
		if !pool.Resident(pg) {
			t.Errorf("page %d should be resident", pg)
		}
	}
}

func TestConcurrentFixUnpin(t *testing.T) {
	pool, _ := newPoolT(t, 64, 64, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pg := disk.PageNum((seed*31 + i*7) % 64)
				if _, err := pool.Fix(pg); err != nil {
					continue // pool may be transiently full
				}
				pool.Unpin(pg)
			}
		}(g)
	}
	wg.Wait()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFixHit(b *testing.B) {
	vol := disk.MustNewVolume(4096, 64, disk.CostModel{})
	pool := MustNewPool(vol, 32)
	if _, err := pool.Fix(5); err != nil {
		b.Fatal(err)
	}
	pool.Unpin(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Fix(5); err != nil {
			b.Fatal(err)
		}
		pool.Unpin(5)
	}
}

func BenchmarkFixMissEvict(b *testing.B) {
	vol := disk.MustNewVolume(4096, 1024, disk.CostModel{})
	pool := MustNewPool(vol, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := disk.PageNum(i % 1024)
		if _, err := pool.Fix(pg); err != nil {
			b.Fatal(err)
		}
		pool.Unpin(pg)
	}
}

func TestShardCounts(t *testing.T) {
	vol := disk.MustNewVolume(64, 2048, disk.CostModel{})
	cases := []struct {
		capacity, shards, want int
	}{
		{64, 0, 1},  // small pools stay single-sharded
		{256, 0, 8}, // auto-sharding kicks in at 128 frames
		{16, 3, 2},  // explicit counts round down to a power of two
		{16, 8, 8},  //
		{4, 16, 1},  // never more shards than frames
		{256, 1, 1}, // explicit single shard for determinism
	}
	for _, c := range cases {
		p, err := NewPoolShards(vol, c.capacity, c.shards)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shards() != c.want {
			t.Errorf("NewPoolShards(cap=%d, shards=%d): got %d shards, want %d",
				c.capacity, c.shards, p.Shards(), c.want)
		}
	}
	if _, err := NewPoolShards(vol, 16, -1); err == nil {
		t.Error("negative shard count accepted")
	}
}

func TestShardedPoolReadsAndStats(t *testing.T) {
	vol := disk.MustNewVolume(64, 2048, disk.CostModel{})
	pool, err := NewPoolShards(vol, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pg := disk.PageNum(0); pg < 128; pg++ {
		want := byte(pg + 1)
		if err := vol.WritePages(pg, 1, bytes.Repeat([]byte{want}, 64)); err != nil {
			t.Fatal(err)
		}
		img, err := pool.Fix(pg)
		if err != nil {
			t.Fatal(err)
		}
		if img[0] != want {
			t.Fatalf("page %d read %d, want %d", pg, img[0], want)
		}
		pool.Unpin(pg)
	}
	// Re-fix: all resident, all hits, aggregated across shards.
	for pg := disk.PageNum(0); pg < 128; pg++ {
		if _, err := pool.Fix(pg); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(pg)
	}
	s := pool.Stats()
	if s.Misses != 128 || s.Hits != 128 {
		t.Errorf("stats = %+v, want 128 misses 128 hits", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	if (Stats{}).HitRate() != 1 {
		t.Error("HitRate of untouched pool should be 1")
	}
}

func TestPinWaitRecoversFromTransientPin(t *testing.T) {
	pool, _ := newPoolT(t, 64, 8, 2)
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fix(1); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		pool.Unpin(0)
	}()
	// Every frame is pinned right now, but one is released while we are
	// inside the bounded pin wait — the Fix must succeed.
	if _, err := pool.Fix(2); err != nil {
		t.Fatalf("Fix during transient full pin: %v", err)
	}
	pool.Unpin(2)
	pool.Unpin(1)
}

func TestPinWaitTimeout(t *testing.T) {
	pool, _ := newPoolT(t, 64, 8, 1)
	pool.SetPinWait(10 * time.Millisecond)
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := pool.Fix(1)
	if !errors.Is(err, ErrNoFrames) {
		t.Fatalf("err = %v, want ErrNoFrames", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("gave up after %v, before the pin-wait window", elapsed)
	}
	pool.Unpin(0)
}

func TestPinWaitZeroFailsFast(t *testing.T) {
	pool, _ := newPoolT(t, 64, 8, 1)
	pool.SetPinWait(0)
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fix(1); !errors.Is(err, ErrNoFrames) {
		t.Errorf("err = %v, want immediate ErrNoFrames", err)
	}
	pool.Unpin(0)
}

func TestPinWaitFindsPageFixedMeanwhile(t *testing.T) {
	pool, _ := newPoolT(t, 64, 16, 2)
	if _, err := pool.Fix(0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fix(1); err != nil {
		t.Fatal(err)
	}
	// Two goroutines want page 7 while the pool is full; main releases a
	// frame while they wait.  Whichever goroutine reads the page first,
	// the other must find it resident — exactly one miss between them.
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.Fix(7); err != nil {
				t.Errorf("Fix(7): %v", err)
				return
			}
			pool.Unpin(7)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	pool.Unpin(0)
	wg.Wait()
	s := pool.Stats()
	if got := s.Misses; got != 3 { // pages 0, 1, and one read of 7
		t.Errorf("misses = %d, want 3 (stats %+v)", got, s)
	}
	if s.Hits != 1 {
		t.Errorf("hits = %d, want 1 (stats %+v)", s.Hits, s)
	}
	pool.Unpin(1)
}

func TestConcurrentShardedMixed(t *testing.T) {
	vol := disk.MustNewVolume(64, 512, disk.CostModel{})
	pool, err := NewPoolShards(vol, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				pg := disk.PageNum((seed*131 + i*17) % 512)
				img, err := pool.Fix(pg)
				if err != nil {
					continue
				}
				if i%5 == 0 {
					img[0] = byte(seed)
					pool.MarkDirty(pg)
				}
				pool.Unpin(pg)
			}
		}(g)
	}
	wg.Wait()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if n := pool.PinnedFrames(); n != 0 {
		t.Errorf("%d frames still pinned after quiescence", n)
	}
}
