GO ?= go

.PHONY: build test race lint eoslint lint-ssa lint-fixtures bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full static analysis: eoslint (per-package and -ssa whole-program
# suites), a go vet self-check over the linter's own packages, plus
# golangci-lint and govulncheck when installed (scripts/lint.sh skips
# missing external tools).
lint:
	scripts/lint.sh

# Just the repo's own invariant analyzers.
eoslint:
	scripts/lint.sh eoslint

# Just the whole-program passes (deadlock, walfirstip, leaksip,
# forcedom, racecheck).
lint-ssa:
	scripts/lint.sh --ssa

# Smoke-check that every bad fixture still trips its analyzer.
lint-fixtures:
	scripts/lint.sh --fixtures

bench:
	scripts/bench_regress.sh
