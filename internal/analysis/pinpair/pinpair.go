// Package pinpair defines an Analyzer that enforces the buffer pool's
// pin discipline: every page image obtained from buffer.Pool.Fix or
// buffer.Pool.FixNew must be released with a matching Unpin on every
// path out of the function, usually via defer.
//
// A leaked pin is the quietest possible storage bug: the frame is
// never evictable again, the pool's working set shrinks by one frame
// forever, and under load the pool eventually reports ErrNoFrames on a
// path nowhere near the leak.  The analyzer walks the control-flow
// graph from each Fix site and reports any path that can reach a
// return without passing a matching Unpin call or registering a
// matching deferred Unpin.
//
// The error-check branch that immediately guards the Fix call (`if err
// != nil { return ... }` on the same err variable) is exempt: when Fix
// fails no pin was taken.  Test files are exempt entirely: the pool's
// own tests hold pins across assertions deliberately to exercise
// eviction and pin-count semantics.
package pinpair

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/eosdb/eos/internal/analysis/eosutil"
	"github.com/eosdb/eos/internal/analysis/ignore"
)

const doc = `check that every buffer.Pool Fix/FixNew is paired with Unpin on all paths

A pinned frame that is never unpinned is permanently unevictable; the
pool degrades one leaked frame at a time until Fix fails with
ErrNoFrames far from the leak.  Every path from a Fix or FixNew call to
a function exit must unpin the same page, directly or via defer.`

// Analyzer is the pinpair analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "pinpair",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// pinSite is one Fix/FixNew call: the page argument expression and the
// error variable its result was assigned to (nil when discarded).
type pinSite struct {
	call   *ast.CallExpr
	method string
	argKey string
	errVar types.Object
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ig := ignore.For(pass)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return
		}
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			body = fn.Body
			g = cfgs.FuncDecl(fn)
		case *ast.FuncLit:
			body = fn.Body
			g = cfgs.FuncLit(fn)
		}
		if g == nil {
			return
		}
		checkFunc(pass, ig, body, g)
	})
	return nil, nil
}

// checkFunc checks the pin sites of one function body.  Nested
// function literals are visited separately by run (a pin taken in a
// closure must be released in that closure), so calls inside them are
// not attributed to the enclosing function — except deferred literals,
// which run on the enclosing function's exit and may carry its Unpin.
func checkFunc(pass *analysis.Pass, ig *ignore.List, body *ast.BlockStmt, g *cfg.CFG) {
	sites := collectPins(pass, body)
	if len(sites) == 0 {
		return
	}
	for _, site := range sites {
		if leaks(pass, g, site) {
			ig.Report(site.call.Pos(),
				"%s(%s) result can leak its pin: a path reaches return without Unpin(%s) (add defer Unpin after the error check)",
				site.method, site.argKey, site.argKey)
		}
	}
}

// collectPins finds the Fix/FixNew calls lexically inside body but not
// inside a nested function literal.
func collectPins(pass *analysis.Pass, body *ast.BlockStmt) []*pinSite {
	var sites []*pinSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		m, ok := eosutil.IsMethodCall(pass.TypesInfo, call, "buffer", "Pool", "Fix", "FixNew")
		if !ok || len(call.Args) != 1 {
			return true
		}
		sites = append(sites, &pinSite{
			call:   call,
			method: m,
			argKey: types.ExprString(call.Args[0]),
		})
		return true
	})
	if len(sites) == 0 {
		return nil
	}
	// Attach the err variable each pin's result is assigned to, so the
	// immediate `if err != nil` guard can be recognized.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, site := range sites {
			if site.call == call {
				if id, ok := as.Lhs[1].(*ast.Ident); ok {
					site.errVar = pass.TypesInfo.ObjectOf(id)
				}
			}
		}
		return true
	})
	return sites
}

// leaks reports whether some path from site's block to a function exit
// passes neither a matching Unpin nor a matching deferred Unpin.
func leaks(pass *analysis.Pass, g *cfg.CFG, site *pinSite) bool {
	// Locate the block holding the Fix call and the node index after it.
	start, startIdx := findNode(g, site.call)
	if start == nil {
		return false // CFG elided the call (dead code)
	}

	seen := map[*cfg.Block]bool{start: true}
	var visit func(b *cfg.Block, from int) bool
	visit = func(b *cfg.Block, from int) bool {
		if b != start || from == 0 {
			if b != start {
				if seen[b] {
					return false
				}
				seen[b] = true
			} else if seen[start] {
				return false // looped back to the pin block
			}
			// The then-branch of the Fix call's own error check runs
			// only when no pin was taken.
			if isErrGuard(pass, b, site) {
				return false
			}
		}
		for i := from; i < len(b.Nodes); i++ {
			if nodeUnpins(pass, b.Nodes[i], site) {
				return false
			}
		}
		if len(b.Succs) == 0 {
			// Exit block: a leak unless it is unreachable filler.
			return b.Kind != cfg.KindUnreachable
		}
		for _, s := range b.Succs {
			if visit(s, 0) {
				return true
			}
		}
		return false
	}
	return visit(start, startIdx+1)
}

// findNode returns the live block containing n and its node index.
func findNode(g *cfg.CFG, target ast.Node) (*cfg.Block, int) {
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for i, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if m == target {
					found = true
				}
				return !found
			})
			if found {
				return b, i
			}
		}
	}
	return nil, 0
}

// isErrGuard reports whether b is the then-branch of an `if err != nil`
// statement testing the err variable assigned from this pin site.
func isErrGuard(pass *analysis.Pass, b *cfg.Block, site *pinSite) bool {
	if site.errVar == nil || b.Kind != cfg.KindIfThen {
		return false
	}
	ifStmt, ok := b.Stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	if x, ok := bin.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(x) == site.errVar {
		id = x
	} else if y, ok := bin.Y.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(y) == site.errVar {
		id = y
	}
	return id != nil
}

// nodeUnpins reports whether CFG node n releases site's pin: a direct
// Unpin call with the same page argument, or a defer (of the call
// itself or of a literal containing it).
func nodeUnpins(pass *analysis.Pass, n ast.Node, site *pinSite) bool {
	switch n := n.(type) {
	case *ast.DeferStmt:
		if callMatches(pass, n.Call, site) {
			return true
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && callMatches(pass, call, site) {
					found = true
				}
				return !found
			})
			return found
		}
		return false
	default:
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // a non-deferred closure may never run
			}
			if call, ok := m.(*ast.CallExpr); ok && callMatches(pass, call, site) {
				found = true
			}
			return !found
		})
		return found
	}
}

// callMatches reports whether call is Unpin (or Discard, which also
// releases the frame) on the same page expression as site.
func callMatches(pass *analysis.Pass, call *ast.CallExpr, site *pinSite) bool {
	if _, ok := eosutil.IsMethodCall(pass.TypesInfo, call, "buffer", "Pool", "Unpin", "Discard"); !ok {
		return false
	}
	return len(call.Args) == 1 && types.ExprString(call.Args[0]) == site.argKey
}
