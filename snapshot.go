package eos

import (
	"fmt"
	"io"

	"github.com/eosdb/eos/internal/lob"
	"github.com/eosdb/eos/internal/txn"
)

// Snapshot is a lock-free read-only view of one object's last committed
// version at the moment OpenSnapshot was called.  Reads through a
// Snapshot never touch the object latch or the transaction lock table:
// shadowing makes the captured root the name of an immutable tree, and
// the snapshot's epoch pin keeps the pages that tree references from
// being reused until Close.
//
// Structural updates (insert, delete, append, truncate, compact,
// destroy) committed after the capture are invisible.  Replace is the
// one in-place update in EOS; a concurrent Replace over a snapshotted
// range is visible read-committed and page-atomic (a read never sees a
// torn page, but a multi-page replace may be observed partially
// applied).
//
// A Snapshot is safe for concurrent use by multiple goroutines except
// for the Read/Seek cursor, which is single-user; use ReadAt for
// concurrent positioned reads.  Snapshots MUST be closed: an open
// snapshot pins its epoch and holds every page retired since it was
// opened out of the free space.
type Snapshot struct {
	s    *Store
	name string
	v    *lob.RootVersion
	g    *txn.EpochGuard
	pos  int64
}

// OpenSnapshot captures the object's newest committed version and
// returns a lock-free reader over it.  The epoch pin is taken before
// the version is captured, so any pages retired by updates that
// supersede the captured version are stamped at or after the pin and
// stay allocated until the snapshot closes.
func (s *Store) OpenSnapshot(name string) (*Snapshot, error) {
	g := s.epochs.Enter()
	s.mu.Lock()
	e, ok := s.catalog[name]
	s.mu.Unlock()
	if !ok {
		_ = g.Exit()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	v := e.obj.Published()
	if v == nil {
		_ = g.Exit()
		return nil, fmt.Errorf("%w: %q has no committed version", ErrNotFound, name)
	}
	return &Snapshot{s: s, name: name, v: v, g: g}, nil
}

// Name returns the name the snapshot was opened under.
func (sn *Snapshot) Name() string { return sn.name }

// Size returns the snapshotted object length in bytes.
func (sn *Snapshot) Size() int64 { return sn.v.Size() }

// LSN returns the log sequence number of the captured version.
func (sn *Snapshot) LSN() uint64 { return sn.v.LSN() }

// Seq returns the captured version's publish sequence number.
func (sn *Snapshot) Seq() uint64 { return sn.v.Seq() }

// ReadAt fills buf from byte off of the captured version.  It returns
// io.EOF with a short count when off+len(buf) passes the snapshot's
// size, matching io.ReaderAt.
func (sn *Snapshot) ReadAt(buf []byte, off int64) (int, error) {
	if sn.g == nil {
		return 0, fmt.Errorf("eos: snapshot of %q is closed", sn.name)
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", lob.ErrOutOfBounds, off)
	}
	size := sn.v.Size()
	if off >= size {
		return 0, io.EOF
	}
	n := len(buf)
	var eof bool
	if off+int64(n) > size {
		n = int(size - off)
		eof = true
	}
	if err := sn.v.ReadAt(buf[:n], off); err != nil {
		return 0, err
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// Read reads from the snapshot's cursor, implementing io.Reader.
func (sn *Snapshot) Read(p []byte) (int, error) {
	n, err := sn.ReadAt(p, sn.pos)
	sn.pos += int64(n)
	return n, err
}

// Seek repositions the cursor, implementing io.Seeker.
func (sn *Snapshot) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = sn.pos
	case io.SeekEnd:
		base = sn.v.Size()
	default:
		return 0, fmt.Errorf("eos: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("%w: seek to %d", lob.ErrOutOfBounds, pos)
	}
	sn.pos = pos
	return pos, nil
}

// WriteTo streams the rest of the snapshot (from the cursor) to w,
// segment by segment, implementing io.WriterTo.
func (sn *Snapshot) WriteTo(w io.Writer) (int64, error) {
	if sn.g == nil {
		return 0, fmt.Errorf("eos: snapshot of %q is closed", sn.name)
	}
	var written int64
	size := sn.v.Size()
	for sn.pos < size {
		start, segLen, err := sn.v.SegmentRangeAt(sn.pos)
		if err != nil {
			return written, err
		}
		n := start + segLen - sn.pos
		buf := make([]byte, n)
		if err := sn.v.ReadAt(buf, sn.pos); err != nil {
			return written, err
		}
		wn, err := w.Write(buf)
		written += int64(wn)
		sn.pos += int64(wn)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Refresh re-captures the object's newest committed version without
// dropping snapshot protection in between: a new epoch pin is taken
// first, then the current version is loaded, and only then is the old
// pin released.  Pages retired by any update that superseded the new
// capture are stamped at or after one of the two pins, so the refreshed
// view is safe even mid-swap.  The cursor is clamped to the new size.
func (sn *Snapshot) Refresh() error {
	if sn.g == nil {
		return fmt.Errorf("eos: snapshot of %q is closed", sn.name)
	}
	g2 := sn.s.epochs.Enter()
	sn.s.mu.Lock()
	e, ok := sn.s.catalog[sn.name]
	sn.s.mu.Unlock()
	if !ok {
		_ = g2.Exit()
		return fmt.Errorf("%w: %q", ErrNotFound, sn.name)
	}
	v := e.obj.Published()
	if v == nil {
		_ = g2.Exit()
		return fmt.Errorf("%w: %q has no committed version", ErrNotFound, sn.name)
	}
	old := sn.g
	sn.v, sn.g = v, g2
	if sn.pos > v.Size() {
		sn.pos = v.Size()
	}
	return old.Exit()
}

// Close releases the snapshot's epoch pin, letting pages retired while
// it was open return to the free space.  Close is idempotent.
func (sn *Snapshot) Close() error {
	if sn.g == nil {
		return nil
	}
	g := sn.g
	sn.g = nil
	return g.Exit()
}
