// Command eosctl manages EOS stores persisted on disk.
//
// Usage:
//
//	eosctl -store dir [-backend img|file] init [-pages N] [-pagesize N] [-threshold T] [-direct]
//	eosctl -store dir ls
//	eosctl -store dir put <object>            # bytes from stdin
//	eosctl -store dir get <object>            # bytes to stdout
//	eosctl -store dir append <object>         # bytes from stdin
//	eosctl -store dir insert <object> <off>   # bytes from stdin
//	eosctl -store dir delete <object> <off> <n>
//	eosctl -store dir rm <object>
//	eosctl -store dir cp <src> <dst>
//	eosctl -store dir compact <object>
//	eosctl -store dir stat [object]
//	eosctl -store dir dump <object>           # physical segment map
//	eosctl -store dir fsck
//	eosctl -store dir migrate img|file        # convert between backends
//
// Two persistence backends exist.  The default, img, keeps the store as
// simulator volume images (data.img, log.img): every command loads the
// images, performs the operation inside a transaction, checkpoints, and
// saves the images back.  The file backend keeps real page files
// (data.eos, log.eos) that the engine reads and writes in place with
// pread/pwrite and fdatasync — no load/save step, and crash recovery
// replays the write-ahead log on open.  "migrate" converts a store from
// one backend to the other in the same directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

func main() {
	storeDir := flag.String("store", "", "store directory")
	backend := flag.String("backend", "img", "persistence backend: img (simulator images) or file (real page files)")
	pages := flag.Int("pages", 65536, "init: data volume size in pages")
	pageSize := flag.Int("pagesize", 4096, "init: page size in bytes")
	threshold := flag.Int("threshold", 8, "init: default segment size threshold T")
	direct := flag.Bool("direct", false, "file backend: open volumes with O_DIRECT")
	flag.Parse()

	if *storeDir == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	if err := run(*storeDir, *backend, cmd, args, *pages, *pageSize, *threshold, *direct); err != nil {
		fmt.Fprintf(os.Stderr, "eosctl: %v\n", err)
		os.Exit(1)
	}
}

func dataPath(dir string) string { return filepath.Join(dir, "data.img") }
func logPath(dir string) string  { return filepath.Join(dir, "log.img") }

// filePaths are the file-backend volume names (matching eos.CreateAt).
func fileDataPath(dir string) string { return filepath.Join(dir, "data.eos") }
func fileLogPath(dir string) string  { return filepath.Join(dir, "log.eos") }

// openStore loads the store for one command and returns it with a save
// function the mutating commands call: the img backend checkpoints and
// writes the images back, the file backend checkpoints in place (the
// page files are already the store).
func openStore(dir, backend string, direct bool) (*eos.Store, func() error, error) {
	switch backend {
	case "img":
		vol, err := disk.LoadVolume(dataPath(dir), disk.DefaultCostModel())
		if err != nil {
			return nil, nil, err
		}
		logVol, err := disk.LoadVolume(logPath(dir), disk.DefaultCostModel())
		if err != nil {
			return nil, nil, err
		}
		s, err := eos.Open(vol, logVol, eos.Options{})
		if err != nil {
			return nil, nil, err
		}
		save := func() error {
			if err := s.Checkpoint(); err != nil {
				return err
			}
			if err := vol.SaveFile(dataPath(dir)); err != nil {
				return err
			}
			return logVol.SaveFile(logPath(dir))
		}
		return s, save, nil
	case "file":
		s, err := eos.OpenAt(dir, eos.Options{Backend: eos.BackendFile, DirectIO: direct})
		if err != nil {
			return nil, nil, err
		}
		return s, s.Checkpoint, nil
	default:
		return nil, nil, fmt.Errorf("unknown backend %q (want img or file)", backend)
	}
}

func initStore(dir, backend string, pages, pageSize, threshold int, direct bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	logPages := pages/8 + 64
	switch backend {
	case "img":
		vol, err := disk.NewVolume(pageSize, disk.PageNum(pages), disk.DefaultCostModel())
		if err != nil {
			return err
		}
		logVol, err := disk.NewVolume(pageSize, disk.PageNum(logPages), disk.DefaultCostModel())
		if err != nil {
			return err
		}
		s, err := eos.Format(vol, logVol, eos.Options{Threshold: threshold})
		if err != nil {
			return err
		}
		if err := s.Checkpoint(); err != nil {
			return err
		}
		if err := vol.SaveFile(dataPath(dir)); err != nil {
			return err
		}
		if err := logVol.SaveFile(logPath(dir)); err != nil {
			return err
		}
		free, _ := s.FreePages()
		fmt.Printf("initialized store: %d pages of %d bytes, %d free data pages\n", pages, pageSize, free)
		return nil
	case "file":
		s, err := eos.CreateAt(dir, eos.Options{
			Backend:   eos.BackendFile,
			PageSize:  pageSize,
			DataPages: disk.PageNum(pages),
			LogPages:  disk.PageNum(logPages),
			DirectIO:  direct,
			Threshold: threshold,
		})
		if err != nil {
			return err
		}
		free, _ := s.FreePages()
		if err := s.Close(); err != nil {
			return err
		}
		fmt.Printf("initialized file-backed store: %d pages of %d bytes, %d free data pages\n", pages, pageSize, free)
		return nil
	default:
		return fmt.Errorf("unknown backend %q (want img or file)", backend)
	}
}

// migrate converts the store in dir between the two backends by copying
// pages through the disk.Device interface.
func migrate(dir, target string, direct bool) error {
	switch target {
	case "file":
		for _, pair := range [][2]string{
			{dataPath(dir), fileDataPath(dir)},
			{logPath(dir), fileLogPath(dir)},
		} {
			src, err := disk.LoadVolume(pair[0], disk.DefaultCostModel())
			if err != nil {
				return err
			}
			fv, err := disk.MigrateToFile(src, pair[1], disk.FileOptions{Direct: direct})
			if err != nil {
				return err
			}
			if err := fv.Close(); err != nil {
				return err
			}
			fmt.Printf("migrated %s -> %s\n", pair[0], pair[1])
		}
		return nil
	case "img":
		for _, pair := range [][2]string{
			{fileDataPath(dir), dataPath(dir)},
			{fileLogPath(dir), logPath(dir)},
		} {
			src, err := disk.OpenFileVolume(pair[0], disk.FileOptions{})
			if err != nil {
				return err
			}
			sim, err := disk.MigrateToSim(src, disk.DefaultCostModel())
			if err != nil {
				_ = src.Close()
				return err
			}
			if err := src.Close(); err != nil {
				return err
			}
			if err := sim.SaveFile(pair[1]); err != nil {
				return err
			}
			fmt.Printf("migrated %s -> %s\n", pair[0], pair[1])
		}
		return nil
	default:
		return fmt.Errorf("usage: migrate img|file")
	}
}

func run(dir, backend, cmd string, args []string, pages, pageSize, threshold int, direct bool) error {
	if cmd == "init" {
		return initStore(dir, backend, pages, pageSize, threshold, direct)
	}
	if cmd == "migrate" {
		target, err := oneArg(args, "migrate img|file")
		if err != nil {
			return err
		}
		return migrate(dir, target, direct)
	}

	s, save, err := openStore(dir, backend, direct)
	if err != nil {
		return err
	}

	switch cmd {
	case "ls":
		for _, name := range s.List() {
			o, err := s.Open(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-30s %12d bytes\n", name, o.Size())
		}
		return nil

	case "put":
		name, err := oneArg(args, "put <object>")
		if err != nil {
			return err
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		o, err := s.Create(name, 0)
		if err != nil {
			return err
		}
		if err := o.AppendWithHint(data, int64(len(data))); err != nil {
			return err
		}
		fmt.Printf("stored %q: %d bytes\n", name, len(data))
		return save()

	case "get":
		name, err := oneArg(args, "get <object>")
		if err != nil {
			return err
		}
		o, err := s.Open(name)
		if err != nil {
			return err
		}
		data, err := o.Read(0, o.Size())
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err

	case "append":
		name, err := oneArg(args, "append <object>")
		if err != nil {
			return err
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		o, err := s.Open(name)
		if err != nil {
			return err
		}
		if err := o.Append(data); err != nil {
			return err
		}
		fmt.Printf("appended %d bytes to %q (now %d)\n", len(data), name, o.Size())
		return save()

	case "insert":
		if len(args) != 2 {
			return fmt.Errorf("usage: insert <object> <offset>")
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		o, err := s.Open(args[0])
		if err != nil {
			return err
		}
		if err := o.Insert(off, data); err != nil {
			return err
		}
		fmt.Printf("inserted %d bytes at %d of %q (now %d)\n", len(data), off, args[0], o.Size())
		return save()

	case "delete":
		if len(args) != 3 {
			return fmt.Errorf("usage: delete <object> <offset> <n>")
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return err
		}
		o, err := s.Open(args[0])
		if err != nil {
			return err
		}
		if err := o.Delete(off, n); err != nil {
			return err
		}
		fmt.Printf("deleted %d bytes at %d of %q (now %d)\n", n, off, args[0], o.Size())
		return save()

	case "rm":
		name, err := oneArg(args, "rm <object>")
		if err != nil {
			return err
		}
		if err := s.Destroy(name); err != nil {
			return err
		}
		fmt.Printf("destroyed %q\n", name)
		return save()

	case "stat":
		if len(args) == 1 {
			o, err := s.Open(args[0])
			if err != nil {
				return err
			}
			u, err := o.Usage()
			if err != nil {
				return err
			}
			fmt.Printf("object %q\n", args[0])
			fmt.Printf("  size:          %d bytes\n", u.DataBytes)
			fmt.Printf("  segments:      %d (min %d, max %d pages)\n", u.SegmentCount, u.MinSegmentPgs, u.MaxSegmentPgs)
			fmt.Printf("  data pages:    %d\n", u.SegmentPages)
			fmt.Printf("  index pages:   %d (tree height %d)\n", u.IndexPages, u.TreeHeight)
			fmt.Printf("  utilization:   %.1f%%\n", u.Utilization(s.PageSize())*100)
			fmt.Printf("  threshold T:   %d pages\n", o.Threshold())
			return nil
		}
		free, err := s.FreePages()
		if err != nil {
			return err
		}
		fmt.Printf("store: page size %d, %d objects, %d free data pages, log %d bytes\n",
			s.PageSize(), len(s.List()), free, s.LogTail())
		return nil

	case "cp":
		if len(args) != 2 {
			return fmt.Errorf("usage: cp <src> <dst>")
		}
		if err := s.CopyObject(args[0], args[1]); err != nil {
			return err
		}
		fmt.Printf("copied %q to %q\n", args[0], args[1])
		return save()

	case "compact":
		name, err := oneArg(args, "compact <object>")
		if err != nil {
			return err
		}
		o, err := s.Open(name)
		if err != nil {
			return err
		}
		before, err := o.Usage()
		if err != nil {
			return err
		}
		if err := o.Compact(); err != nil {
			return err
		}
		after, err := o.Usage()
		if err != nil {
			return err
		}
		fmt.Printf("compacted %q: %d -> %d segments, %d -> %d index pages\n",
			name, before.SegmentCount, after.SegmentCount, before.IndexPages, after.IndexPages)
		return save()

	case "dump":
		name, err := oneArg(args, "dump <object>")
		if err != nil {
			return err
		}
		o, err := s.Open(name)
		if err != nil {
			return err
		}
		segs, err := o.Segments()
		if err != nil {
			return err
		}
		fmt.Printf("object %q: %d bytes in %d segments (page size %d)\n",
			name, o.Size(), len(segs), s.PageSize())
		fmt.Printf("  %-4s %12s %10s %12s %7s %s\n", "#", "logical off", "bytes", "start page", "pages", "fill")
		for i, sg := range segs {
			fill := float64(sg.Bytes) / (float64(sg.Pages) * float64(s.PageSize()))
			fmt.Printf("  %-4d %12d %10d %12d %7d %.1f%%\n",
				i, sg.LogicalOff, sg.Bytes, sg.StartPage, sg.Pages, fill*100)
		}
		return nil

	case "fsck":
		if err := s.Check(); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		if err := s.CheckNoLeaks(); err != nil {
			return fmt.Errorf("leak check failed: %w", err)
		}
		fmt.Println("buddy directories, object trees, page accounting: OK")
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func oneArg(args []string, usage string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: %s", usage)
	}
	return args[0], nil
}
