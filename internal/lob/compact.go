package lob

// Compact rewrites the object into the fewest, largest physically
// contiguous segments the free space allows — the maintenance analogue
// of creating the object with a size hint (§4.1).  A heavily edited
// object regains sequential-scan performance and sheds index pages.
//
// The copy is streamed segment group by segment group, so peak memory is
// bounded by the maximum segment size, and the old pages are freed only
// after the new image is written (no overwrite, as everywhere in EOS).
func (o *Object) Compact() error {
	if o.size == 0 {
		return nil
	}
	o.bumpVersion()
	if err := o.Trim(); err != nil {
		return err
	}
	m := o.m

	// Allocate the new image first: if space is too fragmented to hold a
	// second copy, fail before touching anything.
	newSegs, err := m.allocSegments(o.size)
	if err != nil {
		return err
	}
	// Stream the content across, one (max-segment-bounded) segment at a
	// time.
	var logical int64
	for _, seg := range newSegs {
		buf := make([]byte, seg.bytes)
		if err := o.ReadAt(buf, logical); err != nil {
			return err
		}
		if err := m.writeSegment(seg.ptr, buf); err != nil {
			return err
		}
		logical += seg.bytes
	}

	// Free the old tree (segments and index pages) and install the new
	// leaf entries under a fresh root.
	oldRoot := o.root
	for _, e := range oldRoot.entries {
		if err := m.freeSubtree(e, oldRoot.level); err != nil {
			return err
		}
	}
	o.root = &node{level: 1, entries: newSegs}
	if err := o.normalizeRoot(); err != nil {
		return err
	}
	o.size = o.root.size()
	o.tailStart, o.tailAlloc = 0, 0
	o.nextGrow = 1
	return nil
}
