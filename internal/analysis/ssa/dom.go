package ssa

// Dominator-tree construction: the iterative algorithm of Cooper,
// Harvey, and Kennedy ("A Simple, Fast Dominance Algorithm"), which on
// the small CFGs of storage-engine functions beats the Lengauer-Tarjan
// setup cost and is far simpler to verify.  Unreachable blocks (rpo ==
// -1) stay outside the tree: they have no dominator and dominate
// nothing.

// computeDominators fills Idom and the DFS numbering behind Dominates
// for every block reachable from the entry.
func (f *Func) computeDominators() {
	// Reverse postorder over reachable blocks.
	seen := make([]bool, len(f.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	order := make([]*Block, len(post))
	for i, b := range post {
		order[len(post)-1-i] = b
	}
	for i, b := range order {
		b.rpo = int32(i)
	}
	f.domOrder = order

	// Predecessor lists restricted to reachable blocks.
	preds := make([][]*Block, len(f.Blocks))
	for _, b := range order {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}

	// Iterate idom to a fixed point in reverse postorder.
	f.Entry.Idom = f.Entry // sentinel self-loop during iteration
	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			var idom *Block
			for _, p := range preds[b.Index] {
				if p.Idom == nil && p != f.Entry {
					continue // not yet processed
				}
				if idom == nil {
					idom = p
				} else {
					idom = intersect(idom, p)
				}
			}
			if idom != nil && b.Idom != idom {
				b.Idom = idom
				changed = true
			}
		}
	}
	f.Entry.Idom = nil // the entry has no immediate dominator

	// Number the dominator tree for O(1) Dominates queries.
	children := make([][]*Block, len(f.Blocks))
	for _, b := range order[1:] {
		if b.Idom != nil {
			children[b.Idom.Index] = append(children[b.Idom.Index], b)
		}
	}
	var clock int32
	var number func(b *Block)
	number = func(b *Block) {
		clock++
		b.domPre = clock
		for _, c := range children[b.Index] {
			number(c)
		}
		clock++
		b.domPost = clock
	}
	number(f.Entry)
}

// intersect walks two dominator-tree paths to their common ancestor
// using the rpo numbering (entry has the smallest rpo).
func intersect(a, b *Block) *Block {
	for a != b {
		for a.rpo > b.rpo {
			a = a.idomOrEntry()
		}
		for b.rpo > a.rpo {
			b = b.idomOrEntry()
		}
	}
	return a
}

// idomOrEntry follows the idom link, treating the iteration sentinel
// (entry pointing at itself) and nil uniformly.
func (b *Block) idomOrEntry() *Block {
	if b.Idom == nil {
		return b
	}
	return b.Idom
}

// Dominates reports whether a dominates b: every path from the entry
// to b passes through a.  A block dominates itself.  Unreachable
// blocks neither dominate nor are dominated.
func (f *Func) Dominates(a, b *Block) bool {
	if a.rpo < 0 || b.rpo < 0 {
		return false
	}
	return a.domPre <= b.domPre && b.domPost <= a.domPost
}

// Reachable reports whether b is reachable from the function entry.
func (f *Func) Reachable(b *Block) bool { return b.rpo >= 0 }
