package lob

import (
	"fmt"
	"sync/atomic"

	"github.com/eosdb/eos/internal/disk"
)

// Object is a handle on one large object: the in-memory root node (whose
// persistent placement belongs to the client via the descriptor), the
// object's segment size threshold, and append growth bookkeeping.
//
// An Object is not safe for concurrent use; EOS locks at the object root
// (or byte-range) granularity above this layer (§4.5).
type Object struct {
	m    *Manager
	root *node // eos:guardedby catEntry.latch -- the caller's per-object latch
	size int64 // eos:guardedby catEntry.latch

	threshold int // segment size threshold T, pages; fixed at creation

	// Append growth state (§4.1): the next segment to allocate when the
	// eventual size is unknown doubles until the maximum segment size.
	nextGrow int // eos:guardedby catEntry.latch
	// The last segment may be allocated beyond its trimmed length while
	// an append sequence is in progress.
	tailStart disk.PageNum // eos:guardedby catEntry.latch
	tailAlloc int          // eos:guardedby catEntry.latch -- pages allocated to the tail segment; 0 = trimmed

	// lsn is the log sequence number of the last logged update, stored in
	// the root so updates can be undone/redone idempotently (§4.5).
	// Atomic: SetLSN runs after a commit's force with no latch held,
	// concurrently with other transactions' pre-LSN snapshots.
	lsn atomic.Uint64

	// ver counts mutations.  Readers that stage data outside the object
	// latch (the sequential prefetcher) record the version before reading
	// and discard the staged bytes if any mutation intervened.
	ver atomic.Int64

	// published is the newest committed RootVersion (plus a short chain
	// of retained older ones).  Snapshot readers load it with no locks;
	// mutators store it via Publish after completing (or committing) an
	// update and before the superseded pages can be freed.
	published atomic.Pointer[RootVersion]
}

// NewObject creates an empty large object.  threshold <= 0 selects the
// manager's default T.
func (m *Manager) NewObject(threshold int) *Object {
	if threshold <= 0 {
		threshold = m.cfg.Threshold
	}
	if max := m.alloc.MaxSegmentPages(); threshold > max {
		threshold = max
	}
	return &Object{
		m:         m,
		root:      &node{level: 1},
		threshold: threshold,
		nextGrow:  1,
	}
}

// Size returns the object's length in bytes.
func (o *Object) Size() int64 { return o.size }

// Version returns the object's mutation counter.  It increases on every
// update (append, insert, delete, replace, truncate, compact, destroy);
// two equal readings with no mutator admitted in between guarantee the
// object's bytes did not change.
func (o *Object) Version() int64 { return o.ver.Load() }

// bumpVersion records that a mutation is taking place.
func (o *Object) bumpVersion() { o.ver.Add(1) }

// Threshold returns the object's current segment size threshold T.
func (o *Object) Threshold() int { return o.threshold }

// SetThreshold changes T.  "The threshold value does not have to be
// constant during the lifetime of a large object" (§4.4); it takes effect
// on subsequent updates.
func (o *Object) SetThreshold(t int) {
	if t < 1 {
		t = 1
	}
	if max := o.m.alloc.MaxSegmentPages(); t > max {
		t = max
	}
	o.threshold = t
}

// Rebind attaches the object to a different manager sharing the same
// volume and buffer pool.  The transaction layer uses it to route the
// object's allocation through a deferred-free wrapper for the duration
// of a transaction.
func (o *Object) Rebind(m *Manager) { o.m = m }

// LSN returns the log sequence number stored in the object root.
func (o *Object) LSN() uint64 { return o.lsn.Load() }

// SetLSN records the log sequence number of the latest update.
func (o *Object) SetLSN(lsn uint64) { o.lsn.Store(lsn) }

// Destroy deletes the entire object, returning every segment and index
// page to the free space without reading a single data page.
func (o *Object) Destroy() error {
	o.bumpVersion()
	if err := o.Trim(); err != nil {
		return err
	}
	for _, e := range o.root.entries {
		if err := o.m.freeSubtree(e, o.root.level); err != nil {
			return err
		}
	}
	o.root = &node{level: 1}
	o.size = 0
	o.nextGrow = 1
	o.tailStart, o.tailAlloc = 0, 0
	return nil
}

// effectiveThreshold computes the T used for one update.  With the
// adaptive extension ([Bili91a], §4.4 last paragraph) the threshold grows
// with the occupancy of the leaf's parent index node: the closer the
// parent is to splitting, the larger the segments we maintain.
func (o *Object) effectiveThreshold(parentEntries int) int {
	t := o.threshold
	if !o.m.cfg.AdaptiveThreshold {
		return t
	}
	occ := float64(parentEntries) / float64(maxFanout(o.m.vol.PageSize()))
	switch {
	case occ >= 0.9:
		t *= 8
	case occ >= 0.75:
		t *= 4
	case occ >= 0.5:
		t *= 2
	}
	if max := o.m.alloc.MaxSegmentPages(); t > max {
		t = max
	}
	return t
}

// findSegment descends the tree to the leaf entry containing byte offset
// off (off == size resolves to the last entry) and returns the entry, the
// byte offset where it starts, and the entry count of its parent node
// (for the adaptive threshold).
func (o *Object) findSegment(off int64) (e entry, entryStart int64, parentEntries int, err error) {
	if len(o.root.entries) == 0 {
		return entry{}, 0, 0, fmt.Errorf("%w: empty object", ErrOutOfBounds)
	}
	nd := o.root
	var base int64
	for {
		i, childStart := nd.childIndex(off - base)
		e = nd.entries[i]
		if nd.level == 1 {
			return e, base + childStart, len(nd.entries), nil
		}
		base += childStart
		nd, err = o.m.readNode(e.ptr)
		if err != nil {
			return entry{}, 0, 0, err
		}
	}
}

// checkRange validates [off, off+n) against the object bounds.
func (o *Object) checkRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > o.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, off, off+n, o.size)
	}
	return nil
}

// UsageInfo reports the storage footprint of an object.
type UsageInfo struct {
	DataBytes     int64 // logical object size
	SegmentCount  int   // leaf segments
	SegmentPages  int   // pages holding object bytes (incl. untrimmed tail)
	IndexPages    int   // index node pages below the root
	TreeHeight    int   // 1 = root points directly at segments
	WastedBytes   int64 // allocated segment bytes not holding data
	MinSegmentPgs int   // smallest segment, pages
	MaxSegmentPgs int   // largest segment, pages
}

// Utilization is DataBytes over all allocated bytes (segments + index).
func (u UsageInfo) Utilization(pageSize int) float64 {
	total := int64(u.SegmentPages+u.IndexPages) * int64(pageSize)
	if total == 0 {
		return 1
	}
	return float64(u.DataBytes) / float64(total)
}

// Usage walks the tree and reports the object's storage footprint.
func (o *Object) Usage() (UsageInfo, error) {
	u := UsageInfo{DataBytes: o.size, TreeHeight: o.root.level, MinSegmentPgs: 1 << 30}
	ps := o.m.vol.PageSize()
	var walk func(nd *node) error
	walk = func(nd *node) error {
		for _, e := range nd.entries {
			if nd.level == 1 {
				pages := pagesFor(e.bytes, ps)
				if o.tailAlloc > 0 && e.ptr == o.tailStart {
					pages = o.tailAlloc
				}
				u.SegmentCount++
				u.SegmentPages += pages
				u.WastedBytes += int64(pages)*int64(ps) - e.bytes
				if p := pagesFor(e.bytes, ps); p < u.MinSegmentPgs {
					u.MinSegmentPgs = p
				}
				if p := pagesFor(e.bytes, ps); p > u.MaxSegmentPgs {
					u.MaxSegmentPgs = p
				}
				continue
			}
			child, err := o.m.readNode(e.ptr)
			if err != nil {
				return err
			}
			u.IndexPages++
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(o.root); err != nil {
		return UsageInfo{}, err
	}
	if u.SegmentCount == 0 {
		u.MinSegmentPgs = 0
	}
	return u, nil
}

// Check validates the object's tree structure: levels descend by one,
// byte counts are positive and consistent, and non-root nodes respect the
// B-tree occupancy floor.
func (o *Object) Check() error {
	ps := o.m.vol.PageSize()
	min := minFanout(ps)
	var walk func(nd *node, isRoot bool) (int64, error)
	walk = func(nd *node, isRoot bool) (int64, error) {
		if !isRoot {
			if len(nd.entries) < min {
				return 0, fmt.Errorf("%w: node with %d entries below minimum %d", ErrCorruptNode, len(nd.entries), min)
			}
			if len(nd.entries) > maxFanout(ps) {
				return 0, fmt.Errorf("%w: node with %d entries above maximum %d", ErrCorruptNode, len(nd.entries), maxFanout(ps))
			}
		}
		var total int64
		for _, e := range nd.entries {
			if e.bytes <= 0 {
				return 0, fmt.Errorf("%w: non-positive entry length %d", ErrCorruptNode, e.bytes)
			}
			if nd.level > 1 {
				child, err := o.m.readNode(e.ptr)
				if err != nil {
					return 0, err
				}
				if child.level != nd.level-1 {
					return 0, fmt.Errorf("%w: child level %d under level %d", ErrCorruptNode, child.level, nd.level)
				}
				sub, err := walk(child, false)
				if err != nil {
					return 0, err
				}
				if sub != e.bytes {
					return 0, fmt.Errorf("%w: entry says %d bytes, subtree has %d", ErrCorruptNode, e.bytes, sub)
				}
			}
			total += e.bytes
		}
		return total, nil
	}
	total, err := walk(o.root, true)
	if err != nil {
		return err
	}
	if total != o.size {
		return fmt.Errorf("%w: root total %d != size %d", ErrCorruptNode, total, o.size)
	}
	return nil
}

// segmentList returns (start page, byte length) of every leaf segment in
// order; used by tests and the fragmentation experiments.
func (o *Object) segmentList() ([]entry, error) {
	var out []entry
	var walk func(nd *node) error
	walk = func(nd *node) error {
		for _, e := range nd.entries {
			if nd.level == 1 {
				out = append(out, e)
				continue
			}
			child, err := o.m.readNode(e.ptr)
			if err != nil {
				return err
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(o.root); err != nil {
		return nil, err
	}
	return out, nil
}

// PageRun is a contiguous run of pages owned by an object.
type PageRun struct {
	Start disk.PageNum
	Pages int
}

// ReachablePages lists every page run the object owns — its leaf
// segments (including any untrimmed tail pages) and its index node
// pages.  Recovery reserves exactly these runs when rebuilding the free
// space map from the catalog.
func (o *Object) ReachablePages() ([]PageRun, error) {
	var runs []PageRun
	ps := o.m.vol.PageSize()
	var walk func(nd *node) error
	walk = func(nd *node) error {
		for _, e := range nd.entries {
			if nd.level == 1 {
				pages := pagesFor(e.bytes, ps)
				if o.tailAlloc > 0 && e.ptr == o.tailStart && o.tailAlloc > pages {
					pages = o.tailAlloc
				}
				runs = append(runs, PageRun{Start: e.ptr, Pages: pages})
				continue
			}
			runs = append(runs, PageRun{Start: e.ptr, Pages: 1})
			child, err := o.m.readNode(e.ptr)
			if err != nil {
				return err
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(o.root); err != nil {
		return nil, err
	}
	return runs, nil
}

// SegmentPageCounts returns the page count of every segment in logical
// order, for the clustering experiments.
func (o *Object) SegmentPageCounts() ([]int, error) {
	segs, err := o.segmentList()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(segs))
	for i, e := range segs {
		out[i] = pagesFor(e.bytes, o.m.vol.PageSize())
	}
	return out, nil
}

// SegmentInfo describes one leaf segment of an object.
type SegmentInfo struct {
	LogicalOff int64        // byte offset of the segment's first byte
	Bytes      int64        // bytes stored in the segment
	StartPage  disk.PageNum // first volume page
	Pages      int          // pages occupied (all full except the last)
}

// Segments lists the object's leaf segments in logical order — the
// physical layout tooling (eosctl dump) displays.
func (o *Object) Segments() ([]SegmentInfo, error) {
	segs, err := o.segmentList()
	if err != nil {
		return nil, err
	}
	out := make([]SegmentInfo, len(segs))
	var off int64
	for i, e := range segs {
		out[i] = SegmentInfo{
			LogicalOff: off,
			Bytes:      e.bytes,
			StartPage:  e.ptr,
			Pages:      pagesFor(e.bytes, o.m.vol.PageSize()),
		}
		off += e.bytes
	}
	return out, nil
}
