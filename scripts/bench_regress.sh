#!/usr/bin/env bash
# bench_regress.sh — compare the read-path (BenchmarkParallelRead*,
# BenchmarkParallelScan*) and write-path (BenchmarkParallelCommit*)
# benchmarks against the checked-in baseline and fail on >10%
# regressions, and gate the snapshot read mode's intra-run ratios.
#
# Usage: scripts/bench_regress.sh [baseline-file]
#
# Three benchmark passes run:
#
#   gate  — the raw in-memory *Mem benchmarks with -benchmem.  The
#           hard gate compares allocs/op: allocation counts on the
#           read and commit paths are deterministic, so a >10%
#           increase is a real code change (extra staging copies,
#           per-read goroutines, per-commit force bookkeeping,
#           lock-splitting gone wrong), never machine noise.
#   info  — ns/op deltas for everything, plus the latency-simulated
#           *Lat benchmarks and a benchstat comparison when benchstat
#           is installed.  Wall-clock times are printed but do not
#           fail the script: on shared runners unchanged code drifts
#           well past any usable threshold (50%+ observed), so a
#           timing gate would be red noise — eyeball the info rows
#           and the benchstat table when the gate flags nothing.
#   snap  — BenchmarkSnapshotScan* (latency-simulated scans under an
#           8-writer storm).  The hard gate here compares ratios
#           WITHIN the run, which cancels machine drift: lock-free
#           snapshot scans must sustain >=3x the locked-scan
#           throughput under the storm, and >=90% of the idle-store
#           scan throughput (BENCH_snapshot_scan.json records the
#           accepted numbers).
#   realio — BenchmarkRealIO* (file-backed volumes: pwritev runs,
#           dispatcher write-back, durable commits, pool reads on
#           real page files).  allocs/op rows gate like the *Mem
#           pass; ns/op depends on the runner's filesystem and is
#           informational (BENCH_real_io.json records accepted
#           numbers and the vectored-vs-pagewise ratio).
#
# Regenerate the baseline after intentional read- or write-path
# changes:
#
#   { go test -run '^$' -bench 'BenchmarkParallel.*Mem' -cpu=1,8 \
#         -benchtime=2000x -count=5 -benchmem . ;
#     go test -run '^$' -bench 'BenchmarkParallel.*Lat' -cpu=1,8 \
#         -benchtime=100x -count=3 . ;
#     go test -run '^$' -bench 'BenchmarkSnapshotScan' -cpu=8 \
#         -benchtime=200x -count=2 . ;
#     go test -run '^$' -bench 'BenchmarkRealIO' \
#         -benchtime=50x -count=3 -benchmem . ; } > bench/baseline.txt

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-bench/baseline.txt}"
THRESHOLD_PCT=10
CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT

if [[ ! -f "$BASELINE" ]]; then
    echo "baseline $BASELINE not found" >&2
    exit 2
fi

echo "running read+write-path benchmarks (gate: *Mem allocs/op, info: ns/op and *Lat)..."
{
    go test -run '^$' -bench 'BenchmarkParallel.*Mem' -cpu=1,8 \
        -benchtime=2000x -count=5 -benchmem .
    go test -run '^$' -bench 'BenchmarkParallel.*Lat' -cpu=1,8 \
        -benchtime=100x -count=3 .
    go test -run '^$' -bench 'BenchmarkSnapshotScan' -cpu=8 \
        -benchtime=200x -count=2 .
    go test -run '^$' -bench 'BenchmarkRealIO' \
        -benchtime=50x -count=3 -benchmem .
} | tee "$CURRENT"

# Snapshot read-mode gate: intra-run throughput ratios (best MB/s per
# mode over -count runs; scheduler spikes only ever make a run slower).
awk '
/^BenchmarkSnapshotScan/ {
    for (i = 3; i < NF; i++) if ($(i + 1) == "MB/s" && $i > best[$1]) best[$1] = $i
}
END {
    idle = best["BenchmarkSnapshotScanIdle-8"]
    locked = best["BenchmarkSnapshotScanUnderWrites/locked-8"]
    snap = best["BenchmarkSnapshotScanUnderWrites/snapshot-8"]
    if (idle == 0 || locked == 0 || snap == 0) {
        print "snapshot gate: benchmark rows missing"; exit 1
    }
    status = 0
    r = snap / locked
    flag = (r >= 3.0) ? "ok" : "REGRESSION"; if (r < 3.0) status = 1
    printf "\n== snapshot read-mode gate (intra-run ratios) ==\n"
    printf "snapshot vs locked under storm   %6.1f vs %6.1f MB/s  ratio %4.2fx  (>=3.0x)  %s\n", snap, locked, r, flag
    r = snap / idle
    flag = (r >= 0.9) ? "ok" : "REGRESSION"; if (r < 0.9) status = 1
    printf "snapshot under storm vs idle     %6.1f vs %6.1f MB/s  ratio %4.2fx  (>=0.90x) %s\n", snap, idle, r, flag
    exit status
}
' "$CURRENT"

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "== benchstat comparison (baseline vs current) =="
    benchstat "$BASELINE" "$CURRENT"
fi

# Per-benchmark minima over -count runs (scheduler spikes only ever
# make a run slower).  allocs/op rows gate; ns/op rows are info.
awk -v thresh="$THRESHOLD_PCT" '
function record(file, name, metric, v) {
    if (!((file, name, metric) in best) || v < best[file, name, metric])
        best[file, name, metric] = v
    names[name] = 1
}
/^Benchmark/ {
    file = (FILENAME == base ? "base" : "cur")
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")     record(file, $1, "ns", $i)
        if ($(i + 1) == "allocs/op") record(file, $1, "allocs", $i)
    }
}
END {
    status = 0
    printf "\n== regression gate (allocs/op >%d%% fails; ns/op informational) ==\n", thresh
    for (n in names) {
        if ((("base" SUBSEP n SUBSEP "ns") in best) && (("cur" SUBSEP n SUBSEP "ns") in best)) {
            b = best["base", n, "ns"]; c = best["cur", n, "ns"]
            printf "%-55s ns/op     base %12.0f  cur %12.0f  %+7.1f%%  info\n", n, b, c, (c - b) / b * 100
        }
        if ((("base" SUBSEP n SUBSEP "allocs") in best) && (("cur" SUBSEP n SUBSEP "allocs") in best)) {
            b = best["base", n, "allocs"]; c = best["cur", n, "allocs"]
            delta = (b > 0) ? (c - b) / b * 100 : (c > 0 ? 100 : 0)
            flag = "ok"
            if (delta > thresh) { flag = "REGRESSION"; status = 1 }
            printf "%-55s allocs/op base %12.0f  cur %12.0f  %+7.1f%%  %s\n", n, b, c, delta, flag
        }
    }
    exit status
}
' base="$BASELINE" "$BASELINE" "$CURRENT"
