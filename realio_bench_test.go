package eos_test

// Real-I/O benchmarks: the same storage engine running on file-backed
// volumes (pread/pwrite/pwritev/fdatasync against temp-dir page files)
// instead of the cost-modelled simulator.  Four aspects of the file
// backend are measured:
//
//   - BenchmarkRealIOWriteRun: one vectored pwritev submission of a
//     64-page dirty run vs 64 page-at-a-time pwrite calls.
//   - BenchmarkRealIODispatch: 16 independent dirty runs issued inline
//     vs overlapped through the async dispatcher's worker pool.
//   - BenchmarkRealIOCommit4KB: the durable commit path — WAL append
//     plus a real fdatasync per transaction.
//   - BenchmarkRealIORead64KB: 64 KB object reads through the buffer
//     pool backed by real page files.
//
// Wall-clock numbers here depend on the machine's filesystem and
// cache; scripts/bench_regress.sh treats ns/op as informational and
// gates allocs/op, which stays deterministic on these paths.
//
// Run with: go test -bench RealIO -benchtime=50x -benchmem

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

const realPage = 4096

func realVolume(b *testing.B, pages disk.PageNum) *disk.FileVolume {
	b.Helper()
	v, err := disk.CreateFileVolume(filepath.Join(b.TempDir(), "bench.eos"),
		realPage, pages, disk.FileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = v.Close() })
	return v
}

func realStore(b *testing.B, opts eos.Options) *eos.Store {
	b.Helper()
	opts.Backend = eos.BackendFile
	opts.PageSize = realPage
	opts.DataPages = 8192
	opts.LogPages = 2048
	s, err := eos.CreateAt(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	return s
}

func realRunPages(n int) [][]byte {
	pages := make([][]byte, n)
	for i := range pages {
		pages[i] = make([]byte, realPage)
		for j := range pages[i] {
			pages[i][j] = byte(i + j)
		}
	}
	return pages
}

// BenchmarkRealIOWriteRun writes one 64-page (256 KB) run per
// iteration: vectored issues a single WriteRun (one pwritev batch),
// pagewise issues 64 single-page WritePages calls — the syscall-count
// difference the coalesced flush path exists to exploit.
func BenchmarkRealIOWriteRun(b *testing.B) {
	const runPages = 64
	pages := realRunPages(runPages)
	flat := make([]byte, runPages*realPage)
	b.Run("vectored", func(b *testing.B) {
		v := realVolume(b, 4096)
		b.SetBytes(runPages * realPage)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.WriteRun(0, pages); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pagewise", func(b *testing.B) {
		v := realVolume(b, 4096)
		b.SetBytes(runPages * realPage)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := 0; p < runPages; p++ {
				copy(flat, pages[p])
				if err := v.WritePages(disk.PageNum(p), 1, flat[:realPage]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkRealIODispatch writes 16 independent 16-page runs (1 MB
// total) per iteration: inline issues them sequentially from one
// goroutine, async overlaps them through an 8-worker dispatcher — the
// checkpoint write-back shape with IODepth set.
func BenchmarkRealIODispatch(b *testing.B) {
	const runs, runPages = 16, 16
	pages := realRunPages(runs * runPages)
	b.Run("inline", func(b *testing.B) {
		v := realVolume(b, 4096)
		b.SetBytes(runs * runPages * realPage)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < runs; r++ {
				start := disk.PageNum(r * runPages)
				if err := v.WriteRun(start, pages[r*runPages:(r+1)*runPages]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("async8", func(b *testing.B) {
		v := realVolume(b, 4096)
		d := disk.NewDispatcher(v, 8, 2*runs)
		b.Cleanup(d.Close)
		batch := d.NewBatch()
		b.SetBytes(runs * runPages * realPage)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < runs; r++ {
				sqe := disk.SQE{
					Op:    disk.OpWriteRun,
					Start: disk.PageNum(r * runPages),
					Pages: pages[r*runPages : (r+1)*runPages],
				}
				if err := batch.Submit(sqe); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := batch.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRealIOCommit4KB measures the durable commit path on real
// files: replace 4 KB in place and commit, paying a WAL append plus a
// real fdatasync per transaction.  A periodic checkpoint (outside the
// timer) keeps the log from filling.
func BenchmarkRealIOCommit4KB(b *testing.B) {
	s := realStore(b, eos.Options{Threshold: 8})
	o, err := s.Create("obj", 0)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	if err := o.Append(data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%256 == 255 {
			b.StopTimer()
			if err := s.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		tx, err := s.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Replace("obj", 0, data); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealIORead64KB measures 64 KB reads at random offsets from
// a multi-segment object stored on real page files, through the
// buffer pool's fixed frames.
func BenchmarkRealIORead64KB(b *testing.B) {
	const objSize = 4 << 20
	s := realStore(b, eos.Options{Threshold: 8, PoolShards: 8})
	o, err := s.Create("obj", 0)
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 256<<10)
	for off := 0; off < objSize; off += len(chunk) {
		for j := range chunk {
			chunk[j] = byte(off + j)
		}
		if err := o.Append(chunk); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(rng.Intn(objSize - 64<<10))
		if err := o.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}
