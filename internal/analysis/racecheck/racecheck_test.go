package racecheck_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/racecheck"
)

func TestRacecheck(t *testing.T) {
	analyzertest.Run(t, "../testdata", racecheck.Analyzer, "racecheck_bad", "racecheck_clean")
}
