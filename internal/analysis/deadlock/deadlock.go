// Package deadlock defines the whole-program lock-acquisition
// analyzer: the interprocedural extension of lockorder.
//
// lockorder verifies the ranked latch lattice within one function
// body; it cannot see a lock acquired by a callee.  A function that
// holds the pool-shard latch and calls a helper that (three calls
// down) takes the store manager latch inverts the lattice just as
// surely as taking both locks in one body — and such inversions are
// exactly the cross-module latch bugs that dominate object-store
// failure studies.  This analyzer closes the gap with per-function
// lock summaries propagated bottom-up over the ssa call graph:
//
//   - Acquires(f): every ranked lock f may acquire, directly or
//     through any chain of callees (static, CHA-resolved interface,
//     and cross-package calls via exported LockFact object facts),
//     each with a representative call chain for the diagnostic.
//
//   - At every call site, the locks held at that point (tracked along
//     the CFG exactly as lockorder tracks them) are checked against
//     the callee's transitive acquisitions: an acquisition ranked
//     below a held lock is an interprocedural inversion, and a
//     re-acquisition of a held singleton engine lock (Store.mu,
//     Log.mu, ...) is a guaranteed self-deadlock — Go mutexes are not
//     reentrant.
//
//   - Every held-then-acquired pair also becomes an edge in a global
//     lock graph, merged across packages through a package fact;
//     a cycle among same-rank locks (which the rank check alone
//     admits) is reported with the full edge list.
//
// Direct, single-function inversions are lockorder's to report and are
// deliberately not re-reported here; a diagnostic from this analyzer
// always names a call chain of at least one callee.
//
// Per-instance locks (catEntry.latch, shard.mu, Txn.wmu,
// deferredAlloc.mu) are exempt from the self-deadlock check: two
// instances of the same field (the source and destination latches of a
// copy, two pool shards) may legitimately nest, and summaries track
// lock identity by lattice key, not by instance.  Dynamic calls that
// resolve to nothing (func values, closures) are ignored — the
// conservative direction for a linter that must stay quiet on clean
// code.
package deadlock

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/eosdb/eos/internal/analysis/ignore"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

const doc = `check the latch lattice across function boundaries (whole-program)

A callee's lock acquisitions happen while the caller's locks are held:
if any function reachable from a call site acquires a lock ranked below
one held at that site, two goroutines can take the pair in opposite
orders and deadlock.  Re-acquiring a held singleton engine lock through
any call chain self-deadlocks immediately (sync.Mutex is not
reentrant), and opposite-order nesting of same-rank locks forms a cycle
the rank lattice cannot see.  Summaries propagate across packages via
analysis facts.`

// Analyzer is the deadlock analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "deadlock",
	Doc:       doc,
	Requires:  []*analysis.Analyzer{ssa.Analyzer, ignore.Analyzer},
	Run:       run,
	FactTypes: []analysis.Fact{new(LockFact), new(GraphFact)},
}

// maxChain bounds the call chain recorded per acquisition; deeper
// chains are truncated with an ellipsis in diagnostics.
const maxChain = 8

// Acq is one transitive lock acquisition of a function.
type Acq struct {
	Key    string   // lattice key ("Store.mu")
	Rank   int      // lattice rank
	Shared bool     // RLock rather than Lock
	Via    []string // call chain below the summarized function; empty = acquired directly
	Pos    string   // "file:line" of the Lock call itself
}

// LockFact is the exported per-function summary: every ranked lock the
// function may acquire, directly or transitively.
type LockFact struct {
	Acquires []Acq
}

// AFact marks LockFact as an analysis fact.
func (*LockFact) AFact() {}

func (f *LockFact) String() string {
	keys := make([]string, len(f.Acquires))
	for i, a := range f.Acquires {
		keys[i] = a.Key
	}
	return "acquires(" + strings.Join(keys, ",") + ")"
}

// Edge is one held→acquired ordering observed somewhere in the
// program.
type Edge struct {
	From, To         string
	FromRank, ToRank int
	Fn               string   // label of the function holding From
	Via              []string // call chain when the acquisition is in a callee
	Pos              string   // "file:line" of the acquisition or call site
}

// GraphFact is the exported package-level lock graph: this package's
// edges merged with every imported package's graph, so the root
// package of a build sees the whole program's orderings.
type GraphFact struct {
	Edges []Edge
}

// AFact marks GraphFact as an analysis fact.
func (*GraphFact) AFact() {}

func (f *GraphFact) String() string { return fmt.Sprintf("lockgraph(%d edges)", len(f.Edges)) }

// singletonKeys are the lattice keys whose owner exists once per
// store: re-acquiring one of these while it is held is a guaranteed
// self-deadlock.  Per-instance locks (object latches, pool shards,
// per-transaction mutexes) may nest across instances and are excluded.
var singletonKeys = map[string]bool{
	"Store.mu":        true,
	"LockTable.mu":    true,
	"EpochManager.mu": true,
	"Manager.mu":      true,
	"Pool.flushMu":    true,
	"Log.forceMu":      true,
	"Log.mu":           true,
	"Dispatcher.mu":    true,
	"Volume.mu":        true,
	"FileVolume.mu":    true,
	"Volume.accMu":     true,
	"FileVolume.accMu": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	pr := pass.ResultOf[ssa.Analyzer].(*ssa.Program)
	ig := ignore.For(pass)

	d := &checker{pass: pass, pr: pr, ig: ig, summaries: make(map[*ssa.Func]*LockFact)}
	d.summarize()
	for _, f := range pr.Funcs {
		d.checkFunc(f)
	}
	d.exportFacts()
	d.checkCycles()
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	pr        *ssa.Program
	ig        *ignore.Reporter
	summaries map[*ssa.Func]*LockFact
	edges     []Edge      // edges discovered in this package
	edgePos   []token.Pos // parallel: local position for reporting
	merged    *GraphFact  // this package's edges merged with imports'
}

// summarize computes Acquires bottom-up over the SCC condensation,
// iterating each component to a fixed point (the sets grow
// monotonically toward the finite lattice key set, so this
// terminates).
func (c *checker) summarize() {
	for _, scc := range c.pr.SCCs {
		for _, f := range scc {
			c.summaries[f] = &LockFact{}
		}
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				if c.updateSummary(f) {
					changed = true
				}
			}
		}
	}
}

// updateSummary recomputes f's summary from its instructions and its
// callees' current summaries, reporting whether it grew.
func (c *checker) updateSummary(f *ssa.Func) bool {
	sum := c.summaries[f]
	have := make(map[string]bool, len(sum.Acquires))
	for _, a := range sum.Acquires {
		have[a.Key] = true
	}
	grew := false
	add := func(a Acq) {
		if have[a.Key] {
			return
		}
		have[a.Key] = true
		sum.Acquires = append(sum.Acquires, a)
		grew = true
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Kind == ssa.KLock {
				add(Acq{Key: in.LockKey, Rank: in.LockRank, Shared: in.Shared,
					Pos: c.posString(in.Call.Pos())})
				continue
			}
			for _, callee := range in.Callees {
				for _, a := range c.calleeAcquires(callee) {
					via := append([]string{ssa.FuncLabel(c.pass.Pkg, callee)}, a.Via...)
					if len(via) > maxChain {
						via = via[:maxChain]
					}
					add(Acq{Key: a.Key, Rank: a.Rank, Shared: a.Shared, Via: via, Pos: a.Pos})
				}
			}
		}
	}
	return grew
}

// calleeAcquires returns the summary of a callee: the in-progress
// package-local summary, or the imported fact for a function from
// another package.
func (c *checker) calleeAcquires(callee *types.Func) []Acq {
	if f, ok := c.pr.ByObj[callee]; ok {
		return c.summaries[f].Acquires
	}
	var fact LockFact
	if c.pass.ImportObjectFact(callee, &fact) {
		return fact.Acquires
	}
	return nil
}

// held is one currently held lock during the call-site walk.
type held struct {
	key    string
	rank   int
	shared bool
	sticky bool // deferred unlock: held to function exit
}

// checkFunc walks f's CFG with the held-lock set, checking every call
// site against its callees' summaries and recording lock-graph edges.
func (c *checker) checkFunc(f *ssa.Func) {
	if f.Entry == nil {
		return
	}
	// Reported (call site, lock key) pairs, to report each once even
	// when several CHA candidates or several held locks trip it.
	reported := make(map[string]bool)
	seen := make(map[*ssa.Block]bool)
	var visit func(b *ssa.Block, stack []held)
	visit = func(b *ssa.Block, stack []held) {
		if seen[b] {
			return
		}
		seen[b] = true
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Kind {
			case ssa.KLock:
				for _, h := range stack {
					c.addEdge(h, Acq{Key: in.LockKey, Rank: in.LockRank, Shared: in.Shared},
						f, nil, in.Call.Pos())
				}
				stack = append(stack[:len(stack):len(stack)],
					held{key: in.LockKey, rank: in.LockRank, shared: in.Shared, sticky: in.Deferred})
			case ssa.KUnlock:
				if in.Deferred {
					for j := range stack {
						if stack[j].key == in.LockKey && !stack[j].sticky {
							stack[j].sticky = true
							break
						}
					}
					break
				}
				for j := len(stack) - 1; j >= 0; j-- {
					if stack[j].key == in.LockKey && !stack[j].sticky {
						stack = append(stack[:j:j], stack[j+1:]...)
						break
					}
				}
			default:
				if len(stack) == 0 {
					continue
				}
				for _, callee := range in.Callees {
					label := ssa.FuncLabel(c.pass.Pkg, callee)
					for _, a := range c.calleeAcquires(callee) {
						chain := append([]string{label}, a.Via...)
						for _, h := range stack {
							c.addEdge(h, a, f, chain, in.Call.Pos())
							c.checkPair(f, h, a, chain, in.Call.Pos(), reported)
						}
					}
				}
			}
		}
		for _, s := range b.Succs {
			visit(s, stack)
		}
	}
	visit(f.Entry, nil)
}

// checkPair reports an interprocedural inversion or singleton
// self-deadlock for one held lock against one transitive acquisition.
func (c *checker) checkPair(f *ssa.Func, h held, a Acq, chain []string, pos token.Pos, reported map[string]bool) {
	key := fmt.Sprintf("%d|%s|%s", pos, h.key, a.Key)
	if reported[key] {
		return
	}
	switch {
	case a.Rank < h.rank:
		reported[key] = true
		c.ig.Report(pos,
			"interprocedural lock order inversion: call chain %s acquires %s (rank %d, %s) at %s while %s holds %s (rank %d, %s); the lattice order is manager → lock-table → object → txn → pool-shard → wal → disk",
			strings.Join(chain, " → "), a.Key, a.Rank, ssa.RankName(a.Rank), a.Pos,
			ssa.FuncLabel(c.pass.Pkg, f.Obj), h.key, h.rank, ssa.RankName(h.rank))
	case a.Key == h.key && singletonKeys[a.Key] && !(h.shared && a.Shared):
		reported[key] = true
		c.ig.Report(pos,
			"self-deadlock: call chain %s re-acquires %s at %s while %s already holds it; engine mutexes are not reentrant",
			strings.Join(chain, " → "), a.Key, a.Pos, ssa.FuncLabel(c.pass.Pkg, f.Obj))
	}
}

// addEdge records one held→acquired ordering for the global lock
// graph.  Self-edges carry no ordering information and are dropped.
func (c *checker) addEdge(h held, a Acq, f *ssa.Func, via []string, pos token.Pos) {
	if h.key == a.Key {
		return
	}
	c.edges = append(c.edges, Edge{
		From: h.key, To: a.Key,
		FromRank: h.rank, ToRank: a.Rank,
		Fn:  ssa.FuncLabel(c.pass.Pkg, f.Obj),
		Via: via,
		Pos: c.posString(pos),
	})
	c.edgePos = append(c.edgePos, pos)
}

// exportFacts publishes each function's summary and the package's
// merged lock graph.
func (c *checker) exportFacts() {
	for f, sum := range c.summaries {
		if len(sum.Acquires) == 0 {
			continue
		}
		sort.Slice(sum.Acquires, func(i, j int) bool { return sum.Acquires[i].Key < sum.Acquires[j].Key })
		c.pass.ExportObjectFact(f.Obj, sum)
	}
	merged := &GraphFact{}
	seen := make(map[string]bool)
	addAll := func(edges []Edge) {
		for _, e := range edges {
			k := e.From + "→" + e.To + "@" + e.Pos
			if seen[k] {
				continue
			}
			seen[k] = true
			merged.Edges = append(merged.Edges, e)
		}
	}
	addAll(c.edges)
	for _, imp := range c.pass.Pkg.Imports() {
		var g GraphFact
		if c.pass.ImportPackageFact(imp, &g) {
			addAll(g.Edges)
		}
	}
	c.pass.ExportPackageFact(merged)
	c.merged = merged
}

// checkCycles looks for cycles among same-rank edges of the merged
// graph.  Rank-inverting orderings are already diagnosed pairwise; a
// same-rank cycle (wmu → deferredAlloc.mu somewhere, the reverse
// elsewhere) is the case the lattice admits silently.
func (c *checker) checkCycles() {
	adj := make(map[string][]int)
	for i, e := range c.merged.Edges {
		if e.FromRank != e.ToRank {
			continue
		}
		adj[e.From] = append(adj[e.From], i)
	}
	// For every local same-rank edge, search for a path back from its
	// target to its source through same-rank edges: a cycle.
	reportedCycle := make(map[string]bool)
	for i, e := range c.edges {
		if e.FromRank != e.ToRank {
			continue
		}
		if path := c.findPath(adj, e.To, e.From, 8); path != nil {
			cycleKey := cycleID(append([]Edge{e}, path...))
			if reportedCycle[cycleKey] {
				continue
			}
			reportedCycle[cycleKey] = true
			var legs []string
			legs = append(legs, fmt.Sprintf("%s → %s (%s, %s)", e.From, e.To, e.Fn, e.Pos))
			for _, pe := range path {
				legs = append(legs, fmt.Sprintf("%s → %s (%s, %s)", pe.From, pe.To, pe.Fn, pe.Pos))
			}
			c.ig.Report(c.edgePos[i],
				"deadlock cycle among same-rank locks: %s; two goroutines taking these in opposite orders hang",
				strings.Join(legs, "; "))
		}
	}
}

// findPath searches the same-rank edge graph for a path from src to
// dst (bounded depth), returning the edge list.
func (c *checker) findPath(adj map[string][]int, src, dst string, depth int) []Edge {
	if depth == 0 {
		return nil
	}
	for _, i := range adj[src] {
		e := c.merged.Edges[i]
		if e.To == dst {
			return []Edge{e}
		}
		if rest := c.findPath(adj, e.To, dst, depth-1); rest != nil {
			return append([]Edge{e}, rest...)
		}
	}
	return nil
}

// cycleID canonicalizes a cycle's identity independent of the starting
// edge.
func cycleID(edges []Edge) string {
	keys := make([]string, len(edges))
	for i, e := range edges {
		keys[i] = e.From + "→" + e.To
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func (c *checker) posString(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", trimPath(p.Filename), p.Line)
}

// trimPath keeps the last two path segments: enough to identify the
// file, stable across checkouts.
func trimPath(file string) string {
	parts := strings.Split(file, "/")
	if len(parts) <= 2 {
		return file
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
