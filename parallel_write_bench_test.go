package eos_test

// Parallel write-path benchmarks.  Two store configurations are compared:
//
//   - serialized: SerialWAL (one positional log write per append, every
//     commit forces the log itself), single pool shard, volume queue
//     depth 1 — the original write path, in which every committer paid
//     its own seek+force.
//   - group: buffered log tail + leader/follower group commit, sharded
//     pool with parallel coalescing write-back, queue depth 16.
//
// Each benchmark iteration is one transaction: Begin, Replace a 512-byte
// stripe of the worker's own object, Commit.  Under -cpu=8 eight
// committers run concurrently and the group configuration amortizes one
// batched log flush+force across the whole batch; the serialized
// configuration pays per-record writes and per-commit forces.
//
// The *Lat benchmarks run both volumes in latency-simulation mode, so
// they measure what batching buys in device time; the *Mem benchmarks
// bound the locking/alloc overhead.  The commit-throughput acceptance
// numbers in BENCH_write_group_commit.json come from:
//
//	go test -bench ParallelCommitLat -cpu=1,8 -benchtime=100x
//
// Keep -benchtime bounded (≤2000x): each committed transaction appends
// ~1 KB of log records, each run starts from a fresh checkpoint that
// truncates the log, and the 32 MB log volume holds ~30k commits per
// run before ErrLogFull.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

const (
	wparObjects = 16
	wparObjSize = 64 << 10
	wparStripe  = 512
)

type wparStore struct {
	s      *eos.Store
	vol    *disk.Volume
	logVol *disk.Volume
}

var wparStores = map[string]*wparStore{}
var wparStoresMu sync.Mutex

// wparStoreFor builds (once per configuration) a store with wparObjects
// small objects; committers each Replace inside their own object, so
// transactions conflict only on the shared write path, not on locks.
func wparStoreFor(b *testing.B, name string, opts eos.Options) *wparStore {
	b.Helper()
	wparStoresMu.Lock()
	defer wparStoresMu.Unlock()
	if st, ok := wparStores[name]; ok {
		return st
	}
	vol := disk.MustNewVolume(parPage, 4096, fastDiskModel())
	logVol := disk.MustNewVolume(parPage, 8192, fastDiskModel())
	s, err := eos.Format(vol, logVol, opts)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, wparObjSize)
	for i := 0; i < wparObjects; i++ {
		o, err := s.Create(fmt.Sprintf("wpar-%d", i), 0)
		if err != nil {
			b.Fatal(err)
		}
		for j := range data {
			data[j] = byte(i + j)
		}
		if err := o.Append(data); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	st := &wparStore{s: s, vol: vol, logVol: logVol}
	wparStores[name] = st
	return st
}

var serialWriteOpts = eos.Options{Threshold: 8, PoolShards: 1, SerialWAL: true}
var groupWriteOpts = eos.Options{Threshold: 8, PoolShards: 8}

// benchCommit measures committed-transactions-per-second: every
// iteration Replaces one stripe of the calling worker's object and
// commits.  Workers use distinct objects so the measured contention is
// the write path itself (log, pool, volume), not the lock table.
func benchCommit(b *testing.B, st *wparStore) {
	// Start each run from a truncated log so long -benchtime runs and
	// -count repetitions never hit ErrLogFull.
	if err := st.s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(seq.Add(1)-1) % wparObjects
		name := fmt.Sprintf("wpar-%d", w)
		stripe := make([]byte, wparStripe)
		n := 0
		for pb.Next() {
			off := int64((n * wparStripe) % (wparObjSize - wparStripe))
			for j := range stripe {
				stripe[j] = byte(w + n + j)
			}
			n++
			tx, err := st.s.Begin()
			if err != nil {
				b.Fatal(err)
			}
			if err := tx.Replace(name, off, stripe); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParallelCommitLat(b *testing.B) {
	b.Run("serialized", func(b *testing.B) {
		st := wparStoreFor(b, "serialized", serialWriteOpts)
		st.vol.SetLatency(true, 1)
		st.logVol.SetLatency(true, 1)
		defer st.vol.SetLatency(false, 0)
		defer st.logVol.SetLatency(false, 0)
		benchCommit(b, st)
	})
	b.Run("group", func(b *testing.B) {
		st := wparStoreFor(b, "group", groupWriteOpts)
		st.vol.SetLatency(true, 16)
		st.logVol.SetLatency(true, 16)
		defer st.vol.SetLatency(false, 0)
		defer st.logVol.SetLatency(false, 0)
		benchCommit(b, st)
	})
}

func BenchmarkParallelCommitMem(b *testing.B) {
	b.Run("serialized", func(b *testing.B) {
		benchCommit(b, wparStoreFor(b, "serialized", serialWriteOpts))
	})
	b.Run("group", func(b *testing.B) {
		benchCommit(b, wparStoreFor(b, "group", groupWriteOpts))
	})
}
