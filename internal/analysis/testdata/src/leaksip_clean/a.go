// Package leaksip_clean holds wrapper-acquired resources that are
// correctly released on every path — directly, through releaser
// helpers, or by propagating the obligation to the caller — so leaksip
// must stay silent.
package leaksip_clean

import (
	"sync"

	"buffer"
	"eos"
)

type shard struct{ mu sync.Mutex }

func lockShard(sh *shard) {
	sh.mu.Lock()
}

func lockShardIndirect(sh *shard) {
	lockShard(sh)
}

// unlockShard releases the latch its caller acquired through the
// wrappers: release recognition is propagated too.
func unlockShard(sh *shard) {
	sh.mu.Unlock()
}

type Pool struct{ shards [4]shard }

// BalancedChain pairs the two-deep acquire with a deferred releaser
// helper.
func (p *Pool) BalancedChain(i int) {
	sh := &p.shards[i]
	lockShardIndirect(sh)
	defer unlockShard(sh)
}

// BalancedBranches unlocks on both paths.
func (p *Pool) BalancedBranches(i int, fast bool) {
	sh := &p.shards[i]
	lockShard(sh)
	if fast {
		sh.mu.Unlock()
		return
	}
	unlockShard(sh)
}

func pinPage(p *buffer.Pool, pg buffer.PageID) error {
	_, err := p.Fix(pg)
	return err
}

// ReadAndUnpin pins a locally chosen page through the wrapper and
// unpins after the error check.
func ReadAndUnpin(p *buffer.Pool, vol, page uint32) error {
	pg := buffer.PageID{Vol: vol, Page: page}
	if err := pinPage(p, pg); err != nil {
		return err
	}
	defer p.Unpin(pg)
	return nil
}

func openTxn(s *eos.Store) (*eos.Txn, error) {
	return s.Begin()
}

// BeginCommit finishes the produced transaction on every live path.
func BeginCommit(s *eos.Store) error {
	t, err := openTxn(s)
	if err != nil {
		return err
	}
	return t.Commit()
}

// BeginForCaller passes the produced transaction on: the obligation
// propagates to its callers instead of being reported here.
func BeginForCaller(s *eos.Store) (*eos.Txn, error) {
	t, err := openTxn(s)
	if err != nil {
		return nil, err
	}
	return t, nil
}
