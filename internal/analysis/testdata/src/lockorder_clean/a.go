// Package lockorder_clean holds lattice-respecting locking that
// lockorder must accept without diagnostics.
package lockorder_clean

import "sync"

type Store struct{ mu sync.Mutex }

type catEntry struct{ latch sync.RWMutex }

type shard struct{ mu sync.Mutex }

type Log struct {
	forceMu sync.Mutex
	mu      sync.Mutex
}

type Pool struct{ flushMu sync.Mutex }

// nestedDownward acquires strictly down the lattice.
func nestedDownward(s *Store, e *catEntry, sh *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.latch.RLock()
	defer e.latch.RUnlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
}

// sequential never holds two ranked locks at once, so rank order
// between the sections does not matter.
func sequential(l *Log, s *Store) {
	l.mu.Lock()
	l.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// releasedBeforeDescent drops the higher lock before going back up.
func releasedBeforeDescent(e *catEntry, sh *shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
	e.latch.Lock()
	e.latch.Unlock()
}

// closureIsSeparate: a goroutine body is its own acquisition context;
// the enclosing function's held set does not apply to it.
func closureIsSeparate(l *Log, s *Store) {
	l.mu.Lock()
	defer l.mu.Unlock()
	go func() {
		s.mu.Lock()
		s.mu.Unlock()
	}()
}

// groupCommitDescent mirrors the WAL leader path: the force mutex
// (rank 45) is taken before the log buffer mutex (rank 50).
func groupCommitDescent(l *Log) {
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	l.mu.Lock()
	l.mu.Unlock()
}

// flushDescent mirrors the pool write-back path: the whole-pool flush
// mutex (rank 38) is taken before a shard mutex (rank 40).
func flushDescent(p *Pool, sh *shard) {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	sh.mu.Lock()
	sh.mu.Unlock()
}

// unranked locks are outside the lattice and never constrained.
func unranked(l *Log) {
	var local sync.Mutex
	l.mu.Lock()
	local.Lock()
	local.Unlock()
	l.mu.Unlock()
}

type Volume struct {
	mu    sync.RWMutex
	accMu sync.Mutex
}

// volumeDescent mirrors the disk I/O path: the page-data latch
// (rank 60) is taken before the accounting mutex (rank 70), never the
// other way around.
func volumeDescent(v *Volume) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	v.accMu.Lock()
	v.accMu.Unlock()
}
