// Package analysis collects the eoslint analyzer suite: the custom
// go/analysis checkers that machine-enforce the storage engine's
// concurrency and recovery invariants (pin pairing, latch order,
// atomics discipline, the §4.5 write-ahead rule, and error wrapping).
//
// The suite runs under `go vet` via cmd/eoslint and in CI via
// scripts/lint.sh; see the "Static analysis" section of README.md.
package analysis

import (
	goanalysis "golang.org/x/tools/go/analysis"

	"github.com/eosdb/eos/internal/analysis/atomicfield"
	"github.com/eosdb/eos/internal/analysis/errwrap"
	"github.com/eosdb/eos/internal/analysis/lockorder"
	"github.com/eosdb/eos/internal/analysis/pinpair"
	"github.com/eosdb/eos/internal/analysis/walfirst"
)

// Analyzers returns the eoslint suite.
func Analyzers() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		pinpair.Analyzer,
		lockorder.Analyzer,
		atomicfield.Analyzer,
		walfirst.Analyzer,
		errwrap.Analyzer,
	}
}
