// Package eos is a storage system for large dynamic objects, a Go
// reproduction of the EOS large object manager (A. Biliris, "An Efficient
// Database Storage Structure for Large Dynamic Objects", ICDE 1992).
//
// A Store keeps named large objects — uninterpreted byte strings of
// unlimited size — on a simulated disk volume.  Objects are stored in
// variable-size segments of physically contiguous pages allocated by a
// binary buddy system whose entire bookkeeping lives on one directory
// page per space; a positional B-tree indexes byte offsets.  The store
// supports the paper's full operation set with costs proportional to the
// bytes touched:
//
//	obj.Append(data)          // grows by doubling, trimmed at the end
//	obj.Read(off, n)          // multi-page contiguous transfers
//	obj.Replace(off, data)    // in place, logged
//	obj.Insert(off, data)     // splits a segment into L, N, R
//	obj.Delete(off, n)        // subtree deletes never touch data pages
//
// The segment size threshold T (§4.4) bounds fragmentation from repeated
// updates; byte and page reshuffling keep storage utilization near 100%.
//
// Transactions (Store.Begin) provide object and byte-range locking,
// write-ahead logging, shadowed index pages, deferred frees (the effect
// of Starburst's release locks), logical undo on abort, and redo recovery
// on reopen after a crash (§4.5).
package eos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
	"github.com/eosdb/eos/internal/txn"
	"github.com/eosdb/eos/internal/wal"
)

// Errors returned by the store.
var (
	// ErrExists is returned when creating an object whose name is taken.
	ErrExists = errors.New("eos: object already exists")
	// ErrNotFound is returned for unknown object names.
	ErrNotFound = errors.New("eos: object not found")
	// ErrCorruptStore is returned when the store header or catalog fails
	// validation.
	ErrCorruptStore = errors.New("eos: corrupt store")
	// ErrTxnDone is returned when a finished transaction is reused.
	ErrTxnDone = errors.New("eos: transaction already committed or aborted")
)

const (
	storeMagic   = 0xE0557011
	storeVersion = 2 // v2: dual-slot catalog region, monotonic LSN base in header
)

// Options configures a Store.  The zero value selects reasonable
// defaults for the volume's geometry.
type Options struct {
	// NumSpaces and SpaceCapacity lay out the buddy spaces; zero values
	// size them to fill the volume (capacity defaults to the maximum a
	// one-page directory supports, shrunk to fit).
	NumSpaces     int
	SpaceCapacity int
	// PoolFrames sizes the buffer pool (default 256).
	PoolFrames int
	// PoolShards splits the buffer pool into lock-sharded sub-pools keyed
	// by page number, so concurrent fixes of distinct index pages never
	// contend on one mutex.  0 sizes the shard count automatically from
	// PoolFrames; 1 pins the original single-lock pool, whose global LRU
	// makes eviction order (and therefore re-read seek counts) fully
	// deterministic for the experiment harness.
	PoolShards int
	// ReadConcurrency bounds the worker pool that overlaps one read's
	// per-segment transfers when the range spans several segments.  0 or
	// 1 keeps reads strictly sequential (the deterministic default).
	ReadConcurrency int
	// SequentialPrefetch makes readers obtained from Object.NewReader
	// detect sequential access and stage the next segment with an async
	// readahead, overlapping the transfer with the caller's processing of
	// the current one.  Readers can override per instance with
	// Reader.SetPrefetch.
	SequentialPrefetch bool
	// Threshold is the default segment size threshold T in pages
	// (default 8); objects may override it individually.
	Threshold int
	// AdaptiveThreshold enables the [Bili91a] fan-out-driven T.
	AdaptiveThreshold bool
	// Superdirectory enables the in-memory buddy superdirectory (§3.3);
	// on by default (disable only for the ablation experiment).
	DisableSuperdirectory bool
	// ShadowIndexPages makes insert/delete/append updates shadow the
	// index pages they touch (§4.5); on by default, required for
	// transactional use.
	DisableShadowing bool
	// CatalogPages reserves room for object descriptors (default 4).
	CatalogPages int
	// LockTimeout bounds lock waits (default 2s).
	LockTimeout time.Duration
	// MaxRootEntries bounds the root held in each descriptor.
	MaxRootEntries int
	// RangeLocking selects the finer §4.5 granularity: instead of
	// locking the object root, transactional reads lock the byte range
	// they touch (shared), replace locks its range exclusively, and the
	// length-changing operations — insert, delete, append — lock the
	// suffix from their offset (every byte after it shifts).  Disjoint
	// reads and replaces on one object then run concurrently; a short
	// per-object latch keeps index traversals physically safe.
	RangeLocking bool
	// SerialWAL disables the buffered log tail and leader/follower group
	// commit, reproducing the original serial write path: every log
	// append issues its own positional write and every commit forces the
	// log itself.  The write-path benchmarks use it as their baseline;
	// durability semantics are identical either way.
	SerialWAL bool
	// SnapshotHistory is how many superseded committed root versions
	// each object retains alongside the newest one (default 4).  A
	// snapshot reader holding an epoch pin can step across the retained
	// versions published since its pin, so long scans survive multiple
	// overwrites without ever taking a lock.
	SnapshotHistory int
	// Backend selects the volume implementation CreateAt/OpenAt build:
	// BackendSim (the default) is the in-memory simulator with modelled
	// costs; BackendFile keeps pages in real files under the store
	// directory, with pread/pwrite transfers and fdatasync durability.
	// Format/Open ignore it — they take the volumes you built.
	Backend Backend
	// PageSize, DataPages and LogPages set the geometry CreateAt
	// formats (defaults 512 bytes, 4096 data pages, 1024 log pages).
	// OpenAt reads the geometry from the existing volumes instead.
	PageSize  int
	DataPages disk.PageNum
	LogPages  disk.PageNum
	// DirectIO opens file-backed volumes with O_DIRECT (Linux only;
	// page size must be a multiple of 512), bypassing the OS page
	// cache so benchmarks measure the device rather than RAM.
	DirectIO bool
	// CrashShadow enables the file backend's crash simulation: pre-
	// images of unforced pages are tracked so Device.Crash reverts
	// them.  Costs one extra read per first write after a force; meant
	// for recovery tests, not production or benchmarks.
	CrashShadow bool
	// IODepth > 0 routes buffer-pool write-back through the async I/O
	// dispatcher with that many workers and queue slots, overlapping a
	// checkpoint's coalesced runs in flight instead of issuing them one
	// blocking call at a time.  0 keeps write-back synchronous.
	IODepth int
}

// Backend names a volume implementation for CreateAt/OpenAt.
type Backend string

const (
	// BackendSim is the cost-modelled in-memory simulator (default).
	BackendSim Backend = "sim"
	// BackendFile is the real-I/O file backend (disk.FileVolume).
	BackendFile Backend = "file"
)

func (o Options) withDefaults(vol disk.Device) (Options, error) {
	if o.PoolFrames == 0 {
		o.PoolFrames = 256
	}
	if o.Threshold == 0 {
		o.Threshold = 8
	}
	if o.CatalogPages == 0 {
		o.CatalogPages = 4
	}
	if o.LockTimeout == 0 {
		o.LockTimeout = 2 * time.Second
	}
	if o.SnapshotHistory == 0 {
		o.SnapshotHistory = 4
	}
	_, maxCap, err := buddy.Layout(vol.PageSize())
	if err != nil {
		return o, err
	}
	avail := int(vol.NumPages()) - 1 - catalogRegionPages(o)
	if o.SpaceCapacity == 0 {
		o.SpaceCapacity = maxCap
		if o.SpaceCapacity > avail-1 {
			o.SpaceCapacity = (avail - 1) &^ 3
		}
	}
	if o.NumSpaces == 0 {
		o.NumSpaces = avail / (o.SpaceCapacity + 1)
		if o.NumSpaces < 1 {
			o.NumSpaces = 1
		}
	}
	if o.SpaceCapacity < 4 || o.NumSpaces*(o.SpaceCapacity+1) > avail {
		return o, fmt.Errorf("eos: volume too small for %d spaces of %d pages",
			o.NumSpaces, o.SpaceCapacity)
	}
	return o, nil
}

// catEntry is one live catalog entry.  While a transaction has the
// object dirty, catalog writes use the last committed descriptor
// (stableDesc) so that uncommitted structural state never becomes
// durable; uncommitted in-place replaces can still reach the disk when
// another transaction's commit forces the volume, which is why replace
// records log their physical extents for recovery-time undo.
type catEntry struct {
	id       uint64
	name     string
	obj      *lob.Object
	txnDirty uint64 // id of the transaction holding it dirty, or 0

	// stableDesc is the descriptor of the object's last committed
	// (published) state; nil means the object has never committed and
	// is omitted from catalog writes.  It is refreshed synchronously at
	// every commit point — non-transactional publish, transaction
	// commit, and abort — NOT lazily at catalog-write time: the
	// durability quarantine reasons that any catalog barrier started
	// after a run is quarantined persists roots that exclude the run,
	// and catalog writes must be able to proceed while an object's
	// latch is held (a writer stalled in allocation backpressure holds
	// its latch while WAITING for a barrier to release quarantined
	// space).  Writers are serialized per object by the latch or the
	// transaction's exclusive lock; the atomic makes the latch-free
	// read in writeCatalog safe.
	stableDesc atomic.Pointer[[]byte]

	// latch serializes physical access to the object's in-memory root
	// and index pages under range locking: structural updates write-
	// latch, reads and in-place replaces read-latch.  Held only for the
	// duration of one operation, never to transaction end (§3.3's
	// short-duration lock).
	latch sync.RWMutex
}

// setStableDesc records desc as the last committed descriptor.  Callers
// hold the object's write latch or the owning transaction's exclusive
// lock, which serializes stores per object.
func (e *catEntry) setStableDesc(desc []byte) { e.stableDesc.Store(&desc) }

// loadStableDesc returns the last committed descriptor, or nil if the
// object has never committed.  Safe without the object latch.
func (e *catEntry) loadStableDesc() []byte {
	if p := e.stableDesc.Load(); p != nil {
		return *p
	}
	return nil
}

// Store is an EOS storage system instance over a data volume and a log
// volume.
type Store struct {
	vol    disk.Device
	logVol disk.Device
	disp   *disk.Dispatcher // async write-back dispatcher; nil when IODepth == 0
	// ownsVols marks volumes built by CreateAt/OpenAt, which Close
	// releases; volumes handed to Format/Open stay the caller's.
	ownsVols bool
	pool     *buffer.Pool
	buddy  *buddy.Manager
	lm     *lob.Manager
	log    *wal.Log
	locks  *txn.LockTable
	epochs *txn.EpochManager
	opts   Options

	mu       sync.Mutex
	catalog  map[string]*catEntry
	byID     map[uint64]*catEntry
	nextID   uint64
	nextTxn  uint64
	liveTxns map[uint64]*Txn
	// catSeq is the sequence number of the last catalog slot written
	// (eos:guardedby mu); writeCatalog alternates slots on seq parity.
	catSeq uint64
	// lsnBase mirrors the log's LSN epoch base into the store header
	// (eos:guardedby mu).  The header's copy is what recovery trusts: a
	// log record whose LSN predates the header's base belongs to an
	// epoch that was truncated — everything it describes is already
	// durable — and is ignored even if the truncation's zeroing write
	// was itself lost in the crash.
	lsnBase uint64

	// barrierStarted counts catalog barriers begun; barrierDurable is
	// the index of the last one whose force completed.  Barriers are
	// serialized under s.mu, but releaseRuns stamps quarantine entries
	// without holding it, hence atomics.
	barrierStarted atomic.Uint64
	barrierDurable atomic.Uint64

	// barrierReq is set while a backpressure-requested checkpoint (see
	// requestBarrier) is in flight, so concurrent stalled allocators
	// spawn at most one.
	barrierReq atomic.Bool

	// quarMu guards quar, the durability quarantine (leaf lock — never
	// acquired while holding another store lock's critical section
	// beyond s.mu).  Runs whose reader grace period has expired wait
	// here, still absent from the buddy directories, until a catalog
	// barrier that STARTED after they arrived completes — only then is
	// every root the durable catalog can resolve to (the newest intact
	// slot; a torn successor falls back no further than the last
	// completed barrier) guaranteed not to reference them, and only
	// then do they return to the free space.  Without this gate a freed
	// page could be reallocated and overwritten while the on-disk
	// catalog still referenced its old contents — recovery would then
	// rebuild objects from garbage.
	quarMu sync.Mutex
	quar   []quarRun // eos:guardedby quarMu
}

// quarRun is one quarantined run: stamp is the barrierStarted value at
// arrival, so the run is releasable once barrierDurable > stamp.
type quarRun struct {
	run   txn.Run
	stamp uint64
}

// Format initializes a fresh store on vol, logging to logVol.  Either
// volume may be a simulator Volume or a file-backed FileVolume; the
// store never looks behind the Device interface.
func Format(vol, logVol disk.Device, opts Options) (*Store, error) {
	opts, err := opts.withDefaults(vol)
	if err != nil {
		return nil, err
	}
	pool, err := buffer.NewPoolShards(vol, opts.PoolFrames, opts.PoolShards)
	if err != nil {
		return nil, err
	}
	firstSpacePage := disk.PageNum(1 + catalogRegionPages(opts))
	bm, err := buddy.FormatVolume(pool, vol, firstSpacePage, opts.NumSpaces, opts.SpaceCapacity, !opts.DisableSuperdirectory)
	if err != nil {
		return nil, err
	}
	s := &Store{
		vol:      vol,
		logVol:   logVol,
		pool:     pool,
		buddy:    bm,
		log:      wal.New(logVol, 0),
		locks:    txn.NewLockTable(opts.LockTimeout),
		opts:     opts,
		catalog:  make(map[string]*catEntry),
		byID:     make(map[uint64]*catEntry),
		nextID:   1,
		nextTxn:  1,
		liveTxns: make(map[uint64]*Txn),
	}
	s.epochs = txn.NewEpochManager(s.releaseRuns)
	// Admission control: throttle mutators once a quarter of the volume
	// sits retired awaiting reader grace periods.  Shadowing retires far
	// more pages than stay live (every update supersedes whole runs), so
	// under a write storm with concurrent snapshot scans the backlog
	// grows at retire-rate × scan-duration; unbounded, it can transiently
	// exhaust a small volume that is almost entirely free space.
	s.epochs.SetBudget(int64(vol.NumPages()) / 4)
	s.attachDispatcher()
	s.lm, err = lob.NewManager(vol, pool, &epochAlloc{s: s}, s.lobConfig())
	if err != nil {
		return nil, err
	}
	if opts.SerialWAL {
		if err := s.log.SetGroupCommit(false); err != nil {
			return nil, err
		}
	}
	if err := s.writeHeader(); err != nil {
		return nil, err
	}
	if err := s.writeCatalog(); err != nil {
		return nil, err
	}
	if err := s.Checkpoint(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) lobConfig() lob.Config {
	return lob.Config{
		Threshold:         s.opts.Threshold,
		MaxRootEntries:    s.opts.MaxRootEntries,
		ShadowIndexPages:  !s.opts.DisableShadowing,
		AdaptiveThreshold: s.opts.AdaptiveThreshold,
		ReadWorkers:       s.opts.ReadConcurrency,
		// Freed index pages stay readable (including their pool frames)
		// until the epoch manager actually releases them — a published
		// snapshot root may still name them.
		RetainFreedPages: true,
	}
}

// epochAlloc is the store-wide allocator: allocations go straight to
// the buddy system, but frees are RETIRED into the current epoch and
// reach buddy.Free only once no snapshot reader can still hold a
// published root that names them.  It delegates through the Store
// pointer because recovery replaces s.buddy wholesale.
type epochAlloc struct{ s *Store }

func (a *epochAlloc) Alloc(n int) (disk.PageNum, error) {
	var w spaceWaiter
	for {
		p, err := a.s.buddy.Alloc(n)
		if err != nil {
			retry, rerr := w.wait(a.s, err)
			if rerr != nil {
				return 0, rerr
			}
			if retry {
				continue
			}
			return 0, err
		}
		return p, nil
	}
}

func (a *epochAlloc) AllocUpTo(n int) (disk.PageNum, int, error) {
	var w spaceWaiter
	for {
		p, got, err := a.s.buddy.AllocUpTo(n)
		if err != nil {
			retry, rerr := w.wait(a.s, err)
			if rerr != nil {
				return 0, 0, rerr
			}
			if retry {
				continue
			}
			return 0, 0, err
		}
		return p, got, nil
	}
}

// Allocation backpressure bounds.  A retired run matures one full
// reader grace period after the superseding publish, so when snapshot
// scans overlap a write storm the steady-state backlog is roughly
// retire-rate × scan-duration — on a small volume that can transiently
// exceed the free space even though almost none of it is live data.
// A failed allocation therefore waits out up to one grace period,
// reclaiming as pins rotate, before reporting out-of-space.
const (
	allocBackpressureWait = 2 * time.Second
	allocBackpressurePoll = 2 * time.Millisecond
)

// spaceWaiter paces allocation retries under space pressure: wait
// reports whether the failed allocation should be retried after a
// reclamation pass.  The first failure reclaims and retries at once
// (the single-shot fast path); later rounds poll until nothing is
// left pending or the deadline passes.  Waiting here is safe
// mid-mutation: Reclaim never blocks (the caller's own scope just
// caps the epoch advance one past its begin), and snapshot readers
// take no latches, so the pins being waited out always drain — but
// see EpochManager.Admit for why this path is the last resort.
type spaceWaiter struct{ deadline time.Time }

func (w *spaceWaiter) wait(s *Store, err error) (bool, error) {
	if !errors.Is(err, buddy.ErrNoSpace) {
		return false, nil
	}
	drained := s.epochs.PendingPages() == 0 && s.quarantinedPages() == 0
	switch {
	case w.deadline.IsZero():
		w.deadline = time.Now().Add(allocBackpressureWait)
	case time.Now().After(w.deadline), drained:
		return false, nil
	default:
		time.Sleep(allocBackpressurePoll)
	}
	if rerr := s.epochs.Reclaim(); rerr != nil {
		return true, rerr
	}
	// Reclaimed runs land in the durability quarantine, not the free
	// space, and only a completed catalog barrier lets them out.  With
	// no transaction commits or checkpoints running, no barrier would
	// ever come — and this caller cannot run one itself (it holds its
	// object's latch, and barriers take s.mu, which ranks before
	// latches) — so request one from a clean stack and keep polling.
	if s.quarantinedPages() > 0 {
		s.requestBarrier()
	}
	return true, s.releaseQuarantined()
}

// requestBarrier runs a checkpoint on a fresh goroutine so that a
// caller holding an object latch (allocation backpressure fires
// mid-operation) can get a catalog barrier — and with it the release of
// quarantined free space — without acquiring s.mu out of rank order.
// writeCatalog reads committed descriptors latch-free (see
// catEntry.stableDesc), so the checkpoint cannot block on the stalled
// operation's latch.  At most one request runs at a time; the error is
// dropped because the requester retries its allocation regardless and
// reports its own failure.
func (s *Store) requestBarrier() {
	if !s.barrierReq.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.barrierReq.Store(false)
		s.mu.Lock()
		defer s.mu.Unlock()
		_ = s.checkpointLocked()
	}()
}
func (a *epochAlloc) MaxSegmentPages() int { return a.s.buddy.MaxSegmentPages() }
func (a *epochAlloc) Free(p disk.PageNum, n int) error {
	a.s.epochs.Retire([]txn.Run{{Start: p, Pages: n}})
	return nil
}

// releaseRuns is the epoch manager's free routine: retired runs whose
// grace period has passed are dropped from the buffer pool (their
// frames may hold never-flushed images of superseded index nodes —
// garbage now) and moved into the durability quarantine.  They do NOT
// return to the buddy system yet: the on-disk catalog may still hold a
// root that references them (a checkpointed pre-update descriptor),
// and recovery's redo re-executes logged operations by READING the
// object state those roots describe.  Reusing such a page before a
// catalog barrier has durably superseded every such root would let a
// crash rebuild committed objects from whatever the new owner wrote
// over it.
func (s *Store) releaseRuns(runs []txn.Run) error {
	for _, r := range runs {
		for i := 0; i < r.Pages; i++ {
			s.pool.Discard(r.Start + disk.PageNum(i))
		}
	}
	// Stamp with the latest barrier already begun: its catalog image may
	// predate the roots that stopped referencing these runs, so only a
	// LATER barrier's completion proves the durable catalog is clear of
	// them.
	stamp := s.barrierStarted.Load()
	s.quarMu.Lock()
	for _, r := range runs {
		s.quar = append(s.quar, quarRun{run: r, stamp: stamp})
	}
	s.quarMu.Unlock()
	return nil
}

// releaseQuarantined returns to the buddy system every quarantined run
// whose stamp precedes the last completed catalog barrier.  Every
// commit point (non-transactional publish, transaction commit and
// abort) refreshes stableDesc, so any barrier started after a run entered
// quarantine wrote roots that exclude it; once that barrier's force
// completes, no slot recovery can pick still references the run (a torn
// later slot falls back exactly one barrier, never further).
func (s *Store) releaseQuarantined() error {
	durable := s.barrierDurable.Load()
	s.quarMu.Lock()
	var rel []quarRun
	keep := s.quar[:0]
	for _, q := range s.quar {
		if q.stamp < durable {
			rel = append(rel, q)
		} else {
			keep = append(keep, q)
		}
	}
	s.quar = keep
	s.quarMu.Unlock()
	for i, q := range rel {
		if err := s.buddy.Free(q.run.Start, q.run.Pages); err != nil {
			// Re-stash what could not be freed rather than leaking it.
			s.quarMu.Lock()
			s.quar = append(s.quar, rel[i:]...)
			s.quarMu.Unlock()
			return err
		}
	}
	return nil
}

// quarantinedPages counts pages awaiting their release barrier.
func (s *Store) quarantinedPages() int {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	n := 0
	for _, q := range s.quar {
		n += q.run.Pages
	}
	return n
}

// PageSize reports the data volume's page size.
func (s *Store) PageSize() int { return s.vol.PageSize() }

// Volume returns the data volume (for I/O statistics).
func (s *Store) Volume() disk.Device { return s.vol }

// BuddyManager exposes the space manager (for statistics and fsck).
func (s *Store) BuddyManager() *buddy.Manager { return s.buddy }

// LOBStats returns the large object manager's activity counters.
func (s *Store) LOBStats() lob.Stats { return s.lm.Stats() }

// writeHeader persists the store header on page 0.  Callers hold s.mu
// — except Format, whose store has not been published yet.
//
// eos:requires s.mu
func (s *Store) writeHeader() error {
	img, err := s.pool.FixNew(0)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(0)
	binary.BigEndian.PutUint32(img[0:], storeMagic)
	img[4] = storeVersion
	binary.BigEndian.PutUint32(img[8:], uint32(s.opts.NumSpaces))
	binary.BigEndian.PutUint32(img[12:], uint32(s.opts.SpaceCapacity))
	binary.BigEndian.PutUint32(img[16:], uint32(s.opts.CatalogPages))
	binary.BigEndian.PutUint64(img[20:], s.nextID)
	binary.BigEndian.PutUint64(img[28:], s.lsnBase)
	return nil
}

// Open loads an existing store and performs crash recovery: the log is
// scanned, committed operations whose effects were lost are redone
// (guarded by the LSN each object root carries, §4.5), the free space
// map is rebuilt from the pages reachable from the catalog, and a fresh
// checkpoint is taken.
func Open(vol, logVol disk.Device, opts Options) (*Store, error) {
	opts, err := opts.withDefaults(vol)
	if err != nil {
		return nil, err
	}
	pool, err := buffer.NewPoolShards(vol, opts.PoolFrames, opts.PoolShards)
	if err != nil {
		return nil, err
	}
	// Header.
	img, err := pool.Fix(0)
	if err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(img[0:]) != storeMagic || img[4] != storeVersion {
		_ = pool.Unpin(0) // the corrupt-header error takes precedence
		return nil, fmt.Errorf("%w: bad header", ErrCorruptStore)
	}
	opts.NumSpaces = int(binary.BigEndian.Uint32(img[8:]))
	opts.SpaceCapacity = int(binary.BigEndian.Uint32(img[12:]))
	opts.CatalogPages = int(binary.BigEndian.Uint32(img[16:]))
	nextID := binary.BigEndian.Uint64(img[20:])
	lsnBase := binary.BigEndian.Uint64(img[28:])
	if err := pool.Unpin(0); err != nil {
		return nil, err
	}

	// Spaces.
	bm := buddy.NewManager(pool, !opts.DisableSuperdirectory)
	page := disk.PageNum(1 + catalogRegionPages(opts))
	for i := 0; i < opts.NumSpaces; i++ {
		sp, err := buddy.OpenSpace(pool, page)
		if err != nil {
			return nil, err
		}
		bm.AddSpace(sp)
		page += disk.PageNum(opts.SpaceCapacity + 1)
	}

	s := &Store{
		vol:      vol,
		logVol:   logVol,
		pool:     pool,
		buddy:    bm,
		locks:    txn.NewLockTable(opts.LockTimeout),
		opts:     opts,
		catalog:  make(map[string]*catEntry),
		byID:     make(map[uint64]*catEntry),
		nextID:   nextID,
		nextTxn:  1,
		liveTxns: make(map[uint64]*Txn),
		lsnBase:  lsnBase,
	}
	s.epochs = txn.NewEpochManager(s.releaseRuns)
	// Admission control: throttle mutators once a quarter of the volume
	// sits retired awaiting reader grace periods.  Shadowing retires far
	// more pages than stay live (every update supersedes whole runs), so
	// under a write storm with concurrent snapshot scans the backlog
	// grows at retire-rate × scan-duration; unbounded, it can transiently
	// exhaust a small volume that is almost entirely free space.
	s.epochs.SetBudget(int64(vol.NumPages()) / 4)
	s.attachDispatcher()
	s.lm, err = lob.NewManager(vol, pool, &epochAlloc{s: s}, s.lobConfig())
	if err != nil {
		return nil, err
	}
	if err := s.readCatalog(); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	// Publish every recovered object's root so snapshot readers can
	// capture it; recovery itself runs single-threaded, so no reader can
	// have observed the intermediate states.
	s.mu.Lock()
	for _, e := range s.catalog {
		e.latch.Lock()
		e.obj.Publish(s.opts.SnapshotHistory)
		e.latch.Unlock()
	}
	s.mu.Unlock()
	return s, nil
}

// attachDispatcher wires the async write-back dispatcher when IODepth
// asks for one; the store owns its lifetime.
func (s *Store) attachDispatcher() {
	if s.opts.IODepth > 0 {
		s.disp = disk.NewDispatcher(s.vol, s.opts.IODepth, s.opts.IODepth)
		s.pool.SetDispatcher(s.disp)
	}
}

// Close checkpoints the store, rejects further transactions, and shuts
// down the async dispatcher.  Volumes built by CreateAt/OpenAt are
// closed; volumes handed to Format/Open remain the caller's to save or
// discard.
func (s *Store) Close() error {
	s.mu.Lock()
	if n := len(s.liveTxns); n > 0 {
		s.mu.Unlock()
		return fmt.Errorf("eos: %d transactions still live", n)
	}
	s.mu.Unlock()
	if n := s.epochs.Pinned(); n > 0 {
		return fmt.Errorf("eos: %d snapshots still open", n)
	}
	if err := s.Checkpoint(); err != nil {
		return err
	}
	if s.disp != nil {
		s.pool.SetDispatcher(nil) // later flushes fall back to synchronous
		s.disp.Close()
		s.disp = nil
	}
	if s.ownsVols {
		if err := s.vol.Close(); err != nil {
			return err
		}
		return s.logVol.Close()
	}
	return nil
}

// Default geometry for CreateAt.
const (
	defaultPageSize  = 512
	defaultDataPages = disk.PageNum(4096)
	defaultLogPages  = disk.PageNum(1024)
)

// dataFileName and logFileName are the volume files CreateAt and
// OpenAt use under the store directory.
const (
	dataFileName = "data.eos"
	logFileName  = "log.eos"
)

func (o Options) geometry() (int, disk.PageNum, disk.PageNum) {
	ps, dp, lp := o.PageSize, o.DataPages, o.LogPages
	if ps == 0 {
		ps = defaultPageSize
	}
	if dp == 0 {
		dp = defaultDataPages
	}
	if lp == 0 {
		lp = defaultLogPages
	}
	return ps, dp, lp
}

func (o Options) fileOptions() disk.FileOptions {
	return disk.FileOptions{Direct: o.DirectIO, CrashShadow: o.CrashShadow}
}

// CreateAt formats a fresh store under dir using the backend named in
// opts.Backend: BackendFile lays out real page files (data.eos,
// log.eos) in dir, BackendSim builds in-memory simulator volumes (dir
// is then only created, not written).  The store owns the volumes —
// Close releases them.
func CreateAt(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ps, dp, lp := opts.geometry()
	var vol, logVol disk.Device
	switch opts.Backend {
	case BackendSim, "":
		var err error
		if vol, err = disk.NewVolume(ps, dp, disk.DefaultCostModel()); err != nil {
			return nil, err
		}
		if logVol, err = disk.NewVolume(ps, lp, disk.DefaultCostModel()); err != nil {
			return nil, err
		}
	case BackendFile:
		var err error
		if vol, err = disk.CreateFileVolume(filepath.Join(dir, dataFileName), ps, dp, opts.fileOptions()); err != nil {
			return nil, err
		}
		if logVol, err = disk.CreateFileVolume(filepath.Join(dir, logFileName), ps, lp, opts.fileOptions()); err != nil {
			_ = vol.Close()
			return nil, err
		}
	default:
		return nil, fmt.Errorf("eos: unknown backend %q", opts.Backend)
	}
	s, err := Format(vol, logVol, opts)
	if err != nil {
		_ = vol.Close()
		_ = logVol.Close()
		return nil, err
	}
	s.ownsVols = true
	return s, nil
}

// OpenAt opens (with crash recovery) a file-backed store previously
// created by CreateAt with BackendFile; the geometry comes from the
// volume headers.  Simulator volumes live in memory and cannot be
// reopened from a directory — keep the *disk.Volume and use Open, or
// migrate an image with the eosctl tool.
func OpenAt(dir string, opts Options) (*Store, error) {
	if opts.Backend != BackendFile {
		return nil, fmt.Errorf("eos: OpenAt requires Backend: BackendFile (got %q)", opts.Backend)
	}
	vol, err := disk.OpenFileVolume(filepath.Join(dir, dataFileName), opts.fileOptions())
	if err != nil {
		return nil, err
	}
	logVol, err := disk.OpenFileVolume(filepath.Join(dir, logFileName), opts.fileOptions())
	if err != nil {
		_ = vol.Close()
		return nil, err
	}
	s, err := Open(vol, logVol, opts)
	if err != nil {
		_ = vol.Close()
		_ = logVol.Close()
		return nil, err
	}
	s.ownsVols = true
	return s, nil
}

// Checkpoint makes the current state durable: descriptors are written to
// the catalog, every dirty page is flushed and forced, and the log is
// truncated.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// eos:requires s.mu
func (s *Store) checkpointLocked() error {
	// Reclaim every retired page no snapshot still pins before the flush
	// below, so the checkpointed free-space directories account for them.
	// Pages pinned by open snapshots stay allocated — a checkpoint fences
	// snapshots rather than draining them: the pages a pinned root
	// references are unreachable from the catalog, so a crash reclaims
	// them at recovery, and a clean continuation frees them when the last
	// reader exits.
	if err := s.epochs.Drain(); err != nil {
		return err
	}
	// The log can be truncated only at quiescence: live transactions'
	// records (needed to undo their in-place writes, which the ForceAll
	// below may make durable) must survive.  With transactions in flight
	// this is a "soft" checkpoint: everything is durable, but the log
	// keeps growing until a quiescent checkpoint.
	resetLog := s.log != nil && len(s.liveTxns) == 0
	// WAL-first: a soft checkpoint (live transactions) forces the data
	// volume below while the log keeps growing, so any buffered log
	// records — including live transactions' replace pre-images, which
	// recovery needs to undo the in-place writes this force makes
	// durable — must reach the log device first.
	if s.log != nil {
		if err := s.log.Force(); err != nil {
			return err
		}
	}
	// Phase 1: make the store state durable under the CURRENT LSN epoch,
	// data barrier first, catalog barrier second (see forceDurableLocked
	// for why the order is load-bearing).  A crash anywhere in here
	// recovers by replaying the intact log; the object roots carry their
	// true LSNs (they are never zeroed — LSNs are monotonic across log
	// truncations), so redo of an already-durable update is skipped by
	// the idempotence guard rather than applied twice.
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.vol.ForceAll(); err != nil {
		return err
	}
	barrier := s.barrierStarted.Add(1)
	if err := s.writeHeader(); err != nil {
		return err
	}
	if err := s.writeCatalog(); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.vol.Force(0, 1+catalogRegionPages(s.opts)); err != nil {
		return err
	}
	s.barrierDurable.Store(barrier)
	if !resetLog {
		return s.releaseQuarantined()
	}
	// Phase 2 (quiescent only): truncate the log.  The new epoch base —
	// one past the last LSN the old epoch issued — goes into the header
	// first, alone on page 0, so its write is atomic: once it is
	// durable, any leftover old-epoch records fail the recovery scan's
	// LSN check (everything they describe became durable in phase 1);
	// until it is durable, the old log is still intact and replayable.
	// Only after both the header and the zeroed log are durable is it
	// safe to reuse quarantined pages: no durable catalog root and no
	// log record can reach them anymore.
	if newBase := s.log.Base() + uint64(s.log.Tail()); newBase != s.lsnBase {
		s.lsnBase = newBase
		if err := s.writeHeader(); err != nil {
			return err
		}
		if err := s.pool.FlushAll(); err != nil {
			return err
		}
		if err := s.vol.Force(0, 1); err != nil {
			return err
		}
		if err := s.log.Reset(newBase); err != nil {
			return err
		}
	}
	return s.releaseQuarantined()
}

// Create makes a new empty object; threshold <= 0 uses the store default.
func (s *Store) Create(name string, threshold int) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.catalog[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	e := &catEntry{id: s.nextID, name: name, obj: s.lm.NewObject(threshold)}
	s.nextID++
	s.catalog[name] = e
	s.byID[e.id] = e
	e.obj.Publish(s.opts.SnapshotHistory)
	e.setStableDesc(e.obj.EncodeDescriptor())
	return &Object{s: s, e: e}, nil
}

// Open returns a handle on an existing object.
func (s *Store) Open(name string) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.catalog[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &Object{s: s, e: e}, nil
}

// Destroy removes an object, returning all its pages to the free space.
// The frees are retired through the epoch manager, so a snapshot opened
// before the destroy keeps reading its captured root undisturbed; the
// pages return to the buddy system when the last such reader exits.
func (s *Store) Destroy(name string) error {
	if err := s.epochs.Admit(); err != nil {
		return err
	}
	s.mu.Lock()
	e, ok := s.catalog[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	scope := s.epochs.BeginMutation()
	e.latch.Lock()
	err := e.obj.Destroy()
	if err == nil {
		e.obj.Publish(s.opts.SnapshotHistory)
	}
	e.latch.Unlock()
	s.epochs.EndMutation(scope)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.catalog, name)
	delete(s.byID, e.id)
	s.mu.Unlock()
	return s.epochs.Reclaim()
}

// CopyObject duplicates src's content into a new object named dst,
// streaming in large chunks so memory stays bounded.  The copy is laid
// out in maximal contiguous segments (like a hinted create).
func (s *Store) CopyObject(src, dst string) error {
	from, err := s.Open(src)
	if err != nil {
		return err
	}
	to, err := s.Create(dst, from.Threshold())
	if err != nil {
		return err
	}
	a := to.OpenAppender(from.Size())
	if _, err := from.NewReader().WriteTo(a); err != nil {
		_ = s.Destroy(dst) // best-effort rollback; the copy error takes precedence
		return err
	}
	if err := a.Close(); err != nil {
		_ = s.Destroy(dst)
		return err
	}
	return nil
}

// Rename changes an object's name.  Persisted at the next checkpoint or
// durable commit.
func (s *Store) Rename(oldName, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.catalog[oldName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, oldName)
	}
	if _, ok := s.catalog[newName]; ok {
		return fmt.Errorf("%w: %q", ErrExists, newName)
	}
	if e.txnDirty != 0 {
		return fmt.Errorf("eos: %q is in use by transaction %d", oldName, e.txnDirty)
	}
	delete(s.catalog, oldName)
	e.name = newName
	s.catalog[newName] = e
	return nil
}

// SnapshotStats reports snapshot-read and epoch-reclamation activity.
type SnapshotStats struct {
	// SnapshotReads counts reads served through published snapshot
	// roots (no latch, no lock table).
	SnapshotReads int64
	// EpochAdvances counts global epoch advances.
	EpochAdvances uint64
	// RetiredPages counts pages ever retired into an epoch instead of
	// being freed directly.
	RetiredPages uint64
	// PendingPages is the number of retired pages currently awaiting
	// reclamation (held back by open snapshots or a not-yet-advanced
	// epoch).
	PendingPages int64
	// OpenSnapshots is the number of epoch pins currently held.
	OpenSnapshots int
	// OldestEpochAge is how long the oldest unreclaimed epoch has been
	// holding retired pages (zero when nothing is pending).
	OldestEpochAge time.Duration
}

// Stats aggregates the store's activity counters across layers.
type Stats struct {
	Disk   disk.Stats
	Pool   buffer.Stats
	Buddy  buddy.ManagerStats
	LOB    lob.Stats
	WAL    wal.Stats
	Snap   SnapshotStats
	LogLen int64
	// PoolHitRate is the buffer pool hit fraction in [0, 1] (1 when the
	// pool has seen no traffic).
	PoolHitRate float64
}

// Stats returns a snapshot of all layer statistics.  Every layer keeps
// its counters in atomics, so the snapshot never blocks — or is blocked
// by — concurrent reads and updates.
func (s *Store) Stats() Stats {
	pool := s.pool.Stats()
	lobStats := s.lm.Stats()
	return Stats{
		Disk:  s.vol.Stats(),
		Pool:  pool,
		Buddy: s.buddy.Stats(),
		LOB:   lobStats,
		WAL:   s.log.Stats(),
		Snap: SnapshotStats{
			SnapshotReads:  lobStats.SnapshotReads,
			EpochAdvances:  s.epochs.Advances(),
			RetiredPages:   s.epochs.RetiredPages(),
			PendingPages:   s.epochs.PendingPages(),
			OpenSnapshots:  s.epochs.Pinned(),
			OldestEpochAge: s.epochs.OldestAge(),
		},
		LogLen:      s.log.Tail(),
		PoolHitRate: pool.HitRate(),
	}
}

// List returns the object names in lexical order.
func (s *Store) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.catalog))
	for n := range s.catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FreePages reports the free data pages across all buddy spaces.
func (s *Store) FreePages() (int, error) { return s.buddy.FreePages() }

// LogTail reports the write-ahead log length in bytes (zero right after
// a checkpoint).
func (s *Store) LogTail() int64 { return s.log.Tail() }

// Check validates the buddy directories and every object tree.
func (s *Store) Check() error {
	if err := s.buddy.Check(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.catalog {
		if err := e.obj.Check(); err != nil {
			return fmt.Errorf("object %q: %w", e.name, err)
		}
	}
	return nil
}

// CheckNoLeaks verifies page accounting at quiescence: every data page
// is free, reachable from some object descriptor, or retired into an
// epoch awaiting reclamation (pages a pinned snapshot root may still
// reference).  It is not meaningful while transactions are in flight
// (deferred frees hold pages that no descriptor references).
func (s *Store) CheckNoLeaks() error {
	s.mu.Lock()
	reachable := 0
	for _, e := range s.catalog {
		runs, err := e.obj.ReachablePages()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		for _, r := range runs {
			reachable += r.Pages
		}
	}
	s.mu.Unlock()
	free, err := s.buddy.FreePages()
	if err != nil {
		return err
	}
	retired := int(s.epochs.PendingPages())
	quarantined := s.quarantinedPages()
	total := s.opts.NumSpaces * s.opts.SpaceCapacity
	if free+reachable+retired+quarantined != total {
		return fmt.Errorf("%w: %d free + %d reachable + %d retired + %d quarantined != %d total data pages (%d leaked)",
			ErrCorruptStore, free, reachable, retired, quarantined, total,
			total-free-reachable-retired-quarantined)
	}
	return nil
}

// Object is a handle on one named large object, offering the paper's
// operation set directly (the prototype's non-transactional mode: "EOS
// and the application run on a single process, with no support for
// transactions").  For transactional access use Store.Begin.
type Object struct {
	s *Store
	e *catEntry
}

// Name returns the object's name.
func (o *Object) Name() string { return o.e.name }

// mutate runs one structural update under the object latch and inside
// an epoch mutation scope: superseded pages the operation frees are
// retired one past the current epoch, and the new root is published
// before the scope ends, so those retires cannot mature before this
// operation's result is visible to snapshot readers.  The root is
// republished even when op fails — lob operations unwind to a
// consistent in-memory tree, and that tree is what latched readers see.
// Reclaim runs outside the mutation scope: an open scope would block
// the epoch advance Reclaim attempts.
func (o *Object) mutate(op func(obj *lob.Object) error) error {
	if err := o.s.epochs.Admit(); err != nil {
		return err
	}
	scope := o.s.epochs.BeginMutation()
	o.e.latch.Lock()
	err := op(o.e.obj)
	o.e.obj.Publish(o.s.opts.SnapshotHistory)
	// Publish is this mode's commit point: refresh the catalog-visible
	// descriptor before the latch drops, while still inside the epoch
	// scope — pages this op freed cannot mature into the durability
	// quarantine until EndMutation, so every barrier that could release
	// them sees the refreshed root.
	o.e.setStableDesc(o.e.obj.EncodeDescriptor())
	o.e.latch.Unlock()
	o.s.epochs.EndMutation(scope)
	if rerr := o.s.epochs.Reclaim(); err == nil {
		err = rerr
	}
	return err
}

// Size returns the object's length in bytes.
func (o *Object) Size() int64 {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Size()
}

// Append appends data at the end of the object (§4.1).
func (o *Object) Append(data []byte) error {
	return o.mutate(func(obj *lob.Object) error { return obj.Append(data) })
}

// AppendWithHint appends data; a positive sizeHint (total expected bytes)
// lets the manager allocate a segment just large enough (§4.1).
func (o *Object) AppendWithHint(data []byte, sizeHint int64) error {
	return o.mutate(func(obj *lob.Object) error { return obj.AppendWithHint(data, sizeHint) })
}

// Appender streams appends into an object, write-latching the object
// around each Write so concurrent readers of other ranges stay safe.
// The appender itself is single-user.
type Appender struct {
	o *Object
	a *lob.Appender
}

// Write appends p to the object.
func (a *Appender) Write(p []byte) (int, error) {
	var n int
	err := a.o.mutate(func(*lob.Object) error {
		var werr error
		n, werr = a.a.Write(p)
		return werr
	})
	return n, err
}

// Close ends the append sequence, trimming the tail segment.
func (a *Appender) Close() error {
	return a.o.mutate(func(*lob.Object) error { return a.a.Close() })
}

// OpenAppender streams appends; Close trims the tail segment.  The
// appender itself is single-user; other access is latched per write.
func (o *Object) OpenAppender(sizeHint int64) *Appender {
	return &Appender{o: o, a: o.e.obj.OpenAppender(sizeHint)}
}

// Read returns n bytes starting at byte off (§4.2).
func (o *Object) Read(off, n int64) ([]byte, error) {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Read(off, n)
}

// ReadAt fills buf from byte off.
func (o *Object) ReadAt(buf []byte, off int64) error {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.ReadAt(buf, off)
}

// Replace overwrites bytes in place (§4.2).  Replace never restructures
// the index, so it shares the latch with readers.
func (o *Object) Replace(off int64, data []byte) error {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Replace(off, data)
}

// Insert inserts data at byte off (§4.3.1).
func (o *Object) Insert(off int64, data []byte) error {
	return o.mutate(func(obj *lob.Object) error { return obj.Insert(off, data) })
}

// Delete removes n bytes starting at byte off (§4.3.2).
func (o *Object) Delete(off, n int64) error {
	return o.mutate(func(obj *lob.Object) error { return obj.Delete(off, n) })
}

// Truncate shortens the object to newSize bytes.
func (o *Object) Truncate(newSize int64) error {
	return o.mutate(func(obj *lob.Object) error { return obj.Truncate(newSize) })
}

// Compact rewrites the object into the fewest, largest contiguous
// segments the free space allows, restoring sequential-scan performance
// after heavy editing.
func (o *Object) Compact() error {
	return o.mutate(func(obj *lob.Object) error { return obj.Compact() })
}

// SetThreshold changes the object's segment size threshold T (§4.4).
func (o *Object) SetThreshold(t int) {
	o.e.latch.Lock()
	defer o.e.latch.Unlock()
	o.e.obj.SetThreshold(t)
	o.e.setStableDesc(o.e.obj.EncodeDescriptor())
}

// Threshold returns the object's T.
func (o *Object) Threshold() int {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Threshold()
}

// Usage reports the object's storage footprint.
func (o *Object) Usage() (lob.UsageInfo, error) {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Usage()
}

// Check validates the object's index structure.
func (o *Object) Check() error {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Check()
}
