package errwrap_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analyzertest.Run(t, "../testdata", errwrap.Analyzer, "errwrap_bad", "errwrap_clean")
}
