// Package pairs_filevol_clean holds correct file-volume lifecycle
// handling the pairs analyzer must accept without diagnostics.
package pairs_filevol_clean

import (
	"errors"

	"disk"
)

// closesOnSetupError closes the volume before failing.
func closesOnSetupError(path string, ready bool) (*disk.FileVolume, error) {
	v, err := disk.OpenFileVolume(path, disk.FileOptions{})
	if err != nil {
		return nil, err
	}
	if !ready {
		_ = v.Close()
		return nil, errors.New("not ready")
	}
	return v, nil
}

// closesFirstOnSecondFailure is the two-volume constructor done
// right: the data volume is closed when the log volume fails.
func closesFirstOnSecondFailure(dataPath, logPath string) (*disk.FileVolume, *disk.FileVolume, error) {
	dv, err := disk.CreateFileVolume(dataPath, 512, 64, disk.FileOptions{})
	if err != nil {
		return nil, nil, err
	}
	lv, err := disk.CreateFileVolume(logPath, 512, 16, disk.FileOptions{})
	if err != nil {
		_ = dv.Close()
		return nil, nil, err
	}
	return dv, lv, nil
}

// transferredBeforeFailure hands the volume off (a use) before the
// fallible step; the new owner's Close path carries the release.
func transferredBeforeFailure(path string, ready bool) error {
	v, err := disk.CreateFileVolume(path, 512, 64, disk.FileOptions{})
	if err != nil {
		return err
	}
	if err := v.WritePages(0, 1, make([]byte, 512)); err != nil {
		return err
	}
	if !ready {
		return errors.New("not ready")
	}
	return nil
}

// successReturnsOwnership returns the open volume to the caller; a
// non-error exit never reports.
func successReturnsOwnership(path string) (*disk.FileVolume, error) {
	v, err := disk.OpenFileVolume(path, disk.FileOptions{})
	if err != nil {
		return nil, err
	}
	return v, nil
}
