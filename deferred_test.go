package eos

import (
	"testing"

	"github.com/eosdb/eos/internal/disk"
)

// fakeAlloc counts frees for deferredAlloc tests.
type fakeAlloc struct {
	freed []pageRun
}

func (f *fakeAlloc) Alloc(n int) (disk.PageNum, error)          { return 1, nil }
func (f *fakeAlloc) AllocUpTo(n int) (disk.PageNum, int, error) { return 1, n, nil }
func (f *fakeAlloc) MaxSegmentPages() int                       { return 1 << 12 }
func (f *fakeAlloc) Free(p disk.PageNum, n int) error {
	f.freed = append(f.freed, pageRun{p, n})
	return nil
}

func TestDeferredAllocDefersAndApplies(t *testing.T) {
	inner := &fakeAlloc{}
	d := &deferredAlloc{inner: inner}
	if err := d.Free(10, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(20, 2); err != nil {
		t.Fatal(err)
	}
	if len(inner.freed) != 0 {
		t.Fatal("free applied eagerly")
	}
	if err := d.apply(); err != nil {
		t.Fatal(err)
	}
	if len(inner.freed) != 2 || inner.freed[0] != (pageRun{10, 4}) {
		t.Fatalf("applied = %v", inner.freed)
	}
	// apply drains: a second apply is a no-op.
	if err := d.apply(); err != nil {
		t.Fatal(err)
	}
	if len(inner.freed) != 2 {
		t.Error("second apply re-freed")
	}
}

func TestDeferredAllocCancelRange(t *testing.T) {
	inner := &fakeAlloc{}
	d := &deferredAlloc{inner: inner}
	d.Free(1, 1)
	lo := d.mark()
	d.Free(2, 1)
	d.Free(3, 1)
	hi := d.mark()
	d.Free(4, 1)
	d.cancel(lo, hi) // drop frees of pages 2 and 3
	if err := d.apply(); err != nil {
		t.Fatal(err)
	}
	if len(inner.freed) != 2 || inner.freed[0].start != 1 || inner.freed[1].start != 4 {
		t.Fatalf("applied = %v", inner.freed)
	}
}

func TestTxnCreatedObjectOmittedFromCatalogUntilCommit(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	tx, _ := s.Begin()
	if err := tx.Create("ghost", 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("ghost", pat(1, 500)); err != nil {
		t.Fatal(err)
	}
	// A checkpoint while the creating txn is live must not persist the
	// object (soft checkpoint; stableDesc is nil so the entry is
	// omitted).
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Open("ghost"); err == nil {
		t.Error("uncommitted created object became durable")
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}
