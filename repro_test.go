package eos

import (
	"bytes"
	"testing"
)

// TestReproSoak2 distills the soak failure: fast-committed delete on one
// object inside a multi-object transaction, then an aborted insert, then
// a crash.
func TestReproSoak2(t *testing.T) {
	vol := newTestDevice(t, 512, 8192)
	logVol := newTestDevice(t, 512, 8192)
	s, err := Format(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Create("A", 0)
	model := pat(2, 3000)
	if err := a.Append(model); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	step := func(label string, fn func(tx *Txn) error, commit string) {
		t.Helper()
		tx, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(tx); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		switch commit {
		case "fast":
			if err := tx.CommitNoForce(); err != nil {
				t.Fatalf("%s commit: %v", label, err)
			}
		case "abort":
			if err := tx.Abort(); err != nil {
				t.Fatalf("%s abort: %v", label, err)
			}
		}
	}

	// Fast-committed insert (like r6), then crash+recover.
	ins1 := pat(7, 568)
	step("insert1", func(tx *Txn) error { return tx.Insert("A", 928, ins1) }, "fast")
	model = append(model[:928:928], append(append([]byte{}, ins1...), model[928:]...)...)
	vol.Crash()
	logVol.Crash()
	s, err = Open(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		o, err := s.Open("A")
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Read(0, o.Size())
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !bytes.Equal(got, model) {
			lo := -1
			for i := range model {
				if i >= len(got) || got[i] != model[i] {
					lo = i
					break
				}
			}
			t.Fatalf("%s: diverged at %d (size %d vs %d)", stage, lo, len(got), len(model))
		}
	}
	check("after first recovery")

	// Fast-committed delete (like r8).
	step("delete", func(tx *Txn) error { return tx.Delete("A", 194, 1339) }, "fast")
	model = append(model[:194:194], model[194+1339:]...)
	check("after fast delete")

	// Aborted insert (like r9).
	step("insert-abort", func(tx *Txn) error { return tx.Insert("A", 2019, pat(9, 475)) }, "abort")
	check("after abort")

	// Crash and recover: the fast-committed delete must be redone.
	vol.Crash()
	logVol.Crash()
	s, err = Open(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	check("after final recovery")
}
