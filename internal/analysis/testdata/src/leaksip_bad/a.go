// Package leaksip_bad holds leaks that only a whole-program view can
// see: resources acquired by wrapper helpers (latches two calls down,
// pins behind a fixer, transactions produced by an opener) that the
// caller never releases.  The literal acquire calls inside the
// wrappers are the pairs analyzer's territory and get no want comments
// here.
package leaksip_bad

import (
	"sync"

	"buffer"
	"eos"
)

type shard struct{ mu sync.Mutex }

// lockShard acquires the shard latch on behalf of its caller.
func lockShard(sh *shard) {
	sh.mu.Lock()
}

// lockShardIndirect adds a hop: the acquisition is two calls away from
// the leaking site.
func lockShardIndirect(sh *shard) {
	lockShard(sh)
}

type Pool struct{ shards [4]shard }

// LeakViaChain locks a shard through the two-deep chain and returns
// without unlocking.
func (p *Pool) LeakViaChain(i int) {
	sh := &p.shards[i]
	lockShardIndirect(sh) // want "interprocedural latch leak: call chain lockShardIndirect → lockShard acquires sh.mu"
}

// LeakOnBranch unlocks on the fast path only; the slow path exits with
// the latch held.
func (p *Pool) LeakOnBranch(i int, fast bool) {
	sh := &p.shards[i]
	lockShard(sh) // want "interprocedural latch leak: call chain lockShard acquires sh.mu"
	if fast {
		sh.mu.Unlock()
		return
	}
}

// pinPage fixes a page on behalf of its caller; the caller owns the
// unpin.
func pinPage(p *buffer.Pool, pg buffer.PageID) error {
	_, err := p.Fix(pg)
	return err
}

// ReadNoUnpin pins a locally chosen page through the wrapper and
// forgets the unpin on the success path (the error branch is exempt: a
// failed fix pins nothing).  Had the page been ReadNoUnpin's own
// parameter, the obligation would propagate to its callers instead.
func ReadNoUnpin(p *buffer.Pool, vol, page uint32) error {
	pg := buffer.PageID{Vol: vol, Page: page}
	if err := pinPage(p, pg); err != nil { // want "interprocedural pin leak: call chain pinPage acquires pg"
		return err
	}
	return nil
}

// openTxn produces a transaction the caller must finish.
func openTxn(s *eos.Store) (*eos.Txn, error) {
	return s.Begin()
}

// BeginAndDrop binds the produced transaction and never commits or
// aborts it.
func BeginAndDrop(s *eos.Store) error {
	t, err := openTxn(s) // want "interprocedural txn leak: \"t\" acquired by call chain openTxn can reach a function exit without release"
	if err != nil {
		return err
	}
	_ = t
	return nil
}

// BeginDiscard throws the produced transaction away outright.
func BeginDiscard(s *eos.Store) {
	openTxn(s) // want "interprocedural txn leak: openTxn returns an acquired txn that is discarded"
}
