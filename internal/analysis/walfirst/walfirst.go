// Package walfirst defines an Analyzer that enforces the paper's §4.5
// write-ahead rule at the transaction layer: inside a transactional
// method, no object mutation may execute before the corresponding
// write-ahead log record has been appended.
//
// In this engine the WAL boundary lives in the Txn methods (txn.go):
// each operation appends its log record via (*wal.Log).Append and only
// then calls the mutating lob.Object method.  The layers below are
// safe by construction — index-page updates are shadowed (§4.5: "the
// other three operations shadow"), so internal/lob and internal/buddy
// never overwrite committed state in place; the one in-place update,
// Replace, is exactly the one whose pre-image and extents the Txn
// method logs first.  The analyzer therefore checks every method whose
// receiver type is named by -recv (default "Txn"): each call to a
// mutating object method must be dominated, on every control-flow
// path from function entry, by a wal log append.
//
// Txn.Abort legitimately violates the letter of the rule — logical
// undo replays pre-images that the forward operations already logged,
// and the abort record is forced before any freed page becomes
// reusable — and carries an //eoslint:ignore walfirst directive with
// that justification.
package walfirst

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/eosdb/eos/internal/analysis/eosutil"
	"github.com/eosdb/eos/internal/analysis/ignore"
)

const doc = `check that transactional mutations are preceded by a WAL append (§4.5)

Within a transaction method, a mutating object call that can execute
before its log record is appended breaks recovery: a crash between the
mutation and the append leaves a change on disk that the log cannot
redo or undo.  Every path from function entry to a mutation must pass
a (*wal.Log).Append call first.`

// Analyzer is the walfirst analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "walfirst",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer, ignore.Analyzer},
	Run:      run,
}

var recvFlag string

func init() {
	Analyzer.Flags.StringVar(&recvFlag, "recv", "Txn",
		"comma-separated receiver type names whose methods must log before mutating")
}

// mutators are the lob.Object methods that change object state.
// SetLSN and Rebind are bookkeeping, Read/Size/EncodeDescriptor and
// friends are pure; everything here either moves bytes or frees pages.
var mutators = []string{
	"Append", "AppendWithHint", "Insert", "Delete", "Replace",
	"Destroy", "Truncate", "Compact",
}

func run(pass *analysis.Pass) (interface{}, error) {
	recvs := make(map[string]bool)
	for _, r := range strings.Split(recvFlag, ",") {
		if r = strings.TrimSpace(r); r != "" {
			recvs[r] = true
		}
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ig := ignore.For(pass)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil)}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || decl.Recv == nil {
			return
		}
		if !recvs[recvTypeName(decl)] {
			return
		}
		g := cfgs.FuncDecl(decl)
		if g == nil {
			return
		}
		checkFunc(pass, ig, g)
	})
	return nil, nil
}

// recvTypeName returns the receiver type name of decl ("Txn" for
// `func (t *Txn) ...`).
func recvTypeName(decl *ast.FuncDecl) string {
	if len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkFunc reports every mutating call reachable from entry on a path
// with no prior WAL append.  The walk scans each block's nodes in
// order and stops a path at the first append: everything dominated by
// it is safe.
func checkFunc(pass *analysis.Pass, ig *ignore.Reporter, g *cfg.CFG) {
	if len(g.Blocks) == 0 {
		return
	}
	reported := make(map[*ast.CallExpr]bool)
	seen := make(map[*cfg.Block]bool)
	var visit func(b *cfg.Block)
	visit = func(b *cfg.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, n := range b.Nodes {
			logged := false
			scanNode(pass, n, func(call *ast.CallExpr, isLog bool) bool {
				if isLog {
					logged = true
					return false
				}
				if !reported[call] {
					reported[call] = true
					fn := eosutil.Callee(pass.TypesInfo, call)
					ig.Report(call.Pos(),
						"mutation %s.%s can execute before its WAL record is appended; log first (§4.5 write-ahead rule)",
						eosutil.ReceiverType(fn).Name(), fn.Name())
				}
				return true
			})
			if logged {
				return // every node after this is dominated by the append
			}
		}
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Blocks[0])
}

// scanNode walks n in source order, invoking f for each WAL append
// (isLog true) or mutator call (isLog false).  f returns false to stop
// the scan.
func scanNode(pass *analysis.Pass, n ast.Node, f func(call *ast.CallExpr, isLog bool) bool) {
	stop := false
	ast.Inspect(n, func(m ast.Node) bool {
		if stop {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false // closures run later (or elsewhere); not this path
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := eosutil.IsMethodCall(pass.TypesInfo, call, "wal", "Log", "Append"); ok {
			if !f(call, true) {
				stop = true
			}
			return true
		}
		if _, ok := eosutil.IsMethodCall(pass.TypesInfo, call, "lob", "Object", mutators...); ok {
			if !f(call, false) {
				stop = true
			}
		}
		return true
	})
}
