// Package unusedignore_bad holds stale and misspelled suppression
// directives the audit must report.
package unusedignore_bad

import "buffer"

// cleanButSuppressed pairs its pin correctly, so the directive has
// nothing to suppress.
func cleanButSuppressed(pool *buffer.Pool, pg buffer.PageID) error {
	//eoslint:ignore pairs -- stale: the leak this excused was fixed long ago /* want "eoslint:ignore pairs suppresses nothing" */
	img, err := pool.Fix(pg)
	if err != nil {
		return err
	}
	_ = img
	return pool.Unpin(pg)
}

// typoed names an analyzer that does not exist, so it never worked;
// it is reported both as unknown and as suppressing nothing.
func typoed(pool *buffer.Pool, pg buffer.PageID) error {
	//eoslint:ignore pinpairs -- typo for the retired pinpair /* want "eoslint:ignore names unknown analyzer\\(s\\) pinpairs" "eoslint:ignore pinpairs suppresses nothing" */
	img, err := pool.Fix(pg)
	if err != nil {
		return err
	}
	_ = img
	return pool.Unpin(pg)
}

// usedDirective really suppresses a pin leak: the audit must not flag
// it.  (The suppressed pairs diagnostic itself is checked by the pairs
// fixtures, not here.)
func usedDirective(pool *buffer.Pool, pg buffer.PageID) []byte {
	//eoslint:ignore pairs -- pin intentionally handed to the caller
	img, err := pool.Fix(pg)
	if err != nil {
		return nil
	}
	return img
}
