// Package walfirstip_clean holds transaction methods whose helper
// calls are always covered by a WAL append; walfirstip must stay
// silent.
package walfirstip_clean

import (
	"lob"
	"wal"
)

type Txn struct {
	log *wal.Log
	obj *lob.Object
}

// applyAppend mutates for its callers; every caller below logs first.
func (t *Txn) applyAppend(b []byte) error {
	return t.obj.Append(b)
}

func (t *Txn) applyViaHelper(b []byte) error {
	return t.applyAppend(b)
}

// LogThenApply appends before the two-deep mutating chain.
func (t *Txn) LogThenApply(b []byte) error {
	if _, err := t.log.Append(wal.Record{Type: 1, Payload: b}); err != nil {
		return err
	}
	return t.applyViaHelper(b)
}

// logAndApply logs and then mutates: every path through it appends, so
// callers need no append of their own before calling it.
func (t *Txn) logAndApply(b []byte) error {
	if _, err := t.log.Append(wal.Record{Type: 2, Payload: b}); err != nil {
		return err
	}
	return t.obj.Append(b)
}

// Apply delegates to the self-logging helper.
func (t *Txn) Apply(b []byte) error {
	return t.logAndApply(b)
}

// BothBranchesLog appends on each branch of the join before the
// mutating helper: all paths are covered even though no single append
// dominates the call.
func (t *Txn) BothBranchesLog(b []byte, compress bool) error {
	if compress {
		if _, err := t.log.Append(wal.Record{Type: 3, Payload: b}); err != nil {
			return err
		}
	} else {
		if _, err := t.log.Append(wal.Record{Type: 4, Payload: b}); err != nil {
			return err
		}
	}
	return t.applyAppend(b)
}

// ReadOnly calls a helper that never mutates.
func (t *Txn) ReadOnly(off int64, b []byte) (int, error) {
	return t.readAt(off, b)
}

func (t *Txn) readAt(off int64, b []byte) (int, error) {
	return t.obj.Read(off, b)
}
