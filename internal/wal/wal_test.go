package wal

import (
	"bytes"
	"errors"
	"testing"

	"github.com/eosdb/eos/internal/disk"
)

func newLog(t testing.TB, pages disk.PageNum) (*Log, *disk.Volume) {
	t.Helper()
	vol := disk.MustNewVolume(256, pages, disk.CostModel{})
	return New(vol), vol
}

func TestAppendScanRoundTrip(t *testing.T) {
	l, _ := newLog(t, 64)
	recs := []*Record{
		{Txn: 1, Type: RecBegin},
		{Txn: 1, Type: RecInsert, Object: 7, Off: 100, Data: []byte("hello world")},
		{Txn: 1, Type: RecDelete, Object: 7, Off: 5, N: 3, OldData: []byte("llo")},
		{Txn: 1, Type: RecCommit},
	}
	var lsns []uint64
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Errorf("LSNs not increasing: %v", lsns)
		}
	}
	var got []*Record
	if err := l.Scan(0, func(r *Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		w := recs[i]
		if r.Txn != w.Txn || r.Type != w.Type || r.Object != w.Object ||
			r.Off != w.Off || r.N != w.N ||
			!bytes.Equal(r.Data, w.Data) || !bytes.Equal(r.OldData, w.OldData) {
			t.Errorf("record %d: got %+v want %+v", i, r, w)
		}
	}
}

func TestCrashDropsUnforcedRecords(t *testing.T) {
	l, vol := newLog(t, 64)
	if _, err := l.Append(&Record{Txn: 1, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecInsert, Data: []byte("durable")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	// The commit record was never forced.
	vol.Crash()

	l2, recs, err := Recover(vol)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (commit lost)", len(recs))
	}
	if recs[1].Type != RecInsert || !bytes.Equal(recs[1].Data, []byte("durable")) {
		t.Errorf("recovered record = %+v", recs[1])
	}
	// Appends continue at the recovered tail.
	if _, err := l2.Append(&Record{Txn: 2, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	var count int
	l2.Scan(0, func(*Record) error { count++; return nil })
	if count != 3 {
		t.Errorf("records after resumed append = %d, want 3", count)
	}
}

func TestMultiPageRecords(t *testing.T) {
	l, vol := newLog(t, 64)
	big := make([]byte, 1000) // ~4 pages at 256-byte pages
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecAppend, Data: big}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	_, recs, err := Recover(vol)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[0].Data, big) {
		t.Fatalf("big record lost: %d records", len(recs))
	}
}

func TestLogFull(t *testing.T) {
	l, _ := newLog(t, 2)
	payload := make([]byte, 300)
	if _, err := l.Append(&Record{Type: RecAppend, Data: payload}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecAppend, Data: payload}); !errors.Is(err, ErrLogFull) {
		t.Errorf("err = %v, want ErrLogFull", err)
	}
}

func TestResetClearsEverything(t *testing.T) {
	l, vol := newLog(t, 16)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(&Record{Txn: uint64(i), Type: RecBegin}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Tail() != 0 {
		t.Errorf("tail = %d after reset", l.Tail())
	}
	// A single new record, then crash: recovery must see exactly one —
	// no phantom pre-reset records.
	if _, err := l.Append(&Record{Txn: 9, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	_, recs, err := Recover(vol)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Txn != 9 {
		t.Fatalf("recovered %d records (want 1, txn 9)", len(recs))
	}
}

func TestRecTypeStrings(t *testing.T) {
	for _, rt := range []RecType{RecBegin, RecCommit, RecAbort, RecCreate, RecDestroy,
		RecAppend, RecInsert, RecDelete, RecReplace, RecTruncate, RecCheckpoint} {
		if rt.String() == "" || rt.String()[0] == 'r' && rt.String() != "replace" {
			t.Errorf("missing String for %d", rt)
		}
	}
	if RecType(99).String() != "rectype(99)" {
		t.Error("unknown type string")
	}
}

func TestCorruptRecordStopsScan(t *testing.T) {
	l, vol := newLog(t, 16)
	if _, err := l.Append(&Record{Txn: 1, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second record's checksum area on disk.
	raw, _ := vol.Read(0, 1)
	raw[recHeaderSize+10] ^= 0xFF
	vol.WritePages(0, 1, raw)

	var count int
	if err := l.Scan(0, func(*Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("scanned %d records past corruption, want 1", count)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, _ := newLog(t, 256)
	const goroutines = 8
	const perG = 40
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				if _, err := l.Append(&Record{Txn: uint64(g), Type: RecBegin, Off: int64(i)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// Every record intact, LSNs strictly increasing.
	var prev uint64
	count := 0
	if err := l.Scan(0, func(r *Record) error {
		if r.LSN <= prev {
			t.Errorf("LSN order violated: %d after %d", r.LSN, prev)
		}
		prev = r.LSN
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != goroutines*perG {
		t.Errorf("scanned %d records, want %d", count, goroutines*perG)
	}
}

func BenchmarkAppendRecord(b *testing.B) {
	vol := disk.MustNewVolume(4096, 1<<16, disk.CostModel{})
	l := New(vol)
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(&Record{Txn: 1, Type: RecInsert, Off: int64(i), Data: payload}); err != nil {
			if errors.Is(err, ErrLogFull) {
				b.StopTimer()
				if err := l.Reset(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				continue
			}
			b.Fatal(err)
		}
	}
}

func BenchmarkForce(b *testing.B) {
	vol := disk.MustNewVolume(4096, 1<<16, disk.CostModel{})
	l := New(vol)
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(&Record{Txn: 1, Type: RecCommit, Data: payload}); err != nil {
			b.StopTimer()
			if err := l.Reset(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
		if err := l.Force(); err != nil {
			b.Fatal(err)
		}
	}
}
