package eos

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestCreateAtOpenAtRoundTrip drives the file backend through its
// whole lifecycle: create a store on real page files, write objects,
// close, reopen from the directory (running recovery), and verify the
// content — then once more to prove reopen is repeatable.
func TestCreateAtOpenAtRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Backend: BackendFile, DataPages: 2048, LogPages: 512}
	s, err := CreateAt(dir, opts)
	if err != nil {
		t.Fatalf("CreateAt: %v", err)
	}
	data := pat(3, 100000)
	o, err := s.Create("blob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AppendWithHint(data, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, name := range []string{dataFileName, logFileName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("volume file %s missing: %v", name, err)
		}
	}
	for round := 0; round < 2; round++ {
		s, err = OpenAt(dir, opts)
		if err != nil {
			t.Fatalf("OpenAt round %d: %v", round, err)
		}
		o, err := s.Open("blob")
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Read(0, o.Size())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("content mismatch after reopen %d", round)
		}
		if err := s.Check(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close round %d: %v", round, err)
		}
	}
}

// TestCreateAtSimBackend checks the default backend builds an
// in-memory store and that OpenAt refuses it (nothing on disk to
// reopen).
func TestCreateAtSimBackend(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateAt(dir, Options{})
	if err != nil {
		t.Fatalf("CreateAt: %v", err)
	}
	if _, err := s.Create("x", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAt(dir, Options{}); err == nil {
		t.Error("OpenAt accepted the sim backend")
	}
	if _, err := CreateAt(t.TempDir(), Options{Backend: "tape"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestStoreAsyncDispatcher runs a write-heavy store with IODepth set,
// so checkpoint write-back flows through the async dispatcher, and
// verifies durability plus a clean dispatcher shutdown.  Runs on both
// backends via EOS_TEST_BACKEND.
func TestStoreAsyncDispatcher(t *testing.T) {
	s, vol, logVol := newStore(t, Options{IODepth: 4, Threshold: 4})
	want := make(map[string][]byte)
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		data := pat(i, 20000)
		o, err := s.Create(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Append(data); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st := vol.Stats(); st.RunWrites == 0 {
		t.Error("dispatcher checkpoint issued no vectored runs")
	}
	// The checkpointed state must survive a crash: everything the
	// dispatcher wrote was forced.
	if err := vol.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := logVol.Crash(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(vol, logVol, Options{IODepth: 4, Threshold: 4})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	for name, data := range want {
		o, err := re.Open(name)
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		got, err := o.Read(0, o.Size())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("object %q content mismatch after dispatched checkpoint + crash", name)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The first store's dispatcher is still running; Close shuts it
	// down and later checkpoints must fall back to synchronous writes.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
