package buddy

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

// TestQuickSegWalkConsistency: after arbitrary alloc/free churn, walking
// the space with segStartingAt partitions [0, capacity) exactly, and
// segContaining agrees with the walk for every page.
func TestQuickSegWalkConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 64
		vol := disk.MustNewVolume(128, disk.PageNum(capacity+4), disk.CostModel{})
		pool := buffer.MustNewPool(vol, 4)
		sp, err := FormatSpace(pool, 0, 1, capacity, vol)
		if err != nil {
			return false
		}
		type run struct {
			p disk.PageNum
			n int
		}
		var live []run
		for op := 0; op < 60; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := 1 + rng.Intn(12)
				p, err := sp.Alloc(n)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				live = append(live, run{p, n})
			} else {
				i := rng.Intn(len(live))
				if err := sp.Free(live[i].p, live[i].n); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		// Cross-check the two decoders over the whole space.
		ok := true
		err = sp.withDir(false, func(d dir) error {
			for p := 0; p < d.capacity(); {
				typ, alloc, err := d.segStartingAt(p)
				if err != nil {
					ok = false
					return nil
				}
				for q := p; q < p+(1<<typ); q++ {
					s0, t0, a0, err := d.segContaining(q)
					if err != nil {
						ok = false
						return nil
					}
					// For big segments both decoders agree exactly; for
					// individually-encoded pages segContaining reports
					// per-page granularity, which must at least agree on
					// allocation status and containment.
					if a0 != alloc || s0 < p || s0+(1<<t0) > p+(1<<typ) {
						ok = false
						return nil
					}
				}
				p += 1 << typ
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
