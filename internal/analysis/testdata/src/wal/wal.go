// Package wal is a stand-in for the engine's write-ahead log with the
// method shape walfirst matches on.
package wal

// Record is one log record.
type Record struct {
	Type    int
	Payload []byte
}

// Log is the stand-in write-ahead log.
type Log struct{}

// Append appends a record and returns its LSN.
func (l *Log) Append(rec Record) (int64, error) { return 0, nil }
