// Package errwrap_bad holds error-idiom violations errwrap must
// report.
package errwrap_bad

import (
	"errors"
	"fmt"
)

var ErrNoSpace = errors.New("no space")

// wrapWithV severs the Is/As chain.
func wrapWithV(err error, pg int) error {
	return fmt.Errorf("fixing page %d: %v", pg, err) // want "error formatted without %w"
}

// wrapWithS also severs the chain.
func wrapWithS(err error) error {
	return fmt.Errorf("alloc failed: %s", err) // want "error formatted without %w"
}

// wrapOnlyOne wraps one of two error operands.
func wrapOnlyOne(e1, e2 error) error {
	return fmt.Errorf("flush: %w (after %v)", e1, e2) // want "error formatted without %w"
}

// compareEq stops matching once any layer wraps the sentinel.
func compareEq(err error) bool {
	return err == ErrNoSpace // want "error compared with =="
}

// compareNeq is the negated form.
func compareNeq(err error) bool {
	return err != ErrNoSpace // want "error compared with !="
}
