// Package walfirstip defines the whole-program extension of the §4.5
// write-ahead check: log-before-mutate dominance lifted across
// function boundaries.
//
// The intraprocedural walfirst analyzer verifies that within a
// transaction method every lob.Object mutation is dominated by a
// (*wal.Log).Append; a mutation performed by a helper the method calls
// is invisible to it — the helper is not a mutator by name, and the
// helper's own body is not a transaction method.  This analyzer
// computes, bottom-up over the ssa call graph (with cross-package
// propagation through WalFact object facts), two bits per function:
//
//   - Exposed: some path through the function reaches a mutation
//     (direct or through further callees) before the function itself
//     has appended a WAL record on that path.  Calling an exposed
//     function while the caller has not logged yet is a write-ahead
//     violation.
//
//   - AppendsAll: every path from entry to return appends a WAL
//     record, so after a call to the function the caller's logging
//     obligation is discharged (a helper that wraps the append).
//
// Exported transaction methods (receiver type named by -recv, default
// "Txn") are then checked with a forward all-paths dataflow: the logged state
// starts false, a WAL append (or a call to an AppendsAll function)
// sets it, joins take the conjunction, and a call to an Exposed callee
// in the unlogged state is reported with the full call chain to the
// mutation.  Direct mutations in the unlogged state are walfirst's to
// report and are not re-reported here; a diagnostic from this analyzer
// always crosses at least one call edge.
//
// Where the report names a WAL append that fails to cover the call,
// the ssa dominator tree supplies the evidence: the append exists but
// does not dominate the call site, i.e. some path from entry skips it.
//
// Interface calls use the CHA resolution: a call is Exposed if any
// candidate is, and AppendsAll only if every candidate is.  Calls that
// resolve to nothing (func values, closures) are treated as neither.
package walfirstip

import (
	"fmt"
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/eosdb/eos/internal/analysis/ignore"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

const doc = `check §4.5 log-before-mutate across function boundaries (whole-program)

A helper that touches object state mutates on behalf of the
transaction method that calls it: if the method can reach the call
before appending the operation's log record, a crash between the
helper's mutation and the append leaves a change the log can neither
redo nor undo.  Function summaries (may-mutate-before-logging /
always-appends) propagate bottom-up over the call graph and across
packages via analysis facts.`

// Analyzer is the walfirstip analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "walfirstip",
	Doc:       doc,
	Requires:  []*analysis.Analyzer{ssa.Analyzer, ignore.Analyzer},
	Run:       run,
	FactTypes: []analysis.Fact{new(WalFact)},
}

var recvFlag string

func init() {
	Analyzer.Flags.StringVar(&recvFlag, "recv", "Txn",
		"comma-separated receiver type names whose methods must log before mutating")
}

// WalFact is the exported per-function write-ahead summary.
type WalFact struct {
	// Exposed: some path reaches a mutation before this function has
	// appended a WAL record.
	Exposed bool
	// Witness is the call chain from this function to the exposed
	// mutation ("applyAppend → Object.Append").
	Witness []string
	// AppendsAll: every path to return appends a WAL record.
	AppendsAll bool
}

// AFact marks WalFact as an analysis fact.
func (*WalFact) AFact() {}

func (f *WalFact) String() string {
	switch {
	case f.Exposed && f.AppendsAll:
		return "wal(exposed,appends-all)"
	case f.Exposed:
		return "wal(exposed)"
	case f.AppendsAll:
		return "wal(appends-all)"
	}
	return "wal()"
}

// maxChain bounds recorded witness chains.
const maxChain = 8

func run(pass *analysis.Pass) (interface{}, error) {
	pr := pass.ResultOf[ssa.Analyzer].(*ssa.Program)
	ig := ignore.For(pass)

	c := &checker{pass: pass, pr: pr, ig: ig, summaries: make(map[*ssa.Func]*WalFact)}
	c.summarize()
	c.exportFacts()

	recvs := make(map[string]bool)
	for _, r := range strings.Split(recvFlag, ",") {
		if r = strings.TrimSpace(r); r != "" {
			recvs[r] = true
		}
	}
	for _, f := range pr.Funcs {
		// Roots are the exported methods of the transaction type: the
		// API surface where the logging obligation starts.  Unexported
		// helpers inherit their caller's logging context — they are
		// summarized, not reported, so a helper whose every caller logs
		// first stays silent.
		if f.Decl.Recv == nil || !recvs[recvTypeName(f.Decl)] || !f.Obj.Exported() {
			continue
		}
		c.checkRoot(f)
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	pr        *ssa.Program
	ig        *ignore.Reporter
	summaries map[*ssa.Func]*WalFact
}

// summarize computes the per-function summaries bottom-up, iterating
// each SCC to a fixed point.  Exposed only ever turns on and
// AppendsAll only ever turns off (it starts optimistic), so the
// iteration converges.
func (c *checker) summarize() {
	for _, scc := range c.pr.SCCs {
		for _, f := range scc {
			c.summaries[f] = &WalFact{AppendsAll: true}
		}
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				if c.updateSummary(f) {
					changed = true
				}
			}
		}
	}
}

// updateSummary runs the logged-state dataflow over f and refreshes
// its summary bits, reporting whether anything changed.
func (c *checker) updateSummary(f *ssa.Func) bool {
	sum := c.summaries[f]
	exposed, witness, appendsAll := c.dataflow(f, nil)
	changed := false
	if exposed && !sum.Exposed {
		sum.Exposed = true
		sum.Witness = witness
		changed = true
	}
	if !appendsAll && sum.AppendsAll {
		sum.AppendsAll = false
		changed = true
	}
	return changed
}

// exportFacts publishes the converged summaries.
func (c *checker) exportFacts() {
	for f, sum := range c.summaries {
		if sum.Exposed || sum.AppendsAll {
			c.pass.ExportObjectFact(f.Obj, sum)
		}
	}
}

// calleeSummary merges the summaries of a call's CHA candidates:
// exposed if any candidate is exposed, appends-all only if every
// candidate appends.
func (c *checker) calleeSummary(in *ssa.Instr) (exposed bool, witness []string, appendsAll bool) {
	if len(in.Callees) == 0 {
		return false, nil, false
	}
	appendsAll = true
	for _, callee := range in.Callees {
		var cf *WalFact
		if f, ok := c.pr.ByObj[callee]; ok {
			cf = c.summaries[f]
		} else {
			var imported WalFact
			if c.pass.ImportObjectFact(callee, &imported) {
				cf = &imported
			}
		}
		if cf == nil {
			appendsAll = false
			continue
		}
		if cf.Exposed && !exposed {
			exposed = true
			witness = append([]string{ssa.FuncLabel(c.pass.Pkg, callee)}, cf.Witness...)
			if len(witness) > maxChain {
				witness = witness[:maxChain]
			}
		}
		if !cf.AppendsAll {
			appendsAll = false
		}
	}
	return exposed, witness, appendsAll
}

// exposure is one call-site violation found by the dataflow.
type exposure struct {
	in      *ssa.Instr
	block   *ssa.Block
	witness []string
}

// dataflow runs the all-paths logged-state analysis over f.  The
// lattice per block is "logged on every path reaching here"; it starts
// optimistic (true) and iterates to the greatest fixed point.  When
// report is non-nil, every call-site exposure in the unlogged state is
// appended to it (used for root methods); the returned values are the
// function's own summary bits.
func (c *checker) dataflow(f *ssa.Func, report *[]exposure) (exposed bool, witness []string, appendsAll bool) {
	if f.Entry == nil {
		return false, nil, true
	}
	n := len(f.Blocks)
	inState := make([]bool, n)
	outState := make([]bool, n)
	for i := range outState {
		inState[i] = true
		outState[i] = true
	}
	inState[f.Entry.Index] = false

	preds := make([][]*ssa.Block, n)
	for _, b := range f.Blocks {
		if !f.Reachable(b) {
			continue
		}
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}

	transfer := func(b *ssa.Block, logged bool) bool {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Kind {
			case ssa.KWALAppend:
				logged = true
			case ssa.KMutate:
				// Direct mutation: contributes to the summary; the
				// intraprocedural walfirst analyzer owns the report.
				continue
			case ssa.KCall:
				_, _, calleeAppends := c.calleeSummary(in)
				if calleeAppends {
					logged = true
				}
			}
		}
		return logged
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if !f.Reachable(b) {
				continue
			}
			in := true
			if b == f.Entry {
				in = false
			} else {
				for _, p := range preds[b.Index] {
					in = in && outState[p.Index]
				}
			}
			out := transfer(b, in)
			if in != inState[b.Index] || out != outState[b.Index] {
				inState[b.Index] = in
				outState[b.Index] = out
				changed = true
			}
		}
	}

	// Final pass: collect exposures and the exit conjunction.
	appendsAll = true
	sawExit := false
	for _, b := range f.Blocks {
		if !f.Reachable(b) {
			continue
		}
		logged := inState[b.Index]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Kind {
			case ssa.KWALAppend:
				logged = true
			case ssa.KMutate:
				if !logged && !exposed {
					exposed = true
					witness = []string{in.MutName}
				}
			case ssa.KCall:
				calleeExposed, calleeWitness, calleeAppends := c.calleeSummary(in)
				if calleeExposed && !logged {
					if !exposed {
						exposed = true
						witness = calleeWitness
					}
					if report != nil {
						*report = append(*report, exposure{in: in, block: b, witness: calleeWitness})
					}
				}
				if calleeAppends {
					logged = true
				}
			}
		}
		if len(b.Succs) == 0 && b.Raw.Live {
			sawExit = true
			if !logged {
				appendsAll = false
			}
		}
	}
	if !sawExit {
		appendsAll = false
	}
	return exposed, witness, appendsAll
}

// checkRoot reports every unlogged exposed call in a transaction
// method.
func (c *checker) checkRoot(f *ssa.Func) {
	var exposures []exposure
	c.dataflow(f, &exposures)
	for _, e := range exposures {
		chain := strings.Join(e.witness, " → ")
		msg := fmt.Sprintf(
			"call can mutate %s before this transaction's WAL record is appended (call chain %s → %s); log first (§4.5 write-ahead rule)",
			lastElem(e.witness), ssa.FuncLabel(c.pass.Pkg, f.Obj), chain)
		if app := c.skippedAppend(f, e.block); app != "" {
			msg += fmt.Sprintf("; the append at %s does not dominate this call", app)
		}
		c.ig.Report(e.in.Call.Pos(), "%s", msg)
	}
}

// skippedAppend finds a WAL append in f that fails to dominate block b
// — evidence that the append exists but a path from entry skips it.
func (c *checker) skippedAppend(f *ssa.Func, b *ssa.Block) string {
	for _, ab := range f.Blocks {
		if !f.Reachable(ab) {
			continue
		}
		for i := range ab.Instrs {
			in := &ab.Instrs[i]
			if in.Kind != ssa.KWALAppend {
				continue
			}
			if !f.Dominates(ab, b) {
				p := c.pass.Fset.Position(in.Call.Pos())
				return fmt.Sprintf("line %d", p.Line)
			}
		}
	}
	return ""
}

func lastElem(chain []string) string {
	if len(chain) == 0 {
		return "object state"
	}
	return chain[len(chain)-1]
}

// recvTypeName returns the receiver type name of decl ("" for
// functions).
func recvTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
