package analysis_test

import (
	"strings"
	"testing"

	eosanalysis "github.com/eosdb/eos/internal/analysis"
)

// TestRegistry checks the suite is wired coherently: unique names,
// documented, runnable, and one registry entry per analyzer package.
func TestRegistry(t *testing.T) {
	as := eosanalysis.Analyzers()
	if len(as) != 13 {
		t.Fatalf("Analyzers() returned %d analyzers, want 13", len(as))
	}
	seen := make(map[string]bool)
	for _, a := range as {
		if a.Name == "" || seen[a.Name] {
			t.Errorf("analyzer name %q is empty or duplicated", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}
		if !strings.Contains(a.Doc, "\n") {
			t.Errorf("%s: Doc should have a summary line and a body", a.Name)
		}
	}
	for _, name := range []string{
		"pairs", "lockorder", "atomicfield", "walfirst", "errwrap",
		"useafterunpin", "guardedby", "deadlock", "walfirstip",
		"leaksip", "forcedom", "racecheck", "unusedignore",
	} {
		if !seen[name] {
			t.Errorf("registry is missing %s", name)
		}
	}
}
