// Package forcedom defines the whole-program crash-consistency check:
// the DESIGN.md §8.1 force-ordering contracts verified as dominance
// properties over the ssa IR, lifted across function boundaries the
// same way walfirstip lifts the §4.5 write-ahead rule.
//
// PR 8's crash-point sweep found these orderings dynamically, by
// enumerating crash states; this analyzer proves them statically, so a
// reordering regression fails the build instead of (maybe) a nightly
// sweep.  Five contracts are checked:
//
//  1. Force-ahead: every in-place overwrite of previously-forced state
//     (lob Object.Replace) is dominated by a WAL force — the pre-image
//     record must be durable before it is the only copy of the old
//     bytes.
//  2. Two-phase checkpoint: header/catalog writes ((*Store).writeHeader
//     / writeCatalog) are dominated by a device force of the data pages
//     they index.
//  3. Abort ordering: the abort record (wal.Record{Type: RecAbort}) is
//     constructed only after a device force makes the compensations it
//     acknowledges durable.
//  4. Durability quarantine: freed-extent reuse ((*buddy.Manager).Free
//     from the store layer) is dominated by a barrierDurable stamp
//     (Load before gating, Store after phase two).  The rule is active
//     only in packages that operate the barrier — a package with no
//     barrierDurable stamps has no quarantine to violate.
//  5. Rename atomicity: every os.Rename is followed on all success
//     paths by a disk.SyncDir of the owning directory, else the new
//     name may not survive a crash.
//
// Rules 1–4 are backward (dominance) properties: a forward all-paths
// dataflow tracks "discharged on every path reaching here" per rule,
// exactly like walfirstip's logged-state analysis.  Rule 5 is a
// forward may-property: pending renames accumulate (union at joins)
// and must be cleared by a directory sync before any success exit;
// error exits (the rename itself failed) are exempt.
//
// Interprocedural propagation follows the walfirstip pattern:
// per-function ForceFact summaries — may-discharge bits and per-rule
// exposure bits with witness chains — computed bottom-up in SCC order
// and exported as object facts.  Discharge through a callee is a MAY
// property (the callee forces on some path): the engine's force
// helpers (forceDurableLocked, checkpointLocked) return early on I/O
// errors, and on those paths the caller's subsequent writes never
// execute either, so treating the call as discharging is sound for
// the orderings checked here and avoids error-path false positives.
// Within a single function the check is exact dominance.
//
// Rule 1 roots are the exported methods of the transaction type
// (-recv, default "Txn"), where the force-ahead obligation starts;
// rules 2–5 root at every exported function.  Unexported helpers are
// summarized, not reported.  Where a report fires, the dominator tree
// supplies evidence: if a discharging instruction exists but fails to
// dominate the event, the diagnostic carries a related position
// naming it (surfaced as SARIF relatedLocations).
package forcedom

import (
	"fmt"
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/eosdb/eos/internal/analysis/eosutil"
	"github.com/eosdb/eos/internal/analysis/ignore"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

const doc = `check §8.1 force-ordering contracts by dominance (whole-program)

Crash consistency is an ordering property: the WAL record before the
in-place write it protects, the data force before the checkpoint
header, the compensation force before the abort record, the quarantine
stamp before freed-extent reuse, the directory sync after the rename.
Each is verified on the dominator tree with interprocedural
may-force/exposure summaries propagated via analysis facts, so the
orderings PR 8's crash sweep found dynamically are machine-checked on
every build.`

// Analyzer is the forcedom analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "forcedom",
	Doc:       doc,
	Requires:  []*analysis.Analyzer{ssa.Analyzer, ignore.Analyzer},
	Run:       run,
	FactTypes: []analysis.Fact{new(ForceFact)},
}

var recvFlag string

func init() {
	Analyzer.Flags.StringVar(&recvFlag, "recv", "Txn",
		"comma-separated receiver type names whose methods must force before overwriting")
}

// Discharge indices: the three event classes that satisfy an ordering
// obligation.
const (
	dWALForce = iota // (*wal.Log).Force / ForceLSN
	dDevForce        // device Force / ForceAll / ForceAllExcept
	dStamp           // Load/Store on a barrierDurable field
	nDischarge
)

// Dominance-rule indices.
const (
	rReplace = iota // force-ahead: WAL force before Object.Replace
	rMeta           // two-phase checkpoint: device force before meta write
	rAbort          // abort ordering: device force before RecAbort literal
	rFree           // quarantine: barrier stamp before Manager.Free
	nDomRules
)

// domRules declares the four dominance contracts.  txnOnly restricts
// roots to the -recv transaction methods; the others root at every
// exported function.
var domRules = [nDomRules]struct {
	discharge int
	txnOnly   bool
	evDesc    string // direct-event description prefix ("" to use only the label)
	callDesc  string // what the callee can reach, for call-site reports
	dischDesc string // the missing dominator
	contract  string // the §8.1 clause
}{
	rReplace: {dWALForce, true,
		"in-place overwrite", "overwrite previously-forced object state in place",
		"a WAL force of its pre-image record", "§8.1 force-ahead rule"},
	rMeta: {dDevForce, false,
		"checkpoint metadata write", "write checkpoint metadata",
		"a device force of the data pages it indexes", "§8.1 two-phase checkpoint"},
	rAbort: {dDevForce, false,
		"abort-record construction", "construct the abort record",
		"a device force of its compensations", "§8.1 abort ordering"},
	rFree: {dStamp, false,
		"freed-extent release", "return freed extents to the allocator",
		"a barrierDurable quarantine stamp", "§8.1 durability quarantine"},
}

// ForceFact is the exported per-function force-ordering summary.
type ForceFact struct {
	// May: the function performs the indexed discharge on some path.
	May [nDischarge]bool
	// Exposed: some path reaches the indexed rule's event before this
	// function has discharged it on that path.
	Exposed [nDomRules]bool
	// Witness is the call chain from this function to each exposure.
	Witness [nDomRules][]string
	// RenameOpen: some success-exit path leaves a rename with no
	// directory sync.
	RenameOpen bool
	// RenameWitness is the chain to the open rename.
	RenameWitness []string
}

// AFact marks ForceFact as an analysis fact.
func (*ForceFact) AFact() {}

func (f *ForceFact) String() string {
	var parts []string
	for i, names := range [nDischarge]string{"walforce", "devforce", "stamp"} {
		if f.May[i] {
			parts = append(parts, "may-"+names)
		}
	}
	for i, names := range [nDomRules]string{"replace", "meta", "abort", "free"} {
		if f.Exposed[i] {
			parts = append(parts, "exposed-"+names)
		}
	}
	if f.RenameOpen {
		parts = append(parts, "rename-open")
	}
	return "force(" + strings.Join(parts, ",") + ")"
}

func (f *ForceFact) empty() bool {
	for _, b := range f.May {
		if b {
			return false
		}
	}
	for _, b := range f.Exposed {
		if b {
			return false
		}
	}
	return !f.RenameOpen
}

// maxChain bounds recorded witness chains.
const maxChain = 8

func run(pass *analysis.Pass) (interface{}, error) {
	pr := pass.ResultOf[ssa.Analyzer].(*ssa.Program)
	ig := ignore.For(pass)

	c := &checker{pass: pass, pr: pr, ig: ig, summaries: make(map[*ssa.Func]*ForceFact)}
	c.quarantined = c.packageStamps()
	c.summarize()
	for f, sum := range c.summaries {
		if !sum.empty() {
			pass.ExportObjectFact(f.Obj, sum)
		}
	}

	recvs := make(map[string]bool)
	for _, r := range strings.Split(recvFlag, ",") {
		if r = strings.TrimSpace(r); r != "" {
			recvs[r] = true
		}
	}
	for _, f := range pr.Funcs {
		if !f.Obj.Exported() || c.inTestFile(f) {
			continue
		}
		c.checkRoot(f, recvs[recvTypeName(f.Decl)])
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	pr        *ssa.Program
	ig        *ignore.Reporter
	summaries map[*ssa.Func]*ForceFact
	// quarantined: the package operates the durability-quarantine
	// barrier, activating rule 4.
	quarantined bool
}

// packageStamps reports whether any function stamps or consults the
// quarantine barrier.
func (c *checker) packageStamps() bool {
	for _, f := range c.pr.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Kind == ssa.KBarrierStamp {
					return true
				}
			}
		}
	}
	return false
}

func (c *checker) inTestFile(f *ssa.Func) bool {
	return strings.HasSuffix(c.pass.Fset.Position(f.Decl.Pos()).Filename, "_test.go")
}

// summarize computes per-function summaries bottom-up, iterating each
// SCC to a fixed point.  Every bit is monotone (May and Exposed only
// turn on), so the iteration converges.
func (c *checker) summarize() {
	for _, scc := range c.pr.SCCs {
		for _, f := range scc {
			c.summaries[f] = &ForceFact{}
		}
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				if c.updateSummary(f) {
					changed = true
				}
			}
		}
	}
}

func (c *checker) updateSummary(f *ssa.Func) bool {
	sum := c.summaries[f]
	fresh := c.analyze(f, nil)
	changed := false
	for i := 0; i < nDischarge; i++ {
		if fresh.May[i] && !sum.May[i] {
			sum.May[i] = true
			changed = true
		}
	}
	for r := 0; r < nDomRules; r++ {
		if fresh.Exposed[r] && !sum.Exposed[r] {
			sum.Exposed[r] = true
			sum.Witness[r] = fresh.Witness[r]
			changed = true
		}
	}
	if fresh.RenameOpen && !sum.RenameOpen {
		sum.RenameOpen = true
		sum.RenameWitness = fresh.RenameWitness
		changed = true
	}
	return changed
}

// calleeSummary merges the summaries of a call's CHA candidates:
// exposed/may bits turn on if any candidate has them (may semantics
// throughout; see the package comment for why may-discharge is sound
// here).
func (c *checker) calleeSummary(in *ssa.Instr) *ForceFact {
	var merged ForceFact
	for _, callee := range in.Callees {
		var cf *ForceFact
		if f, ok := c.pr.ByObj[callee]; ok {
			cf = c.summaries[f]
		} else {
			var imported ForceFact
			if c.pass.ImportObjectFact(callee, &imported) {
				cf = &imported
			}
		}
		if cf == nil {
			continue
		}
		label := ssa.FuncLabel(c.pass.Pkg, callee)
		for i := 0; i < nDischarge; i++ {
			merged.May[i] = merged.May[i] || cf.May[i]
		}
		for r := 0; r < nDomRules; r++ {
			if cf.Exposed[r] && !merged.Exposed[r] {
				merged.Exposed[r] = true
				merged.Witness[r] = chain(label, cf.Witness[r])
			}
		}
		if cf.RenameOpen && !merged.RenameOpen {
			merged.RenameOpen = true
			merged.RenameWitness = chain(label, cf.RenameWitness)
		}
	}
	return &merged
}

func chain(head string, rest []string) []string {
	out := append([]string{head}, rest...)
	if len(out) > maxChain {
		out = out[:maxChain]
	}
	return out
}

// finding is one violation found by the dataflow.
type finding struct {
	rule    int // nDomRules means the rename rule
	in      *ssa.Instr
	block   *ssa.Block
	witness []string
	direct  bool // event in the root itself (vs through a call)
}

const rRename = nDomRules

// eventRule classifies in as a dominance-rule event, returning the
// rule index or -1.
func (c *checker) eventRule(in *ssa.Instr) int {
	switch in.Kind {
	case ssa.KMutate:
		if in.MutName == "Object.Replace" {
			return rReplace
		}
	case ssa.KMetaWrite:
		return rMeta
	case ssa.KAbortRec:
		return rAbort
	case ssa.KBuddyFree:
		if c.quarantined {
			return rFree
		}
	}
	return -1
}

// dischargeOf maps an instruction kind to the discharge class it
// satisfies, or -1.
func dischargeOf(k ssa.Kind) int {
	switch k {
	case ssa.KWALForce:
		return dWALForce
	case ssa.KDevForce:
		return dDevForce
	case ssa.KBarrierStamp:
		return dStamp
	}
	return -1
}

// analyze runs both dataflows over f and returns its summary.  When
// report is non-nil (root functions), violations are appended to it.
func (c *checker) analyze(f *ssa.Func, report *[]finding) *ForceFact {
	sum := &ForceFact{}
	if f.Entry == nil {
		return sum
	}
	n := len(f.Blocks)

	// --- Dominance rules: all-paths "discharged" state per rule,
	// greatest fixed point (optimistic init, entry pessimistic).
	type domState [nDomRules]bool
	inState := make([]domState, n)
	outState := make([]domState, n)
	for i := range inState {
		for r := 0; r < nDomRules; r++ {
			inState[i][r] = true
			outState[i][r] = true
		}
	}
	inState[f.Entry.Index] = domState{}

	preds := make([][]*ssa.Block, n)
	var exits []*ssa.Block
	for _, b := range f.Blocks {
		if !f.Reachable(b) {
			continue
		}
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
		if len(b.Succs) == 0 && b.Raw.Live {
			exits = append(exits, b)
		}
	}

	transfer := func(b *ssa.Block, st domState) domState {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := dischargeOf(in.Kind); d >= 0 {
				for r := 0; r < nDomRules; r++ {
					if domRules[r].discharge == d {
						st[r] = true
					}
				}
				continue
			}
			if in.Kind == ssa.KCall {
				cs := c.calleeSummary(in)
				for r := 0; r < nDomRules; r++ {
					if cs.May[domRules[r].discharge] {
						st[r] = true
					}
				}
			}
		}
		return st
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if !f.Reachable(b) {
				continue
			}
			var in domState
			if b != f.Entry {
				for r := 0; r < nDomRules; r++ {
					in[r] = true
				}
				for _, p := range preds[b.Index] {
					for r := 0; r < nDomRules; r++ {
						in[r] = in[r] && outState[p.Index][r]
					}
				}
			}
			out := transfer(b, in)
			if in != inState[b.Index] || out != outState[b.Index] {
				inState[b.Index] = in
				outState[b.Index] = out
				changed = true
			}
		}
	}

	// Final pass: May bits, exposures, reports.
	for _, b := range f.Blocks {
		if !f.Reachable(b) {
			continue
		}
		st := inState[b.Index]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := dischargeOf(in.Kind); d >= 0 {
				sum.May[d] = true
				for r := 0; r < nDomRules; r++ {
					if domRules[r].discharge == d {
						st[r] = true
					}
				}
				continue
			}
			if r := c.eventRule(in); r >= 0 && !st[r] {
				// A justified eoslint:ignore at the event stops exposure
				// here: the exception covers every caller, not just the
				// enclosing function's own report.
				if !sum.Exposed[r] && !c.ig.Suppressed(in.Pos()) {
					sum.Exposed[r] = true
					sum.Witness[r] = []string{eventLabel(in)}
				}
				if report != nil {
					*report = append(*report, finding{rule: r, in: in, block: b, direct: true,
						witness: []string{eventLabel(in)}})
				}
			}
			if in.Kind == ssa.KCall {
				cs := c.calleeSummary(in)
				for d := 0; d < nDischarge; d++ {
					sum.May[d] = sum.May[d] || cs.May[d]
				}
				for r := 0; r < nDomRules; r++ {
					if cs.Exposed[r] && !st[r] {
						if !sum.Exposed[r] {
							sum.Exposed[r] = true
							sum.Witness[r] = cs.Witness[r]
						}
						if report != nil {
							*report = append(*report, finding{rule: r, in: in, block: b,
								witness: cs.Witness[r]})
						}
					}
					if cs.May[domRules[r].discharge] {
						st[r] = true
					}
				}
			}
		}
	}

	c.renameFlow(f, preds, exits, sum, report)
	return sum
}

// renameFlow is the forward may-analysis of rule 5: pending renames
// union at joins and must be cleared by a directory sync before any
// success exit.
func (c *checker) renameFlow(f *ssa.Func, preds [][]*ssa.Block, exits []*ssa.Block, sum *ForceFact, report *[]finding) {
	n := len(f.Blocks)
	pendIn := make([]map[*ssa.Instr][]string, n)
	pendOut := make([]map[*ssa.Instr][]string, n)

	transfer := func(b *ssa.Block, in map[*ssa.Instr][]string) map[*ssa.Instr][]string {
		out := make(map[*ssa.Instr][]string, len(in))
		for k, v := range in {
			out[k] = v
		}
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			switch instr.Kind {
			case ssa.KRename:
				if !c.ig.Suppressed(instr.Pos()) {
					out[instr] = []string{"os.Rename"}
				}
			case ssa.KSyncDir:
				out = map[*ssa.Instr][]string{}
			case ssa.KCall:
				if cs := c.calleeSummary(instr); cs.RenameOpen {
					out[instr] = cs.RenameWitness
				}
			}
		}
		return out
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if !f.Reachable(b) {
				continue
			}
			in := make(map[*ssa.Instr][]string)
			for _, p := range preds[b.Index] {
				for k, v := range pendOut[p.Index] {
					in[k] = v
				}
			}
			out := transfer(b, in)
			if len(in) != len(pendIn[b.Index]) || len(out) != len(pendOut[b.Index]) {
				pendIn[b.Index] = in
				pendOut[b.Index] = out
				changed = true
			}
		}
	}

	reported := make(map[*ssa.Instr]bool)
	for _, b := range exits {
		pending := pendOut[b.Index]
		if len(pending) == 0 || c.errorExit(b) {
			continue
		}
		for in, witness := range pending {
			if !sum.RenameOpen {
				sum.RenameOpen = true
				sum.RenameWitness = witness
			}
			if report != nil && !reported[in] {
				reported[in] = true
				*report = append(*report, finding{rule: rRename, in: in, block: b,
					witness: witness, direct: in.Kind == ssa.KRename})
			}
		}
	}
}

// errorExit reports whether block b is a failure return: the §8.1
// rename rule exempts paths where the rename itself failed.  A return
// whose final value is an error-typed identifier ("return err") or an
// error-wrap constructor ("return fmt.Errorf(...)") is a failure path;
// a tail call to anything else ("return os.Rename(...)") can succeed
// and stays a success exit.
func (c *checker) errorExit(b *ssa.Block) bool {
	for _, node := range b.Raw.Nodes {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			continue
		}
		switch e := ret.Results[len(ret.Results)-1].(type) {
		case *ast.Ident:
			if e.Name == "nil" {
				return false
			}
			tv, ok := c.pass.TypesInfo.Types[e]
			return ok && eosutil.IsErrorType(tv.Type)
		case *ast.CallExpr:
			if fn := eosutil.Callee(c.pass.TypesInfo, e); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "fmt", "errors":
					return true
				}
			}
			return false
		}
		return false
	}
	return false
}

func eventLabel(in *ssa.Instr) string {
	if in.MutName != "" {
		return in.MutName
	}
	if in.Kind == ssa.KAbortRec {
		return "wal.Record{Type: RecAbort}"
	}
	return "event"
}

// checkRoot reports every violation in a root function.  txnRoot
// additionally activates rule 1, whose obligation starts at the
// transaction API surface.
func (c *checker) checkRoot(f *ssa.Func, txnRoot bool) {
	var findings []finding
	c.analyze(f, &findings)
	for _, fd := range findings {
		if fd.rule < nDomRules && domRules[fd.rule].txnOnly && !txnRoot {
			continue
		}
		pos := fd.in.Pos()
		related := c.evidence(f, fd)
		var msg string
		if fd.rule == rRename {
			if fd.direct {
				msg = "renamed file can vanish on crash: no disk.SyncDir of the owning directory reaches a success exit (§8.1 rename atomicity)"
			} else {
				msg = fmt.Sprintf(
					"call leaves a renamed file with no owning-directory sync on a success exit (call chain %s → %s) (§8.1 rename atomicity)",
					ssa.FuncLabel(c.pass.Pkg, f.Obj), strings.Join(fd.witness, " → "))
			}
		} else {
			rule := &domRules[fd.rule]
			if fd.direct {
				msg = fmt.Sprintf("%s %s is not dominated by %s (%s)",
					rule.evDesc, eventLabel(fd.in), rule.dischDesc, rule.contract)
			} else {
				msg = fmt.Sprintf("call can %s before %s (call chain %s → %s) (%s)",
					rule.callDesc, rule.dischDesc,
					ssa.FuncLabel(c.pass.Pkg, f.Obj), strings.Join(fd.witness, " → "),
					rule.contract)
			}
		}
		c.ig.ReportRelated(pos, related, "%s", msg)
	}
}

// evidence finds a discharging instruction in f that exists but fails
// to dominate the finding — the "force is there, but a path skips it"
// case — and returns it as a related position.
func (c *checker) evidence(f *ssa.Func, fd finding) []analysis.RelatedInformation {
	var wantKind ssa.Kind
	var what string
	if fd.rule == rRename {
		wantKind, what = ssa.KSyncDir, "directory sync here does not cover every success path"
	} else {
		switch domRules[fd.rule].discharge {
		case dWALForce:
			wantKind, what = ssa.KWALForce, "candidate WAL force here does not dominate the overwrite"
		case dDevForce:
			wantKind, what = ssa.KDevForce, "candidate device force here does not dominate the event"
		case dStamp:
			wantKind, what = ssa.KBarrierStamp, "candidate barrier stamp here does not dominate the release"
		}
	}
	for _, b := range f.Blocks {
		if !f.Reachable(b) {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Kind != wantKind {
				continue
			}
			if fd.rule == rRename || !f.Dominates(b, fd.block) {
				return []analysis.RelatedInformation{{Pos: in.Pos(), Message: what}}
			}
		}
	}
	return nil
}

// recvTypeName returns the receiver type name of decl ("" for
// functions).
func recvTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
