package bench

import (
	"fmt"
	"math/rand"
)

// Workload models one of the application classes the paper's
// introduction motivates (§1): multimedia presentation, movie editing,
// document processing, and mostly-read archives.  Each workload is a
// deterministic operation sequence driven against any system under
// test.
type Workload struct {
	Name string
	Desc string
	Run  func(o sysObj, rng *rand.Rand) error
}

// Workloads returns the standard application mix.
func Workloads() []Workload {
	return []Workload{
		{
			Name: "stream",
			Desc: "ingest 1 MB in 32 KB chunks (size unknown), then three full playback scans",
			Run: func(o sysObj, rng *rand.Rand) error {
				chunk := Pattern(1, 32<<10)
				for w := 0; w < 1<<20; w += len(chunk) {
					if err := o.AppendHint(chunk, 0); err != nil {
						return err
					}
				}
				for pass := 0; pass < 3; pass++ {
					if _, err := o.Read(0, o.Size()); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name: "video-edit",
			Desc: "2 MB clip; 50 frame-sized (24 KB) cuts and splices; one playback scan",
			Run: func(o sysObj, rng *rand.Rand) error {
				const frame = 24 << 10
				if err := o.AppendHint(Pattern(2, 2<<20), 2<<20); err != nil {
					return err
				}
				for i := 0; i < 50; i++ {
					off := int64(rng.Intn(int(o.Size()) - frame))
					if i%2 == 0 {
						if err := o.Delete(off, frame); err != nil {
							return err
						}
					} else if err := o.Insert(off, Pattern(i, frame)); err != nil {
						return err
					}
				}
				_, err := o.Read(0, o.Size())
				return err
			},
		},
		{
			Name: "document",
			Desc: "64 KB document; 200 small random record edits; 100 random 1 KB reads",
			Run: func(o sysObj, rng *rand.Rand) error {
				if err := o.AppendHint(Pattern(3, 64<<10), 64<<10); err != nil {
					return err
				}
				for i := 0; i < 200; i++ {
					off := int64(rng.Intn(int(o.Size())))
					n := 1 + rng.Intn(300)
					if i%2 == 0 {
						if err := o.Insert(off, Pattern(i, n)); err != nil {
							return err
						}
					} else {
						m := int64(n)
						if off+m > o.Size() {
							m = o.Size() - off
						}
						if m > 0 {
							if err := o.Delete(off, m); err != nil {
								return err
							}
						}
					}
				}
				for i := 0; i < 100; i++ {
					off := int64(rng.Intn(int(o.Size()) - 1024))
					if _, err := o.Read(off, 1024); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name: "archive",
			Desc: "1 MB written once with a size hint; 500 random 4 KB reads",
			Run: func(o sysObj, rng *rand.Rand) error {
				if err := o.AppendHint(Pattern(4, 1<<20), 1<<20); err != nil {
					return err
				}
				for i := 0; i < 500; i++ {
					off := int64(rng.Intn(int(o.Size()) - 4096))
					if _, err := o.Read(off, 4096); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// E16ApplicationWorkloads runs the §1 application mix end to end on
// every system and reports total simulated time — the bottom-line
// comparison a storage engine shopper would want.
func E16ApplicationWorkloads() (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "application workload mix (§1 motivation)",
		Claim:   "EOS serves both the streaming/archive workloads (Starburst's home turf) and the editing workloads (where Starburst degrades), without EXODUS's leaf-size compromise or WiSS's size cap",
		Headers: []string{"workload", "system", "sim time", "pages moved", "seeks", "final util"},
	}
	for _, wl := range Workloads() {
		for _, sys := range systems() {
			// Skip systems whose size ceiling the workload exceeds.
			if sys.maxBytes > 0 && wl.Name != "document" {
				t.AddRow(wl.Name, sys.name, "exceeds max object size", "-", "-", "-")
				continue
			}
			st, err := NewStack(3, lobDefaultConfig())
			if err != nil {
				return nil, err
			}
			o, err := sys.make(st)
			if err != nil {
				return nil, err
			}
			if err := st.ResetIO(); err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(16))
			if err := wl.Run(o, rng); err != nil {
				t.AddRow(wl.Name, sys.name, "error: "+err.Error(), "-", "-", "-")
				continue
			}
			if err := st.Pool.FlushAll(); err != nil {
				return nil, err
			}
			s := st.Vol.Stats()
			dataBytes, dataPages, indexPages, err := o.Usage()
			if err != nil {
				return nil, err
			}
			util := float64(dataBytes) / (float64(dataPages+indexPages) * benchPageSize)
			t.AddRow(wl.Name, sys.name, fmtMS(s.Micros), fmtI(s.PagesMoved()), fmtI(s.Seeks), fmtPct(util))
		}
	}
	t.Notes = append(t.Notes, "each cell is one full workload run on a fresh store; PS = 1 KB")
	for _, wl := range Workloads() {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %s", wl.Name, wl.Desc))
	}
	return t, nil
}
