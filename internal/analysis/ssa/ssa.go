// Package ssa builds the shared whole-program analysis facility of the
// eoslint v3 passes: a pruned SSA-style intermediate representation of
// every function in the package — basic blocks lifted from the
// toolchain-vendored go/cfg, a dominator tree per function, and a
// classified instruction stream (ranked-latch acquire/release, WAL
// appends and forces, device forces and directory syncs, large-object
// mutations, checkpoint meta writes, quarantine stamps, resolved call
// sites) — plus a call
// graph that resolves static calls directly and dynamic calls through
// class-hierarchy analysis (CHA) over the package and its imports, and
// a strongly-connected-component condensation in bottom-up (callees
// first) order for interprocedural summary computation.
//
// golang.org/x/tools/go/ssa is not part of the toolchain-vendored
// subset of x/tools this repository builds against (vendoring pulls
// only what go vet itself vendors), so this package implements the
// slice of it the whole-program passes need natively: it does not
// insert φ-nodes or rename every local, but it gives each pass the
// same dominance, ordering, and call-resolution queries the go/ssa +
// go/callgraph pair would.  The interprocedural passes (deadlock,
// walfirstip, leaksip) each layer their own per-function summaries —
// propagated across packages through go/analysis object facts — on top
// of this IR.
//
// Function literals are deliberately not modeled as separate functions:
// a closure may run on another goroutine (where the enclosing lock and
// logging context does not apply), so instruction extraction skips
// them, exactly as the v1/v2 intraprocedural analyzers do.  Calls
// inside a deferred statement (including inside an immediately-deferred
// literal) are marked Deferred: they run at function exit.
package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/eosdb/eos/internal/analysis/eosutil"
)

// Analyzer builds the *Program IR for a package.  It is a prerequisite
// (Requires) of the whole-program passes, not a checker: it reports
// nothing itself.
var Analyzer = &analysis.Analyzer{
	Name:       "eosssa",
	Doc:        "build the pruned-SSA IR and call graph shared by the whole-program passes (internal prerequisite)\n\nNot a checker: it feeds basic blocks, dominators, and the CHA call graph to deadlock, walfirstip, leaksip, forcedom, and racecheck.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*Program)(nil)),
}

// LockRanks returns the engine's canonical latch lattice, keyed by
// "Type.field" of the mutex field and valued by rank.  The lockorder
// analyzer seeds its intraprocedural lattice from the same table, so
// the two checks cannot drift.  Matching is by type and field name
// (not import path) so analyzertest fixtures can declare stand-in
// types.
func LockRanks() map[string]int {
	return map[string]int{
		"Store.mu":         10,
		"LockTable.mu":     15,
		"catEntry.latch":   20,
		"Txn.wmu":          30,
		"deferredAlloc.mu": 30,
		"EpochManager.mu":  33, // epoch bookkeeping; freeFn never runs under it
		"Manager.mu":       35, // buddy superdirectory latch
		"Pool.flushMu":     38, // whole-pool write-back; before any shard.mu
		"shard.mu":         40,
		"Log.forceMu":      45, // group-commit leader force; before Log.mu
		"Log.mu":           50,
		"Dispatcher.mu":    56, // async I/O close gate; held across the queue send, never I/O
		"Batch.mu":         57, // per-submitter completion state; never held across I/O
		"Volume.mu":        60,
		"FileVolume.mu":    62, // crash-shadow map of the file backend
		"Volume.accMu":     70,
		"FileVolume.accMu": 72, // file-backend accounting and fault state
	}
}

// Mutators lists the lob.Object methods that change object state —
// the mutation events of the §4.5 write-ahead rule.  Shared with the
// intraprocedural walfirst analyzer.
var Mutators = []string{
	"Append", "AppendWithHint", "Insert", "Delete", "Replace",
	"Destroy", "Truncate", "Compact",
}

// Program is the package-level IR: one Func per function declaration
// with a body, plus the call graph over them.
type Program struct {
	Pass  *analysis.Pass
	Funcs []*Func
	// ByObj maps the defining *types.Func to its IR.
	ByObj map[*types.Func]*Func
	// SCCs is the call-graph condensation in bottom-up order: every
	// function a component calls (within the package) is in the same or
	// an earlier component, so interprocedural summaries computed in
	// SCC order see their intra-package callees' summaries first.
	SCCs [][]*Func

	ranks map[string]int
	cha   *chaResolver
}

// Func is the IR of one function declaration.
type Func struct {
	Obj    *types.Func
	Decl   *ast.FuncDecl
	Blocks []*Block // parallel to the go/cfg block list
	Entry  *Block

	domOrder []*Block // reachable blocks in reverse postorder
}

// Block is one basic block: the go/cfg block it mirrors plus the
// classified instruction stream and dominator-tree position.
type Block struct {
	Index  int32
	Raw    *cfg.Block
	Instrs []Instr
	Succs  []*Block
	Idom   *Block // immediate dominator; nil for entry and unreachable blocks

	domPre, domPost int32 // dominator-tree DFS interval for Dominates
	rpo             int32 // reverse-postorder index; -1 if unreachable
}

// Kind classifies one instruction.
type Kind uint8

const (
	// KCall is a function or method call that is none of the more
	// specific kinds below.  Callees holds the resolution (empty when
	// the callee is dynamic and CHA found no candidate).
	KCall Kind = iota
	// KLock acquires a ranked engine latch (Lock or RLock on a field in
	// the LockRanks lattice).
	KLock
	// KUnlock releases a ranked engine latch.
	KUnlock
	// KWALAppend appends a write-ahead log record ((*wal.Log).Append).
	KWALAppend
	// KMutate calls a lob.Object mutator — a §4.5 mutation event.
	KMutate

	// Durability events (eoslint v4).  These are the vocabulary of the
	// forcedom crash-consistency pass: each marks a point where state
	// ordering against stable storage is established or consumed.

	// KWALForce forces the write-ahead log ((*wal.Log).Force or
	// ForceLSN): every record at or below the target LSN is durable
	// afterwards.
	KWALForce
	// KDevForce forces volume pages (Force/ForceAll/ForceAllExcept on a
	// disk Device, Volume, or FileVolume): the §8.1 data-before-metadata
	// checkpoint barrier.
	KDevForce
	// KSyncDir fsyncs a directory (disk.SyncDir), making renamed or
	// created entries durable.
	KSyncDir
	// KRename renames a file (os.Rename) — volatile until the owning
	// directory is synced.
	KRename
	// KMetaWrite writes the store header or catalog region
	// ((*Store).writeHeader / writeCatalog): the metadata half of the
	// two-phase checkpoint barrier.
	KMetaWrite
	// KAbortRec constructs a wal.Record with Type RecAbort — the abort
	// record that must not be appended before compensations are durable.
	// Instr.Lit holds the literal; Call is nil.
	KAbortRec
	// KBuddyFree returns an extent to the buddy allocator
	// ((*buddy.Manager).Free called from outside the allocator itself) —
	// the reallocation event the durability quarantine gates.
	KBuddyFree
	// KBarrierStamp reads or publishes the quarantine barrier stamp
	// (Load/Store on a field named barrierDurable).
	KBarrierStamp
)

// Instr is one classified instruction, in source order within its
// block.
type Instr struct {
	Kind Kind
	Call *ast.CallExpr
	// Lit is the composite literal of a KAbortRec instruction (the only
	// kind not rooted at a call expression); nil otherwise.
	Lit *ast.CompositeLit
	// Deferred marks calls that run at function exit (defer f(),
	// or any call inside an immediately-deferred function literal).
	Deferred bool

	// Callees is the call-graph resolution: exactly one function for a
	// static call, every CHA candidate for an interface call, empty for
	// an unresolvable dynamic call.  Filled for every instruction kind
	// (a mutator call is also an edge to the mutator's body).
	Callees []*types.Func

	// KLock/KUnlock: the lattice key ("shard.mu" owner type + field),
	// its rank, whether the acquisition is shared (RLock/RUnlock), and
	// the receiver expression text ("sh.mu") identifying the instance.
	LockKey   string
	LockRank  int
	Shared    bool
	LockToken string

	// KMutate: the "Object.Method" label for diagnostics.  Also set for
	// KMetaWrite ("Store.writeHeader") and KDevForce ("Volume.ForceAll")
	// so the forcedom pass can name the event without re-resolving.
	MutName string
}

// Pos returns the source position anchoring the instruction: the call
// expression for call-rooted kinds, the composite literal for
// KAbortRec.
func (in *Instr) Pos() token.Pos {
	if in.Call != nil {
		return in.Call.Pos()
	}
	if in.Lit != nil {
		return in.Lit.Pos()
	}
	return token.NoPos
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	pr := &Program{
		Pass:  pass,
		ByObj: make(map[*types.Func]*Func),
		ranks: LockRanks(),
		cha:   newCHAResolver(pass),
	}

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		g := cfgs.FuncDecl(decl)
		if g == nil {
			return
		}
		f := pr.buildFunc(obj, decl, g)
		pr.Funcs = append(pr.Funcs, f)
		pr.ByObj[obj] = f
	})

	pr.SCCs = pr.condense()
	return pr, nil
}

// buildFunc lifts one function: blocks, instructions, dominators.
func (pr *Program) buildFunc(obj *types.Func, decl *ast.FuncDecl, g *cfg.CFG) *Func {
	f := &Func{Obj: obj, Decl: decl}
	f.Blocks = make([]*Block, len(g.Blocks))
	for i, rb := range g.Blocks {
		f.Blocks[i] = &Block{Index: int32(i), Raw: rb, rpo: -1}
	}
	for i, rb := range g.Blocks {
		b := f.Blocks[i]
		for _, s := range rb.Succs {
			b.Succs = append(b.Succs, f.Blocks[s.Index])
		}
		for _, n := range rb.Nodes {
			pr.scanNode(n, false, &b.Instrs)
		}
	}
	if len(f.Blocks) > 0 {
		f.Entry = f.Blocks[0]
		f.computeDominators()
	}
	return f
}

// scanNode extracts instructions from one CFG node in source order.
// Function literals are skipped (they run later, possibly elsewhere)
// except an immediately-deferred literal, whose body runs at exit and
// is scanned with deferred set.
func (pr *Program) scanNode(n ast.Node, deferred bool, out *[]Instr) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// Arguments of the deferred call evaluate now; the call
			// itself (or the literal body) runs at exit.
			for _, arg := range m.Call.Args {
				pr.scanNode(arg, deferred, out)
			}
			if lit, ok := m.Call.Fun.(*ast.FuncLit); ok {
				pr.scanNode(lit.Body, true, out)
			} else {
				pr.classify(m.Call, true, out)
			}
			return false
		case *ast.CallExpr:
			// Arguments are scanned by the enclosing Inspect walk; only
			// classify the call itself here.
			pr.classify(m, deferred, out)
		case *ast.CompositeLit:
			// Abort-record literals are durability events even before
			// they reach an Append call; elements are still walked.
			pr.classifyLit(m, deferred, out)
		}
		return true
	})
}

// classifyLit appends a KAbortRec instruction when lit constructs a
// wal.Record whose Type field is RecAbort.  Matching is by package and
// type name (fixtures fake package wal) and by the constant's name: the
// engine has a single abort-record construction site, and the literal —
// not the later Append — is the event the §8.1 abort-ordering rule
// anchors on, so no value tracking is needed.
func (pr *Program) classifyLit(lit *ast.CompositeLit, deferred bool, out *[]Instr) {
	tv, ok := pr.Pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	if ownerTypeName(tv.Type) != "Record" {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "wal" {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Type" {
			continue
		}
		name := ""
		switch v := kv.Value.(type) {
		case *ast.Ident:
			name = v.Name
		case *ast.SelectorExpr:
			name = v.Sel.Name
		}
		if name == "RecAbort" {
			*out = append(*out, Instr{Kind: KAbortRec, Lit: lit, Deferred: deferred})
			return
		}
	}
}

// classify appends the instruction for one call expression.
func (pr *Program) classify(call *ast.CallExpr, deferred bool, out *[]Instr) {
	in := Instr{Kind: KCall, Call: call, Deferred: deferred}
	in.Callees = pr.cha.resolve(call)

	if key, method, token, ok := pr.lockEvent(call); ok {
		in.LockKey, in.LockRank, in.LockToken = key, pr.ranks[key], token
		switch method {
		case "Lock", "RLock":
			in.Kind = KLock
		default:
			in.Kind = KUnlock
		}
		in.Shared = method == "RLock" || method == "RUnlock"
		*out = append(*out, in)
		return
	}
	info := pr.Pass.TypesInfo
	if _, ok := eosutil.IsMethodCall(info, call, "wal", "Log", "Append"); ok {
		in.Kind = KWALAppend
		*out = append(*out, in)
		return
	}
	if m, ok := eosutil.IsMethodCallAny(info, call, "lob", "Object", Mutators...); ok {
		in.Kind = KMutate
		in.MutName = "Object." + m
		*out = append(*out, in)
		return
	}
	if kind, label, ok := pr.durabilityEvent(call); ok {
		in.Kind = kind
		in.MutName = label
		*out = append(*out, in)
		return
	}
	*out = append(*out, in)
}

// devForceTypes are the disk types whose Force methods establish the
// data-durability half of the checkpoint barrier: the Device interface
// and both of its backends.
var devForceTypes = []string{"Device", "Volume", "FileVolume"}

// durabilityEvent classifies the forcedom event vocabulary: log and
// device forces, directory syncs, renames, header/catalog writes, and
// quarantine-gated extent frees.  Matching follows the eosutil
// convention (package name + type name) so fixture stand-ins work.
func (pr *Program) durabilityEvent(call *ast.CallExpr) (Kind, string, bool) {
	info := pr.Pass.TypesInfo
	if m, ok := eosutil.IsMethodCall(info, call, "wal", "Log", "Force", "ForceLSN"); ok {
		return KWALForce, "Log." + m, true
	}
	for _, tn := range devForceTypes {
		if m, ok := eosutil.IsMethodCallAny(info, call, "disk", tn, "Force", "ForceAll", "ForceAllExcept"); ok {
			return KDevForce, tn + "." + m, true
		}
	}
	if isPkgNameFunc(info, call, "disk", "SyncDir") {
		return KSyncDir, "disk.SyncDir", true
	}
	if eosutil.IsPkgFunc(info, call, "os", "Rename") {
		return KRename, "os.Rename", true
	}
	if m, ok := eosutil.IsMethodCall(info, call, pr.Pass.Pkg.Name(), "Store", "writeHeader", "writeCatalog"); ok {
		return KMetaWrite, "Store." + m, true
	}
	// Extent reallocation: only calls from outside the allocator itself
	// are quarantine-gated events (the buddy package's own bookkeeping
	// is below the §8.1 contract).
	if pr.Pass.Pkg.Name() != "buddy" {
		if _, ok := eosutil.IsMethodCall(info, call, "buddy", "Manager", "Free"); ok {
			return KBuddyFree, "Manager.Free", true
		}
	}
	if ok := isBarrierStamp(call); ok {
		return KBarrierStamp, "barrierDurable", true
	}
	return 0, "", false
}

// isBarrierStamp matches Load/Store on a field named barrierDurable —
// the atomic stamp the durability quarantine publishes after phase two
// of a checkpoint and consults before reusing freed extents.
func isBarrierStamp(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Load" && sel.Sel.Name != "Store" {
		return false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	return ok && field.Sel.Name == "barrierDurable"
}

// isPkgNameFunc matches a package-level function by package *name*
// (unlike eosutil.IsPkgFunc, which wants the full import path) so
// fixture stand-ins for engine packages match too.
func isPkgNameFunc(info *types.Info, call *ast.CallExpr, pkgName, name string) bool {
	fn := eosutil.Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Name() == pkgName
}

// lockEvent classifies call as Lock/RLock/Unlock/RUnlock on a ranked
// mutex field (owner.field.Lock()), returning the lattice key, the
// method, and the receiver expression text.
func (pr *Program) lockEvent(call *ast.CallExpr) (key, method, token string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	fieldSel, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	selection, found := pr.Pass.TypesInfo.Selections[fieldSel]
	if !found {
		return "", "", "", false
	}
	field, isVar := selection.Obj().(*types.Var)
	if !isVar || !field.IsField() {
		return "", "", "", false
	}
	owner := ownerTypeName(selection.Recv())
	if owner == "" {
		return "", "", "", false
	}
	key = owner + "." + field.Name()
	if _, ranked := pr.ranks[key]; !ranked {
		return "", "", "", false
	}
	return key, method, types.ExprString(fieldSel), true
}

// ownerTypeName returns the name of the named type t denotes
// (unwrapping one pointer), or "".
func ownerTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// FuncLabel renders fn for call-chain diagnostics: "(*Txn).Append" for
// methods, "pkg.Restore" for package functions in other packages, a
// bare name within the same package.
func FuncLabel(from *types.Package, fn *types.Func) string {
	var b strings.Builder
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			b.WriteString("(*")
			b.WriteString(ownerTypeName(p.Elem()))
			b.WriteString(")")
		} else {
			b.WriteString(ownerTypeName(t))
		}
		b.WriteString(".")
		b.WriteString(fn.Name())
		return b.String()
	}
	if fn.Pkg() != nil && fn.Pkg() != from {
		b.WriteString(fn.Pkg().Name())
		b.WriteString(".")
	}
	b.WriteString(fn.Name())
	return b.String()
}

// RankName labels the lattice levels for diagnostics, mirroring the
// lockorder analyzer's vocabulary.
func RankName(r int) string {
	switch {
	case r < 15:
		return "manager"
	case r < 20:
		return "lock-table"
	case r < 30:
		return "object"
	case r < 40:
		return "txn"
	case r < 50:
		return "pool-shard"
	case r < 60:
		return "wal"
	default:
		return "disk"
	}
}
