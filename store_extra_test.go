package eos

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/eosdb/eos/internal/disk"
)

func TestCheckNoLeaksAcrossLifecycle(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatalf("fresh store: %v", err)
	}
	o, _ := s.Create("a", 0)
	if err := o.Append(pat(1, 60000)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatalf("after append: %v", err)
	}
	if err := o.Insert(30000, pat(2, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(1000, 20000); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatalf("after updates: %v", err)
	}
	tx, _ := s.Begin()
	if err := tx.Insert("a", 0, pat(3, 3000)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatalf("after abort: %v", err)
	}
	if err := s.Destroy("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatalf("after destroy: %v", err)
	}
}

func TestCheckNoLeaksAfterRecovery(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("r", 0)
	if err := o.Append(pat(4, 40000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	if err := tx.Insert("r", 100, pat(5, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitNoForce(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckNoLeaks(); err != nil {
		t.Fatalf("after redo recovery: %v", err)
	}
}

func TestIOErrorsPropagateWithoutPanic(t *testing.T) {
	s, vol, _ := newStore(t, Options{})
	o, _ := s.Create("e", 0)
	if err := o.Append(pat(6, 50000)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected I/O failure")

	// Fail at several depths into each operation; every call must
	// surface an error (or succeed if it needed fewer I/Os) — never
	// panic, never corrupt the in-memory model silently.
	ops := []struct {
		name string
		run  func() error
	}{
		{"read", func() error { _, err := o.Read(10000, 5000); return err }},
		{"replace", func() error { return o.Replace(10000, pat(7, 2000)) }},
		{"insert", func() error { return o.Insert(20000, pat(8, 500)) }},
		{"delete", func() error { return o.Delete(5000, 800) }},
		{"append", func() error { return o.Append(pat(9, 3000)) }},
	}
	for _, op := range ops {
		for after := int64(0); after < 4; after++ {
			vol.FailAfter(after, boom)
			err := op.run()
			vol.ClearFault()
			if err != nil && !errors.Is(err, boom) {
				t.Errorf("%s (after %d): unexpected error %v", op.name, after, err)
			}
		}
	}
	// The store may have leaked pages from interrupted operations — that
	// is what recovery's free-space rebuild repairs — but reads must
	// still work after faults clear for all content the model confirms.
	if _, err := o.Read(0, 100); err != nil {
		t.Fatalf("read after faults cleared: %v", err)
	}
}

func TestConcurrentTxnsOnDistinctObjects(t *testing.T) {
	s, _, _ := newStore(t, Options{LockTimeout: 5 * time.Second})
	const workers = 8
	for i := 0; i < workers; i++ {
		o, err := s.Create(fmt.Sprintf("obj-%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Append(pat(i, 4000)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("obj-%d", i)
			for round := 0; round < 10; round++ {
				tx, err := s.Begin()
				if err != nil {
					errs <- err
					return
				}
				if err := tx.Insert(name, int64(round*100), pat(round, 200)); err != nil {
					errs <- err
					return
				}
				if err := tx.Append(name, pat(round, 100)); err != nil {
					errs <- err
					return
				}
				if round%3 == 0 {
					if err := tx.Abort(); err != nil {
						errs <- err
						return
					}
				} else if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
	// Each object: base 4000 + committed rounds (6 of 10; rounds 0, 3,
	// 6, 9 abort) x 300 bytes.
	for i := 0; i < workers; i++ {
		o, _ := s.Open(fmt.Sprintf("obj-%d", i))
		if o.Size() != 4000+6*300 {
			t.Errorf("obj-%d size = %d, want %d", i, o.Size(), 4000+6*300)
		}
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	s, _, _ := newStore(t, Options{LockTimeout: 5 * time.Second})
	o, _ := s.Create("shared", 0)
	base := pat(10, 20000)
	if err := o.Append(base); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers under shared locks.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := s.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				data, err := tx.Read("shared", 0, 100)
				if err != nil {
					t.Error(err)
					return
				}
				if len(data) != 100 {
					t.Error("short read")
				}
				tx.Abort()
			}
		}()
	}
	// One writer alternating commits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tx, err := s.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Replace("shared", 500, pat(i, 100)); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	vol := disk.MustNewVolume(512, 64, disk.CostModel{})
	logVol := disk.MustNewVolume(512, 16, disk.CostModel{})
	// Volume too small for the requested layout.
	if _, err := Format(vol, logVol, Options{NumSpaces: 10, SpaceCapacity: 400}); err == nil {
		t.Error("oversized layout accepted")
	}
	// Defaults on a modest volume succeed.
	vol2 := disk.MustNewVolume(512, 2048, disk.CostModel{})
	s, err := Format(vol2, logVol, Options{})
	if err != nil {
		t.Fatalf("defaulted Format: %v", err)
	}
	if s.PageSize() != 512 {
		t.Errorf("page size = %d", s.PageSize())
	}
}

func TestOpenRejectsGarbageHeader(t *testing.T) {
	vol := disk.MustNewVolume(512, 2048, disk.CostModel{})
	logVol := disk.MustNewVolume(512, 64, disk.CostModel{})
	if _, err := Open(vol, logVol, Options{}); !errors.Is(err, ErrCorruptStore) {
		t.Errorf("open of unformatted volume: %v", err)
	}
}

func TestCatalogManyObjects(t *testing.T) {
	s, vol, logVol := newStore(t, Options{CatalogPages: 8})
	var names []string
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("object-%02d", i)
		o, err := s.Create(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Append(pat(i, 100*(i+1))); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.List(); len(got) != len(names) {
		t.Fatalf("recovered %d objects, want %d", len(got), len(names))
	}
	for i, name := range names {
		o, err := s2.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Read(0, o.Size())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pat(i, 100*(i+1))) {
			t.Errorf("%s content mismatch", name)
		}
	}
	if err := s2.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestLockTimeoutSurfacesAsError(t *testing.T) {
	s, _, _ := newStore(t, Options{LockTimeout: 50 * time.Millisecond})
	o, _ := s.Create("locked", 0)
	if err := o.Append(pat(11, 100)); err != nil {
		t.Fatal(err)
	}
	t1, _ := s.Begin()
	if err := t1.Replace("locked", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	t2, _ := s.Begin()
	if err := t2.Replace("locked", 0, []byte("y")); err == nil {
		t.Error("conflicting write succeeded")
	}
	t1.Commit()
	t2.Abort()
}

func TestTxnTruncate(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	o, _ := s.Create("t", 0)
	data := pat(78, 5000)
	if err := o.Append(data); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	if err := tx.Truncate("t", 2000); err != nil {
		t.Fatal(err)
	}
	if err := tx.Truncate("t", 5000); err == nil {
		t.Error("growing truncate accepted")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := o.Read(0, o.Size())
	if !bytes.Equal(got, data[:2000]) {
		t.Error("truncate content wrong")
	}

	// Truncate inside an aborted txn rolls back.
	tx2, _ := s.Begin()
	if err := tx2.Truncate("t", 0); err != nil {
		t.Fatal(err)
	}
	if sz, _ := tx2.Size("t"); sz != 0 {
		t.Errorf("size inside txn = %d", sz)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 2000 {
		t.Errorf("size after abort = %d, want 2000", o.Size())
	}
}

func TestStoreClose(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("c", 0)
	if err := o.Append(pat(79, 1000)); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	if err := tx.Append("c", pat(80, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Error("Close with live txn accepted")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything durable after Close.
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := s2.Open("c")
	if o2.Size() != 1010 {
		t.Errorf("size after close+reopen = %d", o2.Size())
	}
}
