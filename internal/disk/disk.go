// Package disk provides a simulated disk volume used as the storage
// substrate for the EOS large object manager and the baseline systems.
//
// The paper's evaluation (Biliris, ICDE 1992) reasons about storage cost
// in terms of disk seeks and page transfers: "Good sequential access means
// that the I/O rates in accessing a large object must be close to transfer
// rates", and the buddy system's headline claim is "at most one disk
// access ... regardless of the segment size".  The Volume type therefore
// accounts for exactly those quantities: it tracks every read and write,
// whether it required a head seek (the request did not continue from the
// previous physical position), how many pages moved, and the modelled
// elapsed time under a parametric cost model.
//
// Data is held in memory; the simulation is about cost accounting, not
// persistence.  Durability semantics needed by the recovery experiments
// (which writes survive a crash) are provided by CrashPoint support: a
// Volume distinguishes pages that have been "forced" (survive a simulated
// crash) from pages written but not yet forced.
//
// A Volume is safe for concurrent use, and reads proceed in parallel:
// the page array is guarded by an RWMutex (reads share, writes exclude)
// while the seek/transfer accounting sits under its own short-lived
// mutex, so concurrent multi-page transfers overlap their copies.  For
// concurrency experiments, SetLatency additionally makes every request
// sleep its modelled duration, bounded by a configurable number of
// outstanding requests — queue depth 1 models the paper's single-arm
// disk (and the fully serialized read path the original single-mutex
// design enforced), larger depths model a modern device.
package disk

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common volume errors.
var (
	// ErrOutOfRange is returned when a page access falls outside the volume.
	ErrOutOfRange = errors.New("disk: page access out of range")
	// ErrBadLength is returned when a buffer length is not a whole number
	// of pages.
	ErrBadLength = errors.New("disk: buffer length not a multiple of page size")
)

// CostModel describes the simulated device timing.  All durations are in
// microseconds so that integer arithmetic is exact and deterministic.
type CostModel struct {
	// SeekMicros is the average cost of repositioning the head, charged
	// whenever a request does not start at the page following the previous
	// request's last page.
	SeekMicros int64
	// RotationalMicros is the average rotational delay, charged together
	// with every seek.
	RotationalMicros int64
	// TransferMicrosPerPage is the time to transfer one page once the head
	// is positioned.
	TransferMicrosPerPage int64
}

// DefaultCostModel models a circa-1992 disk (the paper's SparcStation
// environment): 16 ms average seek, 8.3 ms rotational delay (3600 rpm),
// and roughly 1.7 ms to transfer a 4 KB page (~2.4 MB/s media rate).
func DefaultCostModel() CostModel {
	return CostModel{
		SeekMicros:            16000,
		RotationalMicros:      8300,
		TransferMicrosPerPage: 1700,
	}
}

// Stats accumulates I/O accounting for a Volume.  Counters are cumulative;
// use Volume.ResetStats or subtract snapshots to measure an interval.
type Stats struct {
	Reads          int64 // read requests
	Writes         int64 // write requests
	PagesRead      int64 // pages transferred by reads
	PagesWritten   int64 // pages transferred by writes
	Seeks          int64 // requests that required repositioning the head
	Micros         int64 // modelled elapsed time in microseconds
	RunWrites      int64 // vectored WriteRun requests (counted in Writes too)
	CoalescedPages int64 // pages beyond the first in each WriteRun — seeks saved by coalescing
	Syncs          int64 // durability barriers actually issued (fdatasync); 0 on the simulator
}

// Accesses returns the total number of I/O requests.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// PagesMoved returns the total number of pages transferred.
func (s Stats) PagesMoved() int64 { return s.PagesRead + s.PagesWritten }

// Sub returns the interval statistics s - prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Reads:          s.Reads - prev.Reads,
		Writes:         s.Writes - prev.Writes,
		PagesRead:      s.PagesRead - prev.PagesRead,
		PagesWritten:   s.PagesWritten - prev.PagesWritten,
		Seeks:          s.Seeks - prev.Seeks,
		Micros:         s.Micros - prev.Micros,
		RunWrites:      s.RunWrites - prev.RunWrites,
		CoalescedPages: s.CoalescedPages - prev.CoalescedPages,
		Syncs:          s.Syncs - prev.Syncs,
	}
}

// String renders the statistics compactly for experiment tables.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d pagesIn=%d pagesOut=%d seeks=%d time=%.2fms",
		s.Reads, s.Writes, s.PagesRead, s.PagesWritten, s.Seeks, float64(s.Micros)/1000)
}

// PageNum identifies a page within a volume.  The paper's allocation map
// supports segment sizes up to 2^63 pages; a signed 64-bit page number is
// more than sufficient.
type PageNum int64

// Volume is a simulated disk: a linear array of fixed-size pages with
// seek/transfer cost accounting and crash semantics.
//
// A Volume is safe for concurrent use; each request is atomic, and read
// requests overlap each other.
type Volume struct {
	mu       sync.RWMutex // guards data, durable, dirty
	pageSize int
	numPages PageNum
	data     []byte           // eos:guardedby mu -- numPages * pageSize
	durable  []byte           // eos:guardedby mu -- last forced image of every page (crash survivors)
	dirty    map[PageNum]bool // eos:guardedby mu

	// accMu guards the accounting state below.  It is always acquired
	// while holding mu (shared or exclusive) and held only for the few
	// counter updates, so concurrent multi-page reads serialize on it
	// briefly but overlap their copies.
	accMu   sync.Mutex
	model   CostModel // eos:guardedby accMu
	stats   Stats     // eos:guardedby accMu
	headPos PageNum   // eos:guardedby accMu -- page following the last transferred page; -1 unknown

	// Fault injection: when faultAfter reaches zero, every subsequent
	// request fails with faultErr until ClearFault.
	faultAfter int64 // eos:guardedby accMu
	faultErr   error // eos:guardedby accMu

	tracer func(TraceEvent)

	// Latency simulation (SetLatency): every request sleeps its modelled
	// duration; latSem bounds the number of outstanding requests.
	latOn  bool
	latSem chan struct{}
}

// NewVolume creates a volume of numPages pages of pageSize bytes each,
// using the supplied cost model.  pageSize must be positive; numPages must
// be positive.
func NewVolume(pageSize int, numPages PageNum, model CostModel) (*Volume, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("disk: invalid page size %d", pageSize)
	}
	if numPages <= 0 {
		return nil, fmt.Errorf("disk: invalid volume size %d pages", numPages)
	}
	return &Volume{
		pageSize: pageSize,
		numPages: numPages,
		data:     make([]byte, int64(numPages)*int64(pageSize)),
		durable:  make([]byte, int64(numPages)*int64(pageSize)),
		dirty:    make(map[PageNum]bool),
		model:    model,
		headPos:  -1,
	}, nil
}

// MustNewVolume is NewVolume that panics on error, for tests and examples
// with constant parameters.
func MustNewVolume(pageSize int, numPages PageNum, model CostModel) *Volume {
	v, err := NewVolume(pageSize, numPages, model)
	if err != nil {
		panic(err)
	}
	return v
}

// PageSize reports the volume's page size in bytes.
func (v *Volume) PageSize() int { return v.pageSize }

// NumPages reports the volume's capacity in pages.
func (v *Volume) NumPages() PageNum { return v.numPages }

// Stats returns a snapshot of the accumulated I/O statistics.
func (v *Volume) Stats() Stats {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	return v.stats
}

// ResetStats zeroes the statistics counters and forgets the head position
// so the next request is charged a seek.
func (v *Volume) ResetStats() {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.stats = Stats{}
	v.headPos = -1
}

// SetLatency enables or disables latency simulation.  When enabled, every
// read and write request sleeps its modelled duration (the same
// microseconds charged to Stats.Micros), and at most parallelism requests
// are outstanding at once: 1 models the single-arm 1992 disk — and the
// fully serialized transfer path a global volume mutex used to enforce —
// while higher values model a device with internal parallelism.  Must not
// be toggled while requests are in flight.
//
//eoslint:ignore racecheck -- quiescent-point setter by documented contract; no request is in flight when latOn changes
func (v *Volume) SetLatency(enabled bool, parallelism int) {
	v.latOn = enabled
	v.latSem = nil
	if enabled && parallelism > 0 {
		v.latSem = make(chan struct{}, parallelism)
	}
}

// TraceEvent describes one I/O request, emitted to the tracer if one is
// installed.  Tooling uses traces to visualize access patterns — e.g.
// confirming that a sequential object scan issues a handful of large
// contiguous requests rather than per-page seeks.
type TraceEvent struct {
	Write bool
	Start PageNum
	Pages int
	Seek  bool // the request repositioned the head
}

// SetTracer installs fn to observe every read and write; nil disables
// tracing.  The tracer is invoked synchronously with the accounting lock
// held, so it must be fast and must not call back into the volume.
func (v *Volume) SetTracer(fn func(TraceEvent)) {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.tracer = fn
}

// FailAfter arms fault injection: after n more successful requests,
// every read and write fails with err until ClearFault.  Tests use this
// to verify that I/O errors propagate cleanly through every layer.
func (v *Volume) FailAfter(n int64, err error) {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.faultAfter = n
	v.faultErr = err
}

// ClearFault disarms fault injection.
func (v *Volume) ClearFault() {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.faultErr = nil
}

// faultCheck consumes one request against the fault budget.  Caller
// holds v.accMu.
//
// eos:requires v.accMu
func (v *Volume) faultCheck() error {
	if v.faultErr == nil {
		return nil
	}
	if v.faultAfter > 0 {
		v.faultAfter--
		return nil
	}
	return v.faultErr
}

func (v *Volume) checkRange(start PageNum, n int) error {
	if n < 0 || start < 0 || PageNum(int64(start)+int64(n)) > v.numPages {
		return fmt.Errorf("%w: pages [%d,%d) of %d", ErrOutOfRange, start, int64(start)+int64(n), v.numPages)
	}
	return nil
}

// charge accounts one request and returns its modelled duration in
// microseconds.  Caller holds v.accMu.
//
// eos:requires v.accMu
func (v *Volume) charge(start PageNum, n int, write bool) int64 {
	if n == 0 {
		return 0
	}
	var micros int64
	seek := v.headPos != start
	if seek {
		v.stats.Seeks++
		micros += v.model.SeekMicros + v.model.RotationalMicros
	}
	micros += int64(n) * v.model.TransferMicrosPerPage
	v.stats.Micros += micros
	v.headPos = start + PageNum(n)
	if v.tracer != nil {
		v.tracer(TraceEvent{Write: write, Start: start, Pages: n, Seek: seek})
	}
	return micros
}

// admit blocks until the latency-mode device accepts another outstanding
// request; the returned function completes it (after sleeping the
// modelled duration recorded by the caller).
func (v *Volume) admit() func(micros int64) {
	if !v.latOn {
		return nil
	}
	if v.latSem != nil {
		v.latSem <- struct{}{}
	}
	return func(micros int64) {
		if micros > 0 {
			time.Sleep(time.Duration(micros) * time.Microsecond)
		}
		if v.latSem != nil {
			<-v.latSem
		}
	}
}

// ReadPages reads n physically contiguous pages starting at page start
// into buf, which must be exactly n*PageSize bytes.  A single multi-page
// read costs at most one seek — this is the contiguity property the EOS
// segment design exists to exploit.  Concurrent reads overlap: only the
// brief accounting update is serialized.
func (v *Volume) ReadPages(start PageNum, n int, buf []byte) error {
	if len(buf) != n*v.pageSize {
		return fmt.Errorf("%w: got %d bytes for %d pages", ErrBadLength, len(buf), n)
	}
	if err := v.checkRange(start, n); err != nil {
		return err
	}
	done := v.admit()
	v.mu.RLock()
	v.accMu.Lock()
	if err := v.faultCheck(); err != nil {
		v.accMu.Unlock()
		v.mu.RUnlock()
		if done != nil {
			done(0)
		}
		return err
	}
	v.stats.Reads++
	v.stats.PagesRead += int64(n)
	micros := v.charge(start, n, false)
	v.accMu.Unlock()
	off := int64(start) * int64(v.pageSize)
	copy(buf, v.data[off:off+int64(n)*int64(v.pageSize)])
	v.mu.RUnlock()
	if done != nil {
		done(micros)
	}
	return nil
}

// Read allocates and returns the content of n contiguous pages.
func (v *Volume) Read(start PageNum, n int) ([]byte, error) {
	buf := make([]byte, n*v.pageSize)
	if err := v.ReadPages(start, n, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WritePages writes n physically contiguous pages starting at page start.
// buf must be exactly n*PageSize bytes.  The write is volatile until the
// pages are forced (Force/ForceAll) or until Settle is called.
func (v *Volume) WritePages(start PageNum, n int, buf []byte) error {
	if len(buf) != n*v.pageSize {
		return fmt.Errorf("%w: got %d bytes for %d pages", ErrBadLength, len(buf), n)
	}
	if err := v.checkRange(start, n); err != nil {
		return err
	}
	done := v.admit()
	v.mu.Lock()
	v.accMu.Lock()
	if err := v.faultCheck(); err != nil {
		v.accMu.Unlock()
		v.mu.Unlock()
		if done != nil {
			done(0)
		}
		return err
	}
	v.stats.Writes++
	v.stats.PagesWritten += int64(n)
	micros := v.charge(start, n, true)
	v.accMu.Unlock()
	off := int64(start) * int64(v.pageSize)
	copy(v.data[off:], buf)
	for i := 0; i < n; i++ {
		v.dirty[start+PageNum(i)] = true
	}
	v.mu.Unlock()
	if done != nil {
		done(micros)
	}
	return nil
}

// WriteRun gather-writes len(pages) physically contiguous pages starting
// at page start in a single request — at most one seek, however many
// pages the run holds.  Each element must be exactly one page.  This is
// the coalescing entry point the buffer pool uses when write-back finds
// adjacent dirty pages: n single-page WritePages calls cost up to n
// seeks, one WriteRun costs one.
func (v *Volume) WriteRun(start PageNum, pages [][]byte) error {
	n := len(pages)
	for i, p := range pages {
		if len(p) != v.pageSize {
			return fmt.Errorf("%w: run page %d has %d bytes, want %d", ErrBadLength, i, len(p), v.pageSize)
		}
	}
	if err := v.checkRange(start, n); err != nil {
		return err
	}
	done := v.admit()
	v.mu.Lock()
	v.accMu.Lock()
	if err := v.faultCheck(); err != nil {
		v.accMu.Unlock()
		v.mu.Unlock()
		if done != nil {
			done(0)
		}
		return err
	}
	v.stats.Writes++
	v.stats.PagesWritten += int64(n)
	v.stats.RunWrites++
	v.stats.CoalescedPages += int64(n - 1)
	micros := v.charge(start, n, true)
	v.accMu.Unlock()
	for i, p := range pages {
		off := (int64(start) + int64(i)) * int64(v.pageSize)
		copy(v.data[off:], p)
		v.dirty[start+PageNum(i)] = true
	}
	v.mu.Unlock()
	if done != nil {
		done(micros)
	}
	return nil
}

// Force makes the current contents of n pages starting at start durable:
// they will survive a simulated crash.  Forcing already-durable pages is a
// no-op for accounting purposes (the write itself was already charged).
func (v *Volume) Force(start PageNum, n int) error {
	if err := v.checkRange(start, n); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := 0; i < n; i++ {
		p := start + PageNum(i)
		if v.dirty[p] {
			off := int64(p) * int64(v.pageSize)
			copy(v.durable[off:off+int64(v.pageSize)], v.data[off:off+int64(v.pageSize)])
			delete(v.dirty, p)
		}
	}
	return nil
}

// ForceAll makes every written page durable.  The error is always nil
// for the simulator; the signature matches Device, whose file backend
// can fail the sync.
func (v *Volume) ForceAll() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for p := range v.dirty {
		off := int64(p) * int64(v.pageSize)
		copy(v.durable[off:off+int64(v.pageSize)], v.data[off:off+int64(v.pageSize)])
	}
	v.dirty = make(map[PageNum]bool)
	return nil
}

// ForceAllExcept makes every written page durable except those in skip,
// which stay volatile.  The transaction layer uses it so that one
// transaction's commit never forces another live transaction's in-place
// writes to disk (the steal it cannot undo without that transaction's
// log records being final).
func (v *Volume) ForceAllExcept(skip map[PageNum]bool) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for p := range v.dirty {
		if skip[p] {
			continue
		}
		off := int64(p) * int64(v.pageSize)
		copy(v.durable[off:off+int64(v.pageSize)], v.data[off:off+int64(v.pageSize)])
		delete(v.dirty, p)
	}
	return nil
}

// Crash simulates a power failure: every page reverts to its last forced
// image.  Statistics and head position are reset, as a restarted system
// observes a cold device.
func (v *Volume) Crash() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	copy(v.data, v.durable)
	v.dirty = make(map[PageNum]bool)
	v.accMu.Lock()
	v.stats = Stats{}
	v.headPos = -1
	v.accMu.Unlock()
	return nil
}

// Close releases the volume.  The simulator holds no external
// resources, so Close only exists to satisfy Device.
func (v *Volume) Close() error { return nil }

// DirtyPages reports how many written pages have not been forced.
func (v *Volume) DirtyPages() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.dirty)
}
