// Package lob implements the EOS large object manager (Biliris, ICDE
// 1992, §4): general-purpose large uninterpreted byte strings stored in a
// sequence of variable-size segments of physically contiguous disk pages,
// indexed by a positional B-tree whose keys are byte counts.
//
// The manager supports the paper's full operation set — append bytes at
// the end, read or replace a byte range, insert or delete bytes at an
// arbitrary position — with costs that depend on the bytes involved in an
// operation rather than the object size.  Small updates split segments;
// the byte- and page-reshuffling rules of §4.3–§4.4 (governed by the
// segment size threshold T) bound the resulting fragmentation so that
// sequential reads stay near disk transfer rates and storage utilization
// stays near 100%.
package lob

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/eosdb/eos/internal/disk"
)

// Common large object manager errors.
var (
	// ErrOutOfBounds is returned when an offset or range falls outside
	// the object.
	ErrOutOfBounds = errors.New("lob: byte range out of bounds")
	// ErrCorruptNode is returned when an index page fails validation.
	ErrCorruptNode = errors.New("lob: corrupt index node")
	// ErrBadConfig is returned for invalid manager configuration.
	ErrBadConfig = errors.New("lob: invalid configuration")
)

// Node page layout: a 2-byte magic, 1-byte level, 1-byte pad, 2-byte entry
// count, then (cumulative count uint64, child page uint64) pairs exactly
// as in the paper's Figure 5 — each node N contains (c[i], p[i]) pairs
// where c[i]-c[i-1] is the number of bytes stored in the subtree rooted
// at p[i].
const (
	nodeMagic      = 0xE051
	nodeHeaderSize = 6
	entrySize      = 16
)

// entry is one (byte count, child pointer) pair of an index node, held in
// memory with the subtree *length* rather than the on-disk cumulative
// count, which makes splicing entry lists trivial.
type entry struct {
	bytes int64        // bytes stored below this child
	ptr   disk.PageNum // child node page, or first page of a leaf segment
}

// node is an in-memory index node.  level 1 nodes point at leaf segments;
// higher levels point at nodes one level down.  The root of an object is
// a node held in the object descriptor rather than on a page of its own
// (the paper leaves root placement to the client).
type node struct {
	level   int
	entries []entry
}

// size returns the total bytes stored below the node.
func (n *node) size() int64 {
	var total int64
	for _, e := range n.entries {
		total += e.bytes
	}
	return total
}

// maxFanout returns the entry capacity of a node page.
func maxFanout(pageSize int) int {
	return (pageSize - nodeHeaderSize) / entrySize
}

// minFanout is the B-tree occupancy floor for non-root nodes: half full.
func minFanout(pageSize int) int {
	return maxFanout(pageSize) / 2
}

// encodeNode serializes n into a page image, converting lengths to the
// on-disk cumulative counts.
func encodeNode(n *node, img []byte) error {
	if nodeHeaderSize+len(n.entries)*entrySize > len(img) {
		return fmt.Errorf("%w: %d entries exceed page", ErrCorruptNode, len(n.entries))
	}
	for i := range img {
		img[i] = 0
	}
	binary.BigEndian.PutUint16(img[0:], nodeMagic)
	img[2] = uint8(n.level)
	binary.BigEndian.PutUint16(img[4:], uint16(len(n.entries)))
	var cum int64
	off := nodeHeaderSize
	for _, e := range n.entries {
		cum += e.bytes
		binary.BigEndian.PutUint64(img[off:], uint64(cum))
		binary.BigEndian.PutUint64(img[off+8:], uint64(e.ptr))
		off += entrySize
	}
	return nil
}

// decodeNode parses a page image into a node.
func decodeNode(img []byte) (*node, error) {
	if len(img) < nodeHeaderSize {
		return nil, fmt.Errorf("%w: short page", ErrCorruptNode)
	}
	if binary.BigEndian.Uint16(img[0:]) != nodeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptNode)
	}
	level := int(img[2])
	count := int(binary.BigEndian.Uint16(img[4:]))
	if level < 1 || nodeHeaderSize+count*entrySize > len(img) {
		return nil, fmt.Errorf("%w: level %d, %d entries", ErrCorruptNode, level, count)
	}
	n := &node{level: level, entries: make([]entry, count)}
	var prev int64
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		cum := int64(binary.BigEndian.Uint64(img[off:]))
		ptr := disk.PageNum(binary.BigEndian.Uint64(img[off+8:]))
		if cum <= prev {
			return nil, fmt.Errorf("%w: non-increasing count at entry %d", ErrCorruptNode, i)
		}
		n.entries[i] = entry{bytes: cum - prev, ptr: ptr}
		prev = cum
		off += entrySize
	}
	return n, nil
}

// childIndex returns the index of the child whose subtree contains byte
// offset off — the smallest i with off < c[i], per the paper's search
// step 2 — plus the byte offset of that child's subtree.  off == size
// maps to the last child so that appends address the rightmost path.
func (n *node) childIndex(off int64) (i int, childStart int64) {
	var cum int64
	for i = 0; i < len(n.entries)-1; i++ {
		if off < cum+n.entries[i].bytes {
			return i, cum
		}
		cum += n.entries[i].bytes
	}
	return len(n.entries) - 1, cum
}

// splice replaces entries [i, j) with repl.
func (n *node) splice(i, j int, repl []entry) {
	out := make([]entry, 0, len(n.entries)-(j-i)+len(repl))
	out = append(out, n.entries[:i]...)
	out = append(out, repl...)
	out = append(out, n.entries[j:]...)
	n.entries = out
}

// pagesFor returns the number of pages a segment of b bytes occupies:
// every page full except possibly the last (§4: "There are no holes in
// each segment").
func pagesFor(b int64, pageSize int) int {
	if b <= 0 {
		return 0
	}
	return int((b + int64(pageSize) - 1) / int64(pageSize))
}
