package buddy

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

func TestReserveExactRange(t *testing.T) {
	s := newSpaceT(t, 64, 16)
	base := s.Base()
	// Reserve pages 5..11 out of the fresh space.
	if err := s.Reserve(base+5, 7); err != nil {
		t.Fatal(err)
	}
	checkT(t, s)
	free, _ := s.FreePages()
	if free != 16-7 {
		t.Errorf("free pages = %d, want 9", free)
	}
	// Reserving an allocated page fails.
	if err := s.Reserve(base+6, 1); !errors.Is(err, ErrBadRequest) {
		t.Errorf("double reserve: err = %v", err)
	}
	// The reserved range can be freed like any allocation.
	if err := s.Free(base+5, 7); err != nil {
		t.Fatal(err)
	}
	checkT(t, s)
	free, _ = s.FreePages()
	if free != 16 {
		t.Errorf("free pages = %d, want 16", free)
	}
}

func TestReserveRebuildsArbitraryLayout(t *testing.T) {
	// Recovery reformats a space and reserves the reachable runs; any
	// layout producible by Alloc must be reproducible by Reserve.
	rng := rand.New(rand.NewSource(11))
	s := newSpaceT(t, 256, 128)
	type run struct {
		p disk.PageNum
		n int
	}
	var runs []run
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(20)
		p, err := s.Alloc(n)
		if errors.Is(err, ErrNoSpace) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{p, n})
	}
	freeBefore, _ := s.FreePages()

	// Rebuild the same layout on a fresh space.
	s2 := newSpaceT(t, 256, 128)
	for _, r := range runs {
		// Translate to s2's base (identical geometry).
		if err := s2.Reserve(s2.Base()+(r.p-s.Base()), r.n); err != nil {
			t.Fatalf("Reserve(%d,%d): %v", r.p, r.n, err)
		}
	}
	checkT(t, s2)
	freeAfter, _ := s2.FreePages()
	if freeAfter != freeBefore {
		t.Errorf("rebuilt free pages = %d, want %d", freeAfter, freeBefore)
	}
	// Further allocation works on the rebuilt space.
	if _, err := s2.Alloc(4); err != nil && !errors.Is(err, ErrNoSpace) {
		t.Fatal(err)
	}
	checkT(t, s2)
}

func TestManagerReserveRouting(t *testing.T) {
	vol := disk.MustNewVolume(256, 2*(64+1)+1, disk.CostModel{})
	pool := buffer.MustNewPool(vol, 8)
	m, err := FormatVolume(pool, vol, 1, 2, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	spaces := m.Spaces()
	if err := m.Reserve(spaces[1].Base()+10, 4); err != nil {
		t.Fatal(err)
	}
	free, _ := m.FreePages()
	if free != 128-4 {
		t.Errorf("free = %d, want 124", free)
	}
	// Straddling or foreign ranges are rejected.
	if err := m.Reserve(spaces[0].Base()+62, 4); err == nil {
		t.Error("straddling reserve accepted")
	}
	if err := m.Reserve(0, 1); err == nil {
		t.Error("reserve of header page accepted")
	}
}
