package bench

import (
	"fmt"
	"math/rand"

	"github.com/eosdb/eos/internal/baseline/exodus"
	"github.com/eosdb/eos/internal/lob"
)

// E14ExodusLeafSizeTension demonstrates the §2 criticism of EXODUS: the
// fixed leaf block size must be chosen up front, and it pulls search
// time and storage utilization in opposite directions — the tension
// EOS's variable-size segments dissolve.
func E14ExodusLeafSizeTension() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "EXODUS fixed leaf size: search vs utilization (§2)",
		Claim:   "\"Large pages waste too much space at the end of partially full pages (but offer good search time), and small pages offer good storage utilization (but require doing many I/O's for reads)\"",
		Headers: []string{"system", "leaf pages", "scan seeks", "scan sim time", "utilization", "blocks/segments"},
	}
	const size = 512 << 10
	workload := func(o sysObj) error {
		// Build by appends, then scatter small inserts.
		chunk := Pattern(1, 16384)
		for w := 0; w < size; w += len(chunk) {
			if err := o.AppendHint(chunk, int64(size-w)); err != nil {
				return err
			}
		}
		rng := rand.New(rand.NewSource(14))
		for i := 0; i < 50; i++ {
			if err := o.Insert(int64(rng.Intn(int(o.Size()))), Pattern(i, 100)); err != nil {
				return err
			}
		}
		return nil
	}

	for _, leafPages := range []int{1, 2, 4, 16, 64} {
		st, err := NewStack(2, lobDefaultConfig())
		if err != nil {
			return nil, err
		}
		xo, err := exodus.New(st.Vol, st.Pool, st.Buddy, leafPages)
		if err != nil {
			return nil, err
		}
		o := sysObj(exoObj{xo})
		if err := workload(o); err != nil {
			return nil, err
		}
		if err := st.ColdIO(); err != nil {
			return nil, err
		}
		if _, err := o.Read(0, o.Size()); err != nil {
			return nil, err
		}
		scan := st.Vol.Stats()
		dataBytes, dataPages, indexPages, err := o.Usage()
		if err != nil {
			return nil, err
		}
		util := float64(dataBytes) / (float64(dataPages+indexPages) * benchPageSize)
		blocks, err := xo.BlockCount()
		if err != nil {
			return nil, err
		}
		t.AddRow("EXODUS", fmt.Sprint(leafPages), fmtI(scan.Seeks), fmtMS(scan.Micros),
			fmtPct(util), fmt.Sprint(blocks))
	}

	// EOS with the same workload: variable segments give both.
	st, err := NewStack(2, lob.Config{Threshold: 8})
	if err != nil {
		return nil, err
	}
	o := sysObj(eosObj{st.LM.NewObject(8)})
	if err := workload(o); err != nil {
		return nil, err
	}
	if err := st.ColdIO(); err != nil {
		return nil, err
	}
	if _, err := o.Read(0, o.Size()); err != nil {
		return nil, err
	}
	scan := st.Vol.Stats()
	dataBytes, dataPages, indexPages, err := o.Usage()
	if err != nil {
		return nil, err
	}
	util := float64(dataBytes) / (float64(dataPages+indexPages) * benchPageSize)
	t.AddRow("EOS (T=8)", "variable", fmtI(scan.Seeks), fmtMS(scan.Micros),
		fmtPct(util), fmt.Sprint(countSegments(o)))
	t.Notes = append(t.Notes, "512 KB object built by appends + 50 random 100-byte inserts; full cold scan")
	return t, nil
}

// E15Compaction measures the Compact maintenance operation: a heavily
// edited object regains near-pristine sequential performance, echoing
// §4.4's "for more static objects ... the larger the segment size the
// better the overall performance".
func E15Compaction() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "object compaction after heavy editing",
		Claim:   "rewriting a fragmented object into maximal contiguous segments restores transfer-rate sequential I/O",
		Headers: []string{"state", "segments", "index pages", "scan seeks", "scan sim time", "utilization"},
	}
	st, err := NewStack(4, lob.Config{Threshold: 1}) // T=1: fragment freely
	if err != nil {
		return nil, err
	}
	o := st.LM.NewObject(0)
	const size = 1 << 20
	if err := o.AppendWithHint(Pattern(1, size), size); err != nil {
		return nil, err
	}
	measure := func(label string) error {
		u, err := o.Usage()
		if err != nil {
			return err
		}
		if err := st.ColdIO(); err != nil {
			return err
		}
		if _, err := o.Read(0, o.Size()); err != nil {
			return err
		}
		s := st.Vol.Stats()
		t.AddRow(label, fmt.Sprint(u.SegmentCount), fmt.Sprint(u.IndexPages),
			fmtI(s.Seeks), fmtMS(s.Micros), fmtPct(u.Utilization(benchPageSize)))
		return nil
	}
	if err := measure("pristine"); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 400; i++ {
		off := int64(rng.Intn(int(o.Size())))
		if i%2 == 0 {
			if err := o.Insert(off, Pattern(i, 64)); err != nil {
				return nil, err
			}
		} else {
			n := int64(64)
			if off+n > o.Size() {
				n = o.Size() - off
			}
			if n > 0 {
				if err := o.Delete(off, n); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := measure("after 400 edits (T=1)"); err != nil {
		return nil, err
	}
	if err := st.ResetIO(); err != nil {
		return nil, err
	}
	if err := o.Compact(); err != nil {
		return nil, err
	}
	compactIO := st.Vol.Stats()
	if err := measure("after Compact"); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("compaction itself moved %d pages in %s (one read + one write of the object)",
			compactIO.PagesMoved(), fmtMS(compactIO.Micros)))
	return t, nil
}
