// Package guardedby_clean holds correct guarded-field usage the
// analyzer must accept without diagnostics.
package guardedby_clean

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	n    int           // eos:guardedby mu
	hits atomic.Uint64 // eos:guardedby mu
}

// lockedWrite holds the mutex across the store.
func lockedWrite(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// deferredUnlock holds the mutex to function exit.
func deferredUnlock(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 2
	return c.n
}

// atomicExempt touches the atomic field lock-free: sync/atomic types
// are hardware-ordered, the annotation documents intent only.
func atomicExempt(c *counter) uint64 {
	c.hits.Add(1)
	return c.hits.Load()
}

// eos:requires c.mu
// lockedByCaller declares the caller-holds contract and may touch the
// field directly.
func lockedByCaller(c *counter) int {
	c.n++
	return c.n
}

// callerHoldsAndCalls takes the lock and uses the helper.
func callerHoldsAndCalls(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return lockedByCaller(c)
}

type table struct {
	mu   sync.RWMutex
	rows map[string]int // eos:guardedby mu
}

// readUnderReadLock loads under the shared latch.
func readUnderReadLock(t *table, k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

// writeUnderWriteLock upgrades to the exclusive latch for the store.
func writeUnderWriteLock(t *table, k string) {
	t.mu.Lock()
	t.rows[k] = 1
	t.mu.Unlock()
}

// bothBranchesLocked locks on both arms before the join.
func bothBranchesLocked(t *table, k string, cond bool) {
	if cond {
		t.mu.Lock()
	} else {
		t.mu.Lock()
	}
	t.rows[k] = 2
	t.mu.Unlock()
}

// object's root pointer is guarded by a latch owned by the catalog
// entry above it: an external guard is inventory, not flow-checked.
type object struct {
	root *int // eos:guardedby catEntry.latch
	size int64
}

// externalGuard may touch root freely as far as this analyzer can see.
func externalGuard(o *object) *int {
	return o.root
}

// suppressedWithReason documents why a lock-free read is safe.
func suppressedWithReason(c *counter) int {
	//eoslint:ignore guardedby -- racy stats read is advisory; consistency is not required here
	return c.n
}
