package lob

import (
	"fmt"

	"github.com/eosdb/eos/internal/disk"
)

// The splice primitive is the single structural tree edit shared by
// append, insert, and delete: replace the leaf entries covering the
// entry-aligned byte range [lo, hi) with a new entry list, freeing the
// pages of interior entries and entire interior subtrees (the paper's
// first delete phase — completed "without touching a single leaf
// segment"), then rebalance on the way back up.
//
// The two boundary segments may have had their pages partially kept by
// the caller (byte/page reshuffling); skipFirst/skipLast tell splice not
// to free them.

// spliceLeafRange applies the edit to the object and renormalizes the
// root (push-down on overflow, pull-up per the paper's delete step 6).
func (o *Object) spliceLeafRange(lo, hi int64, repl []entry, skipFirst, skipLast bool) error {
	if len(o.root.entries) == 0 {
		if lo != 0 || hi != 0 {
			return fmt.Errorf("%w: splice [%d,%d) on empty object", ErrOutOfBounds, lo, hi)
		}
		o.root.entries = append(o.root.entries, repl...)
	} else {
		if err := o.m.spliceTree(o.root, lo, hi, repl, skipFirst, skipLast); err != nil {
			return err
		}
	}
	if err := o.normalizeRoot(); err != nil {
		return err
	}
	o.size = o.root.size()
	return nil
}

// normalizeRoot restores the root size bounds: push entries down into new
// nodes when the root outgrows the descriptor budget, and pull a lone
// child's pairs up into the root ("Fix Root", §4.3.2 step 6).
func (o *Object) normalizeRoot() error {
	m := o.m
	max := maxFanout(m.vol.PageSize())
	for len(o.root.entries) > m.cfg.MaxRootEntries {
		if m.cfg.AdaptiveThreshold && o.root.level == 1 {
			if err := o.m.compactLeafNode(o.root, o.threshold); err != nil {
				return err
			}
			if len(o.root.entries) <= m.cfg.MaxRootEntries {
				break
			}
		}
		parts := splitEntries(o.root.entries, max)
		parents := make([]entry, 0, len(parts))
		for _, part := range parts {
			child := &node{level: o.root.level, entries: part}
			p, err := m.writeNode(0, child)
			if err != nil {
				return err
			}
			parents = append(parents, entry{bytes: child.size(), ptr: p})
		}
		o.root = &node{level: o.root.level + 1, entries: parents}
	}
	for o.root.level > 1 && len(o.root.entries) == 1 {
		child, err := m.readNode(o.root.entries[0].ptr)
		if err != nil {
			return err
		}
		if len(child.entries) > m.cfg.MaxRootEntries {
			break
		}
		if err := m.freeNodePage(o.root.entries[0].ptr); err != nil {
			return err
		}
		o.root = child
	}
	if len(o.root.entries) == 0 {
		o.root = &node{level: 1}
	}
	return nil
}

// spliceTree edits the subtree of the in-memory node nd.  [lo, hi) is
// relative to nd's subtree and must be aligned to leaf entry boundaries.
func (m *Manager) spliceTree(nd *node, lo, hi int64, repl []entry, skipFirst, skipLast bool) error {
	if lo > hi || lo < 0 || hi > nd.size() {
		return fmt.Errorf("%w: splice [%d,%d) in subtree of %d", ErrOutOfBounds, lo, hi, nd.size())
	}
	if nd.level == 1 {
		return m.spliceLeafNode(nd, lo, hi, repl, skipFirst, skipLast)
	}

	// Locate the children covering [lo, hi).  ci is the child containing
	// lo (or starting at it); cj the child containing hi-1.  For an empty
	// range, childIndex picks the insertion child.
	ci, ciStart := nd.childIndex(lo)
	cj, cjStart := ci, ciStart
	if hi > lo {
		cj, cjStart = nd.childIndex(hi - 1)
	}

	// Free strictly interior children without touching any leaf page.
	for k := ci + 1; k < cj; k++ {
		if err := m.freeSubtree(nd.entries[k], nd.level); err != nil {
			return err
		}
	}

	var newChildren []entry
	if ci == cj {
		res, err := m.spliceIntoChild(nd.entries[ci], nd.level-1, lo-ciStart, hi-ciStart, repl, skipFirst, skipLast)
		if err != nil {
			return err
		}
		newChildren = res
	} else {
		leftEnd := ciStart + nd.entries[ci].bytes
		left, err := m.spliceIntoChild(nd.entries[ci], nd.level-1, lo-ciStart, leftEnd-ciStart, repl, skipFirst, false)
		if err != nil {
			return err
		}
		right, err := m.spliceIntoChild(nd.entries[cj], nd.level-1, 0, hi-cjStart, nil, false, skipLast)
		if err != nil {
			return err
		}
		newChildren = append(left, right...)
	}
	nd.splice(ci, cj+1, newChildren)

	// Fix underflowing boundary children ("check if a node in one of the
	// two stacks has now less than the allowed number of pairs and if so,
	// merge or rotate with a sibling", §4.3.2 step 5).  Only children
	// that came back whole (not split) can be underfull; they are tracked
	// by page pointer because a first merge can shift entry positions or
	// absorb the second candidate entirely.
	var candidates []disk.PageNum
	if len(newChildren) >= 1 {
		candidates = append(candidates, newChildren[0].ptr)
	}
	if len(newChildren) >= 2 {
		candidates = append(candidates, newChildren[len(newChildren)-1].ptr)
	}
	for _, ptr := range candidates {
		idx := -1
		for k, e := range nd.entries {
			if e.ptr == ptr {
				idx = k
				break
			}
		}
		if idx < 0 {
			continue // absorbed by an earlier merge
		}
		if err := m.fixUnderflow(nd, idx); err != nil {
			return err
		}
	}
	return nil
}

// spliceIntoChild loads a child node, applies the splice, and writes it
// back — splitting it if it overflowed, dropping it if it emptied.  It
// returns the replacement entries for the parent.
func (m *Manager) spliceIntoChild(e entry, childLevel int, lo, hi int64, repl []entry, skipFirst, skipLast bool) ([]entry, error) {
	child, err := m.readNode(e.ptr)
	if err != nil {
		return nil, err
	}
	if child.level != childLevel {
		return nil, fmt.Errorf("%w: expected level %d, found %d", ErrCorruptNode, childLevel, child.level)
	}
	if err := m.spliceTree(child, lo, hi, repl, skipFirst, skipLast); err != nil {
		return nil, err
	}
	return m.writeBackChild(e.ptr, child)
}

// writeBackChild persists a modified child node: empty children free
// their page, oversized children split into balanced parts.
func (m *Manager) writeBackChild(old disk.PageNum, child *node) ([]entry, error) {
	if len(child.entries) == 0 {
		if err := m.freeNodePage(old); err != nil {
			return nil, err
		}
		return nil, nil
	}
	max := maxFanout(m.vol.PageSize())
	if len(child.entries) > max && child.level == 1 && m.cfg.AdaptiveThreshold {
		// [Bili91a]: a leaf parent about to split first coalesces its
		// adjacent unsafe segments into single larger segments.
		if err := m.compactLeafNode(child, m.cfg.Threshold); err != nil {
			return nil, err
		}
	}
	if len(child.entries) <= max {
		p, err := m.writeNode(old, child)
		if err != nil {
			return nil, err
		}
		return []entry{{bytes: child.size(), ptr: p}}, nil
	}
	parts := splitEntries(child.entries, max)
	out := make([]entry, 0, len(parts))
	for i, part := range parts {
		nd := &node{level: child.level, entries: part}
		pg := disk.PageNum(0)
		if i == 0 {
			pg = old
		}
		p, err := m.writeNode(pg, nd)
		if err != nil {
			return nil, err
		}
		out = append(out, entry{bytes: nd.size(), ptr: p})
	}
	m.st.nodeSplits.Add(int64(len(parts) - 1))
	return out, nil
}

// splitEntries partitions entries into the fewest balanced parts of at
// most max entries each, so every part is at least half full.
func splitEntries(entries []entry, max int) [][]entry {
	nParts := (len(entries) + max - 1) / max
	base := len(entries) / nParts
	extra := len(entries) % nParts
	parts := make([][]entry, 0, nParts)
	pos := 0
	for i := 0; i < nParts; i++ {
		n := base
		if i < extra {
			n++
		}
		parts = append(parts, entries[pos:pos+n])
		pos += n
	}
	return parts
}

// spliceLeafNode applies the edit at a level-1 node: every leaf entry
// intersecting [lo, hi) must be fully covered; interior ones are freed
// (unless skip-flagged as externally handled) and repl takes their place.
func (m *Manager) spliceLeafNode(nd *node, lo, hi int64, repl []entry, skipFirst, skipLast bool) error {
	var cum int64
	i := 0
	for ; i < len(nd.entries); i++ {
		if cum >= lo {
			break
		}
		next := cum + nd.entries[i].bytes
		if next > lo {
			return fmt.Errorf("%w: splice start %d not entry-aligned", ErrCorruptNode, lo)
		}
		cum = next
	}
	if cum != lo {
		return fmt.Errorf("%w: splice start %d beyond node end %d", ErrCorruptNode, lo, cum)
	}
	j := i
	first := true
	for cum < hi {
		if j >= len(nd.entries) {
			return fmt.Errorf("%w: splice end %d beyond node end %d", ErrCorruptNode, hi, cum)
		}
		e := nd.entries[j]
		cum += e.bytes
		if cum > hi {
			return fmt.Errorf("%w: splice end %d not entry-aligned", ErrCorruptNode, hi)
		}
		last := cum == hi
		if !(first && skipFirst) && !(last && skipLast) {
			if err := m.freeSegment(e.ptr, e.bytes); err != nil {
				return err
			}
		}
		first = false
		j++
	}
	nd.splice(i, j, repl)
	return nil
}

// fixUnderflow merges or redistributes the child at idx with an adjacent
// sibling if it has fallen below the occupancy floor.
func (m *Manager) fixUnderflow(nd *node, idx int) error {
	child, err := m.readNode(nd.entries[idx].ptr)
	if err != nil {
		return err
	}
	min := minFanout(m.vol.PageSize())
	if len(child.entries) >= min || len(nd.entries) < 2 {
		return nil
	}
	sibIdx := idx + 1
	if idx > 0 {
		sibIdx = idx - 1
	}
	sib, err := m.readNode(nd.entries[sibIdx].ptr)
	if err != nil {
		return err
	}
	li, ri := idx, sibIdx
	lnode, rnode := child, sib
	if sibIdx < idx {
		li, ri = sibIdx, idx
		lnode, rnode = sib, child
	}
	merged := &node{level: lnode.level, entries: nil}
	merged.entries = append(merged.entries, lnode.entries...)
	junction := len(merged.entries)
	merged.entries = append(merged.entries, rnode.entries...)

	// A one-child node can carry an underfull child that had no sibling
	// to merge with; the merge just gave it one.  Probe the junction
	// grandchildren (tracked by pointer — a fix can shift positions)
	// before deciding the final shape.
	if merged.level > 1 {
		var probes []disk.PageNum
		if junction > 0 {
			probes = append(probes, merged.entries[junction-1].ptr)
		}
		if junction < len(merged.entries) {
			probes = append(probes, merged.entries[junction].ptr)
		}
		for _, ptr := range probes {
			for k, e := range merged.entries {
				if e.ptr == ptr {
					if err := m.fixUnderflow(merged, k); err != nil {
						return err
					}
					break
				}
			}
		}
	}

	max := maxFanout(m.vol.PageSize())
	if len(merged.entries) <= max {
		// Merge into the left node, free the right page.
		p, err := m.writeNode(nd.entries[li].ptr, merged)
		if err != nil {
			return err
		}
		if err := m.freeNodePage(nd.entries[ri].ptr); err != nil {
			return err
		}
		nd.splice(li, ri+1, []entry{{bytes: merged.size(), ptr: p}})
		m.st.nodeMerges.Add(1)
		return nil
	}
	// Redistribute evenly (rotation).
	half := len(merged.entries) / 2
	ln := &node{level: merged.level, entries: merged.entries[:half]}
	rn := &node{level: merged.level, entries: merged.entries[half:]}
	lp, err := m.writeNode(nd.entries[li].ptr, ln)
	if err != nil {
		return err
	}
	rp, err := m.writeNode(nd.entries[ri].ptr, rn)
	if err != nil {
		return err
	}
	nd.entries[li] = entry{bytes: ln.size(), ptr: lp}
	nd.entries[ri] = entry{bytes: rn.size(), ptr: rp}
	return nil
}

// compactLeafNode implements the [Bili91a] pre-split compaction: scan the
// leaf-parent and, for every run of two or more logically adjacent
// segments each smaller than T pages, allocate one segment to hold the
// whole run.
func (m *Manager) compactLeafNode(nd *node, threshold int) error {
	if nd.level != 1 || threshold <= 1 {
		return nil
	}
	ps := m.vol.PageSize()
	maxSegBytes := int64(m.alloc.MaxSegmentPages()) * int64(ps)
	var out []entry
	i := 0
	for i < len(nd.entries) {
		// Grow a run of unsafe segments whose total fits one segment.
		j := i
		var runBytes int64
		for j < len(nd.entries) &&
			pagesFor(nd.entries[j].bytes, ps) < threshold &&
			runBytes+nd.entries[j].bytes <= maxSegBytes {
			runBytes += nd.entries[j].bytes
			j++
		}
		if j-i < 2 {
			out = append(out, nd.entries[i])
			i++
			continue
		}
		// Coalesce entries [i, j) into one fresh segment.
		buf := make([]byte, 0, runBytes)
		for k := i; k < j; k++ {
			part := make([]byte, nd.entries[k].bytes)
			if err := m.readSegRange(nd.entries[k].ptr, 0, part); err != nil {
				return err
			}
			buf = append(buf, part...)
		}
		segs, err := m.allocSegments(runBytes)
		if err != nil {
			// Out of space: keep the run unmerged.
			out = append(out, nd.entries[i:j]...)
			i = j
			continue
		}
		var off int64
		for _, se := range segs {
			if err := m.writeSegment(se.ptr, buf[off:off+se.bytes]); err != nil {
				return err
			}
			off += se.bytes
		}
		for k := i; k < j; k++ {
			if err := m.freeSegment(nd.entries[k].ptr, nd.entries[k].bytes); err != nil {
				return err
			}
		}
		out = append(out, segs...)
		m.st.leafCompactions.Add(1)
		m.st.segmentsCompacted.Add(int64(j - i))
		i = j
	}
	nd.entries = out
	return nil
}
