package eos

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/eosdb/eos/internal/disk"
)

// The catalog holds every object's descriptor — id, name, threshold,
// growth state, root node, and the LSN of its last logged update.  EOS
// proper leaves descriptor placement to the client (§4: a catalog page,
// or a field of a small record to implement long fields); the Store keeps
// them on a small run of reserved pages after the header.
//
// Because the catalog spans several pages and a power cut preserves an
// arbitrary subset of outstanding page writes, an in-place rewrite could
// leave a mix of old and new pages — a catalog that parses into garbage
// descriptors, taking every object with it.  The region therefore holds
// TWO slots of CatalogPages pages each, written alternately; each write
// carries a monotonic sequence number and a CRC over the whole payload.
// Recovery parses both slots and loads the newest one whose CRC is
// intact: a torn write invalidates only the slot being written, and the
// previous image — whose index pages are protected from reuse by the
// durability quarantine until a quiescent checkpoint — takes over.
//
// Slot layout: magic u32, seq u64, payloadLen u32, crc u32 (over the
// payload), then the payload: count u32, then per entry
// id u64, nameLen u16, descLen u32, name, descriptor bytes.

const (
	catalogMagic   = 0xE05CA7A1
	catSlotHdrSize = 4 + 8 + 4 + 4
)

// catalogRegionPages is the number of pages reserved after the header:
// two slots of CatalogPages each.
func catalogRegionPages(opts Options) int { return 2 * opts.CatalogPages }

// catSlotStart returns the first page of slot k (k = 0 or 1).
func (s *Store) catSlotStart(k int) disk.PageNum {
	return disk.PageNum(1 + k*s.opts.CatalogPages)
}

// writeCatalog serializes every descriptor into the next catalog slot.
// Caller holds s.mu.
//
// eos:requires s.mu
func (s *Store) writeCatalog() error {
	names := make([]string, 0, len(s.catalog))
	for n := range s.catalog {
		names = append(names, n)
	}
	sort.Strings(names)

	payload := make([]byte, 4, 256)
	count := 0
	for _, n := range names {
		e := s.catalog[n]
		// Persist the last committed state — refreshed at every commit
		// point, so for a clean entry it IS the current state.  A
		// never-committed object is simply omitted.  Deliberately
		// latch-free: an operation stalled in allocation backpressure
		// holds its object's write latch while waiting for exactly this
		// barrier to complete, so taking latches here would deadlock.
		desc := e.loadStableDesc()
		if desc == nil {
			continue
		}
		var hdr [14]byte
		binary.BigEndian.PutUint64(hdr[0:], e.id)
		binary.BigEndian.PutUint16(hdr[8:], uint16(len(n)))
		binary.BigEndian.PutUint32(hdr[10:], uint32(len(desc)))
		payload = append(payload, hdr[:]...)
		payload = append(payload, n...)
		payload = append(payload, desc...)
		count++
	}
	binary.BigEndian.PutUint32(payload[0:], uint32(count))

	ps := s.vol.PageSize()
	if catSlotHdrSize+len(payload) > s.opts.CatalogPages*ps {
		return fmt.Errorf("%w: catalog needs %d bytes, %d pages per slot reserved",
			ErrCorruptStore, catSlotHdrSize+len(payload), s.opts.CatalogPages)
	}
	seq := s.catSeq + 1
	buf := make([]byte, catSlotHdrSize, catSlotHdrSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:], catalogMagic)
	binary.BigEndian.PutUint64(buf[4:], seq)
	binary.BigEndian.PutUint32(buf[12:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)

	start := s.catSlotStart(int(seq & 1))
	for p := 0; p < s.opts.CatalogPages; p++ {
		img, err := s.pool.FixNew(start + disk.PageNum(p))
		if err != nil {
			return err
		}
		lo := p * ps
		if lo < len(buf) {
			hi := lo + ps
			if hi > len(buf) {
				hi = len(buf)
			}
			copy(img, buf[lo:hi])
		}
		if err := s.pool.Unpin(start + disk.PageNum(p)); err != nil {
			return err
		}
	}
	s.catSeq = seq
	return nil
}

// readCatalogSlot loads and validates one slot, returning its sequence
// number and payload (nil if the slot is empty, torn, or corrupt).
func (s *Store) readCatalogSlot(k int) (uint64, []byte, error) {
	ps := s.vol.PageSize()
	start := s.catSlotStart(k)
	buf := make([]byte, 0, s.opts.CatalogPages*ps)
	for p := 0; p < s.opts.CatalogPages; p++ {
		img, err := s.pool.Fix(start + disk.PageNum(p))
		if err != nil {
			return 0, nil, err
		}
		buf = append(buf, img...)
		if err := s.pool.Unpin(start + disk.PageNum(p)); err != nil {
			return 0, nil, err
		}
	}
	if binary.BigEndian.Uint32(buf[0:]) != catalogMagic {
		return 0, nil, nil
	}
	seq := binary.BigEndian.Uint64(buf[4:])
	plen := int(binary.BigEndian.Uint32(buf[12:]))
	if plen < 4 || catSlotHdrSize+plen > len(buf) {
		return 0, nil, nil
	}
	payload := buf[catSlotHdrSize : catSlotHdrSize+plen]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(buf[16:]) {
		return 0, nil, nil
	}
	return seq, payload, nil
}

// readCatalog loads every descriptor from the newest intact catalog
// slot.  Caller holds no locks (called during Open).
func (s *Store) readCatalog() error {
	var payload []byte
	var seq uint64
	for k := 0; k < 2; k++ {
		sq, pl, err := s.readCatalogSlot(k)
		if err != nil {
			return err
		}
		if pl != nil && (payload == nil || sq > seq) {
			seq, payload = sq, pl
		}
	}
	if payload == nil {
		return fmt.Errorf("%w: no intact catalog slot", ErrCorruptStore)
	}
	s.catSeq = seq
	count := int(binary.BigEndian.Uint32(payload[0:]))
	off := 4
	for i := 0; i < count; i++ {
		if off+14 > len(payload) {
			return fmt.Errorf("%w: truncated catalog", ErrCorruptStore)
		}
		id := binary.BigEndian.Uint64(payload[off:])
		nameLen := int(binary.BigEndian.Uint16(payload[off+8:]))
		descLen := int(binary.BigEndian.Uint32(payload[off+10:]))
		off += 14
		if off+nameLen+descLen > len(payload) {
			return fmt.Errorf("%w: truncated catalog entry", ErrCorruptStore)
		}
		name := string(payload[off : off+nameLen])
		off += nameLen
		desc := append([]byte{}, payload[off:off+descLen]...)
		obj, err := s.lm.OpenDescriptor(desc)
		if err != nil {
			return fmt.Errorf("object %q: %w", name, err)
		}
		off += descLen
		e := &catEntry{id: id, name: name, obj: obj}
		e.setStableDesc(desc)
		s.catalog[name] = e
		s.byID[id] = e
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	return nil
}
