module github.com/eosdb/eos

go 1.22
