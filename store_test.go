package eos

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/eosdb/eos/internal/disk"
)

// testBackend reports which Device backend the suite runs on, selected
// by EOS_TEST_BACKEND: "sim" (the default) or "file".  CI runs the
// tier-1 suite once per backend, so every store/txn/recovery test
// exercises both the simulator and real temp-dir page files.
func testBackend(t testing.TB) string {
	switch b := os.Getenv("EOS_TEST_BACKEND"); b {
	case "", "sim":
		return "sim"
	case "file":
		return "file"
	default:
		t.Fatalf("unknown EOS_TEST_BACKEND %q (want sim or file)", b)
		return ""
	}
}

// newTestDevice builds one volume on the selected backend.  File
// volumes enable crash shadowing so Crash() keeps the simulator's
// "unforced writes are lost" semantics the recovery tests drive.
func newTestDevice(t testing.TB, pageSize int, pages disk.PageNum) disk.Device {
	t.Helper()
	if testBackend(t) == "sim" {
		return disk.MustNewVolume(pageSize, pages, disk.DefaultCostModel())
	}
	path := filepath.Join(t.TempDir(), "vol.eos")
	fv, err := disk.CreateFileVolume(path, pageSize, pages, disk.FileOptions{CrashShadow: true})
	if err != nil {
		t.Fatalf("CreateFileVolume: %v", err)
	}
	t.Cleanup(func() { _ = fv.Close() })
	return fv
}

// newStore creates a store on fresh volumes of the selected backend.
func newStore(t testing.TB, opts Options) (*Store, disk.Device, disk.Device) {
	t.Helper()
	vol := newTestDevice(t, 512, 4096)
	logVol := newTestDevice(t, 512, 1024)
	s, err := Format(vol, logVol, opts)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return s, vol, logVol
}

func pat(seed, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(seed*17 + i*3)
	}
	return out
}

func TestStoreBasicLifecycle(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	o, err := s.Create("movie", 0)
	if err != nil {
		t.Fatal(err)
	}
	data := pat(1, 50000)
	if err := o.AppendWithHint(data, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(0, o.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content mismatch")
	}
	if _, err := s.Create("movie", 0); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := s.Open("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("open missing: %v", err)
	}
	if names := s.List(); len(names) != 1 || names[0] != "movie" {
		t.Errorf("List = %v", names)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	base, _ := s.FreePages()
	if err := s.Destroy("movie"); err != nil {
		t.Fatal(err)
	}
	// Freed runs sit in the durability quarantine until a catalog
	// barrier durably stops referencing them; a quiescent checkpoint
	// drains the pipeline.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := s.FreePages()
	if after <= base {
		t.Errorf("destroy freed nothing: %d -> %d", base, after)
	}
}

func TestCheckpointAndReopen(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	data := pat(2, 30000)
	o, _ := s.Create("doc", 0)
	if err := o.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(1000, pat(3, 500)); err != nil {
		t.Fatal(err)
	}
	model := append(append(append([]byte{}, data[:1000]...), pat(3, 500)...), data[1000:]...)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	free1, _ := s.FreePages()

	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	o2, err := s2.Open("doc")
	if err != nil {
		t.Fatal(err)
	}
	got, err := o2.Read(0, o2.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Error("content lost across checkpoint+crash")
	}
	free2, _ := s2.FreePages()
	if free2 != free1 {
		t.Errorf("free pages after reopen = %d, want %d", free2, free1)
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUncheckpointedNonTxnChangesLost(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("x", 0)
	if err := o.Append(pat(4, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Non-transactional update without checkpoint: gone after a crash.
	if err := o.Append(pat(5, 1000)); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := s2.Open("x")
	if o2.Size() != 1000 {
		t.Errorf("size = %d, want 1000 (unlogged update must vanish)", o2.Size())
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnCommitDurable(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("acct", 0)
	if err := o.Append(pat(6, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("acct", 100, pat(7, 300)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Replace("acct", 0, []byte("HEADER")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	model := pat(6, 5000)
	model = append(model[:100:100], append(append([]byte{}, pat(7, 300)...), model[100:]...)...)
	copy(model[0:], "HEADER")

	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := s2.Open("acct")
	got, _ := o2.Read(0, o2.Size())
	if !bytes.Equal(got, model) {
		t.Error("committed transaction lost after crash")
	}
}

func TestTxnRedoFromLogOnly(t *testing.T) {
	// Crash between the log force and the data force: the commit record
	// is durable, the data pages are not.  Recovery must redo.
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("redo", 0)
	if err := o.Append(pat(8, 4000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("redo", 500, 1000); err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("redo", pat(9, 700)); err != nil {
		t.Fatal(err)
	}
	// Fast commit: the commit record is forced to the log, data pages
	// are not forced.
	if err := tx.CommitNoForce(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()

	model := pat(8, 4000)
	model = append(model[:500:500], model[1500:]...)
	model = append(model, pat(9, 700)...)

	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatalf("Open with redo: %v", err)
	}
	o2, err := s2.Open("redo")
	if err != nil {
		t.Fatal(err)
	}
	got, err := o2.Read(0, o2.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Error("redo did not reconstruct committed state")
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnUncommittedLostAfterCrash(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("u", 0)
	if err := o.Append(pat(10, 3000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	if err := tx.Insert("u", 0, pat(11, 500)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Replace("u", 1000, pat(12, 100)); err != nil {
		t.Fatal(err)
	}
	// Crash without commit.
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := s2.Open("u")
	got, _ := o2.Read(0, o2.Size())
	if !bytes.Equal(got, pat(10, 3000)) {
		t.Error("uncommitted work survived the crash")
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnAbortRestoresContent(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	base := pat(13, 8000)
	o, _ := s.Create("a", 0)
	if err := o.Append(base); err != nil {
		t.Fatal(err)
	}
	// Drain the retire -> quarantine pipeline before taking the
	// baseline, so both sides of the conservation comparison count a
	// fully settled free space.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	freeBefore, _ := s.FreePages()
	usageBefore, _ := o.Usage()

	tx, _ := s.Begin()
	if err := tx.Insert("a", 4000, pat(14, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("a", 0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := tx.Replace("a", 100, pat(15, 50)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("a", pat(16, 999)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	got, err := o.Read(0, o.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Error("abort did not restore content")
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	// Page conservation: free + reachable is preserved (layout may
	// differ, so compare totals).  A checkpoint first: the abort's
	// freed shadow pages ride the retire -> quarantine pipeline and
	// only rejoin the free space at the next catalog barrier.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	usageAfter, _ := o.Usage()
	freeAfter, _ := s.FreePages()
	before := freeBefore + usageBefore.SegmentPages + usageBefore.IndexPages
	after := freeAfter + usageAfter.SegmentPages + usageAfter.IndexPages
	if before != after {
		t.Errorf("page conservation broken: %d -> %d", before, after)
	}

	// The transaction is finished.
	if err := tx.Insert("a", 0, []byte{1}); !errors.Is(err, ErrTxnDone) {
		t.Errorf("reuse after abort: %v", err)
	}
}

func TestTxnAbortRestoresDestroyedObject(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	data := pat(17, 6000)
	o, _ := s.Create("phoenix", 0)
	if err := o.Append(data); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	if err := tx.Destroy("phoenix"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("phoenix"); !errors.Is(err, ErrNotFound) {
		t.Error("destroyed object still visible")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	o2, err := s.Open("phoenix")
	if err != nil {
		t.Fatalf("object not restored: %v", err)
	}
	got, _ := o2.Read(0, o2.Size())
	if !bytes.Equal(got, data) {
		t.Error("restored object has wrong content")
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnCreateAbortRemovesObject(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	free, _ := s.FreePages()
	tx, _ := s.Begin()
	if err := tx.Create("temp", 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("temp", pat(18, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("temp"); !errors.Is(err, ErrNotFound) {
		t.Error("aborted create left the object")
	}
	// Drain the retire -> quarantine pipeline before comparing.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := s.FreePages()
	if after != free {
		t.Errorf("free pages = %d, want %d", after, free)
	}
}

func TestTxnCreateCommittedSurvivesCrash(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	tx, _ := s.Begin()
	if err := tx.Create("born", 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("born", pat(19, 1500)); err != nil {
		t.Fatal(err)
	}
	// Log-only commit, then crash: recovery must redo the create and the
	// append.
	if err := tx.CommitNoForce(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := s2.Open("born")
	if err != nil {
		t.Fatalf("created object lost: %v", err)
	}
	got, _ := o.Read(0, o.Size())
	if !bytes.Equal(got, pat(19, 1500)) {
		t.Error("created object content wrong")
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	// Redo must be skipped for operations already durable (LSN guard).
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("idem", 0)
	if err := o.Append(pat(20, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	if err := tx.Insert("idem", 500, pat(21, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil { // fully durable commit
		t.Fatal(err)
	}
	// Force the log to still contain the records (Commit does not reset
	// the log), then crash: recovery sees a committed txn whose effects
	// are already durable and must not double-apply.
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := s2.Open("idem")
	if o2.Size() != 2100 {
		t.Errorf("size = %d, want 2100 (double-applied redo?)", o2.Size())
	}
	model := pat(20, 2000)
	model = append(model[:500:500], append(append([]byte{}, pat(21, 100)...), model[500:]...)...)
	got, _ := o2.Read(0, o2.Size())
	if !bytes.Equal(got, model) {
		t.Error("content mismatch after idempotent recovery")
	}
}

func TestTxnIsolationBlocksConflicts(t *testing.T) {
	s, _, _ := newStore(t, Options{LockTimeout: 100 * 1e6}) // 100ms
	o, _ := s.Create("shared", 0)
	if err := o.Append(pat(22, 1000)); err != nil {
		t.Fatal(err)
	}
	t1, _ := s.Begin()
	if err := t1.Replace("shared", 0, []byte("one")); err != nil {
		t.Fatal(err)
	}
	t2, _ := s.Begin()
	if err := t2.Replace("shared", 10, []byte("two")); err == nil {
		t.Error("conflicting write did not block")
	}
	if _, err := t2.Read("shared", 0, 10); err == nil {
		t.Error("read of X-locked object did not block")
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("shared", 0, 10); err != nil {
		t.Errorf("read after release: %v", err)
	}
	t2.Abort()
}

func TestTxnRandomWorkloadWithAborts(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	o, _ := s.Create("w", 0)
	model := pat(23, 10000)
	if err := o.Append(model); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 25; round++ {
		tx, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		work := append([]byte{}, model...)
		for op := 0; op < 4; op++ {
			switch k := rng.Intn(4); {
			case k == 0 && len(work) < 40000:
				data := pat(round*10+op, 1+rng.Intn(800))
				off := int64(rng.Intn(len(work) + 1))
				if err := tx.Insert("w", off, data); err != nil {
					t.Fatal(err)
				}
				work = append(work[:off:off], append(append([]byte{}, data...), work[off:]...)...)
			case k == 1 && len(work) > 10:
				n := int64(1 + rng.Intn(len(work)/2))
				off := int64(rng.Intn(len(work) - int(n) + 1))
				if err := tx.Delete("w", off, n); err != nil {
					t.Fatal(err)
				}
				work = append(work[:off:off], work[off+n:]...)
			case k == 2 && len(work) > 10:
				n := 1 + rng.Intn(min(len(work), 500))
				off := int64(rng.Intn(len(work) - n + 1))
				data := pat(round+op, n)
				if err := tx.Replace("w", off, data); err != nil {
					t.Fatal(err)
				}
				copy(work[off:], data)
			default:
				data := pat(round-op, 1+rng.Intn(600))
				if err := tx.Append("w", data); err != nil {
					t.Fatal(err)
				}
				work = append(work, data...)
			}
		}
		if rng.Intn(2) == 0 {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			model = work
		} else {
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
		}
		got, err := o.Read(0, o.Size())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got, model) {
			t.Fatalf("round %d: content mismatch after %s", round,
				map[bool]string{true: "commit", false: "abort"}[bytes.Equal(work, model)])
		}
		if err := s.Check(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestRecoveryAfterManyCommits(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	o, _ := s.Create("multi", 0)
	if err := o.Append(pat(30, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	model := pat(30, 2000)
	// Several committed txns, each log-only (crash loses all data
	// forces).
	for i := 0; i < 5; i++ {
		tx, _ := s.Begin()
		data := pat(31+i, 400)
		if err := tx.Append("multi", data); err != nil {
			t.Fatal(err)
		}
		if err := tx.CommitNoForce(); err != nil {
			t.Fatal(err)
		}
		model = append(model, data...)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := s2.Open("multi")
	got, _ := o2.Read(0, o2.Size())
	if !bytes.Equal(got, model) {
		t.Errorf("recovered %d bytes, want %d; content match=%v", o2.Size(), len(model), bytes.Equal(got, model))
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
