package crashtest

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"github.com/eosdb/eos/internal/disk"
)

// volModel replays one volume's trace, tracking for every page the last
// durable (forced) image and the stack of volatile versions written
// since the covering barrier.  Crash states are materialized by picking,
// per page, one of those versions (or the durable base).
type volModel struct {
	ps       int
	numPages int
	base     [][]byte // durable page images; nil = all-zero page
	// pending holds the volatile versions per page, oldest first.  Each
	// slice element aliases the immutable Event data.
	pending map[disk.PageNum][][]byte
}

func newVolModel(ps int, numPages disk.PageNum) *volModel {
	return &volModel{
		ps:       ps,
		numPages: int(numPages),
		base:     make([][]byte, numPages),
		pending:  make(map[disk.PageNum][][]byte),
	}
}

// apply replays one event into the model.
func (m *volModel) apply(ev Event) {
	switch ev.Kind {
	case KindWrite, KindWriteRun:
		for i := 0; i < ev.N; i++ {
			p := ev.Start + disk.PageNum(i)
			m.pending[p] = append(m.pending[p], ev.Data[i*m.ps:(i+1)*m.ps])
		}
	case KindForce:
		for i := 0; i < ev.N; i++ {
			m.promote(ev.Start + disk.PageNum(i))
		}
	case KindForceAll:
		for p := range m.pending {
			m.promote(p)
		}
	case KindForceAllExcept:
		for p := range m.pending {
			if !ev.Skip[p] {
				m.promote(p)
			}
		}
	}
}

// promote makes page p's newest volatile version durable.
func (m *volModel) promote(p disk.PageNum) {
	vs := m.pending[p]
	if len(vs) == 0 {
		return
	}
	m.base[p] = vs[len(vs)-1]
	delete(m.pending, p)
}

// chooser selects, for one page, which version survives the power cut:
// -1 keeps the durable base, k >= 0 keeps pending version k.
type chooser func(p disk.PageNum, versions int) int

// chooseNewest models the clean prefix: every outstanding write made it.
func chooseNewest(_ disk.PageNum, versions int) int { return versions - 1 }

// chooseBase models total loss: no unforced write made it.
func chooseBase(_ disk.PageNum, _ int) int { return -1 }

// chooseRand picks per page uniformly among base and every pending
// version — the arbitrary subset/reorder outcome of a power cut.
func chooseRand(rng *rand.Rand) chooser {
	return func(_ disk.PageNum, versions int) int {
		return rng.Intn(versions+1) - 1
	}
}

// resolve returns the page images the chosen crash state contains, page
// by page (nil = zero page).  The result aliases model/event memory and
// is only valid until the next apply; hash or copy it first.
func (m *volModel) resolve(choose chooser, scratch [][]byte) [][]byte {
	if cap(scratch) < m.numPages {
		scratch = make([][]byte, m.numPages)
	}
	scratch = scratch[:m.numPages]
	for i := range scratch {
		scratch[i] = m.base[i]
	}
	// Iterate pending pages in sorted order: a stateful chooser (the
	// subset sampler consumes an rng stream) must see pages in a
	// deterministic sequence, or map iteration order would make the
	// sampled states — and therefore the whole sweep — vary run to run.
	pages := make([]disk.PageNum, 0, len(m.pending))
	for p := range m.pending {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		vs := m.pending[p]
		if k := choose(p, len(vs)); k >= 0 {
			scratch[int(p)] = vs[k]
		}
	}
	return scratch
}

// materialize flattens resolved pages into one contiguous image.
func materialize(pages [][]byte, ps int) []byte {
	img := make([]byte, len(pages)*ps)
	for i, p := range pages {
		if p != nil {
			copy(img[i*ps:], p)
		}
	}
	return img
}

var zeroPage [4096]byte

// hashPages fingerprints a resolved page set without materializing it.
func hashPages(h *stateHash, pages [][]byte, ps int) {
	for _, p := range pages {
		if p == nil {
			p = zeroPage[:ps]
		}
		h.write(p)
	}
}

// stateHash accumulates an FNV-64a fingerprint of a crash state (both
// volumes' full images) for deduplication.
type stateHash struct{ h uint64 }

func newStateHash() *stateHash { return &stateHash{h: 1469598103934665603} }

func (s *stateHash) write(b []byte) {
	h := s.h
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	s.h = h
}

func (s *stateHash) sum() uint64 { return s.h }

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
