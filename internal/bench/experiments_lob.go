package bench

import (
	"fmt"
	"math/rand"

	"github.com/eosdb/eos/internal/lob"
)

func lobDefaultConfig() lob.Config {
	return lob.Config{Threshold: 8}
}

// E4SearchCost reproduces the §4.2 worked example: reading 320 bytes from
// byte 1470 of a 1820-byte object (PS = 100).  On the multi-segment
// Figure 5.c object the read costs 3 seeks and 6 page transfers (one
// index node, four pages of one segment, one page of the next); on the
// single-segment Figure 5.a object, 1 seek and the data pages.
func E4SearchCost() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "search cost worked example (§4.2, Fig 5)",
		Claim:   "Fig 5.c read: 3 seeks + 6 transfers (incl. index, excl. root); Fig 5.a: 1 seek + contiguous transfers",
		Headers: []string{"object", "segments", "height", "seeks", "page transfers", "sim time"},
	}
	// Figure 5.c-like object: segments of 520, 500, 280, 430, 90 bytes
	// built with explicit growth hints (PS = 100).
	st, err := NewStackGeometry(100, 4, 256, lob.Config{Threshold: 1, MaxRootEntries: 2}, true)
	if err != nil {
		return nil, err
	}
	o := st.LM.NewObject(1)
	for _, seg := range []struct{ pages, bytes int }{
		{6, 520}, {5, 500}, {3, 280}, {5, 430}, {1, 90},
	} {
		o.SetGrowthHint(seg.pages)
		if err := o.Append(Pattern(seg.bytes, seg.bytes)); err != nil {
			return nil, err
		}
	}
	u, err := o.Usage()
	if err != nil {
		return nil, err
	}
	if err := st.ColdIO(); err != nil {
		return nil, err
	}
	if _, err := o.Read(1470, 320); err != nil {
		return nil, err
	}
	s := st.Vol.Stats()
	t.AddRow("Fig 5.c (5 segments)", fmt.Sprint(u.SegmentCount), fmt.Sprint(u.TreeHeight),
		fmtI(s.Seeks), fmtI(s.PagesRead), fmtMS(s.Micros))

	// Figure 5.a: one 19-page segment, root points straight at it.
	st2, err := NewStackGeometry(100, 4, 256, lob.Config{Threshold: 1}, true)
	if err != nil {
		return nil, err
	}
	o2 := st2.LM.NewObject(1)
	if err := o2.AppendWithHint(Pattern(5, 1820), 1820); err != nil {
		return nil, err
	}
	u2, _ := o2.Usage()
	if err := st2.ColdIO(); err != nil {
		return nil, err
	}
	if _, err := o2.Read(1470, 320); err != nil {
		return nil, err
	}
	s2 := st2.Vol.Stats()
	t.AddRow("Fig 5.a (1 segment)", fmt.Sprint(u2.SegmentCount), fmt.Sprint(u2.TreeHeight),
		fmtI(s2.Seeks), fmtI(s2.PagesRead), fmtMS(s2.Micros))
	return t, nil
}

// buildUpdatedObject creates a 1 MB object and applies mixed small
// inserts and deletes uniformly across it.
func buildUpdatedObject(st *Stack, threshold, updates, opBytes int, seed int64) (*lob.Object, error) {
	o := st.LM.NewObject(threshold)
	const size = 1 << 20
	if err := o.AppendWithHint(Pattern(3, size), size); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < updates; i++ {
		off := int64(rng.Intn(int(o.Size())))
		if i%2 == 0 {
			if err := o.Insert(off, Pattern(i, opBytes)); err != nil {
				return nil, err
			}
		} else {
			n := int64(opBytes)
			if off+n > o.Size() {
				n = o.Size() - off
			}
			if n > 0 {
				if err := o.Delete(off, n); err != nil {
					return nil, err
				}
			}
		}
	}
	return o, nil
}

// E5UtilizationVsT reproduces the §4.4 utilization analysis: larger
// thresholds push per-segment utilization toward 1 - 1/2T (87%, 97%,
// 99% for T = 4, 16, 64) and reduce index overhead.
func E5UtilizationVsT() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "storage utilization vs threshold T (§4.4)",
		Claim:   "\"for segments of size T, the utilization per segment will be on the average 1-1/2T. For T=4, 16 and 64, this evaluates to 87%, 97%, and 99%\"",
		Headers: []string{"T", "theory 1-1/2T", "measured util", "segments", "index pages", "height", "wasted KB"},
	}
	for _, T := range []int{1, 4, 16, 64} {
		st, err := NewStack(2, lob.Config{Threshold: T})
		if err != nil {
			return nil, err
		}
		o, err := buildUpdatedObject(st, T, 300, 64, int64(T))
		if err != nil {
			return nil, err
		}
		u, err := o.Usage()
		if err != nil {
			return nil, err
		}
		theory := 1 - 1/(2*float64(T))
		t.AddRow(fmt.Sprint(T), fmtPct(theory), fmtPct(u.Utilization(benchPageSize)),
			fmt.Sprint(u.SegmentCount), fmt.Sprint(u.IndexPages), fmt.Sprint(u.TreeHeight),
			fmt.Sprintf("%.1f", float64(u.WastedBytes)/1024))
	}
	t.Notes = append(t.Notes,
		"1 MB object, 300 random 64-byte inserts/deletes; measured utilization includes index pages",
		"the paper's formula is per-segment for T-page segments; large surviving segments push measured utilization higher")
	return t, nil
}

// E6SeqReadAfterUpdates measures clustering preservation: sequential
// read seeks after an update storm, by threshold.
func E6SeqReadAfterUpdates() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "sequential read after random updates vs T (§4.4)",
		Claim:   "without the threshold, updates erode contiguity until \"leaf segments will be just 1-page long\" and every page touch seeks; larger T keeps I/O rates near transfer rates",
		Headers: []string{"T", "updates", "segments", "seeks (full scan)", "pages read", "sim time", "MB/s (modelled)"},
	}
	for _, T := range []int{1, 4, 16, 64} {
		for _, updates := range []int{0, 300} {
			st, err := NewStack(2, lob.Config{Threshold: T})
			if err != nil {
				return nil, err
			}
			o, err := buildUpdatedObject(st, T, updates, 64, 7)
			if err != nil {
				return nil, err
			}
			u, _ := o.Usage()
			if err := st.ColdIO(); err != nil {
				return nil, err
			}
			if _, err := o.Read(0, o.Size()); err != nil {
				return nil, err
			}
			s := st.Vol.Stats()
			mb := float64(o.Size()) / (1 << 20)
			mbps := mb / (float64(s.Micros) / 1e6)
			t.AddRow(fmt.Sprint(T), fmt.Sprint(updates), fmt.Sprint(u.SegmentCount),
				fmtI(s.Seeks), fmtI(s.PagesRead), fmtMS(s.Micros), fmtF(mbps))
		}
	}
	return t, nil
}

// E10AdaptiveT ablates the [Bili91a] adaptive threshold against a static
// one under a heavy insert storm.
func E10AdaptiveT() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "adaptive threshold ablation ([Bili91a], §4.4)",
		Claim:   "\"the closer we are to splitting an index, the higher the value of T should become\"; a full parent coalesces its unsafe adjacent segments instead of splitting",
		Headers: []string{"mode", "segments", "index pages", "height", "compactions", "scan seeks", "sim scan time"},
	}
	for _, adaptive := range []bool{false, true} {
		st, err := NewStack(3, lob.Config{Threshold: 4, AdaptiveThreshold: adaptive})
		if err != nil {
			return nil, err
		}
		o, err := buildUpdatedObject(st, 4, 600, 48, 13)
		if err != nil {
			return nil, err
		}
		u, _ := o.Usage()
		if err := st.ColdIO(); err != nil {
			return nil, err
		}
		if _, err := o.Read(0, o.Size()); err != nil {
			return nil, err
		}
		s := st.Vol.Stats()
		mode := "static T=4"
		if adaptive {
			mode = "adaptive T"
		}
		st8 := st.LM.Stats()
		t.AddRow(mode, fmt.Sprint(u.SegmentCount), fmt.Sprint(u.IndexPages), fmt.Sprint(u.TreeHeight),
			fmtI(st8.LeafCompactions), fmtI(s.Seeks), fmtMS(s.Micros))
	}
	return t, nil
}

// E11AppendGrowth contrasts the §4.1 growth policies: a known final size
// allocates one right-sized segment; an unknown size doubles and trims.
func E11AppendGrowth() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "append growth policies (§4.1, Fig 5.a-b)",
		Claim:   "known size: one segment just large enough; unknown: segments double until the maximum, the last is trimmed",
		Headers: []string{"policy", "segments", "data pages", "utilization", "create seeks", "create writes", "sim time"},
	}
	const size = 1 << 20
	chunk := Pattern(9, 4096)

	type policy struct {
		name string
		run  func(o *lob.Object) error
	}
	policies := []policy{
		{"known size (hint)", func(o *lob.Object) error {
			a := o.OpenAppender(size)
			for w := 0; w < size; w += len(chunk) {
				if _, err := a.Write(chunk); err != nil {
					return err
				}
			}
			return a.Close()
		}},
		{"unknown size (doubling)", func(o *lob.Object) error {
			a := o.OpenAppender(0)
			for w := 0; w < size; w += len(chunk) {
				if _, err := a.Write(chunk); err != nil {
					return err
				}
			}
			return a.Close()
		}},
		{"unknown, trim every call", func(o *lob.Object) error {
			for w := 0; w < size; w += len(chunk) {
				if err := o.Append(chunk); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	for _, p := range policies {
		st, err := NewStack(2, lobDefaultConfig())
		if err != nil {
			return nil, err
		}
		o := st.LM.NewObject(0)
		if err := st.ResetIO(); err != nil {
			return nil, err
		}
		if err := p.run(o); err != nil {
			return nil, err
		}
		if err := st.Pool.FlushAll(); err != nil {
			return nil, err
		}
		s := st.Vol.Stats()
		u, _ := o.Usage()
		t.AddRow(p.name, fmt.Sprint(u.SegmentCount), fmt.Sprint(u.SegmentPages),
			fmtPct(u.Utilization(benchPageSize)), fmtI(s.Seeks), fmtI(s.PagesWritten), fmtMS(s.Micros))
	}
	t.Notes = append(t.Notes, "1 MB appended in 4 KB chunks; PS = 1 KB, max segment 2 MB")
	return t, nil
}
