package ssa_test

import (
	"testing"

	"golang.org/x/tools/go/analysis"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

// TestProgramIR builds the IR for the eosssa fixture and asserts the
// structural properties the whole-program passes rely on: dominator
// relations across a diamond, instruction classification, call
// resolution (static and CHA), and bottom-up SCC order.
func TestProgramIR(t *testing.T) {
	probe := &analysis.Analyzer{
		Name:     "ssaprobe",
		Doc:      "assert over the ssa Program built for the fixture",
		Requires: []*analysis.Analyzer{ssa.Analyzer},
		Run: func(pass *analysis.Pass) (interface{}, error) {
			pr := pass.ResultOf[ssa.Analyzer].(*ssa.Program)
			byName := make(map[string]*ssa.Func)
			for _, f := range pr.Funcs {
				byName[f.Obj.Name()] = f
			}
			for _, name := range []string{"leaf", "mid", "top", "pingA", "pingB", "callAlloc"} {
				if byName[name] == nil {
					t.Fatalf("Program is missing func %s", name)
				}
			}

			top := byName["top"]
			var lockB, unlockB, appendB, mutateB, midCallB, leafCallB *ssa.Block
			for _, b := range top.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch in.Kind {
					case ssa.KLock:
						lockB = b
						if in.LockKey != "Log.mu" {
							t.Errorf("lock key = %q, want Log.mu", in.LockKey)
						}
					case ssa.KUnlock:
						unlockB = b
					case ssa.KWALAppend:
						appendB = b
					case ssa.KMutate:
						mutateB = b
						if in.MutName != "Object.Append" {
							t.Errorf("mutator = %q, want Object.Append", in.MutName)
						}
					case ssa.KCall:
						for _, callee := range in.Callees {
							switch callee.Name() {
							case "mid":
								midCallB = b
							case "leaf":
								leafCallB = b
							}
						}
					}
				}
			}
			if lockB == nil || unlockB == nil || appendB == nil || mutateB == nil {
				t.Fatalf("top is missing classified instructions: lock=%v unlock=%v append=%v mutate=%v",
					lockB != nil, unlockB != nil, appendB != nil, mutateB != nil)
			}
			if midCallB == nil || leafCallB == nil {
				t.Fatalf("top is missing resolved branch calls")
			}
			if lockB != top.Entry {
				t.Errorf("lock is not in the entry block")
			}
			for _, b := range []*ssa.Block{unlockB, appendB, mutateB, midCallB, leafCallB} {
				if !top.Dominates(top.Entry, b) {
					t.Errorf("entry does not dominate block %d", b.Index)
				}
			}
			if top.Dominates(midCallB, appendB) {
				t.Errorf("branch block (mid call) must not dominate the join (append)")
			}
			if top.Dominates(leafCallB, appendB) {
				t.Errorf("branch block (leaf call) must not dominate the join (append)")
			}
			if !top.Dominates(appendB, mutateB) && appendB != mutateB {
				t.Errorf("append must dominate the mutation")
			}

			// SCC condensation: callees first, mutual recursion together.
			sccIndex := make(map[string]int)
			for i, scc := range pr.SCCs {
				for _, f := range scc {
					sccIndex[f.Obj.Name()] = i
				}
			}
			if !(sccIndex["leaf"] < sccIndex["mid"] && sccIndex["mid"] < sccIndex["top"]) {
				t.Errorf("SCC order is not bottom-up: leaf=%d mid=%d top=%d",
					sccIndex["leaf"], sccIndex["mid"], sccIndex["top"])
			}
			if sccIndex["pingA"] != sccIndex["pingB"] {
				t.Errorf("mutually recursive pingA/pingB are in different SCCs")
			}

			// Durability-event classification (eoslint v4): the
			// durability fixture function holds exactly one instruction
			// of each new kind, except the two meta writes.
			dur := byName["durability"]
			if dur == nil {
				t.Fatalf("Program is missing func durability")
			}
			counts := make(map[ssa.Kind]int)
			labels := make(map[ssa.Kind][]string)
			for _, b := range dur.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					counts[in.Kind]++
					labels[in.Kind] = append(labels[in.Kind], in.MutName)
				}
			}
			want := map[ssa.Kind]int{
				ssa.KWALForce:     2, // Force + ForceLSN
				ssa.KDevForce:     2, // FileVolume.ForceAll + Device.Force
				ssa.KSyncDir:      1,
				ssa.KRename:       1,
				ssa.KMetaWrite:    2, // writeHeader + writeCatalog
				ssa.KBuddyFree:    1,
				ssa.KBarrierStamp: 2, // Store + Load
				ssa.KAbortRec:     1, // RecCommit literal stays unclassified
				ssa.KWALAppend:    1,
			}
			for k, n := range want {
				if counts[k] != n {
					t.Errorf("durability: kind %d count = %d (labels %v), want %d",
						k, counts[k], labels[k], n)
				}
			}
			for _, lbl := range []string{"Log.Force", "Log.ForceLSN", "FileVolume.ForceAll",
				"Device.Force", "Store.writeHeader", "Store.writeCatalog", "Manager.Free"} {
				found := false
				for _, ls := range labels {
					for _, l := range ls {
						if l == lbl {
							found = true
						}
					}
				}
				if !found {
					t.Errorf("durability: no instruction labeled %q", lbl)
				}
			}

			// CHA: the interface call resolves to the fixture's concrete
			// implementation.
			found := false
			for _, b := range byName["callAlloc"].Blocks {
				for i := range b.Instrs {
					for _, callee := range b.Instrs[i].Callees {
						if callee.Name() == "Alloc" {
							found = true
						}
					}
				}
			}
			if !found {
				t.Errorf("CHA did not resolve the lob.Allocator.Alloc call to fakeAlloc.Alloc")
			}
			return nil, nil
		},
	}
	analyzertest.Run(t, "../testdata", probe, "eosssa")
}
