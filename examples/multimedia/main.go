// Multimedia: the paper's motivating workload — a movie stored as one
// large object, played back frame by frame in real time, then edited:
// "movie spots may be edited to remove or add frames" (§1).
//
// The example stores a 24 fps clip of fixed-size frames, measures the
// playback I/O rate before and after editing, and shows how the segment
// size threshold keeps edits from destroying physical contiguity.
package main

import (
	"fmt"
	"log"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

const (
	frameBytes = 36 * 1024 // one 36 KB frame (e.g. compressed 640x480)
	fps        = 24
	seconds    = 20
	numFrames  = fps * seconds
)

func frame(i int) []byte {
	f := make([]byte, frameBytes)
	for j := range f {
		f[j] = byte(i + j)
	}
	return f
}

func playback(vol *disk.Volume, movie *eos.Object, label string) {
	vol.ResetStats()
	for i := int64(0); i < movie.Size()/frameBytes; i++ {
		if _, err := movie.Read(i*frameBytes, frameBytes); err != nil {
			log.Fatal(err)
		}
	}
	s := vol.Stats()
	frames := movie.Size() / frameBytes
	// Real-time playback requires each frame to arrive within 1/fps s.
	perFrameUs := s.Micros / frames
	verdict := "real-time OK"
	if perFrameUs > int64(1e6)/fps {
		verdict = "TOO SLOW for real time"
	}
	fmt.Printf("%-28s %4d frames, %5d seeks, %6d pages, %6.2fms/frame (%s)\n",
		label, frames, s.Seeks, s.PagesRead, float64(perFrameUs)/1000, verdict)
}

func main() {
	vol := disk.MustNewVolume(4096, 24576, disk.DefaultCostModel()) // 96 MB
	logVol := disk.MustNewVolume(4096, 1024, disk.DefaultCostModel())
	// T = 16 pages: larger than one frame, so edits keep frames clustered.
	store, err := eos.Format(vol, logVol, eos.Options{Threshold: 16})
	if err != nil {
		log.Fatal(err)
	}
	movie, err := store.Create("clip.mjpeg", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Ingest the clip as a stream of frames (size unknown up front: the
	// doubling growth policy of §4.1 applies, trimmed at the end).
	w := movie.OpenAppender(0)
	for i := 0; i < numFrames; i++ {
		if _, err := w.Write(frame(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	u, _ := movie.Usage()
	fmt.Printf("ingested %d s clip: %d MB in %d segments, utilization %.1f%%\n",
		seconds, movie.Size()>>20, u.SegmentCount, u.Utilization(store.PageSize())*100)

	playback(vol, movie, "playback (pristine):")

	// Editing: cut a 2-second scene from the middle and splice a
	// 1-second title card into the front third.
	cutStart := int64(8*fps) * frameBytes
	if err := movie.Delete(cutStart, int64(2*fps)*frameBytes); err != nil {
		log.Fatal(err)
	}
	title := make([]byte, fps*frameBytes)
	if err := movie.Insert(int64(5*fps)*frameBytes, title); err != nil {
		log.Fatal(err)
	}
	u, _ = movie.Usage()
	fmt.Printf("after edits: %d segments, utilization %.1f%%\n",
		u.SegmentCount, u.Utilization(store.PageSize())*100)

	playback(vol, movie, "playback (after edits):")

	// Frame-accurate random seeks: jump around the clip.
	vol.ResetStats()
	for _, sec := range []int{17, 2, 11, 6, 14} {
		off := int64(sec*fps) * frameBytes
		if _, err := movie.Read(off, frameBytes); err != nil {
			log.Fatal(err)
		}
	}
	s := vol.Stats()
	fmt.Printf("5 random frame seeks: %d seeks, %d pages, %.2fms total\n",
		s.Seeks, s.PagesRead, float64(s.Micros)/1000)

	if err := store.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("store check: OK")
}
