// Package exodus implements the EXODUS large object storage scheme
// (Carey, DeWitt, Richardson & Shekita, VLDB 1986) as a comparison
// baseline for EOS.
//
// Large objects live on fixed-size leaf data blocks indexed by a
// B-tree-like structure whose keys are byte counts — the structure EOS
// §4 adopts, but with fixed rather than variable-size leaves.  Clients
// can set the leaf block size (in pages) per file; that one knob trades
// search time against storage utilization, the tension §2 of the EOS
// paper highlights: large blocks waste space at partially full leaves,
// small blocks cost many I/Os per read.
//
// Leaf blocks are kept between half and completely full, B-tree style,
// and are updated in place.
package exodus

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
)

// Errors returned by the EXODUS baseline.
var (
	// ErrOutOfBounds is returned for ranges outside the object.
	ErrOutOfBounds = errors.New("exodus: byte range out of bounds")
	// ErrCorrupt is returned when an index page fails validation.
	ErrCorrupt = errors.New("exodus: corrupt index node")
)

const (
	nodeMagic      = 0xE30D
	nodeHeaderSize = 6
	entrySize      = 16
)

type entry struct {
	bytes int64
	ptr   disk.PageNum
}

type node struct {
	level   int // 1 = children are leaf blocks
	entries []entry
}

func (n *node) size() int64 {
	var t int64
	for _, e := range n.entries {
		t += e.bytes
	}
	return t
}

func (n *node) childIndex(off int64) (int, int64) {
	var cum int64
	for i := 0; i < len(n.entries)-1; i++ {
		if off < cum+n.entries[i].bytes {
			return i, cum
		}
		cum += n.entries[i].bytes
	}
	return len(n.entries) - 1, cum
}

// Object is one EXODUS large object.
type Object struct {
	vol       disk.Device
	pool      *buffer.Pool
	alloc     lob.Allocator
	leafPages int // fixed leaf block size
	root      *node
	size      int64
}

// New creates an empty object with the given leaf block size in pages.
func New(vol disk.Device, pool *buffer.Pool, alloc lob.Allocator, leafPages int) (*Object, error) {
	if leafPages < 1 {
		return nil, fmt.Errorf("exodus: invalid leaf block size %d", leafPages)
	}
	if (vol.PageSize()-nodeHeaderSize)/entrySize < 4 {
		return nil, fmt.Errorf("exodus: page size %d too small", vol.PageSize())
	}
	return &Object{vol: vol, pool: pool, alloc: alloc, leafPages: leafPages, root: &node{level: 1}}, nil
}

// Size returns the object length in bytes.
func (o *Object) Size() int64 { return o.size }

// LeafPages reports the fixed leaf block size.
func (o *Object) LeafPages() int { return o.leafPages }

func (o *Object) leafCap() int64 { return int64(o.leafPages) * int64(o.vol.PageSize()) }

func (o *Object) maxFanout() int { return (o.vol.PageSize() - nodeHeaderSize) / entrySize }
func (o *Object) minFanout() int { return o.maxFanout() / 2 }

func (o *Object) checkRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > o.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, off, off+n, o.size)
	}
	return nil
}

// ---- node I/O ----

func (o *Object) readNode(p disk.PageNum) (*node, error) {
	img, err := o.pool.Fix(p)
	if err != nil {
		return nil, err
	}
	defer o.pool.Unpin(p)
	if binary.BigEndian.Uint16(img[0:]) != nodeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n := &node{level: int(img[2])}
	count := int(binary.BigEndian.Uint16(img[4:]))
	var prev int64
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		cum := int64(binary.BigEndian.Uint64(img[off:]))
		ptr := disk.PageNum(binary.BigEndian.Uint64(img[off+8:]))
		if cum <= prev {
			return nil, fmt.Errorf("%w: non-increasing counts", ErrCorrupt)
		}
		n.entries = append(n.entries, entry{cum - prev, ptr})
		prev = cum
		off += entrySize
	}
	return n, nil
}

func (o *Object) writeNode(p disk.PageNum, n *node) (disk.PageNum, error) {
	if p == 0 {
		var err error
		p, err = o.alloc.Alloc(1)
		if err != nil {
			return 0, err
		}
	}
	img, err := o.pool.FixNew(p)
	if err != nil {
		return 0, err
	}
	defer o.pool.Unpin(p)
	binary.BigEndian.PutUint16(img[0:], nodeMagic)
	img[2] = uint8(n.level)
	binary.BigEndian.PutUint16(img[4:], uint16(len(n.entries)))
	var cum int64
	off := nodeHeaderSize
	for _, e := range n.entries {
		cum += e.bytes
		binary.BigEndian.PutUint64(img[off:], uint64(cum))
		binary.BigEndian.PutUint64(img[off+8:], uint64(e.ptr))
		off += entrySize
	}
	return p, nil
}

func (o *Object) freeNodePage(p disk.PageNum) error {
	o.pool.Discard(p)
	return o.alloc.Free(p, 1)
}

// ---- leaf block I/O ----

// readBlock reads the live bytes of a leaf block.
func (o *Object) readBlock(e entry) ([]byte, error) {
	ps := int64(o.vol.PageSize())
	npages := int((e.bytes + ps - 1) / ps)
	raw := make([]byte, npages*int(ps))
	if err := o.vol.ReadPages(e.ptr, npages, raw); err != nil {
		return nil, err
	}
	return raw[:e.bytes], nil
}

// writeBlock writes data into an existing or fresh leaf block and returns
// its entry.  Leaf blocks always occupy leafPages pages on disk.
func (o *Object) writeBlock(p disk.PageNum, data []byte) (entry, error) {
	if p == 0 {
		var err error
		p, err = o.alloc.Alloc(o.leafPages)
		if err != nil {
			return entry{}, err
		}
	}
	ps := int64(o.vol.PageSize())
	npages := int((int64(len(data)) + ps - 1) / ps)
	if npages == 0 {
		npages = 1
	}
	raw := make([]byte, npages*int(ps))
	copy(raw, data)
	if err := o.vol.WritePages(p, npages, raw); err != nil {
		return entry{}, err
	}
	return entry{bytes: int64(len(data)), ptr: p}, nil
}

func (o *Object) freeBlock(p disk.PageNum) error {
	return o.alloc.Free(p, o.leafPages)
}

// splitBytes partitions data into the fewest blocks of at most leafCap
// bytes, balanced so each holds at least half a block (when more than
// one).
func (o *Object) splitBytes(data []byte) [][]byte {
	cap := o.leafCap()
	nParts := int((int64(len(data)) + cap - 1) / cap)
	if nParts == 0 {
		return nil
	}
	base := len(data) / nParts
	extra := len(data) % nParts
	var parts [][]byte
	pos := 0
	for i := 0; i < nParts; i++ {
		n := base
		if i < extra {
			n++
		}
		parts = append(parts, data[pos:pos+n])
		pos += n
	}
	return parts
}
