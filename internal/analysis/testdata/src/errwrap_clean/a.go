// Package errwrap_clean holds the engine's error idiom done right;
// errwrap must accept it without diagnostics.
package errwrap_clean

import (
	"errors"
	"fmt"
)

var ErrNoSpace = errors.New("no space")

// wrap keeps the cause chain walkable.
func wrap(err error, pg int) error {
	return fmt.Errorf("fixing page %d: %w", pg, err)
}

// wrapBoth wraps every error operand.
func wrapBoth(e1, e2 error) error {
	return fmt.Errorf("flush: %w (after %w)", e1, e2)
}

// match uses errors.Is so wrapped sentinels still match.
func match(err error) bool {
	return errors.Is(err, ErrNoSpace)
}

// nilCheck is not a sentinel comparison; comparing against nil is the
// idiomatic presence test.
func nilCheck(err error) bool {
	return err != nil
}

// plainFormat has no error operands at all.
func plainFormat(pg int) error {
	return fmt.Errorf("bad page %d", pg)
}
