// Package atomicfield defines an Analyzer that enforces all-or-nothing
// atomicity on struct fields: a field that is accessed through the
// sync/atomic functions anywhere in a package must be accessed
// atomically everywhere in that package.
//
// A single plain load of a counter that other goroutines update with
// atomic.AddInt64 is a data race the race detector only reports when
// the exact interleaving fires; on weakly ordered hardware it can also
// read torn or stale values.  The engine's convention is the typed
// atomics (atomic.Int64 and friends), which make plain access
// impossible by construction; this analyzer catches the remaining
// function-style usage (atomic.AddInt64(&s.n, 1) in one place, s.n in
// another).
//
// The check is package-local, which fits the engine: every atomically
// accessed field is unexported, so all of its accesses are in one
// package.
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/eosdb/eos/internal/analysis/eosutil"
	"github.com/eosdb/eos/internal/analysis/ignore"
)

const doc = `check that fields accessed with sync/atomic are never accessed plainly

A struct field updated via atomic.AddInt64/StoreInt64/... in one place
and read with a plain selector in another races: the plain read can be
torn, stale, or reordered.  Use the atomic Load for every read of such
a field (or migrate the field to the typed atomics, which enforce this
by construction).`

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "atomicfield",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ignore.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ig := ignore.For(pass)

	// Pass 1: find fields whose address is taken by a sync/atomic call,
	// and remember those argument expressions so pass 2 can exempt them.
	atomicFields := make(map[*types.Var][]*ast.CallExpr)
	atomicArgs := make(map[ast.Expr]bool) // the &x.f (and x.f) inside atomic calls
	callFilter := []ast.Node{(*ast.CallExpr)(nil)}
	insp.Preorder(callFilter, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isAtomicFn(pass.TypesInfo, call) {
			return
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			field := fieldOf(pass.TypesInfo, sel)
			if field == nil {
				continue
			}
			atomicFields[field] = append(atomicFields[field], call)
			atomicArgs[un] = true
			atomicArgs[un.X] = true
		}
	})
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: every other access to those fields must not be plain.
	selFilter := []ast.Node{(*ast.SelectorExpr)(nil)}
	insp.Preorder(selFilter, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if atomicArgs[sel] {
			return
		}
		field := fieldOf(pass.TypesInfo, sel)
		if field == nil {
			return
		}
		if _, ok := atomicFields[field]; !ok {
			return
		}
		ig.Report(sel.Pos(),
			"plain access to field %s, which is accessed with sync/atomic elsewhere in this package; use atomic loads/stores everywhere (or a typed atomic)",
			field.Name())
	})
	return nil, nil
}

// isAtomicFn reports whether call invokes a package-level sync/atomic
// access function (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicFn(info *types.Info, call *ast.CallExpr) bool {
	fn := eosutil.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // typed-atomic methods are safe by construction
	}
	name := fn.Name()
	for _, p := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
