// Quickstart: create a store, write a large object, and run the paper's
// full operation set — append, read, replace, insert, delete — while
// watching the simulated I/O costs.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

func main() {
	// A 64 MB simulated data volume with 4 KB pages, and a log volume.
	vol := disk.MustNewVolume(4096, 16384, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(4096, 2048, disk.DefaultCostModel())
	store, err := eos.Format(vol, logVol, eos.Options{Threshold: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Create an object and append 10 MB with a size hint: EOS allocates
	// segments just large enough (§4.1).
	obj, err := store.Create("demo", 0)
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 10<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	vol.ResetStats()
	if err := obj.AppendWithHint(payload, int64(len(payload))); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created 10 MB object: %v\n", vol.Stats())

	u, _ := obj.Usage()
	fmt.Printf("segments=%d dataPages=%d indexPages=%d height=%d utilization=%.1f%%\n",
		u.SegmentCount, u.SegmentPages, u.IndexPages, u.TreeHeight,
		u.Utilization(store.PageSize())*100)

	// Sequential scan: physically contiguous segments keep the I/O rate
	// near the transfer rate — few seeks for thousands of pages.
	vol.ResetStats()
	if _, err := obj.Read(0, obj.Size()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full sequential read: %v\n", vol.Stats())

	// Random access: cost independent of object size.
	vol.ResetStats()
	if _, err := obj.Read(7<<20, 4096); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random 4 KB read at 7 MB: %v\n", vol.Stats())

	// Insert bytes in the middle: only the touched segment splits; the
	// rest of the object is untouched (§4.3.1).
	vol.ResetStats()
	if err := obj.Insert(5<<20, []byte("-- inserted in the middle --")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("small middle insert:  %v\n", vol.Stats())

	// Verify the bytes landed where expected.
	got, _ := obj.Read(5<<20, 28)
	if !bytes.Equal(got, []byte("-- inserted in the middle --")) {
		log.Fatal("insert verification failed")
	}

	// Delete a megabyte: whole segments are freed without being read.
	vol.ResetStats()
	if err := obj.Delete(2<<20, 1<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 MB middle delete:   %v\n", vol.Stats())

	// Replace overwrites in place.
	vol.ResetStats()
	if err := obj.Replace(100, []byte("REPLACED")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-place replace:     %v\n", vol.Stats())

	fmt.Printf("final size: %d bytes\n", obj.Size())
	if err := store.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("store check: OK")
}
