// Package racecheck_bad seeds the Eraser lockset shape: shared fields
// of mutex-bearing structs reached from a goroutine with no lock held
// in common across their accesses.
package racecheck_bad

import "sync"

type counter struct {
	mu   sync.Mutex
	hits int // racy: worker touches it without mu
	safe int // guarded: every access holds mu
}

// Start is the concurrency root: it spawns the worker.
func Start(c *counter) {
	go c.worker()
}

func (c *counter) worker() {
	c.hits++ // want "field counter.hits is accessed by 3 functions on a goroutine-reachable path with no common lock"
	c.mu.Lock()
	c.safe++
	c.mu.Unlock()
}

// Snapshot holds the lock — but worker does not, so the intersection
// over all of hits' accesses is empty.
func (c *counter) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits + c.safe
}

// Reset also holds the lock; the one bare access in worker is enough.
func (c *counter) Reset() {
	c.mu.Lock()
	c.hits = 0
	c.mu.Unlock()
}

type queue struct {
	mu    sync.Mutex
	depth int
}

// Serve spawns an inline drain loop: the literal itself is the
// concurrency root, and its bare write conflicts with Push.
func Serve(q *queue) {
	go func() {
		q.depth-- // want "field queue.depth is accessed by 2 functions on a goroutine-reachable path with no common lock"
	}()
}

func (q *queue) Push() {
	q.mu.Lock()
	q.depth++
	q.mu.Unlock()
}
