#!/usr/bin/env bash
# Static-analysis entry point: identical locally and in CI.
#
#   scripts/lint.sh            run every available linter
#   scripts/lint.sh eoslint    run only the eoslint suite
#   scripts/lint.sh --ssa      run only the whole-program passes
#                              (deadlock, walfirstip, leaksip)
#
# eoslint (the repo's own go/analysis suite) always runs.  The external
# tools — golangci-lint and govulncheck — run when installed and are
# skipped with a notice otherwise, so an offline checkout can still
# lint the storage-engine invariants that matter most.
set -u
cd "$(dirname "$0")/.."

only="${1:-all}"
failed=0

step() {
    echo "==> $1"
}

if [ "$only" = "--ssa" ] || [ "$only" = "ssa" ]; then
    step "eoslint -ssa (interprocedural deadlock/WAL-dominance/leak passes)"
    go run ./cmd/eoslint -ssa ./...
    exit $?
fi

step "eoslint (pin/latch/atomic/WAL/error invariants)"
if ! go run ./cmd/eoslint ./...; then
    failed=1
fi

if [ "$only" = "eoslint" ]; then
    exit "$failed"
fi

if command -v golangci-lint >/dev/null 2>&1; then
    step "golangci-lint"
    if ! golangci-lint run ./...; then
        failed=1
    fi
else
    step "golangci-lint not installed; skipping (CI installs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
    step "govulncheck"
    if ! govulncheck ./...; then
        failed=1
    fi
else
    step "govulncheck not installed; skipping (CI installs it)"
fi

exit "$failed"
