package eos

import (
	"bytes"
	"errors"
	"testing"
)

// TestRecoverysSurviveRepeatedCrashes re-crashes the store in the middle
// of recovery itself (via fault injection) and verifies that a later
// clean recovery still reconstructs the committed state — recovery must
// be restartable from any prefix of its own writes.
func TestRecoverySurvivesRepeatedCrashes(t *testing.T) {
	vol := newTestDevice(t, 512, 8192)
	logVol := newTestDevice(t, 512, 4096)
	s, err := Format(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := s.Create("x", 0)
	base := pat(70, 20000)
	if err := o.Append(base); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	model := append([]byte{}, base...)
	// A chain of fast-committed updates that recovery must redo.
	for i := 0; i < 5; i++ {
		tx, _ := s.Begin()
		data := pat(71+i, 1200)
		off := int64(i * 2500)
		if err := tx.Insert("x", off, data); err != nil {
			t.Fatal(err)
		}
		if err := tx.CommitNoForce(); err != nil {
			t.Fatal(err)
		}
		model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
	}
	// One loser in flight.
	loser, _ := s.Begin()
	if err := loser.Replace("x", 100, pat(99, 700)); err != nil {
		t.Fatal(err)
	}

	vol.Crash()
	logVol.Crash()

	boom := errors.New("mid-recovery crash")
	// Crash recovery at increasing depths; each failed attempt is
	// followed by a power failure that discards its partial writes.
	for _, after := range []int64{0, 1, 3, 7, 15, 40, 100} {
		vol.FailAfter(after, boom)
		_, err := Open(vol, logVol, Options{Threshold: 4})
		vol.ClearFault()
		if err == nil {
			// Recovery finished before the fault budget ran out —
			// verify and stop early.
			break
		}
		vol.Crash()
		logVol.Crash()
	}
	s2, err := Open(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	o2, err := s2.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := o2.Read(0, o2.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Error("committed state lost across repeated mid-recovery crashes")
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCrashBetweenDataForceAndLogReset crashes in a
// checkpoint's window between the data-volume barrier and the log
// Reset: the durable catalog already reflects the checkpoint while the
// old log — commit records included — is still intact.  Recovery then
// replays those commits a second time; the LSN each object root carries
// must make that replay a no-op rather than a double apply.
func TestCheckpointCrashBetweenDataForceAndLogReset(t *testing.T) {
	vol := newTestDevice(t, 512, 4096)
	logVol := newTestDevice(t, 512, 1024)
	s, err := Format(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := s.Create("x", 0)
	base := pat(70, 5000)
	if err := o.Append(base); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One committed (forced) append the old log still describes.
	tx, _ := s.Begin()
	extra := pat(71, 1000)
	if err := tx.Append("x", extra); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	model := append(append([]byte{}, base...), extra...)

	// Checkpoint, but fail the log volume before Reset can clear it:
	// the data side of the checkpoint completes, the log keeps its
	// records.
	boom := errors.New("boom")
	logVol.FailAfter(0, boom)
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint unexpectedly survived the log fault")
	}
	logVol.ClearFault()

	if err := vol.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := logVol.Crash(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	o2, err := s2.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := o2.Read(0, o2.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatalf("recovered %d bytes, want %d (committed append redone twice?)", len(got), len(model))
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestAbortRecordWrittenAfterCompensations pins the ordering inside
// Abort: the abort record may reach the log only AFTER the compensating
// writes are durably forced.  Recovery trusts an abort record as proof
// the rollback is fully on disk and skips the undo pass for that
// transaction — so if the record were forced first and the crash landed
// between record and compensation, the loser's in-place replace would
// leak into the recovered state (found by the crash-state sweep).
//
// The test makes the uncommitted post-image durable (modeling the drive
// draining its cache), then crashes Abort at every possible data-volume
// fault depth.  With the record-first ordering, depths that land after
// the logical undo but before the compensation force leave a durable
// abort record alongside a durable post-image — recovery then skips the
// undo pass and the aborted replace survives.
func TestAbortRecordWrittenAfterCompensations(t *testing.T) {
	for depth := int64(0); ; depth++ {
		vol := newTestDevice(t, 512, 4096)
		logVol := newTestDevice(t, 512, 1024)
		s, err := Format(vol, logVol, Options{Threshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		o, _ := s.Create("x", 0)
		committed := pat(70, 5000)
		if err := o.Append(committed); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}

		// In-flight replace: the WAL record goes ahead of the in-place
		// write, the post-image lives dirty in the buffer pool.
		tx, _ := s.Begin()
		if err := tx.Replace("x", 100, pat(99, 700)); err != nil {
			t.Fatal(err)
		}
		// A checkpoint flushes the loser's in-place page to the device
		// without forcing it (live-transaction pages are excluded from
		// the barrier); a direct ForceAll then models the drive draining
		// its cache on its own, making the uncommitted post-image
		// durable.
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := vol.ForceAll(); err != nil {
			t.Fatal(err)
		}

		boom := errors.New("boom")
		vol.FailAfter(depth, boom)
		aerr := tx.Abort()
		vol.ClearFault()
		if aerr == nil {
			// The fault budget outlasted the whole abort; every crash
			// depth inside it has been covered.
			if depth == 0 {
				t.Fatal("abort performed no data-volume I/O; fault depths never bit")
			}
			return
		}

		if err := vol.Crash(); err != nil {
			t.Fatal(err)
		}
		if err := logVol.Crash(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(vol, logVol, Options{Threshold: 4})
		if err != nil {
			t.Fatalf("depth %d: recovery: %v", depth, err)
		}
		o2, err := s2.Open("x")
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		got, err := o2.Read(0, o2.Size())
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if !bytes.Equal(got, committed) {
			t.Fatalf("depth %d: aborted transaction's replace leaked into the recovered state", depth)
		}
		if err := s2.Check(); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
	}
}
