// Package lockorder defines an Analyzer that enforces the storage
// engine's documented latch acquisition order.
//
// The engine's locks form a lattice, acquired strictly downward:
//
//	rank 10  Store.mu           (store manager: catalog, txn table)
//	rank 15  LockTable.mu       (transaction lock manager)
//	rank 20  catEntry.latch     (per-object RW latch)
//	rank 30  Txn.wmu            (transaction write set)
//	rank 30  deferredAlloc.mu   (transaction deferred-free list)
//	rank 33  EpochManager.mu    (epoch bookkeeping; leaf-like)
//	rank 35  Manager.mu         (buddy superdirectory latch)
//	rank 38  Pool.flushMu       (buffer pool whole-pool write-back)
//	rank 40  shard.mu           (buffer pool shard)
//	rank 45  Log.forceMu        (group-commit leader force)
//	rank 50  Log.mu             (write-ahead log buffer + tail state)
//	rank 56  Dispatcher.mu      (async I/O close gate)
//	rank 57  Batch.mu           (per-submitter completion state)
//	rank 60  Volume.mu          (disk volume image)
//	rank 62  FileVolume.mu      (file backend crash-shadow map)
//	rank 70  Volume.accMu       (disk access-time accounting)
//	rank 72  FileVolume.accMu   (file backend accounting + fault state)
//
// Acquiring a lock whose rank is lower than one already held inverts
// the lattice; two goroutines taking the same pair in opposite orders
// deadlock under load, and such hangs reproduce only under the exact
// interleaving that the paper's §4.5 concurrency tests rarely hit.
// The check is intraprocedural and flow-approximate: within one
// function, Lock/RLock calls on ranked locks are tracked in source
// order against Unlock/RUnlock (a deferred unlock holds to function
// exit), and any acquisition that goes upward is reported.
//
// The -order flag extends or overrides the lattice with
// "Type.field=rank" entries, comma-separated.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/eosdb/eos/internal/analysis/ignore"
	"github.com/eosdb/eos/internal/analysis/ssa"
)

const doc = `check that latches are acquired in the documented lattice order

Locks rank manager → lock-table → object → txn → pool-shard → wal →
disk.  Taking a lower-ranked lock while holding a higher-ranked one is
an inversion: the opposite nesting exists somewhere else in the engine,
and the pair deadlocks under concurrent load.`

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ignore.Analyzer},
	Run:      run,
}

// defaultOrder is the engine's lattice, keyed by "Type.field" of the
// mutex field.  Matching is by type and field name (not import path)
// so the analysistest fixtures can declare stand-in types.  The table
// is owned by the ssa facility so the intraprocedural check here and
// the whole-program deadlock pass can never disagree about a rank.
var defaultOrder = ssa.LockRanks()

// rankName labels the lattice levels for diagnostics.
func rankName(r int) string {
	switch {
	case r < 15:
		return "manager"
	case r < 20:
		return "lock-table"
	case r < 30:
		return "object"
	case r < 40:
		return "txn"
	case r < 50:
		return "pool-shard"
	case r < 60:
		return "wal"
	default:
		return "disk"
	}
}

var orderFlag string

func init() {
	Analyzer.Flags.StringVar(&orderFlag, "order", "",
		`extra lattice entries, comma-separated "Type.field=rank"`)
}

func run(pass *analysis.Pass) (interface{}, error) {
	order := make(map[string]int, len(defaultOrder))
	for k, v := range defaultOrder {
		order[k] = v
	}
	if orderFlag != "" {
		for _, ent := range strings.Split(orderFlag, ",") {
			kv := strings.SplitN(strings.TrimSpace(ent), "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("lockorder: bad -order entry %q", ent)
			}
			r, err := strconv.Atoi(kv[1])
			if err != nil {
				return nil, fmt.Errorf("lockorder: bad -order rank %q", kv[1])
			}
			order[kv[0]] = r
		}
	}

	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ig := ignore.For(pass)
	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			checkFunc(pass, ig, order, body)
		}
	})
	return nil, nil
}

// held is one currently held lock.
type held struct {
	key    string
	rank   int
	sticky bool // deferred unlock: held to function exit
}

// checkFunc walks body in source order, maintaining the held-lock set.
// Nested function literals are handled by their own visit (a closure
// may run on another goroutine, where the enclosing lock set does not
// apply).
func checkFunc(pass *analysis.Pass, ig *ignore.Reporter, order map[string]int, body *ast.BlockStmt) {
	var stack []held
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if key, method, ok := lockEvent(pass, order, n.Call); ok {
				switch method {
				case "Unlock", "RUnlock":
					for i := range stack {
						if stack[i].key == key && !stack[i].sticky {
							stack[i].sticky = true
							break
						}
					}
				}
			}
			return false
		case *ast.CallExpr:
			key, method, ok := lockEvent(pass, order, n)
			if !ok {
				return true
			}
			rank := order[key]
			switch method {
			case "Lock", "RLock":
				for _, h := range stack {
					if h.rank > rank {
						ig.Report(n.Pos(),
							"lock order inversion: acquiring %s (rank %d, %s) while holding %s (rank %d, %s); the lattice order is manager → lock-table → object → txn → pool-shard → wal → disk",
							key, rank, rankName(rank), h.key, h.rank, rankName(h.rank))
						break
					}
				}
				stack = append(stack, held{key: key, rank: rank})
			case "Unlock", "RUnlock":
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].key == key && !stack[i].sticky {
						stack = append(stack[:i], stack[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
}

// lockEvent classifies call as a Lock/RLock/Unlock/RUnlock on a ranked
// mutex field, returning the lattice key and method name.
func lockEvent(pass *analysis.Pass, order map[string]int, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	// The receiver must itself be a field selector: owner.field.Lock().
	fieldSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	selection, ok := pass.TypesInfo.Selections[fieldSel]
	if !ok {
		return "", "", false
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return "", "", false
	}
	owner := ownerTypeName(selection.Recv())
	if owner == "" {
		return "", "", false
	}
	key := owner + "." + field.Name()
	if _, ranked := order[key]; !ranked {
		return "", "", false
	}
	return key, method, true
}

// ownerTypeName returns the name of the named struct type that t
// denotes (unwrapping pointers), or "".
func ownerTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
