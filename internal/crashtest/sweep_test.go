package crashtest

import (
	"os"
	"testing"

	"github.com/eosdb/eos"
)

func sweepConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Seed:           42,
		Workload:       WorkloadConfig{Seed: 42, Txns: 120},
		Opts:           eos.Options{Threshold: 4},
		SubsetEvery:    6,
		SubsetSamples:  2,
		TornCap:        6,
		FileCheckEvery: 64,
		FileDir:        t.TempDir(),
		ReopenEvery:    16,
		RecrashEvery:   24,
		Logf:           t.Logf,
	}
}

// TestCrashSweep is the tier-1 crash-consistency gate: enumerate crash
// states of a mixed workload and require every recovery invariant to
// hold on each.  Short mode runs a reduced but still multi-hundred-state
// sweep.
func TestCrashSweep(t *testing.T) {
	cfg := sweepConfig(t)
	if testing.Short() {
		cfg.Workload.Txns = 30
		cfg.SubsetEvery = 12
		cfg.SubsetSamples = 1
		cfg.TornCap = 3
		cfg.FileCheckEvery = 96
		cfg.ReopenEvery = 32
		cfg.RecrashEvery = 48
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	report(t, res)
	if !testing.Short() && res.States < 1000 {
		t.Fatalf("sweep enumerated only %d distinct states, want >= 1000", res.States)
	}
}

// TestCrashSweepFull is the exhaustive nightly sweep; set
// EOS_CRASH_SWEEP_FULL=1 to run it.
func TestCrashSweepFull(t *testing.T) {
	if os.Getenv("EOS_CRASH_SWEEP_FULL") == "" {
		t.Skip("set EOS_CRASH_SWEEP_FULL=1 to run the full sweep")
	}
	for _, seed := range []int64{42, 1337, 9001} {
		cfg := sweepConfig(t)
		cfg.Seed = seed
		cfg.Workload = WorkloadConfig{Seed: seed, Txns: 300}
		cfg.SubsetEvery = 3
		cfg.SubsetSamples = 4
		cfg.TornCap = 0 // every split
		cfg.FileCheckEvery = 32
		cfg.ReopenEvery = 8
		cfg.RecrashEvery = 12
		res, err := Sweep(cfg)
		if err != nil {
			t.Fatalf("seed %d: sweep: %v", seed, err)
		}
		t.Logf("seed %d:", seed)
		report(t, res)
	}
}

func report(t *testing.T, res *Result) {
	t.Helper()
	t.Logf("crash sweep: %d events, %d positions, %d candidates, %d distinct states recovered (%d on file backend, %d re-crash probes), %d violations",
		res.Events, res.Positions, res.Candidates, res.States, res.FileStates, res.Recrashes, len(res.Violations))
	for i, v := range res.Violations {
		if i >= 10 {
			t.Logf("... and %d more violations", len(res.Violations)-10)
			break
		}
		t.Errorf("violation: %s", v)
	}
}
