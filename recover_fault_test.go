package eos

import (
	"bytes"
	"errors"
	"testing"
)

// TestRecoverysSurviveRepeatedCrashes re-crashes the store in the middle
// of recovery itself (via fault injection) and verifies that a later
// clean recovery still reconstructs the committed state — recovery must
// be restartable from any prefix of its own writes.
func TestRecoverySurvivesRepeatedCrashes(t *testing.T) {
	vol := newTestDevice(t, 512, 8192)
	logVol := newTestDevice(t, 512, 4096)
	s, err := Format(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := s.Create("x", 0)
	base := pat(70, 20000)
	if err := o.Append(base); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	model := append([]byte{}, base...)
	// A chain of fast-committed updates that recovery must redo.
	for i := 0; i < 5; i++ {
		tx, _ := s.Begin()
		data := pat(71+i, 1200)
		off := int64(i * 2500)
		if err := tx.Insert("x", off, data); err != nil {
			t.Fatal(err)
		}
		if err := tx.CommitNoForce(); err != nil {
			t.Fatal(err)
		}
		model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
	}
	// One loser in flight.
	loser, _ := s.Begin()
	if err := loser.Replace("x", 100, pat(99, 700)); err != nil {
		t.Fatal(err)
	}

	vol.Crash()
	logVol.Crash()

	boom := errors.New("mid-recovery crash")
	// Crash recovery at increasing depths; each failed attempt is
	// followed by a power failure that discards its partial writes.
	for _, after := range []int64{0, 1, 3, 7, 15, 40, 100} {
		vol.FailAfter(after, boom)
		_, err := Open(vol, logVol, Options{Threshold: 4})
		vol.ClearFault()
		if err == nil {
			// Recovery finished before the fault budget ran out —
			// verify and stop early.
			break
		}
		vol.Crash()
		logVol.Crash()
	}
	s2, err := Open(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	o2, err := s2.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := o2.Read(0, o2.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Error("committed state lost across repeated mid-recovery crashes")
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}
