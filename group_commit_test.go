package eos

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"github.com/eosdb/eos/internal/disk"
)

// TestConcurrentCommittersAndCheckpointerStress drives N committers on
// distinct objects while a checkpointer repeatedly flushes and forces
// the store.  It is the write-path counterpart of the read-path stress
// test: correctness is asserted on final content, and the -race CI job
// runs it to prove the group-commit and parallel-flush paths are clean.
func TestConcurrentCommittersAndCheckpointerStress(t *testing.T) {
	s, _, _ := newStore(t, Options{Threshold: 4, PoolShards: 8, PoolFrames: 256})
	const committers = 8
	const rounds = 12
	const blockLen = 96

	for w := 0; w < committers; w++ {
		if _, err := s.Create(objName(w), 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, committers)
	stop := make(chan struct{})
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx, err := s.Begin()
				if err != nil {
					errCh <- err
					return
				}
				if err := tx.Append(objName(w), pat(w*100+i, blockLen)); err != nil {
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Checkpointer: soft checkpoints while transactions are in flight.
	ckDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				ckDone <- nil
				return
			default:
				if err := s.Checkpoint(); err != nil {
					ckDone <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	if err := <-ckDone; err != nil {
		t.Fatalf("checkpointer: %v", err)
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for w := 0; w < committers; w++ {
		o, err := s.Open(objName(w))
		if err != nil {
			t.Fatal(err)
		}
		if o.Size() != rounds*blockLen {
			t.Fatalf("object %d: size %d, want %d", w, o.Size(), rounds*blockLen)
		}
		for i := 0; i < rounds; i++ {
			got, err := o.Read(int64(i*blockLen), blockLen)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pat(w*100+i, blockLen)) {
				t.Fatalf("object %d block %d corrupted", w, i)
			}
		}
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WAL.LeaderForces == 0 || st.WAL.Appends == 0 {
		t.Fatalf("group-commit stats never moved: %+v", st.WAL)
	}
}

func objName(w int) string {
	return string(rune('a'+w)) + "-obj"
}

// TestGroupCommitCrashDurability is the §4.5 durability proof at the
// store level: a CommitNoForce acknowledgement means the commit record
// was covered by a successful leader force, so after a crash recovery
// replays AT LEAST every acknowledged transaction — and what it replays
// is a contiguous per-object prefix (no torn or reordered commits).
// The log device is armed to fail mid-run, so late committers see
// errors; those must never be REQUIRED to survive, but every
// acknowledged one must.
func TestGroupCommitCrashDurability(t *testing.T) {
	s, vol, logVol := newStore(t, Options{Threshold: 4})
	const committers = 4
	const rounds = 30
	const blockLen = 64

	for w := 0; w < committers; w++ {
		if _, err := s.Create(objName(w), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected log device failure")
	logVol.FailAfter(10, boom)

	acked := make([]int, committers) // blocks acknowledged per object
	var wg sync.WaitGroup
	var fatal error
	var mu sync.Mutex
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx, err := s.Begin()
				if err != nil {
					return // log full or failed: stop committing
				}
				if err := tx.Append(objName(w), pat(w*1000+i, blockLen)); err != nil {
					if !errors.Is(err, boom) {
						mu.Lock()
						fatal = err
						mu.Unlock()
					}
					return
				}
				if err := tx.CommitNoForce(); err != nil {
					if !errors.Is(err, boom) {
						mu.Lock()
						fatal = err
						mu.Unlock()
					}
					return // not acknowledged; may or may not survive
				}
				acked[w] = i + 1
			}
		}(w)
	}
	wg.Wait()
	if fatal != nil {
		t.Fatalf("unexpected commit failure: %v", fatal)
	}
	totalAcked := 0
	for _, a := range acked {
		totalAcked += a
	}
	if totalAcked == 0 {
		t.Fatal("fault armed too early: nothing was ever acknowledged")
	}

	logVol.ClearFault()
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{Threshold: 4})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	for w := 0; w < committers; w++ {
		o, err := s2.Open(objName(w))
		if err != nil {
			t.Fatal(err)
		}
		size := o.Size()
		if size%blockLen != 0 {
			t.Fatalf("object %d: size %d is not a whole number of committed blocks", w, size)
		}
		n := int(size) / blockLen
		if n < acked[w] {
			t.Fatalf("object %d: %d blocks recovered, but %d were acknowledged", w, n, acked[w])
		}
		// The recovered blocks must be the contiguous prefix 0..n-1 —
		// recovery replays exactly the forced prefix, in order.
		for i := 0; i < n; i++ {
			got, err := o.Read(int64(i*blockLen), blockLen)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pat(w*1000+i, blockLen)) {
				t.Fatalf("object %d block %d: recovered content is not the committed prefix", w, i)
			}
		}
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitNoForcePiggyback exercises the satellite-documented
// CommitNoForce contract: the commit record enters the group-commit
// buffer and is made durable by a leader force that usually belongs to
// another committer.  With the log device serialized to one outstanding
// request, concurrent committers must batch: the number of physical
// leader forces stays well below the number of force requests.
func TestCommitNoForcePiggyback(t *testing.T) {
	s, _, logVol := newStore(t, Options{Threshold: 4})
	const committers = 8
	const rounds = 6

	for w := 0; w < committers; w++ {
		o, err := s.Create(objName(w), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Append(pat(w, 32)); err != nil {
			t.Fatal(err)
		}
	}
	// Latency simulation is simulator-only: it is what makes the
	// followers pile up behind the leader's force.  On the file backend
	// real fdatasync latency provides some batching but not reliably
	// enough to assert on, so the piggyback ratio check needs the sim.
	sv, ok := logVol.(*disk.Volume)
	if !ok {
		t.Skip("piggyback ratio assertion needs the simulator's latency model")
	}
	sv.SetLatency(true, 1) // one outstanding request, like a single spindle
	defer sv.SetLatency(false, 0)

	before := s.Stats().WAL
	var wg sync.WaitGroup
	errCh := make(chan error, committers)
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx, err := s.Begin()
				if err != nil {
					errCh <- err
					return
				}
				if err := tx.Replace(objName(w), 0, pat(w+i, 32)); err != nil {
					errCh <- err
					return
				}
				if err := tx.CommitNoForce(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := s.Stats().WAL
	forces := st.Forces - before.Forces
	leads := st.LeaderForces - before.LeaderForces
	saved := (st.Piggybacks - before.Piggybacks) + (st.ForceNoops - before.ForceNoops)
	if forces < committers*rounds {
		t.Fatalf("forces = %d, want at least %d", forces, committers*rounds)
	}
	if leads >= forces {
		t.Fatalf("no batching: %d leader forces for %d force requests", leads, forces)
	}
	if saved == 0 {
		t.Fatalf("no piggybacked or no-op forces at %d committers: %+v", committers, st)
	}
}
