package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

// Config tunes one sweep.
type Config struct {
	Seed     int64
	Workload WorkloadConfig
	// Opts configures the engine for the traced workload and for every
	// recovery.  Geometry below overrides the volume shape.
	Opts      eos.Options
	PageSize  int          // default 512
	DataPages disk.PageNum // default 4096
	LogPages  disk.PageNum // default 1024

	// SubsetEvery samples power-cut subset states at every Nth trace
	// position (0 disables); SubsetSamples is how many per position.
	SubsetEvery   int
	SubsetSamples int
	// TornCap bounds the torn splits sampled per multi-page write
	// (0 = all splits).
	TornCap int

	// FileCheckEvery materializes every Nth distinct state into a real
	// FileVolume pair under FileDir, recovers via eos.OpenAt, and
	// differentially compares against the simulator recovery
	// (0 disables).
	FileCheckEvery int
	FileDir        string
	// ReopenEvery runs the close/reopen idempotence check on every Nth
	// distinct state (0 disables).
	ReopenEvery int
	// RecrashEvery injects a fault mid-recovery on every Nth distinct
	// state, crashes, and requires the subsequent clean recovery to
	// pass all checks (0 disables).
	RecrashEvery int

	// MaxViolations stops the sweep early (default 20).
	MaxViolations int
	Logf          func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.PageSize == 0 {
		c.PageSize = 512
	}
	if c.DataPages == 0 {
		c.DataPages = 4096
	}
	if c.LogPages == 0 {
		c.LogPages = 1024
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Violation is one invariant failure at one reconstructed crash state.
type Violation struct {
	P      int    // trace position of the crash
	Label  string // which state family produced it (prefix/torn/subset/...)
	Kind   string // open / oracle / check / leaks / reopen / recrash / file-diff
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("P=%d %s [%s]: %s", v.P, v.Label, v.Kind, v.Detail)
}

// Result summarizes a sweep.
type Result struct {
	Events     int // trace length
	Positions  int // crash positions enumerated
	Candidates int // states considered before deduplication
	States     int // distinct states recovered on the simulator
	FileStates int // states additionally recovered on the file backend
	Recrashes  int // re-crash-during-recovery probes run
	Violations []Violation
}

type sweeper struct {
	cfg    Config
	oracle *Oracle
	events []Event
	seen   map[uint64]bool
	// pageHash caches per-page fingerprints keyed by the page's backing
	// array, so repeated states hash in O(pages) map lookups.
	pageHashes map[*byte]uint64
	zeroHash   uint64
	res        *Result
}

// Sweep traces the seeded workload, enumerates crash states, recovers
// each, and machine-checks the recovery invariants.
func Sweep(cfg Config) (*Result, error) {
	cfg.defaults()
	sw := &sweeper{
		cfg:        cfg,
		seen:       make(map[uint64]bool),
		pageHashes: make(map[*byte]uint64),
		res:        &Result{},
	}
	sw.zeroHash = hashBytes(make([]byte, cfg.PageSize))

	// Phase 1: trace the workload on the simulator.
	clock := &Clock{}
	dataDev := NewDevice(disk.MustNewVolume(cfg.PageSize, cfg.DataPages, disk.DefaultCostModel()), clock, 0)
	logDev := NewDevice(disk.MustNewVolume(cfg.PageSize, cfg.LogPages, disk.DefaultCostModel()), clock, 1)
	st, err := eos.Format(dataDev, logDev, cfg.Opts)
	if err != nil {
		return nil, fmt.Errorf("format traced store: %w", err)
	}
	wl := cfg.Workload
	if wl.Seed == 0 {
		wl.Seed = cfg.Seed
	}
	oracle, err := RunWorkload(st, clock, wl)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	sw.oracle = oracle
	sw.events = clock.Events()
	sw.res.Events = len(sw.events)
	cfg.Logf("trace: %d events, %d commits, P0=%d", len(sw.events), len(oracle.Commits), oracle.P0)

	// Phase 2: replay the trace, emitting crash states at every
	// position.
	models := [2]*volModel{
		newVolModel(cfg.PageSize, cfg.DataPages),
		newVolModel(cfg.PageSize, cfg.LogPages),
	}
	for _, ev := range sw.events[:oracle.P0] {
		models[ev.Dev].apply(ev)
	}
	scratch := [2][][]byte{}
	for p := oracle.P0; ; p++ {
		if len(sw.res.Violations) >= cfg.MaxViolations {
			cfg.Logf("stopping at position %d: violation cap reached", p)
			break
		}
		sw.res.Positions++

		// Family 1: clean prefix — every outstanding write durable.
		sw.candidate(models, chooseNewest, nil, p, "prefix", &scratch)
		// Family 2: total loss — nothing since the last barrier made it.
		sw.candidate(models, chooseBase, nil, p, "lost-epoch", &scratch)
		// Family 3: sampled power-cut subsets.
		if cfg.SubsetEvery > 0 && p%cfg.SubsetEvery == 0 {
			for s := 0; s < cfg.SubsetSamples; s++ {
				rng := rand.New(rand.NewSource(cfg.Seed ^ int64(p)*2654435761 ^ int64(s)<<40))
				sw.candidate(models, chooseRand(rng), nil, p,
					fmt.Sprintf("subset-%d", s), &scratch)
			}
		}
		if p == len(sw.events) {
			break
		}
		// Family 4: torn splits of the next multi-page write.
		ev := sw.events[p]
		if (ev.Kind == KindWrite || ev.Kind == KindWriteRun) && ev.N > 1 {
			for _, k := range tornSplits(ev.N, cfg.TornCap, cfg.Seed^int64(p)) {
				sw.candidate(models, chooseNewest, &torn{ev: ev, k: k}, p,
					fmt.Sprintf("torn-%d/%d", k, ev.N), &scratch)
			}
		}
		models[ev.Dev].apply(ev)
	}
	return sw.res, nil
}

// torn overlays the first k pages of a multi-page write onto a state.
type torn struct {
	ev Event
	k  int
}

// tornSplits picks which torn prefixes of an n-page write to test.
func tornSplits(n, limit int, seed int64) []int {
	if limit <= 0 || n-1 <= limit {
		out := make([]int, 0, n-1)
		for k := 1; k < n; k++ {
			out = append(out, k)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[int]bool{1: true, n - 1: true}
	for len(seen) < limit {
		seen[1+rng.Intn(n-1)] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// candidate resolves one crash state, dedupes it, and (if new) runs the
// full verification battery on it.
func (sw *sweeper) candidate(models [2]*volModel, choose chooser, tr *torn, p int, label string, scratch *[2][][]byte) {
	sw.res.Candidates++
	for dev := 0; dev < 2; dev++ {
		scratch[dev] = models[dev].resolve(choose, scratch[dev])
	}
	if tr != nil {
		ps := models[tr.ev.Dev].ps
		for i := 0; i < tr.k; i++ {
			scratch[tr.ev.Dev][int(tr.ev.Start)+i] = tr.ev.Data[i*ps : (i+1)*ps]
		}
	}
	h := newStateHash()
	for dev := 0; dev < 2; dev++ {
		for _, page := range scratch[dev] {
			h.h = h.h*1099511628211 ^ sw.hashPage(page)
		}
	}
	key := h.sum()
	if sw.seen[key] {
		return
	}
	sw.seen[key] = true
	sw.res.States++

	dataImg := materialize(scratch[0], sw.cfg.PageSize)
	logImg := materialize(scratch[1], sw.cfg.PageSize)
	got, ok := sw.verifySim(dataImg, logImg, p, label)
	if !ok {
		return
	}
	if sw.cfg.ReopenEvery > 0 && sw.res.States%sw.cfg.ReopenEvery == 0 {
		sw.verifyReopen(dataImg, logImg, got, p, label)
	}
	if sw.cfg.RecrashEvery > 0 && sw.res.States%sw.cfg.RecrashEvery == 0 {
		sw.verifyRecrash(dataImg, logImg, p, label)
	}
	if sw.cfg.FileCheckEvery > 0 && sw.res.States%sw.cfg.FileCheckEvery == 0 {
		sw.verifyFile(dataImg, logImg, got, p, label)
	}
}

func (sw *sweeper) hashPage(page []byte) uint64 {
	if page == nil {
		return sw.zeroHash
	}
	key := &page[0]
	if h, ok := sw.pageHashes[key]; ok {
		return h
	}
	h := hashBytes(page)
	sw.pageHashes[key] = h
	return h
}

func (sw *sweeper) violate(p int, label, kind, format string, args ...any) {
	v := Violation{P: p, Label: label, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	sw.res.Violations = append(sw.res.Violations, v)
	sw.cfg.Logf("VIOLATION %s", v)
}

// openState loads a crash state into fresh simulator volumes.
func (sw *sweeper) openState(dataImg, logImg []byte) (*disk.Volume, *disk.Volume, error) {
	vol := disk.MustNewVolume(sw.cfg.PageSize, sw.cfg.DataPages, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(sw.cfg.PageSize, sw.cfg.LogPages, disk.DefaultCostModel())
	if err := vol.WritePages(0, int(sw.cfg.DataPages), dataImg); err != nil {
		return nil, nil, err
	}
	if err := logVol.WritePages(0, int(sw.cfg.LogPages), logImg); err != nil {
		return nil, nil, err
	}
	if err := vol.ForceAll(); err != nil {
		return nil, nil, err
	}
	if err := logVol.ForceAll(); err != nil {
		return nil, nil, err
	}
	return vol, logVol, nil
}

// verifySim recovers the state on the simulator and checks every
// invariant.  It reports the recovered content map on success.
func (sw *sweeper) verifySim(dataImg, logImg []byte, p int, label string) (map[string]uint64, bool) {
	vol, logVol, err := sw.openState(dataImg, logImg)
	if err != nil {
		sw.violate(p, label, "materialize", "%v", err)
		return nil, false
	}
	st, err := eos.Open(vol, logVol, sw.cfg.Opts)
	if err != nil {
		sw.violate(p, label, "open", "recovery failed: %v", err)
		return nil, false
	}
	got, err := readAll(st)
	if err != nil {
		sw.violate(p, label, "read", "%v", err)
		return nil, false
	}
	minK, maxK := sw.oracle.Bounds(p)
	if _, ok := sw.oracle.Match(got, minK, maxK); !ok {
		sw.violate(p, label, "oracle",
			"recovered content matches no committed state in k=[%d,%d]: %s",
			minK, maxK, sw.diffDetail(st, maxK))
		return nil, false
	}
	if err := st.Check(); err != nil {
		sw.violate(p, label, "check", "%v", err)
		return nil, false
	}
	if err := st.CheckNoLeaks(); err != nil {
		sw.violate(p, label, "leaks", "%v", err)
		return nil, false
	}
	return got, true
}

// verifyReopen checks recovery idempotence: checkpointing the recovered
// store (Close) and opening it again must reproduce identical content.
func (sw *sweeper) verifyReopen(dataImg, logImg []byte, want map[string]uint64, p int, label string) {
	vol, logVol, err := sw.openState(dataImg, logImg)
	if err != nil {
		sw.violate(p, label, "materialize", "%v", err)
		return
	}
	st, err := eos.Open(vol, logVol, sw.cfg.Opts)
	if err != nil {
		sw.violate(p, label, "reopen", "first recovery failed: %v", err)
		return
	}
	if err := st.Close(); err != nil {
		sw.violate(p, label, "reopen", "close after recovery: %v", err)
		return
	}
	st2, err := eos.Open(vol, logVol, sw.cfg.Opts)
	if err != nil {
		sw.violate(p, label, "reopen", "second recovery failed: %v", err)
		return
	}
	got, err := readAll(st2)
	if err != nil {
		sw.violate(p, label, "reopen", "read after reopen: %v", err)
		return
	}
	if !mapsEqual(got, want) {
		sw.violate(p, label, "reopen", "content changed across reopen: %v != %v", got, want)
		return
	}
	if err := st2.Check(); err != nil {
		sw.violate(p, label, "reopen", "check after reopen: %v", err)
	}
}

var errInjected = errors.New("crashtest: injected fault")

// verifyRecrash interrupts recovery itself with an injected I/O fault,
// crashes the volumes, and requires the subsequent clean recovery to
// satisfy every invariant — recovery must be restartable from any of
// its own crash points.
func (sw *sweeper) verifyRecrash(dataImg, logImg []byte, p int, label string) {
	sw.res.Recrashes++
	vol, logVol, err := sw.openState(dataImg, logImg)
	if err != nil {
		sw.violate(p, label, "materialize", "%v", err)
		return
	}
	rng := rand.New(rand.NewSource(sw.cfg.Seed ^ int64(p)<<20))
	budget := int64(1 + rng.Intn(60))
	vol.FailAfter(budget, errInjected)
	st, err := eos.Open(vol, logVol, sw.cfg.Opts)
	vol.ClearFault()
	if err == nil {
		// Fault budget never hit; the store is open and must be sane.
		if cerr := st.Check(); cerr != nil {
			sw.violate(p, label, "recrash", "check after unfaulted open: %v", cerr)
		}
		return
	}
	if !errors.Is(err, errInjected) {
		sw.violate(p, label, "recrash", "faulted recovery returned foreign error: %v", err)
		return
	}
	if err := vol.Crash(); err != nil {
		sw.violate(p, label, "recrash", "crash: %v", err)
		return
	}
	if err := logVol.Crash(); err != nil {
		sw.violate(p, label, "recrash", "crash log: %v", err)
		return
	}
	st2, err := eos.Open(vol, logVol, sw.cfg.Opts)
	if err != nil {
		sw.violate(p, label, "recrash", "clean recovery after interrupted recovery: %v", err)
		return
	}
	got, err := readAll(st2)
	if err != nil {
		sw.violate(p, label, "recrash", "read: %v", err)
		return
	}
	minK, maxK := sw.oracle.Bounds(p)
	if _, ok := sw.oracle.Match(got, minK, maxK); !ok {
		sw.violate(p, label, "recrash",
			"content after interrupted+clean recovery matches no committed state in k=[%d,%d]: got %v",
			minK, maxK, got)
		return
	}
	if err := st2.Check(); err != nil {
		sw.violate(p, label, "recrash", "check: %v", err)
	}
	if err := st2.CheckNoLeaks(); err != nil {
		sw.violate(p, label, "recrash", "leaks: %v", err)
	}
}

// verifyFile materializes the state into real page files, recovers with
// eos.OpenAt, and differentially compares against the simulator
// recovery of the same state.
func (sw *sweeper) verifyFile(dataImg, logImg []byte, want map[string]uint64, p int, label string) {
	dir := sw.cfg.FileDir
	if dir == "" {
		sw.violate(p, label, "file-diff", "FileCheckEvery set without FileDir")
		return
	}
	sw.res.FileStates++
	write := func(name string, pages disk.PageNum, img []byte) error {
		path := filepath.Join(dir, name)
		_ = os.Remove(path)
		fv, err := disk.CreateFileVolume(path, sw.cfg.PageSize, pages, disk.FileOptions{})
		if err != nil {
			return err
		}
		if err := fv.WritePages(0, int(pages), img); err != nil {
			_ = fv.Close()
			return err
		}
		if err := fv.ForceAll(); err != nil {
			_ = fv.Close()
			return err
		}
		return fv.Close()
	}
	if err := write("data.eos", sw.cfg.DataPages, dataImg); err != nil {
		sw.violate(p, label, "file-diff", "materialize data: %v", err)
		return
	}
	if err := write("log.eos", sw.cfg.LogPages, logImg); err != nil {
		sw.violate(p, label, "file-diff", "materialize log: %v", err)
		return
	}
	opts := sw.cfg.Opts
	opts.Backend = eos.BackendFile
	st, err := eos.OpenAt(dir, opts)
	if err != nil {
		sw.violate(p, label, "file-diff", "OpenAt recovery failed: %v", err)
		return
	}
	defer func() {
		if st != nil {
			_ = st.Close()
		}
	}()
	got, err := readAll(st)
	if err != nil {
		sw.violate(p, label, "file-diff", "read: %v", err)
		return
	}
	if !mapsEqual(got, want) {
		sw.violate(p, label, "file-diff",
			"file backend recovered %v, simulator recovered %v", got, want)
		return
	}
	if err := st.Check(); err != nil {
		sw.violate(p, label, "file-diff", "check: %v", err)
		return
	}
	if err := st.Close(); err != nil {
		sw.violate(p, label, "file-diff", "close: %v", err)
	}
	st = nil
}

// diffDetail explains an oracle mismatch against the newest candidate
// state: per-object size differences and the first differing byte.
func (sw *sweeper) diffDetail(st *eos.Store, maxK int) string {
	if maxK == 0 {
		return fmt.Sprintf("recovered objects %v, want empty store", st.List())
	}
	want := sw.oracle.Commits[maxK-1].Contents
	var out []string
	seen := map[string]bool{}
	for _, name := range st.List() {
		seen[name] = true
		o, err := st.Open(name)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: open: %v", name, err))
			continue
		}
		var got []byte
		if sz := o.Size(); sz > 0 {
			if got, err = o.Read(0, sz); err != nil {
				out = append(out, fmt.Sprintf("%s: read: %v", name, err))
				continue
			}
		}
		w, ok := want[name]
		switch {
		case !ok:
			out = append(out, fmt.Sprintf("%s: unexpected (len %d)", name, len(got)))
		case len(got) != len(w):
			out = append(out, fmt.Sprintf("%s: len %d want %d", name, len(got), len(w)))
		default:
			for i := range got {
				if got[i] != w[i] {
					end := i + 8
					if end > len(got) {
						end = len(got)
					}
					out = append(out, fmt.Sprintf("%s: first diff at byte %d/%d: got %x want %x",
						name, i, len(got), got[i:end], w[i:end]))
					break
				}
			}
		}
	}
	for name := range want {
		if !seen[name] {
			out = append(out, fmt.Sprintf("%s: missing (want len %d)", name, len(want[name])))
		}
	}
	if len(out) == 0 {
		return fmt.Sprintf("identical to k=%d yet hash mismatch?!", maxK)
	}
	return fmt.Sprintf("vs k=%d: %v", maxK, out)
}

// readAll hashes every object in the store.
func readAll(st *eos.Store) (map[string]uint64, error) {
	out := map[string]uint64{}
	for _, name := range st.List() {
		o, err := st.Open(name)
		if err != nil {
			return nil, fmt.Errorf("open %q: %w", name, err)
		}
		var b []byte
		if sz := o.Size(); sz > 0 {
			if b, err = o.Read(0, sz); err != nil {
				return nil, fmt.Errorf("read %q: %w", name, err)
			}
		}
		out[name] = hashBytes(b)
	}
	return out, nil
}
