// Package atomicfield_clean holds consistent field access that
// atomicfield must accept without diagnostics.
package atomicfield_clean

import "sync/atomic"

type stats struct {
	hits int64 // always accessed via sync/atomic
	cold int64 // never accessed via sync/atomic
	typd atomic.Int64
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) snapshot() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) swapOut() int64 {
	return atomic.SwapInt64(&s.hits, 0)
}

func (s *stats) touchCold() {
	s.cold++
}

// Typed atomics enforce the discipline by construction; their methods
// are not the package-level functions and the field is never flagged.
func (s *stats) typed() int64 {
	s.typd.Add(1)
	return s.typd.Load()
}
