// Benchmarks regenerating every experiment of the reproduction (one
// testing.B target per experiment; see DESIGN.md §3 for the index and
// EXPERIMENTS.md for paper-vs-measured results), plus micro-benchmarks
// for the primitive operations.
package eos_test

import (
	"fmt"
	"testing"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/bench"
	"github.com/eosdb/eos/internal/disk"
)

func runExperiment(b *testing.B, id string) {
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1AmapLocate(b *testing.B)              { runExperiment(b, "e1") }
func BenchmarkE2AllocDirectoryIO(b *testing.B)        { runExperiment(b, "e2") }
func BenchmarkE3Figure4(b *testing.B)                 { runExperiment(b, "e3") }
func BenchmarkE4SearchFigure5Cost(b *testing.B)       { runExperiment(b, "e4") }
func BenchmarkE5UtilizationVsT(b *testing.B)          { runExperiment(b, "e5") }
func BenchmarkE6SeqReadAfterUpdates(b *testing.B)     { runExperiment(b, "e6") }
func BenchmarkE7Comparison(b *testing.B)              { runExperiment(b, "e7") }
func BenchmarkE8Fragmentation(b *testing.B)           { runExperiment(b, "e8") }
func BenchmarkE9Superdirectory(b *testing.B)          { runExperiment(b, "e9") }
func BenchmarkE10AdaptiveT(b *testing.B)              { runExperiment(b, "e10") }
func BenchmarkE11AppendGrowth(b *testing.B)           { runExperiment(b, "e11") }
func BenchmarkE12RecoveryOverhead(b *testing.B)       { runExperiment(b, "e12") }
func BenchmarkE13UpdateCostVsObjectSize(b *testing.B) { runExperiment(b, "e13") }
func BenchmarkE14ExodusLeafSizeTension(b *testing.B)  { runExperiment(b, "e14") }
func BenchmarkE15Compaction(b *testing.B)             { runExperiment(b, "e15") }
func BenchmarkE16ApplicationWorkloads(b *testing.B)   { runExperiment(b, "e16") }

// ---- micro-benchmarks on the public API ----

func benchStore(b *testing.B) *eos.Store {
	b.Helper()
	vol := disk.MustNewVolume(1024, 16384, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(1024, 4096, disk.DefaultCostModel())
	s, err := eos.Format(vol, logVol, eos.Options{Threshold: 8})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchObject(b *testing.B, s *eos.Store, size int) *eos.Object {
	b.Helper()
	o, err := s.Create(fmt.Sprintf("bench-%d", size), 0)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := o.AppendWithHint(data, int64(size)); err != nil {
		b.Fatal(err)
	}
	return o
}

func BenchmarkAppend4KB(b *testing.B) {
	s := benchStore(b)
	o, err := s.Create("append", 0)
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o.Size() > 8<<20 {
			b.StopTimer()
			if err := o.Truncate(0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := o.Append(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialRead1MB(b *testing.B) {
	s := benchStore(b)
	o := benchObject(b, s, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Read(0, o.Size()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomRead4KB(b *testing.B) {
	s := benchStore(b)
	o := benchObject(b, s, 1<<20)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64((i * 137791) % (1<<20 - 4096))
		if _, err := o.Read(off, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert1KBMiddle(b *testing.B) {
	s := benchStore(b)
	o := benchObject(b, s, 1<<20)
	data := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o.Size() > 8<<20 {
			b.StopTimer()
			if err := o.Truncate(1 << 20); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := o.Insert(o.Size()/2, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete1KBMiddle(b *testing.B) {
	s := benchStore(b)
	o := benchObject(b, s, 8<<20)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o.Size() < 1<<20 {
			b.StopTimer()
			data := make([]byte, 4<<20)
			if err := o.Append(data); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := o.Delete(o.Size()/2, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplace4KB(b *testing.B) {
	s := benchStore(b)
	o := benchObject(b, s, 1<<20)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64((i * 65537) % (1<<20 - 4096))
		if err := o.Replace(off, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxnCommit(b *testing.B) {
	s := benchStore(b)
	o := benchObject(b, s, 1<<20)
	_ = o
	data := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := s.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Replace("bench-1048576", 1000, data); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if i%64 == 0 {
			b.StopTimer()
			if err := s.Checkpoint(); err != nil { // keep the log bounded
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}
