// Package deadlock_clean holds interprocedural lock nesting the
// deadlock analyzer must stay silent on: downward chains, balanced
// release before the call, and per-instance latch nesting that only
// looks like re-acquisition.
package deadlock_clean

import "sync"

type Store struct{ mu sync.Mutex }

type catEntry struct{ latch sync.RWMutex }

type shard struct{ mu sync.Mutex }

type Log struct{ mu sync.Mutex }

// lockShard takes a pool-shard latch (rank 40) for its caller.
func lockShard(sh *shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
}

// lockShardIndirect adds a hop.
func lockShardIndirect(sh *shard) {
	lockShard(sh)
}

// downwardChain holds the store manager latch (rank 10) and reaches a
// pool-shard latch (rank 40) through a chain: strictly downward, fine.
func downwardChain(s *Store, sh *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lockShardIndirect(sh)
}

// releasedBeforeCall drops the shard latch before the chain that takes
// the manager latch: nothing is held at the call site.
func releasedBeforeCall(s *Store, sh *shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
	lockStore(s)
}

func lockStore(s *Store) {
	s.mu.Lock()
	s.mu.Unlock()
}

// latchEntry takes one object latch for its caller.
func latchEntry(e *catEntry) {
	e.latch.Lock()
	e.latch.Unlock()
}

// copyEntries holds the source entry's latch and latches the
// destination through a helper.  catEntry.latch is per-instance, not a
// singleton: two distinct entries may nest, and the analyzer must not
// call this a self-deadlock.
func copyEntries(src, dst *catEntry) {
	src.latch.Lock()
	defer src.latch.Unlock()
	latchEntry(dst)
}

// readTail holds the WAL latch shared and calls a read-only helper
// that acquires nothing.
func readTail(l *Log, sh *shard) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tailSize(l)
}

func tailSize(l *Log) int { return 0 }
