// Package deadlock_bad holds interprocedural lattice violations the
// deadlock analyzer must report: a rank inversion reachable only
// through a call chain, a same-rank cycle split across functions, and
// a singleton self-deadlock through a helper.  The stand-in types rank
// exactly like the engine's (matching is by type and field name).
package deadlock_bad

import "sync"

type Store struct{ mu sync.Mutex }

type Txn struct{ wmu sync.Mutex }

type deferredAlloc struct{ mu sync.Mutex }

type shard struct{ mu sync.Mutex }

type Log struct{ mu sync.Mutex }

// lockStore takes the store manager latch (rank 10) for its caller.
func lockStore(s *Store) {
	s.mu.Lock()
	s.mu.Unlock()
}

// lockManager adds a hop: the acquisition is two calls away from the
// inverting call site.
func lockManager(s *Store) {
	lockStore(s)
}

// invertViaChain holds a pool-shard latch (rank 40) and calls a chain
// that reaches down to the store manager latch (rank 10).
func invertViaChain(s *Store, sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lockManager(s) // want "interprocedural lock order inversion: call chain lockManager → lockStore acquires Store.mu"
}

// lockDeferred and lockWriteSet are the two halves of a same-rank
// cycle: Txn.wmu and deferredAlloc.mu share rank 30, so neither
// nesting inverts the lattice — but the opposite orders below deadlock
// against each other.
func lockDeferred(d *deferredAlloc) {
	d.mu.Lock()
	d.mu.Unlock()
}

func lockWriteSet(t *Txn) {
	t.wmu.Lock()
	t.wmu.Unlock()
}

// reserveThenDefer nests wmu → deferredAlloc.mu.
func reserveThenDefer(t *Txn, d *deferredAlloc) {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	lockDeferred(d) // want "deadlock cycle among same-rank locks: Txn.wmu → deferredAlloc.mu"
}

// freeThenReserve nests deferredAlloc.mu → wmu: the other half of the
// cycle.
func freeThenReserve(t *Txn, d *deferredAlloc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockWriteSet(t)
}

// appendRecord takes the WAL latch directly.
func appendRecord(l *Log) {
	l.mu.Lock()
	l.mu.Unlock()
}

// forceTail reaches appendRecord through one more hop.
func forceTail(l *Log) {
	appendRecord(l)
}

// flushHoldingLog already holds the WAL latch when the chain tries to
// take it again: Log.mu is a singleton, so this self-deadlocks.
func flushHoldingLog(l *Log) {
	l.mu.Lock()
	defer l.mu.Unlock()
	forceTail(l) // want "self-deadlock: call chain forceTail → appendRecord re-acquires Log.mu"
}
