// Package walfirst_clean holds transaction methods that log before
// mutating; walfirst must accept them without diagnostics.
package walfirst_clean

import (
	"lob"
	"wal"
)

type Txn struct {
	log *wal.Log
	obj *lob.Object
}

// AppendLogged is the canonical order: append the record, then mutate.
func (t *Txn) AppendLogged(b []byte) error {
	if _, err := t.log.Append(wal.Record{Type: 1, Payload: b}); err != nil {
		return err
	}
	return t.obj.Append(b)
}

// BranchesBothLogged logs on every path that reaches the mutation.
func (t *Txn) BranchesBothLogged(off int64, b []byte, replace bool) error {
	var rec wal.Record
	if replace {
		rec = wal.Record{Type: 2, Payload: b}
	} else {
		rec = wal.Record{Type: 1, Payload: b}
	}
	if _, err := t.log.Append(rec); err != nil {
		return err
	}
	if replace {
		return t.obj.Replace(off, b)
	}
	return t.obj.Append(b)
}

// ReadOnly never mutates, so nothing needs logging.
func (t *Txn) ReadOnly(off int64, b []byte) (int, error) {
	return t.obj.Read(off, b)
}

// Abort-style logical undo: the forward operations already logged
// every pre-image this replays, so the write-ahead rule is satisfied
// by the forward records.
//
//eoslint:ignore walfirst -- logical undo replays pre-images the forward ops logged
func (t *Txn) Abort() error {
	return t.obj.Truncate(0)
}

// helper has a different receiver type; walfirst only constrains the
// transaction layer (-recv=Txn).
type helper struct{ obj *lob.Object }

func (h *helper) rewrite(b []byte) error {
	return h.obj.Append(b)
}
