package eos_test

// Snapshot read-path benchmarks: what does the lock-free read mode buy
// under write pressure?
//
// BenchmarkSnapshotScanUnderWrites runs full sequential scans while an
// 8-goroutine Replace/Insert storm churns the same objects, comparing
//
//   - locked:   live latched reads (Object.ReadAt) — every chunk takes
//     the object's RW latch and queues behind writer latch holds.
//   - snapshot: lock-free reads through a captured committed root
//     (Store.OpenSnapshot) — no latch, no lock table; the epoch pin
//     keeps the captured tree's pages allocated.
//
// BenchmarkSnapshotScanIdle is the same snapshot scan with the storm
// stopped: the lock-free path's raw cost on this layout.  All modes
// share one store, pre-churned at setup until its segment layout
// saturates, so per-byte scan cost is comparable across them (the
// idle benchmark is defined first so a combined run measures it before
// the storm benchmarks churn further).
//
// All modes run in the volume's latency-simulation mode (mid-range
// disk cost model, queue depth 16), where blocking on a latch while
// its holder waits out write I/O is visible as lost throughput.  The
// model is deliberately slower than fastDiskModel: simulated waits are
// time.Sleep calls, and with sub-100µs latencies scheduler wake-up
// jitter is the same order as the signal being measured.
//
// Run with: go test -bench BenchmarkSnapshotScan -cpu=8 -benchtime=200x
//
// Keep benchtime well above the storm's per-op latency (~30 ms under
// contention): shorter runs finish before the writers reach their
// steady-state latch duty cycle and wildly understate the locked
// path's queueing penalty.

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

const (
	// 8 storm writers over 4 objects: two writers per object keep each
	// object's write latch contended continuously — when one releases,
	// the other is already queued — so a locked chunk read almost
	// always waits out a full shadowing op.
	snapObjects = 4
	snapObjSize = 256 << 10
	// snapChunk is the scan read granularity: scans advance one chunk
	// per ReadAt, and the locked path takes the object latch per chunk.
	// Chunks smaller than this make the comparison unfair in the other
	// direction — under the shared-head cost model every storm-time
	// chunk pays a fresh seek that an idle sequential chunk does not.
	snapChunk = 32 << 10
	// snapStormOp is the storm's insert/delete op size.  Each op holds
	// the object's write latch across its full shadowing I/O, so op
	// size sets the residual hold every locked chunk read waits out.
	snapStormOp = 224 << 10
)

// snapDiskModel approximates a mid-range disk: 1 ms seek, 40 µs/page
// transfer.  Latencies this size dwarf time.Sleep wake-up jitter, so
// the measured gap between locked and snapshot scans reflects latch
// queueing, not scheduler noise.
func snapDiskModel() disk.CostModel {
	return disk.CostModel{SeekMicros: 1000, RotationalMicros: 0, TransferMicrosPerPage: 40}
}

type snapBenchStore struct {
	vol  *disk.Volume
	s    *eos.Store
	objs []*eos.Object
}

var snapBench *snapBenchStore
var snapBenchMu sync.Mutex

// stormOp performs one storm step against o: an in-place replace or a
// size-preserving insert+delete pair (the object never shrinks below
// snapObjSize, so scans of exactly snapObjSize bytes always succeed).
func stormOp(rng *rand.Rand, o *eos.Object, buf []byte) error {
	off := int64(rng.Intn(snapObjSize - len(buf)))
	if rng.Intn(8) == 0 {
		return o.Replace(off, buf[:4<<10])
	}
	if err := o.Insert(off, buf); err != nil {
		return err
	}
	return o.Delete(off, int64(len(buf)))
}

// snapStoreFor builds (once) the shared store: snapObjects objects of
// snapObjSize bytes, then deterministic churn until the segment layout
// saturates, so later storm churn no longer shifts per-byte scan cost.
func snapStoreFor(b *testing.B) *snapBenchStore {
	b.Helper()
	snapBenchMu.Lock()
	defer snapBenchMu.Unlock()
	if snapBench != nil {
		return snapBench
	}
	vol := disk.MustNewVolume(parPage, 16384, snapDiskModel())
	logVol := disk.MustNewVolume(parPage, 1024, snapDiskModel())
	s, err := eos.Format(vol, logVol, eos.Options{Threshold: 8, PoolShards: 8})
	if err != nil {
		b.Fatal(err)
	}
	objs := make([]*eos.Object, snapObjects)
	for i := range objs {
		o, err := s.Create(fmt.Sprintf("snap-%d", i), 0)
		if err != nil {
			b.Fatal(err)
		}
		chunk := make([]byte, 32<<10)
		for off := 0; off < snapObjSize; off += len(chunk) {
			for j := range chunk {
				chunk[j] = byte(i + off + j)
			}
			if err := o.Append(chunk); err != nil {
				b.Fatal(err)
			}
		}
		objs[i] = o
	}
	// Pre-churn (latency off: this is setup) to fragmentation
	// saturation.
	buf := make([]byte, snapStormOp)
	for i, o := range objs {
		rng := rand.New(rand.NewSource(int64(i)))
		for n := 0; n < 300; n++ {
			if err := stormOp(rng, o, buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	snapBench = &snapBenchStore{vol: vol, s: s, objs: objs}
	return snapBench
}

// startStorm launches 8 writers running stormOp loops against every
// object, then sleeps briefly so the writers reach steady state before
// the caller starts timing.  Stop by closing the returned channel; the
// WaitGroup drains the writers.
func startStorm(b *testing.B, st *snapBenchStore) (chan struct{}, *sync.WaitGroup) {
	b.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			o := st.objs[w%len(st.objs)]
			buf := make([]byte, snapStormOp)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := stormOp(rng, o, buf); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	time.Sleep(200 * time.Millisecond)
	return stop, &wg
}

// benchSnapshotScan scans exactly snapObjSize bytes of a random object
// per iteration, each scan through a freshly captured snapshot.
func benchSnapshotScan(b *testing.B, st *snapBenchStore) {
	b.SetBytes(snapObjSize)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		buf := make([]byte, snapChunk)
		for pb.Next() {
			name := fmt.Sprintf("snap-%d", rng.Intn(len(st.objs)))
			sn, err := st.s.OpenSnapshot(name)
			if err != nil {
				b.Fatal(err)
			}
			for pos := int64(0); pos < snapObjSize; pos += int64(len(buf)) {
				if _, err := sn.ReadAt(buf, pos); err != nil && err != io.EOF {
					b.Fatal(err)
				}
			}
			if err := sn.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
}

// benchLockedScan is the same scan through live latched reads.
func benchLockedScan(b *testing.B, st *snapBenchStore) {
	b.SetBytes(snapObjSize)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		buf := make([]byte, snapChunk)
		for pb.Next() {
			o := st.objs[rng.Intn(len(st.objs))]
			for pos := int64(0); pos < snapObjSize; pos += int64(len(buf)) {
				if err := o.ReadAt(buf, pos); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.StopTimer()
}

func BenchmarkSnapshotScanIdle(b *testing.B) {
	st := snapStoreFor(b)
	st.vol.SetLatency(true, 16)
	defer st.vol.SetLatency(false, 0)
	benchSnapshotScan(b, st)
}

func BenchmarkSnapshotScanUnderWrites(b *testing.B) {
	st := snapStoreFor(b)
	b.Run("locked", func(b *testing.B) {
		st.vol.SetLatency(true, 16)
		defer st.vol.SetLatency(false, 0)
		stop, wg := startStorm(b, st)
		benchLockedScan(b, st)
		close(stop)
		wg.Wait()
	})
	b.Run("snapshot", func(b *testing.B) {
		st.vol.SetLatency(true, 16)
		defer st.vol.SetLatency(false, 0)
		stop, wg := startStorm(b, st)
		benchSnapshotScan(b, st)
		close(stop)
		wg.Wait()
	})
}
