package starburst

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

func newField(t testing.TB, pageSize, spaces, capacity int) (*LongField, *disk.Volume, *buddy.Manager) {
	t.Helper()
	vol := disk.MustNewVolume(pageSize, disk.PageNum(1+spaces*(capacity+1)), disk.DefaultCostModel())
	pool := buffer.MustNewPool(vol, 32)
	bm, err := buddy.FormatVolume(pool, vol, 1, spaces, capacity, true)
	if err != nil {
		t.Fatal(err)
	}
	return New(vol, bm), vol, bm
}

func pattern(seed, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(seed*37 + i)
	}
	return out
}

func TestAppendDoublingAndTrim(t *testing.T) {
	f, _, _ := newField(t, 100, 4, 256)
	// Unknown size: doubling growth, trimmed tail.
	if err := f.AppendWithHint(pattern(1, 1820), 0); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1820 {
		t.Fatalf("size = %d", f.Size())
	}
	got, err := f.Read(0, 1820)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(1, 1820)) {
		t.Error("content mismatch")
	}
	_, pages, _ := f.Usage()
	if pages != 19 {
		t.Errorf("data pages = %d, want 19 (trimmed)", pages)
	}
}

func TestKnownSizeUsesMaxSegments(t *testing.T) {
	f, _, _ := newField(t, 100, 4, 256)
	data := pattern(2, 20000) // 200 pages; max segment is 128
	if err := f.AppendWithHint(data, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if f.SegmentCount() != 2 {
		t.Errorf("segments = %d, want 2 (max-size then remainder)", f.SegmentCount())
	}
	got, _ := f.Read(0, int64(len(data)))
	if !bytes.Equal(got, data) {
		t.Error("content mismatch")
	}
}

func TestInsertCopiesTail(t *testing.T) {
	// §2: Starburst inserts copy all segments right of the update point.
	// The I/O for an insert near the start must scale with the object
	// size.
	var moved [2]int64
	for i, objBytes := range []int{10000, 40000} {
		f, vol, _ := newField(t, 100, 8, 256)
		if err := f.AppendWithHint(pattern(3, objBytes), int64(objBytes)); err != nil {
			t.Fatal(err)
		}
		vol.ResetStats()
		if err := f.Insert(100, pattern(4, 50)); err != nil {
			t.Fatal(err)
		}
		moved[i] = vol.Stats().PagesMoved()
	}
	if moved[1] < 3*moved[0] {
		t.Errorf("insert I/O: %d pages for 10 KB vs %d for 40 KB; want ~4x scaling", moved[0], moved[1])
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	f, _, bm := newField(t, 100, 16, 256)
	base, _ := bm.FreePages()
	var model []byte
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 200; op++ {
		switch k := rng.Intn(8); {
		case k < 3 && len(model) < 30000:
			data := pattern(op, 1+rng.Intn(400))
			if err := f.Append(data); err != nil {
				t.Fatalf("op %d append: %v", op, err)
			}
			model = append(model, data...)
		case k < 5 && len(model) < 30000:
			data := pattern(op, 1+rng.Intn(300))
			off := int64(rng.Intn(len(model) + 1))
			if err := f.Insert(off, data); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
		case k < 7 && len(model) > 0:
			n := int64(1 + rng.Intn(len(model)))
			off := int64(rng.Intn(len(model) - int(n) + 1))
			if err := f.Delete(off, n); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			model = append(model[:off:off], model[off+n:]...)
		case len(model) > 0:
			n := 1 + rng.Intn(min(len(model), 500))
			off := int64(rng.Intn(len(model) - n + 1))
			data := pattern(op, n)
			if err := f.Replace(off, data); err != nil {
				t.Fatalf("op %d replace: %v", op, err)
			}
			copy(model[off:], data)
		}
		if f.Size() != int64(len(model)) {
			t.Fatalf("op %d: size %d != %d", op, f.Size(), len(model))
		}
		if op%20 == 0 && len(model) > 0 {
			got, err := f.Read(0, int64(len(model)))
			if err != nil {
				t.Fatalf("op %d read: %v", op, err)
			}
			if !bytes.Equal(got, model) {
				t.Fatalf("op %d: content mismatch", op)
			}
		}
	}
	if err := f.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got, _ := bm.FreePages(); got != base {
		t.Errorf("free pages after destroy = %d, want %d", got, base)
	}
}

func TestBounds(t *testing.T) {
	f, _, _ := newField(t, 100, 2, 256)
	if err := f.Append(pattern(1, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(50, 51); err == nil {
		t.Error("overlong read accepted")
	}
	if err := f.Insert(101, []byte{1}); err == nil {
		t.Error("insert past end accepted")
	}
	if err := f.Delete(90, 11); err == nil {
		t.Error("overlong delete accepted")
	}
	if err := f.Replace(99, []byte{1, 2}); err == nil {
		t.Error("overlong replace accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
