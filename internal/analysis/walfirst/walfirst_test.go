package walfirst_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/walfirst"
)

func TestWalfirst(t *testing.T) {
	analyzertest.Run(t, "../testdata", walfirst.Analyzer, "walfirst_bad", "walfirst_clean")
}
