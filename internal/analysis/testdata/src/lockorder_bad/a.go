// Package lockorder_bad holds lattice inversions lockorder must
// report.  The lattice keys match by type and field name, so the
// stand-in types here rank exactly like the engine's.
package lockorder_bad

import "sync"

type Store struct{ mu sync.Mutex }

type catEntry struct{ latch sync.RWMutex }

type shard struct{ mu sync.Mutex }

type Log struct {
	forceMu sync.Mutex
	mu      sync.Mutex
}

type Pool struct{ flushMu sync.Mutex }

type Volume struct {
	mu    sync.Mutex
	accMu sync.Mutex
}

// invertedPair takes the pool shard before the store manager.
func invertedPair(s *Store, sh *shard) {
	sh.mu.Lock()
	s.mu.Lock() // want "lock order inversion: acquiring Store.mu \\(rank 10, manager\\) while holding shard.mu"
	s.mu.Unlock()
	sh.mu.Unlock()
}

// invertedUnderDefer holds the WAL latch to function exit via defer and
// then reaches down for an object latch.
func invertedUnderDefer(l *Log, e *catEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.latch.RLock() // want "lock order inversion: acquiring catEntry.latch"
	e.latch.RUnlock()
}

// invertedGroupCommit takes the log buffer mutex before the leader
// force mutex — the follower that did this while a leader flushed
// would deadlock the commit path.
func invertedGroupCommit(l *Log) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.forceMu.Lock() // want "lock order inversion: acquiring Log.forceMu"
	l.forceMu.Unlock()
}

// invertedFlush takes a shard mutex before the whole-pool flush mutex.
func invertedFlush(p *Pool, sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p.flushMu.Lock() // want "lock order inversion: acquiring Pool.flushMu"
	p.flushMu.Unlock()
}

// invertedWithinVolume takes the access-time accounting lock before the
// volume image lock.
func invertedWithinVolume(v *Volume) {
	v.accMu.Lock()
	defer v.accMu.Unlock()
	v.mu.Lock() // want "lock order inversion: acquiring Volume.mu"
	v.mu.Unlock()
}
