// Command eoslint runs the storage engine's custom static analyzers
// (pairs, lockorder, atomicfield, walfirst, errwrap, useafterunpin,
// guardedby, unusedignore) over Go packages.
//
// Usage:
//
//	go run ./cmd/eoslint ./...        # analyze packages (drives go vet)
//	go run ./cmd/eoslint -json ./...  # machine-readable diagnostics
//	eoslint help [analyzer]           # describe analyzers and flags
//
// The binary speaks the `go vet -vettool` unitchecker protocol
// (-V=full, -flags, unit.cfg); invoked with ordinary package patterns
// it re-executes itself through `go vet -vettool=<self>`, so one
// binary serves both as the driver and as the vet backend, and the
// analysis benefits from go vet's build cache and modular fact
// propagation.
//
// With -json, diagnostics are emitted in `go vet -json` format: one
// JSON object per package mapping package ID to analyzer name to a
// list of {posn, message} diagnostics.  Unlike plain `go vet -json`
// (which always exits 0), eoslint still exits 1 when any diagnostic
// was reported, so scripted callers need not parse the stream to learn
// whether the tree is clean.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	eosanalysis "github.com/eosdb/eos/internal/analysis"
)

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(eosanalysis.Analyzers()...) // does not return
	}

	jsonMode := false
	patterns := make([]string, 0, len(os.Args)-1)
	for _, a := range os.Args[1:] {
		if a == "-json" || a == "--json" {
			jsonMode = true
			continue
		}
		patterns = append(patterns, a)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "eoslint: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	args := []string{"vet", "-vettool=" + exe}
	if jsonMode {
		args = append(args, "-json")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	// go vet writes its -json stream (like its plain diagnostics) to
	// stderr; tee it so the exit code can reflect what was reported.
	var out bytes.Buffer
	if jsonMode {
		cmd.Stderr = io.MultiWriter(os.Stderr, &out)
	} else {
		cmd.Stderr = os.Stderr
	}
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "eoslint: %v\n", err)
		os.Exit(1)
	}
	if jsonMode && jsonHasDiagnostics(out.Bytes()) {
		os.Exit(1)
	}
}

// jsonHasDiagnostics reports whether a `go vet -json` stream contains
// any diagnostic.  The stream interleaves `# package` comment lines
// with JSON objects of the form
// {"pkgID": {"analyzer": [{"posn": ..., "message": ...}, ...]}}.
func jsonHasDiagnostics(stream []byte) bool {
	var clean []byte
	for _, line := range bytes.Split(stream, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean = append(clean, line...)
		clean = append(clean, '\n')
	}
	dec := json.NewDecoder(bytes.NewReader(clean))
	for {
		var unit map[string]map[string][]json.RawMessage
		if err := dec.Decode(&unit); err != nil {
			return false // end of stream or malformed tail: trust the exit code
		}
		for _, byAnalyzer := range unit {
			for _, diags := range byAnalyzer {
				if len(diags) > 0 {
					return true
				}
			}
		}
	}
}

// vetProtocol reports whether args look like a `go vet -vettool`
// invocation (or an explicit unitchecker request such as `help`)
// rather than package patterns.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || a == "help" ||
			strings.HasPrefix(a, "-V") || strings.HasPrefix(a, "-flags") {
			return true
		}
	}
	return false
}
