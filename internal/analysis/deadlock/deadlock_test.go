package deadlock_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/deadlock"
)

func TestDeadlock(t *testing.T) {
	analyzertest.Run(t, "../testdata", deadlock.Analyzer, "deadlock_bad", "deadlock_clean")
}
