package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testVolume(t *testing.T, pageSize int, numPages PageNum) *Volume {
	t.Helper()
	v, err := NewVolume(pageSize, numPages, DefaultCostModel())
	if err != nil {
		t.Fatalf("NewVolume: %v", err)
	}
	return v
}

func TestNewVolumeValidation(t *testing.T) {
	if _, err := NewVolume(0, 10, DefaultCostModel()); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := NewVolume(-4, 10, DefaultCostModel()); err == nil {
		t.Error("negative page size accepted")
	}
	if _, err := NewVolume(512, 0, DefaultCostModel()); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := NewVolume(512, -1, DefaultCostModel()); err == nil {
		t.Error("negative pages accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	v := testVolume(t, 128, 64)
	want := make([]byte, 3*128)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := v.WritePages(5, 3, want); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	got, err := v.Read(5, 3)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read data differs from written data")
	}
}

func TestRangeChecks(t *testing.T) {
	v := testVolume(t, 64, 8)
	buf := make([]byte, 64)
	cases := []struct {
		name  string
		start PageNum
		n     int
	}{
		{"negative start", -1, 1},
		{"past end", 8, 1},
		{"straddles end", 7, 2},
	}
	for _, c := range cases {
		if err := v.ReadPages(c.start, c.n, make([]byte, c.n*64)); err == nil {
			t.Errorf("read %s: no error", c.name)
		}
		if c.n == 1 {
			if err := v.WritePages(c.start, c.n, buf); err == nil {
				t.Errorf("write %s: no error", c.name)
			}
		}
	}
	if err := v.ReadPages(0, 2, buf); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestSeekAccountingSequentialVsRandom(t *testing.T) {
	v := testVolume(t, 64, 100)
	buf := make([]byte, 64)

	// Sequential scan: one seek for the whole pass.
	for p := PageNum(0); p < 50; p++ {
		if err := v.ReadPages(p, 1, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := v.Stats()
	if s.Seeks != 1 {
		t.Errorf("sequential scan: got %d seeks, want 1", s.Seeks)
	}
	if s.PagesRead != 50 {
		t.Errorf("sequential scan: got %d pages, want 50", s.PagesRead)
	}

	// Random probes: a seek each.
	v.ResetStats()
	probes := []PageNum{40, 3, 77, 12, 51}
	for _, p := range probes {
		if err := v.ReadPages(p, 1, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Stats().Seeks; got != int64(len(probes)) {
		t.Errorf("random probes: got %d seeks, want %d", got, len(probes))
	}
}

func TestMultiPageReadSingleSeek(t *testing.T) {
	v := testVolume(t, 64, 1024)
	v.ResetStats()
	if _, err := v.Read(100, 512); err != nil {
		t.Fatal(err)
	}
	s := v.Stats()
	if s.Seeks != 1 {
		t.Errorf("512-page contiguous read: %d seeks, want 1", s.Seeks)
	}
	if s.PagesRead != 512 {
		t.Errorf("pages read = %d, want 512", s.PagesRead)
	}
}

func TestCostModelCharging(t *testing.T) {
	m := CostModel{SeekMicros: 100, RotationalMicros: 10, TransferMicrosPerPage: 3}
	v, err := NewVolume(64, 16, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Read(0, 4); err != nil { // seek + 4 transfers
		t.Fatal(err)
	}
	if _, err := v.Read(4, 2); err != nil { // sequential: 2 transfers
		t.Fatal(err)
	}
	want := int64(100 + 10 + 4*3 + 2*3)
	if got := v.Stats().Micros; got != want {
		t.Errorf("modelled time = %dus, want %dus", got, want)
	}
}

func TestWriteThenCrashReverts(t *testing.T) {
	v := testVolume(t, 64, 8)
	one := bytes.Repeat([]byte{1}, 64)
	two := bytes.Repeat([]byte{2}, 64)

	if err := v.WritePages(3, 1, one); err != nil {
		t.Fatal(err)
	}
	if err := v.Force(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := v.WritePages(3, 1, two); err != nil {
		t.Fatal(err)
	}
	if err := v.WritePages(4, 1, two); err != nil {
		t.Fatal(err)
	}
	if got := v.DirtyPages(); got != 2 {
		t.Errorf("dirty pages = %d, want 2", got)
	}
	v.Crash()
	got, err := v.Read(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, one) {
		t.Error("page 3 did not revert to forced image")
	}
	got, err = v.Read(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Error("never-forced page 4 survived the crash")
	}
}

func TestForceAll(t *testing.T) {
	v := testVolume(t, 32, 8)
	payload := bytes.Repeat([]byte{9}, 32)
	for p := PageNum(0); p < 8; p++ {
		if err := v.WritePages(p, 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	v.ForceAll()
	if got := v.DirtyPages(); got != 0 {
		t.Errorf("dirty pages after ForceAll = %d, want 0", got)
	}
	v.Crash()
	for p := PageNum(0); p < 8; p++ {
		got, err := v.Read(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("page %d lost after ForceAll+Crash", p)
		}
	}
}

func TestStatsSubAndAccessors(t *testing.T) {
	a := Stats{Reads: 10, Writes: 4, PagesRead: 30, PagesWritten: 8, Seeks: 6, Micros: 1000}
	b := Stats{Reads: 4, Writes: 1, PagesRead: 10, PagesWritten: 2, Seeks: 2, Micros: 400}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 3 || d.PagesRead != 20 || d.PagesWritten != 6 || d.Seeks != 4 || d.Micros != 600 {
		t.Errorf("Sub = %+v", d)
	}
	if a.Accesses() != 14 {
		t.Errorf("Accesses = %d, want 14", a.Accesses())
	}
	if a.PagesMoved() != 38 {
		t.Errorf("PagesMoved = %d, want 38", a.PagesMoved())
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

// Property: any sequence of in-range writes followed by reads returns the
// last written value for every page.
func TestQuickWriteReadConsistency(t *testing.T) {
	const pages = 32
	const ps = 16
	f := func(ops []struct {
		Page uint8
		Val  byte
	}) bool {
		v := MustNewVolume(ps, pages, CostModel{})
		shadow := make(map[PageNum][]byte)
		for _, op := range ops {
			p := PageNum(op.Page % pages)
			buf := bytes.Repeat([]byte{op.Val}, ps)
			if err := v.WritePages(p, 1, buf); err != nil {
				return false
			}
			shadow[p] = buf
		}
		for p, want := range shadow {
			got, err := v.Read(p, 1)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: crash never surfaces data that was not forced, and always
// preserves data that was.
func TestQuickCrashDurability(t *testing.T) {
	const pages = 16
	const ps = 8
	f := func(ops []struct {
		Page  uint8
		Val   byte
		Force bool
	}) bool {
		v := MustNewVolume(ps, pages, CostModel{})
		durable := make(map[PageNum][]byte)
		for _, op := range ops {
			p := PageNum(op.Page % pages)
			buf := bytes.Repeat([]byte{op.Val}, ps)
			if err := v.WritePages(p, 1, buf); err != nil {
				return false
			}
			if op.Force {
				if err := v.Force(p, 1); err != nil {
					return false
				}
				durable[p] = buf
			}
		}
		v.Crash()
		for p := PageNum(0); p < pages; p++ {
			want, ok := durable[p]
			if !ok {
				want = make([]byte, ps)
			}
			got, err := v.Read(p, 1)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTracerObservesRequests(t *testing.T) {
	v := testVolume(t, 64, 64)
	var events []TraceEvent
	v.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	buf := make([]byte, 64)
	if err := v.WritePages(3, 1, buf); err != nil {
		t.Fatal(err)
	}
	if err := v.ReadPages(4, 1, buf); err != nil { // sequential: no seek
		t.Fatal(err)
	}
	if err := v.ReadPages(40, 1, buf); err != nil { // seek
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if !events[0].Write || !events[0].Seek || events[0].Start != 3 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Write || events[1].Seek {
		t.Errorf("event 1 = %+v (sequential read, no seek)", events[1])
	}
	if !events[2].Seek {
		t.Errorf("event 2 = %+v (random read, seek)", events[2])
	}
	v.SetTracer(nil)
	if err := v.ReadPages(0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Error("tracer fired after being removed")
	}
}

func TestWriteRunCoalescing(t *testing.T) {
	m := CostModel{SeekMicros: 100, RotationalMicros: 10, TransferMicrosPerPage: 3}
	v := MustNewVolume(64, 32, m)
	pages := make([][]byte, 4)
	for i := range pages {
		pages[i] = make([]byte, 64)
		for j := range pages[i] {
			pages[i][j] = byte(i + 1)
		}
	}
	if err := v.WriteRun(3, pages); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Writes != 1 || st.PagesWritten != 4 || st.RunWrites != 1 || st.CoalescedPages != 3 {
		t.Fatalf("run stats: %+v", st)
	}
	if st.Seeks != 1 {
		t.Fatalf("coalesced run cost %d seeks, want 1", st.Seeks)
	}
	got, err := v.Read(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got[i*64] != byte(i+1) {
			t.Fatalf("page %d holds %d, want %d", i, got[i*64], i+1)
		}
	}
	// Sub must difference the new counters too.
	if d := v.Stats().Sub(st); d.RunWrites != 0 || d.CoalescedPages != 0 {
		t.Fatalf("Sub missed run counters: %+v", d)
	}
}

func TestWriteRunValidation(t *testing.T) {
	v := MustNewVolume(64, 8, CostModel{})
	if err := v.WriteRun(0, [][]byte{make([]byte, 63)}); !errors.Is(err, ErrBadLength) {
		t.Fatalf("short page: got %v, want ErrBadLength", err)
	}
	if err := v.WriteRun(7, [][]byte{make([]byte, 64), make([]byte, 64)}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range run: got %v, want ErrOutOfRange", err)
	}
	if err := v.WriteRun(0, nil); err != nil {
		t.Fatalf("empty run: %v", err)
	}
}

func TestWriteRunVolatileUntilForce(t *testing.T) {
	v := MustNewVolume(64, 8, CostModel{})
	page := make([]byte, 64)
	page[0] = 0xAB
	if err := v.WriteRun(2, [][]byte{page}); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	got, err := v.Read(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("unforced WriteRun survived a crash")
	}
}
