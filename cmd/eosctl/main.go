// Command eosctl manages EOS stores persisted as volume-image files.
//
// Usage:
//
//	eosctl -store dir init [-pages N] [-pagesize N] [-threshold T]
//	eosctl -store dir ls
//	eosctl -store dir put <object>            # bytes from stdin
//	eosctl -store dir get <object>            # bytes to stdout
//	eosctl -store dir append <object>         # bytes from stdin
//	eosctl -store dir insert <object> <off>   # bytes from stdin
//	eosctl -store dir delete <object> <off> <n>
//	eosctl -store dir rm <object>
//	eosctl -store dir cp <src> <dst>
//	eosctl -store dir compact <object>
//	eosctl -store dir stat [object]
//	eosctl -store dir dump <object>           # physical segment map
//	eosctl -store dir fsck
//
// The store directory holds data.img and log.img.  Every command loads
// the images, performs the operation inside a transaction, checkpoints,
// and saves the images back.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

func main() {
	storeDir := flag.String("store", "", "store directory (holds data.img and log.img)")
	pages := flag.Int("pages", 65536, "init: data volume size in pages")
	pageSize := flag.Int("pagesize", 4096, "init: page size in bytes")
	threshold := flag.Int("threshold", 8, "init: default segment size threshold T")
	flag.Parse()

	if *storeDir == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	if err := run(*storeDir, cmd, args, *pages, *pageSize, *threshold); err != nil {
		fmt.Fprintf(os.Stderr, "eosctl: %v\n", err)
		os.Exit(1)
	}
}

func dataPath(dir string) string { return filepath.Join(dir, "data.img") }
func logPath(dir string) string  { return filepath.Join(dir, "log.img") }

func load(dir string) (*eos.Store, *disk.Volume, *disk.Volume, error) {
	vol, err := disk.LoadVolume(dataPath(dir), disk.DefaultCostModel())
	if err != nil {
		return nil, nil, nil, err
	}
	logVol, err := disk.LoadVolume(logPath(dir), disk.DefaultCostModel())
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := eos.Open(vol, logVol, eos.Options{})
	return s, vol, logVol, err
}

func save(dir string, s *eos.Store, vol, logVol *disk.Volume) error {
	if err := s.Checkpoint(); err != nil {
		return err
	}
	if err := vol.SaveFile(dataPath(dir)); err != nil {
		return err
	}
	return logVol.SaveFile(logPath(dir))
}

func run(dir, cmd string, args []string, pages, pageSize, threshold int) error {
	if cmd == "init" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		vol, err := disk.NewVolume(pageSize, disk.PageNum(pages), disk.DefaultCostModel())
		if err != nil {
			return err
		}
		logVol, err := disk.NewVolume(pageSize, disk.PageNum(pages/8+64), disk.DefaultCostModel())
		if err != nil {
			return err
		}
		s, err := eos.Format(vol, logVol, eos.Options{Threshold: threshold})
		if err != nil {
			return err
		}
		if err := save(dir, s, vol, logVol); err != nil {
			return err
		}
		free, _ := s.FreePages()
		fmt.Printf("initialized store: %d pages of %d bytes, %d free data pages\n", pages, pageSize, free)
		return nil
	}

	s, vol, logVol, err := load(dir)
	if err != nil {
		return err
	}

	switch cmd {
	case "ls":
		for _, name := range s.List() {
			o, err := s.Open(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-30s %12d bytes\n", name, o.Size())
		}
		return nil

	case "put":
		name, err := oneArg(args, "put <object>")
		if err != nil {
			return err
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		o, err := s.Create(name, 0)
		if err != nil {
			return err
		}
		if err := o.AppendWithHint(data, int64(len(data))); err != nil {
			return err
		}
		fmt.Printf("stored %q: %d bytes\n", name, len(data))
		return save(dir, s, vol, logVol)

	case "get":
		name, err := oneArg(args, "get <object>")
		if err != nil {
			return err
		}
		o, err := s.Open(name)
		if err != nil {
			return err
		}
		data, err := o.Read(0, o.Size())
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err

	case "append":
		name, err := oneArg(args, "append <object>")
		if err != nil {
			return err
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		o, err := s.Open(name)
		if err != nil {
			return err
		}
		if err := o.Append(data); err != nil {
			return err
		}
		fmt.Printf("appended %d bytes to %q (now %d)\n", len(data), name, o.Size())
		return save(dir, s, vol, logVol)

	case "insert":
		if len(args) != 2 {
			return fmt.Errorf("usage: insert <object> <offset>")
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		o, err := s.Open(args[0])
		if err != nil {
			return err
		}
		if err := o.Insert(off, data); err != nil {
			return err
		}
		fmt.Printf("inserted %d bytes at %d of %q (now %d)\n", len(data), off, args[0], o.Size())
		return save(dir, s, vol, logVol)

	case "delete":
		if len(args) != 3 {
			return fmt.Errorf("usage: delete <object> <offset> <n>")
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return err
		}
		o, err := s.Open(args[0])
		if err != nil {
			return err
		}
		if err := o.Delete(off, n); err != nil {
			return err
		}
		fmt.Printf("deleted %d bytes at %d of %q (now %d)\n", n, off, args[0], o.Size())
		return save(dir, s, vol, logVol)

	case "rm":
		name, err := oneArg(args, "rm <object>")
		if err != nil {
			return err
		}
		if err := s.Destroy(name); err != nil {
			return err
		}
		fmt.Printf("destroyed %q\n", name)
		return save(dir, s, vol, logVol)

	case "stat":
		if len(args) == 1 {
			o, err := s.Open(args[0])
			if err != nil {
				return err
			}
			u, err := o.Usage()
			if err != nil {
				return err
			}
			fmt.Printf("object %q\n", args[0])
			fmt.Printf("  size:          %d bytes\n", u.DataBytes)
			fmt.Printf("  segments:      %d (min %d, max %d pages)\n", u.SegmentCount, u.MinSegmentPgs, u.MaxSegmentPgs)
			fmt.Printf("  data pages:    %d\n", u.SegmentPages)
			fmt.Printf("  index pages:   %d (tree height %d)\n", u.IndexPages, u.TreeHeight)
			fmt.Printf("  utilization:   %.1f%%\n", u.Utilization(s.PageSize())*100)
			fmt.Printf("  threshold T:   %d pages\n", o.Threshold())
			return nil
		}
		free, err := s.FreePages()
		if err != nil {
			return err
		}
		fmt.Printf("store: page size %d, %d objects, %d free data pages, log %d bytes\n",
			s.PageSize(), len(s.List()), free, s.LogTail())
		return nil

	case "cp":
		if len(args) != 2 {
			return fmt.Errorf("usage: cp <src> <dst>")
		}
		if err := s.CopyObject(args[0], args[1]); err != nil {
			return err
		}
		fmt.Printf("copied %q to %q\n", args[0], args[1])
		return save(dir, s, vol, logVol)

	case "compact":
		name, err := oneArg(args, "compact <object>")
		if err != nil {
			return err
		}
		o, err := s.Open(name)
		if err != nil {
			return err
		}
		before, err := o.Usage()
		if err != nil {
			return err
		}
		if err := o.Compact(); err != nil {
			return err
		}
		after, err := o.Usage()
		if err != nil {
			return err
		}
		fmt.Printf("compacted %q: %d -> %d segments, %d -> %d index pages\n",
			name, before.SegmentCount, after.SegmentCount, before.IndexPages, after.IndexPages)
		return save(dir, s, vol, logVol)

	case "dump":
		name, err := oneArg(args, "dump <object>")
		if err != nil {
			return err
		}
		o, err := s.Open(name)
		if err != nil {
			return err
		}
		segs, err := o.Segments()
		if err != nil {
			return err
		}
		fmt.Printf("object %q: %d bytes in %d segments (page size %d)\n",
			name, o.Size(), len(segs), s.PageSize())
		fmt.Printf("  %-4s %12s %10s %12s %7s %s\n", "#", "logical off", "bytes", "start page", "pages", "fill")
		for i, sg := range segs {
			fill := float64(sg.Bytes) / (float64(sg.Pages) * float64(s.PageSize()))
			fmt.Printf("  %-4d %12d %10d %12d %7d %.1f%%\n",
				i, sg.LogicalOff, sg.Bytes, sg.StartPage, sg.Pages, fill*100)
		}
		return nil

	case "fsck":
		if err := s.Check(); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		if err := s.CheckNoLeaks(); err != nil {
			return fmt.Errorf("leak check failed: %w", err)
		}
		fmt.Println("buddy directories, object trees, page accounting: OK")
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func oneArg(args []string, usage string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: %s", usage)
	}
	return args[0], nil
}
