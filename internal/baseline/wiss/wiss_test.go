package wiss

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

func newObj(t testing.TB, pageSize, spaces, capacity int) (*Object, *disk.Volume, *buddy.Manager) {
	t.Helper()
	vol := disk.MustNewVolume(pageSize, disk.PageNum(1+spaces*(capacity+1)), disk.DefaultCostModel())
	pool := buffer.MustNewPool(vol, 32)
	bm, err := buddy.FormatVolume(pool, vol, 1, spaces, capacity, true)
	if err != nil {
		t.Fatal(err)
	}
	return New(vol, bm), vol, bm
}

func pattern(seed, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(seed*53 + i*3)
	}
	return out
}

func TestAppendReadRoundTrip(t *testing.T) {
	o, _, _ := newObj(t, 512, 4, 512)
	data := pattern(1, 1234)
	if err := o.Append(data); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(0, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content mismatch")
	}
}

func TestDirectoryCapacityEnforced(t *testing.T) {
	// §2: with one-page slices and a one-page directory, WiSS long items
	// have a hard ceiling (~1.6 MB at 4 KB pages; proportionally less
	// here).
	o, _, _ := newObj(t, 100, 16, 256)
	max := o.MaxBytes()
	if max != int64(o.MaxSlices())*100 {
		t.Fatalf("MaxBytes = %d", max)
	}
	if err := o.Append(pattern(2, int(max))); err != nil {
		t.Fatalf("filling to capacity: %v", err)
	}
	if err := o.Append([]byte{1}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("append past ceiling: err = %v, want ErrTooLarge", err)
	}
}

func TestSlicesAreHalfFull(t *testing.T) {
	o, _, _ := newObj(t, 512, 8, 512)
	rng := rand.New(rand.NewSource(1))
	var model []byte
	for i := 0; i < 40; i++ {
		data := pattern(i, 1+rng.Intn(150))
		off := int64(rng.Intn(len(model) + 1))
		if err := o.Insert(off, data); err != nil {
			t.Fatal(err)
		}
		model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
	}
	got, _ := o.Read(0, int64(len(model)))
	if !bytes.Equal(got, model) {
		t.Fatal("content mismatch")
	}
	// Utilization: data bytes over allocated pages must exceed 50%.
	dataBytes, pages, _ := o.Usage()
	util := float64(dataBytes) / float64(pages*512)
	if util < 0.5 {
		t.Errorf("utilization %.2f < 0.5", util)
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	o, _, bm := newObj(t, 512, 8, 512)
	base, _ := bm.FreePages()
	var model []byte
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 250; op++ {
		switch k := rng.Intn(8); {
		case k < 3 && len(model) < 15000:
			data := pattern(op, 1+rng.Intn(250))
			off := int64(rng.Intn(len(model) + 1))
			if err := o.Insert(off, data); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
		case k < 5 && len(model) > 0:
			n := int64(1 + rng.Intn(len(model)))
			off := int64(rng.Intn(len(model) - int(n) + 1))
			if err := o.Delete(off, n); err != nil {
				t.Fatalf("op %d delete(%d,%d): %v", op, off, n, err)
			}
			model = append(model[:off:off], model[off+n:]...)
		case k < 6 && len(model) > 0:
			n := 1 + rng.Intn(min(len(model), 300))
			off := int64(rng.Intn(len(model) - n + 1))
			data := pattern(op, n)
			if err := o.Replace(off, data); err != nil {
				t.Fatalf("op %d replace: %v", op, err)
			}
			copy(model[off:], data)
		case len(model) > 0:
			n := 1 + rng.Intn(len(model))
			off := int64(rng.Intn(len(model) - n + 1))
			got, err := o.Read(off, int64(n))
			if err != nil {
				t.Fatalf("op %d read: %v", op, err)
			}
			if !bytes.Equal(got, model[off:off+int64(n)]) {
				t.Fatalf("op %d: read mismatch", op)
			}
		}
		if o.Size() != int64(len(model)) {
			t.Fatalf("op %d: size %d != %d", op, o.Size(), len(model))
		}
	}
	if len(model) > 0 {
		got, _ := o.Read(0, int64(len(model)))
		if !bytes.Equal(got, model) {
			t.Fatal("final content mismatch")
		}
	}
	if err := o.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got, _ := bm.FreePages(); got != base {
		t.Errorf("free pages after destroy = %d, want %d", got, base)
	}
}

func TestScatteredSlicesCostSeeks(t *testing.T) {
	// §2: consecutive byte ranges scatter over the volume, so sequential
	// scans seek per slice.
	o, vol, _ := newObj(t, 512, 8, 512)
	var model []byte
	// Interleaved inserts force slice splits and scatter.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		data := pattern(i, 120)
		off := int64(rng.Intn(len(model) + 1))
		if err := o.Insert(off, data); err != nil {
			t.Fatal(err)
		}
		model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
	}
	vol.ResetStats()
	if _, err := o.Read(0, o.Size()); err != nil {
		t.Fatal(err)
	}
	s := vol.Stats()
	if s.Seeks < int64(o.SliceCount())/2 {
		t.Errorf("sequential read: %d seeks over %d slices; expected roughly one per slice", s.Seeks, o.SliceCount())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
