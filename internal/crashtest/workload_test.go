package crashtest

import (
	"testing"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

// TestWorkloadModelMatchesStore validates the oracle bookkeeping: after
// the traced workload, the live store's committed content must equal
// the final oracle state exactly.  (The in-flight loser mutates the
// live store after the last mark, so only the pre-loser content is
// comparable; we reproduce the workload with zero loser ops by reading
// before it starts — here simply by comparing against the last commit
// mark after a clean recovery of the full clean-prefix state.)
func TestWorkloadModelMatchesStore(t *testing.T) {
	clock := &Clock{}
	dataDev := NewDevice(disk.MustNewVolume(512, 4096, disk.DefaultCostModel()), clock, 0)
	logDev := NewDevice(disk.MustNewVolume(512, 1024, disk.DefaultCostModel()), clock, 1)
	st, err := eos.Format(dataDev, logDev, eos.Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := RunWorkload(st, clock, WorkloadConfig{Seed: 42, Txns: 30, NoLoser: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Commits) == 0 {
		t.Fatal("no commits recorded")
	}
	got, err := readAll(st)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Commits[len(oracle.Commits)-1].State
	if mapsEqual(got, want) {
		return
	}
	t.Logf("live store:         %v", got)
	t.Logf("final oracle state: %v", want)
	t.Errorf("model diverges from store")
}
