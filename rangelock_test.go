package eos

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/eosdb/eos/internal/disk"
)

func rangeStore(t *testing.T) *Store {
	t.Helper()
	s, _, _ := newStore(t, Options{RangeLocking: true, LockTimeout: 150 * time.Millisecond})
	return s
}

func TestRangeLockDisjointReplacesConcurrent(t *testing.T) {
	s := rangeStore(t)
	o, _ := s.Create("doc", 0)
	base := pat(80, 10000)
	if err := o.Append(base); err != nil {
		t.Fatal(err)
	}
	t1, _ := s.Begin()
	t2, _ := s.Begin()
	if err := t1.Replace("doc", 0, pat(81, 100)); err != nil {
		t.Fatal(err)
	}
	// Disjoint range: must not block.
	if err := t2.Replace("doc", 5000, pat(82, 100)); err != nil {
		t.Fatalf("disjoint replace blocked: %v", err)
	}
	// Overlapping range: must block (timeout).
	if err := t2.Replace("doc", 50, pat(83, 10)); err == nil {
		t.Fatal("overlapping replace did not block")
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, base...)
	copy(want[0:], pat(81, 100))
	copy(want[5000:], pat(82, 100))
	got, _ := o.Read(0, o.Size())
	if !bytes.Equal(got, want) {
		t.Error("content mismatch after concurrent replaces")
	}
}

func TestRangeLockReadersShareWithPrefixReads(t *testing.T) {
	s := rangeStore(t)
	o, _ := s.Create("doc", 0)
	if err := o.Append(pat(84, 10000)); err != nil {
		t.Fatal(err)
	}
	t1, _ := s.Begin()
	t2, _ := s.Begin()
	if _, err := t1.Read("doc", 0, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("doc", 500, 1000); err != nil {
		t.Fatalf("overlapping shared reads blocked: %v", err)
	}
	// A replace overlapping a read range blocks.
	t3, _ := s.Begin()
	if err := t3.Replace("doc", 800, pat(85, 10)); err == nil {
		t.Error("replace over read-locked range did not block")
	}
	t1.Abort()
	t2.Abort()
	t3.Abort()
}

func TestRangeLockStructuralLocksSuffix(t *testing.T) {
	s := rangeStore(t)
	o, _ := s.Create("doc", 0)
	if err := o.Append(pat(86, 10000)); err != nil {
		t.Fatal(err)
	}
	t1, _ := s.Begin()
	if err := t1.Insert("doc", 6000, pat(87, 100)); err != nil {
		t.Fatal(err)
	}
	t2, _ := s.Begin()
	// Below the insertion point: unaffected by the shift, allowed.
	if err := t2.Replace("doc", 1000, pat(88, 50)); err != nil {
		t.Fatalf("replace below structural offset blocked: %v", err)
	}
	if _, err := t2.Read("doc", 0, 500); err != nil {
		t.Fatalf("read below structural offset blocked: %v", err)
	}
	// At/after the insertion point: blocked.
	if _, err := t2.Read("doc", 6500, 10); err == nil {
		t.Error("read past structural offset did not block")
	}
	if err := t2.Insert("doc", 9000, pat(89, 10)); err == nil {
		t.Error("second structural op did not block")
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeLockConcurrentThroughput(t *testing.T) {
	// Many goroutines replacing disjoint stripes of one object commit
	// concurrently and correctly.
	s, _, _ := newStore(t, Options{RangeLocking: true, LockTimeout: 5 * time.Second})
	o, _ := s.Create("stripes", 0)
	const stripes = 8
	const stripeLen = 1000
	if err := o.Append(make([]byte, stripes*stripeLen)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < stripes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				tx, err := s.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Replace("stripes", int64(i*stripeLen), pat(i*10+round, stripeLen)); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < stripes; i++ {
		got, err := o.Read(int64(i*stripeLen), stripeLen)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pat(i*10+4, stripeLen)) {
			t.Errorf("stripe %d holds wrong final round", i)
		}
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeLockLoserReplaceStillUndone(t *testing.T) {
	// The physical-undo path works under range locking too.
	vol := disk.MustNewVolume(512, 4096, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(512, 1024, disk.DefaultCostModel())
	s, err := Format(vol, logVol, Options{RangeLocking: true})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := s.Create("v", 0)
	base := pat(90, 6000)
	if err := o.Append(base); err != nil {
		t.Fatal(err)
	}
	ob, _ := s.Create("w", 0)
	if err := ob.Append(pat(91, 500)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	loser, _ := s.Begin()
	if err := loser.Replace("v", 2000, pat(92, 300)); err != nil {
		t.Fatal(err)
	}
	winner, _ := s.Begin()
	if err := winner.Replace("w", 0, pat(93, 100)); err != nil {
		t.Fatal(err)
	}
	if err := winner.Commit(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{RangeLocking: true})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s2.Open("v")
	got, _ := v.Read(0, v.Size())
	if !bytes.Equal(got, base) {
		t.Error("loser replace survived under range locking")
	}
}
