package pinpair_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/pinpair"
)

func TestPinpair(t *testing.T) {
	analyzertest.Run(t, "../testdata", pinpair.Analyzer, "pinpair_bad", "pinpair_clean")
}
