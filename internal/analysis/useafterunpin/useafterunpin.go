// Package useafterunpin defines an Analyzer that reports uses of a
// pinned page image after the pin is released.
//
// buffer.Pool.Fix and FixNew return the frame's byte slice directly —
// a pointer into the buffer pool, valid only while the frame's pin
// count holds it in memory.  After Unpin or Discard the frame may be
// evicted, reused for another page, or concurrently rewritten by the
// next fixer; reading through the old slice returns another page's
// bytes and writing through it corrupts an unrelated page.  This is
// the static form of the torn-page class of bugs: the dynamic variant
// (write-back racing a mutator) was fixed by hand once, and this
// analyzer keeps the pattern out of the tree.
//
// The analyzer tracks the slice variable assigned from each Fix/FixNew
// call through the function's control-flow graph.  From every
// non-deferred Unpin/Discard of the same page expression, any
// reachable use of the variable is reported: a read or write, a
// return, or a capture by a function literal (a goroutine or closure
// may run after the pin is gone even when it is created before).
// Reassigning the variable — including re-fixing the page into it —
// ends tracking on that path.
//
// The analysis is lexical about the page identity (the same expression
// text must be passed to Fix and Unpin, as in the engine's code) and
// intra-procedural: a helper that unpins for you hides the release
// and is not treated as one.  Deferred releases run at function exit,
// so body uses after a defer statement are fine.
package useafterunpin

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/eosdb/eos/internal/analysis/eosutil"
	"github.com/eosdb/eos/internal/analysis/ignore"
)

const doc = `report uses of a pinned page image after Unpin/Discard

Fix and FixNew return a slice aliasing the buffer frame; once the page
is unpinned the frame may be evicted or handed to another page, so any
later read, write, return, or closure capture of the slice touches
memory the pool no longer guarantees.  Tracking is per control-flow
path: a use is reported only when a release reaches it.`

// Analyzer is the useafterunpin analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "useafterunpin",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer, ignore.Analyzer},
	Run:      run,
}

// pinSite is one Fix/FixNew call whose slice result is tracked.
type pinSite struct {
	call   *ast.CallExpr
	method string
	img    types.Object // the slice variable
	page   string       // expression string of the page argument
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ig := ignore.For(pass)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return
		}
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			body = fn.Body
			g = cfgs.FuncDecl(fn)
		case *ast.FuncLit:
			body = fn.Body
			g = cfgs.FuncLit(fn)
		}
		if g == nil {
			return
		}
		for _, s := range collectSites(pass, body) {
			checkSite(pass, ig, g, s)
		}
	})
	return nil, nil
}

// collectSites finds the Fix/FixNew assignments lexically inside body
// (not inside nested function literals) whose slice result is named.
func collectSites(pass *analysis.Pass, body *ast.BlockStmt) []*pinSite {
	var sites []*pinSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		method, ok := eosutil.IsMethodCall(pass.TypesInfo, call, "buffer", "Pool", "Fix", "FixNew")
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		sites = append(sites, &pinSite{
			call:   call,
			method: method,
			img:    obj,
			page:   types.ExprString(call.Args[0]),
		})
		return true
	})
	return sites
}

// checkSite walks forward from every release of s's page and reports
// the first reachable use of the image variable on each path.
func checkSite(pass *analysis.Pass, ig *ignore.Reporter, g *cfg.CFG, s *pinSite) {
	reported := make(map[token]bool)
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for i, n := range b.Nodes {
			rel, ok := releaseOf(pass, n, s)
			if !ok {
				continue
			}
			seen := make(map[*cfg.Block]bool)
			walkAfter(pass, ig, b, i+1, s, rel, seen, reported)
		}
	}
}

type token struct{ pos, rel int }

// releaseOf reports whether CFG node n non-deferredly releases s's
// page, returning the release method name.
func releaseOf(pass *analysis.Pass, n ast.Node, s *pinSite) (string, bool) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return "", false
	}
	var rel string
	ast.Inspect(n, func(m ast.Node) bool {
		if rel != "" {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		method, ok := eosutil.IsMethodCall(pass.TypesInfo, call, "buffer", "Pool", "Unpin", "Discard")
		if ok && types.ExprString(call.Args[0]) == s.page {
			rel = method
			return false
		}
		return true
	})
	return rel, rel != ""
}

// walkAfter scans nodes from (b, from) onward; the first use of the
// image on each path is reported and the path is cut (a reassignment
// also cuts it).
func walkAfter(pass *analysis.Pass, ig *ignore.Reporter, b *cfg.Block, from int, s *pinSite, rel string, seen map[*cfg.Block]bool, reported map[token]bool) {
	for i := from; i < len(b.Nodes); i++ {
		switch use, kind := useIn(pass, b.Nodes[i], s); {
		case use != nil:
			key := token{int(use.Pos()), int(s.call.Pos())}
			if !reported[key] {
				reported[key] = true
				ig.Report(use.Pos(),
					"page image %q %s after %s(%s); the unpinned frame may be evicted or rewritten",
					s.img.Name(), kind, rel, s.page)
			}
			return
		case kind == killed:
			return
		}
	}
	for _, succ := range b.Succs {
		if seen[succ] {
			continue
		}
		seen[succ] = true
		walkAfter(pass, ig, succ, 0, s, rel, seen, reported)
	}
}

const (
	used     = "used"
	returned = "returned"
	captured = "captured by a function literal"
	killed   = "\x00killed"
)

// useIn looks for a use of s.img inside CFG node n.  It returns the
// using identifier and how it is used, or kind == killed when n
// reassigns the variable (ending the image's association with the
// frame).
func useIn(pass *analysis.Pass, n ast.Node, s *pinSite) (*ast.Ident, string) {
	// Reassignment check first: a plain `img = ...` or a fresh
	// `img, err := pool.Fix(...)` ends tracking, but any use of img
	// elsewhere in the same statement (RHS, or an index expression on
	// the LHS) is still a use.
	reassigned := false
	var use *ast.Ident
	kind := used
	mark := func(root ast.Node, k string) {
		ast.Inspect(root, func(m ast.Node) bool {
			if use != nil {
				return false
			}
			if lit, ok := m.(*ast.FuncLit); ok {
				// A capture: the literal may outlive the pin.
				ast.Inspect(lit.Body, func(in ast.Node) bool {
					if use != nil {
						return false
					}
					if id, ok := in.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == s.img {
						use, kind = id, captured
					}
					return use == nil
				})
				return false
			}
			if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == s.img {
				use, kind = id, k
			}
			return use == nil
		})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if pass.TypesInfo.ObjectOf(id) == s.img {
					reassigned = true
				}
				continue
			}
			mark(lhs, used) // img[0] = x is a write through the image
		}
		for _, rhs := range n.Rhs {
			mark(rhs, used)
		}
	case *ast.ReturnStmt:
		mark(n, returned)
	default:
		mark(n, used)
	}
	if use != nil {
		return use, kind
	}
	if reassigned {
		return nil, killed
	}
	return nil, ""
}
