// Package analysis collects the eoslint analyzer suite: the custom
// go/analysis checkers that machine-enforce the storage engine's
// concurrency and recovery invariants (acquire/release pairing, latch
// order, guarded-field locking, pin lifetimes, atomics discipline,
// the §4.5 write-ahead rule, and error wrapping), their whole-program
// extensions built on the internal ssa facility (deadlock, walfirstip,
// leaksip, forcedom, racecheck — interprocedural latch-lattice
// verification, cross-function write-ahead dominance, context-sensitive
// resource-leak propagation, §8.1 force-ordering dominance, and the
// Eraser lockset rule), plus the audit that keeps the //eoslint:ignore
// exception inventory honest.
//
// The suite runs under `go vet` via cmd/eoslint and in CI via
// scripts/lint.sh; see the "Static analysis" section of README.md and
// DESIGN.md §7 for the analyzer-to-invariant mapping.
package analysis

import (
	goanalysis "golang.org/x/tools/go/analysis"

	"github.com/eosdb/eos/internal/analysis/atomicfield"
	"github.com/eosdb/eos/internal/analysis/deadlock"
	"github.com/eosdb/eos/internal/analysis/errwrap"
	"github.com/eosdb/eos/internal/analysis/forcedom"
	"github.com/eosdb/eos/internal/analysis/guardedby"
	"github.com/eosdb/eos/internal/analysis/leaksip"
	"github.com/eosdb/eos/internal/analysis/lockorder"
	"github.com/eosdb/eos/internal/analysis/pairs"
	"github.com/eosdb/eos/internal/analysis/racecheck"
	"github.com/eosdb/eos/internal/analysis/unusedignore"
	"github.com/eosdb/eos/internal/analysis/useafterunpin"
	"github.com/eosdb/eos/internal/analysis/walfirst"
	"github.com/eosdb/eos/internal/analysis/walfirstip"
)

// Analyzers returns the eoslint suite.  unusedignore must come after
// the checkers it audits only in the sense of the Requires graph; the
// driver orders execution by that graph, not by this slice.
func Analyzers() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		pairs.Analyzer,
		lockorder.Analyzer,
		atomicfield.Analyzer,
		walfirst.Analyzer,
		errwrap.Analyzer,
		useafterunpin.Analyzer,
		guardedby.Analyzer,
		deadlock.Analyzer,
		walfirstip.Analyzer,
		leaksip.Analyzer,
		forcedom.Analyzer,
		racecheck.Analyzer,
		unusedignore.Analyzer,
	}
}
