// Package pairs_iosubmit_clean holds correct dispatcher-batch usage
// the pairs analyzer must accept without diagnostics.
package pairs_iosubmit_clean

import "disk"

// submitThenWait pairs the submit with a wait on the fallthrough path.
func submitThenWait(b *disk.Batch, sqe disk.SQE) error {
	if err := b.Submit(sqe); err != nil {
		return err
	}
	_, _ = b.Wait()
	return nil
}

// waitsViaDefer covers every exit — including the mid-loop submit
// failure, where earlier requests are still in flight — with one
// deferred Wait.
func waitsViaDefer(d *disk.Dispatcher, sqes []disk.SQE) error {
	b := d.NewBatch()
	defer b.Wait()
	for _, sqe := range sqes {
		if err := b.Submit(sqe); err != nil {
			return err
		}
	}
	return nil
}

// drain is a releasing helper: it waits out the batch it receives.
func drain(b *disk.Batch) { _, _ = b.Wait() }

// waitsThroughHelper releases through drain; the ReleasesFact makes
// the call count as the batch's Wait.
func waitsThroughHelper(b *disk.Batch, sqe disk.SQE) error {
	if err := b.Submit(sqe); err != nil {
		return err
	}
	drain(b)
	return nil
}
