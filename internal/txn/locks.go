// Package txn provides the transactional substrate for EOS: a lock
// manager with object and byte-range granularities (§4.5: "Concurrency
// can be handled either by locking the root of the large object or, for
// finer granularity, the byte range affected by each operation"), and a
// deferred-free allocator wrapper implementing the effect of Starburst's
// hierarchical release locks — segments freed by a transaction stay
// unavailable for reallocation until the transaction commits.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Lock modes.
type Mode uint8

const (
	// Shared permits concurrent readers.
	Shared Mode = iota + 1
	// Exclusive permits a single writer.
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// ErrLockTimeout is returned when a lock cannot be granted within the
// table's timeout — the simple deadlock resolution strategy.
var ErrLockTimeout = errors.New("txn: lock wait timeout (possible deadlock)")

// rangeReq is one granted or waiting byte-range lock.
type rangeReq struct {
	txn     uint64
	mode    Mode
	lo, hi  int64 // [lo, hi); whole-object locks use [0, 1<<62)
	granted bool
}

// MaxRange is the exclusive upper bound used for whole-object and
// suffix locks: a lock on [off, MaxRange) covers every byte an operation
// at off can shift.
const MaxRange = int64(1) << 62

const wholeHi = MaxRange

type objQueue struct {
	reqs []*rangeReq
}

// LockTable grants object-root and byte-range locks with strict
// two-phase semantics (callers release only at commit or abort).
type LockTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	objects map[uint64]*objQueue // eos:guardedby mu
	timeout time.Duration
}

// NewLockTable creates a table whose waits time out after timeout
// (resolving deadlocks by aborting the waiter).
func NewLockTable(timeout time.Duration) *LockTable {
	t := &LockTable{objects: make(map[uint64]*objQueue), timeout: timeout}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func overlap(a, b *rangeReq) bool {
	return a.lo < b.hi && b.lo < a.hi
}

func conflicts(a, b *rangeReq) bool {
	if a.txn == b.txn {
		return false
	}
	if !overlap(a, b) {
		return false
	}
	return a.mode == Exclusive || b.mode == Exclusive
}

// LockObject acquires a lock on the whole object.
func (t *LockTable) LockObject(txn, obj uint64, mode Mode) error {
	return t.LockRange(txn, obj, mode, 0, wholeHi)
}

// LockRange acquires a lock on bytes [lo, hi) of the object.  Waiters
// queue FIFO behind conflicting granted or earlier-waiting requests.
func (t *LockTable) LockRange(txn, obj uint64, mode Mode, lo, hi int64) error {
	if lo < 0 || hi <= lo {
		return fmt.Errorf("txn: invalid lock range [%d,%d)", lo, hi)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	q := t.objects[obj]
	if q == nil {
		q = &objQueue{}
		t.objects[obj] = q
	}
	// Re-entrant upgrade-friendly check: an identical or stronger lock by
	// the same transaction is a no-op.
	for _, r := range q.reqs {
		if r.granted && r.txn == txn && r.lo <= lo && hi <= r.hi &&
			(r.mode == Exclusive || r.mode == mode) {
			return nil
		}
	}
	req := &rangeReq{txn: txn, mode: mode, lo: lo, hi: hi}
	q.reqs = append(q.reqs, req)

	deadline := time.Now().Add(t.timeout)
	for {
		if t.grantableLocked(q, req) {
			req.granted = true
			return nil
		}
		if time.Now().After(deadline) {
			t.removeLocked(q, req)
			return fmt.Errorf("%w: txn %d on object %d [%d,%d)", ErrLockTimeout, txn, obj, lo, hi)
		}
		t.waitLocked(deadline)
	}
}

// grantableLocked reports whether req conflicts with any granted request
// or any earlier waiter (to prevent starvation).
func (t *LockTable) grantableLocked(q *objQueue, req *rangeReq) bool {
	for _, r := range q.reqs {
		if r == req {
			break
		}
		// Block behind any earlier conflicting request, granted or
		// waiting — FIFO ordering prevents writer starvation.
		if conflicts(r, req) {
			return false
		}
	}
	return true
}

// waitLocked waits for a release or the deadline, whichever first.
func (t *LockTable) waitLocked(deadline time.Time) {
	done := make(chan struct{})
	go func() {
		select {
		case <-time.After(time.Until(deadline)):
			t.cond.Broadcast()
		case <-done:
		}
	}()
	t.cond.Wait()
	close(done)
}

func (t *LockTable) removeLocked(q *objQueue, req *rangeReq) {
	for i, r := range q.reqs {
		if r == req {
			q.reqs = append(q.reqs[:i], q.reqs[i+1:]...)
			break
		}
	}
}

// ReleaseAll drops every lock held or awaited by txn (commit or abort).
func (t *LockTable) ReleaseAll(txn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for obj, q := range t.objects {
		kept := q.reqs[:0]
		for _, r := range q.reqs {
			if r.txn != txn {
				kept = append(kept, r)
			}
		}
		q.reqs = kept
		if len(q.reqs) == 0 {
			delete(t.objects, obj)
		}
	}
	t.cond.Broadcast()
}

// Held reports how many locks txn currently holds.
func (t *LockTable) Held(txn uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, q := range t.objects {
		for _, r := range q.reqs {
			if r.txn == txn && r.granted {
				n++
			}
		}
	}
	return n
}
