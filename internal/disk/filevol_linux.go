//go:build linux

package disk

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
	"unsafe"
)

// iovMax bounds the iovec count per pwritev call (UIO_MAXIOV).
const iovMax = 1024

// openFileVolume opens path, adding O_DIRECT when direct is set.
func openFileVolume(path string, flag int, direct bool) (*os.File, error) {
	if direct {
		flag |= syscall.O_DIRECT
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	return f, nil
}

// fdatasyncFile flushes f's data (not unchanged metadata) to stable
// storage.
func fdatasyncFile(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if !errors.Is(err, syscall.EINTR) {
			return err
		}
	}
}

// pwritevFull gather-writes bufs at offset off with pwritev(2),
// batching at most iovMax vectors per call and resuming after short
// writes until every byte is down or an error surfaces.
func pwritevFull(f *os.File, bufs [][]byte, off int64) error {
	fd := f.Fd()
	for len(bufs) > 0 {
		batch := bufs
		if len(batch) > iovMax {
			batch = batch[:iovMax]
		}
		iovs := make([]syscall.Iovec, 0, len(batch))
		var want int64
		for _, b := range batch {
			if len(b) == 0 {
				continue
			}
			iov := syscall.Iovec{Base: &b[0]}
			iov.SetLen(len(b))
			iovs = append(iovs, iov)
			want += int64(len(b))
		}
		if len(iovs) == 0 {
			bufs = bufs[len(batch):]
			continue
		}
		n, err := pwritev(fd, iovs, off)
		if errors.Is(err, syscall.EINTR) {
			continue
		}
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrShortWrite
		}
		off += int64(n)
		if int64(n) == want {
			bufs = bufs[len(batch):]
			continue
		}
		// Short write: drop fully-written vectors, trim the partial
		// one, retry from the new offset.
		rem := n
		trimmed := append([][]byte(nil), batch...)
		for len(trimmed) > 0 && rem >= len(trimmed[0]) {
			rem -= len(trimmed[0])
			trimmed = trimmed[1:]
		}
		if len(trimmed) > 0 && rem > 0 {
			trimmed[0] = trimmed[0][rem:]
		}
		bufs = append(trimmed, bufs[len(batch):]...)
	}
	return nil
}

// pwritev wraps the raw system call; the offset is split into the
// lo/hi register pair the kernel ABI expects (hi is zero for the
// non-negative offsets a volume produces, computed branch-free the way
// x/sys does).
func pwritev(fd uintptr, iovs []syscall.Iovec, off int64) (int, error) {
	const ptrBits = 8 * unsafe.Sizeof(uintptr(0))
	lo := uintptr(off)
	// Two-step shift keeps the 64-bit case (shift by 64) legal: 0 on
	// 64-bit, the high half on 32-bit.
	hi := uintptr(uint64(off) >> (ptrBits - 1) >> 1)
	n, _, errno := syscall.Syscall6(syscall.SYS_PWRITEV, fd,
		uintptr(unsafe.Pointer(&iovs[0])), uintptr(len(iovs)), lo, hi, 0)
	//eoslint:ignore errwrap -- raw Errno from Syscall6: zero is success, not a wrapped sentinel
	if errno != 0 {
		return 0, errno
	}
	return int(n), nil
}
