package lob

import (
	"fmt"

	"github.com/eosdb/eos/internal/disk"
)

// Insert inserts data into the object starting at byte off (§4.3.1).
//
// Conceptually the insertion splits the target segment S into a left
// segment L (bytes of S left of the insertion point, kept in place), a
// brand-new segment N (the inserted bytes followed by the tail of the
// split page), and a right segment R (the pages of S after the split
// page, kept in place).  Byte and page reshuffling (steps 3 / §4.4) may
// migrate bytes from L's tail and R's head into N; existing pages are
// never overwritten — migrated bytes are copied into N and their source
// pages freed.
func (o *Object) Insert(off int64, data []byte) error {
	if off < 0 || off > o.size {
		return fmt.Errorf("%w: insert at %d of %d", ErrOutOfBounds, off, o.size)
	}
	if len(data) == 0 {
		return nil
	}
	o.bumpVersion()
	o.m.st.inserts.Add(1)
	if err := o.Trim(); err != nil {
		return err
	}
	m := o.m
	ps := int64(m.vol.PageSize())
	maxSegBytes := int64(m.alloc.MaxSegmentPages()) * ps

	// Empty object: insertion is creation.
	if o.size == 0 {
		segs, err := m.allocSegments(int64(len(data)))
		if err != nil {
			return err
		}
		if err := o.writeNewSegments(segs, data); err != nil {
			return err
		}
		return o.spliceLeafRange(0, 0, segs, false, false)
	}

	// Step 1-2: locate S and compute the split geometry.
	S, segStart, parentN, err := o.findSegment(off)
	if err != nil {
		return err
	}
	t := o.effectiveThreshold(parentN)
	rel := off - segStart
	sc := S.bytes
	pagesS := pagesFor(sc, int(ps))
	p := rel / ps
	if p >= int64(pagesS) {
		p = int64(pagesS) - 1 // insertion at segment end on a page boundary
	}
	pb := rel - p*ps
	pc := ps
	if p == int64(pagesS)-1 {
		pc = sc - p*ps
	}
	lc := rel
	var rc int64
	if p < int64(pagesS)-1 {
		rc = sc - (p+1)*ps
	}
	ncBase := int64(len(data)) + (pc - pb)

	// Step 3: reshuffle.
	res := reshuffle(lc, ncBase, rc, t, int(ps), maxSegBytes)
	m.st.bytesReshuffled.Add(res.moveL + res.moveR)
	m.st.pagesReshuffled.Add((res.moveL + res.moveR) / ps)

	// Step 4: materialize N.  The source bytes — L's migrated tail, the
	// split page's suffix, and R's migrated prefix — are physically
	// contiguous in S, so one multi-page read suffices (the paper's
	// "one or two pages" plus reshuffled pages, with no extra seeks).
	srcLen := res.moveL + (pc - pb) + res.moveR
	src := make([]byte, srcLen)
	if srcLen > 0 {
		if err := m.readSegRange(S.ptr, rel-res.moveL, src); err != nil {
			return err
		}
	}
	nbuf := make([]byte, 0, res.nc)
	nbuf = append(nbuf, src[:res.moveL]...)
	nbuf = append(nbuf, data...)
	nbuf = append(nbuf, src[res.moveL:]...)
	if int64(len(nbuf)) != res.nc {
		return fmt.Errorf("lob: internal error: N has %d bytes, expected %d", len(nbuf), res.nc)
	}
	newSegs, err := m.allocSegments(res.nc)
	if err != nil {
		return err
	}
	if err := o.writeNewSegments(newSegs, nbuf); err != nil {
		return err
	}

	// Free the pages of S that neither L nor R keeps.
	keepL := pagesFor(res.lc, int(ps))
	rKeep := pagesS
	if res.rc > 0 {
		if res.moveR%ps != 0 {
			return fmt.Errorf("lob: internal error: partial-page move from surviving R")
		}
		rKeep = int(p) + 1 + int(res.moveR/ps)
	}
	if keepL < rKeep {
		if err := m.alloc.Free(S.ptr+disk.PageNum(keepL), rKeep-keepL); err != nil {
			return err
		}
	}

	// Step 5: fix the parents.
	repl := make([]entry, 0, len(newSegs)+2)
	if res.lc > 0 {
		repl = append(repl, entry{bytes: res.lc, ptr: S.ptr})
	}
	repl = append(repl, newSegs...)
	if res.rc > 0 {
		repl = append(repl, entry{bytes: res.rc, ptr: S.ptr + disk.PageNum(rKeep)})
	}
	return o.spliceLeafRange(segStart, segStart+sc, repl, true, true)
}

// writeNewSegments distributes data across freshly allocated segments.
func (o *Object) writeNewSegments(segs []entry, data []byte) error {
	var off int64
	for _, se := range segs {
		if err := o.m.writeSegment(se.ptr, data[off:off+se.bytes]); err != nil {
			return err
		}
		off += se.bytes
	}
	return nil
}
