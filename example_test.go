package eos_test

import (
	"fmt"
	"log"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

// ExampleStore shows the basic lifecycle: format a store, write a large
// object with piece-wise operations, read it back.
func ExampleStore() {
	vol := disk.MustNewVolume(1024, 4096, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(1024, 512, disk.DefaultCostModel())
	store, err := eos.Format(vol, logVol, eos.Options{Threshold: 8})
	if err != nil {
		log.Fatal(err)
	}

	obj, _ := store.Create("greeting", 0)
	obj.Append([]byte("hello world"))
	obj.Insert(5, []byte(" large"))
	obj.Replace(0, []byte("H"))
	obj.Delete(int64(obj.Size()-6), 6) // drop " world"

	data, _ := obj.Read(0, obj.Size())
	fmt.Println(string(data))
	// Output: Hello large
}

// ExampleTxn shows atomic multi-operation updates with rollback.
func ExampleTxn() {
	vol := disk.MustNewVolume(1024, 4096, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(1024, 512, disk.DefaultCostModel())
	store, _ := eos.Format(vol, logVol, eos.Options{})
	obj, _ := store.Create("account", 0)
	obj.Append([]byte("balance: 100"))

	tx, _ := store.Begin()
	tx.Replace("account", 9, []byte("250"))
	tx.Abort() // roll the edit back

	tx2, _ := store.Begin()
	tx2.Replace("account", 9, []byte("175"))
	tx2.Commit()

	data, _ := obj.Read(0, obj.Size())
	fmt.Println(string(data))
	// Output: balance: 175
}

// ExampleStore_OpenSnapshot shows lock-free snapshot reads: a snapshot
// captures the last committed root and keeps reading that version —
// taking no latch and no lock — while writers move the object on.
// Refresh re-captures the latest committed state.
func ExampleStore_OpenSnapshot() {
	vol := disk.MustNewVolume(1024, 4096, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(1024, 512, disk.DefaultCostModel())
	store, _ := eos.Format(vol, logVol, eos.Options{})
	obj, _ := store.Create("feed", 0)
	obj.Append([]byte("first draft"))

	sn, _ := store.OpenSnapshot("feed")
	defer sn.Close()

	// The writer restructures the object; the snapshot still reads the
	// tree it captured.
	obj.Delete(0, 6) // drop "first "
	obj.Append([]byte(", revised"))

	buf := make([]byte, sn.Size())
	sn.ReadAt(buf, 0)
	fmt.Println(string(buf))

	sn.Refresh() // step forward to the latest committed root
	buf = make([]byte, sn.Size())
	sn.ReadAt(buf, 0)
	fmt.Println(string(buf))
	// Output:
	// first draft
	// draft, revised
}

// ExampleObject_OpenAppender streams an object in with unknown final
// size; segments double and the tail is trimmed on Close (§4.1).
func ExampleObject_OpenAppender() {
	vol := disk.MustNewVolume(1024, 4096, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(1024, 512, disk.DefaultCostModel())
	store, _ := eos.Format(vol, logVol, eos.Options{})
	obj, _ := store.Create("stream", 0)

	w := obj.OpenAppender(0)
	for i := 0; i < 4; i++ {
		fmt.Fprintf(w, "chunk-%d ", i)
	}
	w.Close()

	data, _ := obj.Read(0, obj.Size())
	fmt.Println(string(data))
	// Output: chunk-0 chunk-1 chunk-2 chunk-3
}
