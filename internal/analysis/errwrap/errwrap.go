// Package errwrap defines an Analyzer that enforces the engine's error
// idiom: errors that cross a call boundary are wrapped with %w, and
// sentinel errors are matched with errors.Is, never ==.
//
// The engine wraps rich context around its sentinels at every layer
// (fmt.Errorf("%w: page %d", ErrNotPinned, pg)); a caller comparing
// the result with == silently stops matching the moment any layer adds
// context, and an fmt.Errorf that formats an error with %v instead of
// %w severs the chain that errors.Is/As walks.  Test files are
// exempt: tests may compare exact error values deliberately.
package errwrap

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/eosdb/eos/internal/analysis/eosutil"
	"github.com/eosdb/eos/internal/analysis/ignore"
)

const doc = `check that errors are wrapped with %w and matched with errors.Is

fmt.Errorf must use %w (not %v or %s) for error operands so the cause
chain stays walkable, and error values must be compared with errors.Is
(not == or !=) so wrapped sentinels still match.`

// Analyzer is the errwrap analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "errwrap",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ignore.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ig := ignore.For(pass)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.BinaryExpr)(nil)}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		if inTestFile(pass, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkErrorf(pass, ig, n)
		case *ast.BinaryExpr:
			checkCompare(pass, ig, n)
		}
	})
	return nil, nil
}

func inTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// checkErrorf reports fmt.Errorf calls that format an error operand
// without a matching %w verb.
func checkErrorf(pass *analysis.Pass, ig *ignore.Reporter, call *ast.CallExpr) {
	if !eosutil.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	wrapped := strings.Count(lit.Value, "%w")
	errArgs := 0
	for _, arg := range call.Args[1:] {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && eosutil.IsErrorType(tv.Type) {
			errArgs++
		}
	}
	if errArgs > wrapped {
		ig.Report(call.Pos(),
			"error formatted without %%w (%d error operand(s), %d %%w verb(s)); use %%w so callers can errors.Is/As through the wrap",
			errArgs, wrapped)
	}
}

// checkCompare reports == / != between two error values.
func checkCompare(pass *analysis.Pass, ig *ignore.Reporter, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	xt, xok := pass.TypesInfo.Types[bin.X]
	yt, yok := pass.TypesInfo.Types[bin.Y]
	if !xok || !yok {
		return
	}
	if !eosutil.IsErrorType(xt.Type) || !eosutil.IsErrorType(yt.Type) {
		return
	}
	verb := "errors.Is(err, target)"
	if bin.Op == token.NEQ {
		verb = "!errors.Is(err, target)"
	}
	ig.Report(bin.OpPos,
		"error compared with %s; use %s so wrapped sentinels still match",
		bin.Op, verb)
}
