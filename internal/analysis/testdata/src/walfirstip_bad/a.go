// Package walfirstip_bad holds transaction methods that reach a
// mutation through helper calls before logging; walfirstip must report
// each exposed call with the chain.  Direct unlogged mutations (inside
// the helpers) belong to the intraprocedural walfirst analyzer and
// must not be re-reported here.
package walfirstip_bad

import (
	"lob"
	"wal"
)

type Txn struct {
	log *wal.Log
	obj *lob.Object
}

// applyAppend mutates directly: walfirst's report, not walfirstip's.
func (t *Txn) applyAppend(b []byte) error {
	return t.obj.Append(b)
}

// applyViaHelper is exposed one hop further down.  Unexported methods
// are not roots: the report lands in the exported method that calls
// this chain unlogged.
func (t *Txn) applyViaHelper(b []byte) error {
	return t.applyAppend(b)
}

// AppendUnlogged reaches the mutation through a two-deep chain with no
// log record anywhere above it.
func (t *Txn) AppendUnlogged(b []byte) error {
	return t.applyViaHelper(b) // want "call can mutate Object.Append before this transaction's WAL record is appended"
}

// replaceAt mutates directly on behalf of its callers.
func (t *Txn) replaceAt(off int64, b []byte) error {
	return t.obj.Replace(off, b)
}

// MutateThenLog calls the mutating helper first and appends after: the
// order is backwards.
func (t *Txn) MutateThenLog(off int64, b []byte) error {
	if err := t.replaceAt(off, b); err != nil { // want "call can mutate Object.Replace before this transaction's WAL record is appended"
		return err
	}
	_, err := t.log.Append(wal.Record{Type: 1, Payload: b})
	return err
}

// LogOnOnePath appends only on the durable branch; the other branch
// reaches the mutating helper unlogged, and the diagnostic names the
// append that fails to dominate the call.
func (t *Txn) LogOnOnePath(b []byte, durable bool) error {
	if durable {
		if _, err := t.log.Append(wal.Record{Type: 2, Payload: b}); err != nil {
			return err
		}
	}
	return t.applyAppend(b) // want "does not dominate this call"
}
