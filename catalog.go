package eos

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/eosdb/eos/internal/disk"
)

// The catalog holds every object's descriptor — id, name, threshold,
// growth state, root node, and the LSN of its last logged update.  EOS
// proper leaves descriptor placement to the client (§4: a catalog page,
// or a field of a small record to implement long fields); the Store keeps
// them on a small run of reserved pages after the header.
//
// Layout: magic u32, count u32, then per entry
// id u64, nameLen u16, name, descLen u32, descriptor bytes.

const catalogMagic = 0xE05CA7A1

// writeCatalog serializes every descriptor to the catalog pages.  Caller
// holds s.mu.
func (s *Store) writeCatalog() error {
	names := make([]string, 0, len(s.catalog))
	for n := range s.catalog {
		names = append(names, n)
	}
	sort.Strings(names)

	buf := make([]byte, 8, 256)
	binary.BigEndian.PutUint32(buf[0:], catalogMagic)
	count := 0
	for _, n := range names {
		e := s.catalog[n]
		var desc []byte
		if e.txnDirty != 0 {
			// In-flight transaction: persist only the last committed
			// state.  A never-committed object is simply omitted.
			if e.stableDesc == nil {
				continue
			}
			desc = e.stableDesc
		} else {
			// Read-latch the object: a checkpoint may run while readers
			// are active, and the descriptor must be a consistent image.
			e.latch.RLock()
			desc = e.obj.EncodeDescriptor()
			e.latch.RUnlock()
			e.stableDesc = desc
		}
		var hdr [14]byte
		binary.BigEndian.PutUint64(hdr[0:], e.id)
		binary.BigEndian.PutUint16(hdr[8:], uint16(len(n)))
		binary.BigEndian.PutUint32(hdr[10:], uint32(len(desc)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, n...)
		buf = append(buf, desc...)
		count++
	}
	binary.BigEndian.PutUint32(buf[4:], uint32(count))
	ps := s.vol.PageSize()
	if len(buf) > s.opts.CatalogPages*ps {
		return fmt.Errorf("%w: catalog needs %d bytes, %d pages reserved",
			ErrCorruptStore, len(buf), s.opts.CatalogPages)
	}
	for p := 0; p < s.opts.CatalogPages; p++ {
		img, err := s.pool.FixNew(disk.PageNum(1 + p))
		if err != nil {
			return err
		}
		lo := p * ps
		if lo < len(buf) {
			hi := lo + ps
			if hi > len(buf) {
				hi = len(buf)
			}
			copy(img, buf[lo:hi])
		}
		if err := s.pool.Unpin(disk.PageNum(1 + p)); err != nil {
			return err
		}
	}
	return nil
}

// readCatalog loads every descriptor from the catalog pages.  Caller
// holds no locks (called during Open).
func (s *Store) readCatalog() error {
	ps := s.vol.PageSize()
	buf := make([]byte, 0, s.opts.CatalogPages*ps)
	for p := 0; p < s.opts.CatalogPages; p++ {
		img, err := s.pool.Fix(disk.PageNum(1 + p))
		if err != nil {
			return err
		}
		buf = append(buf, img...)
		if err := s.pool.Unpin(disk.PageNum(1 + p)); err != nil {
			return err
		}
	}
	if binary.BigEndian.Uint32(buf[0:]) != catalogMagic {
		return fmt.Errorf("%w: bad catalog magic", ErrCorruptStore)
	}
	count := int(binary.BigEndian.Uint32(buf[4:]))
	off := 8
	for i := 0; i < count; i++ {
		if off+14 > len(buf) {
			return fmt.Errorf("%w: truncated catalog", ErrCorruptStore)
		}
		id := binary.BigEndian.Uint64(buf[off:])
		nameLen := int(binary.BigEndian.Uint16(buf[off+8:]))
		descLen := int(binary.BigEndian.Uint32(buf[off+10:]))
		off += 14
		if off+nameLen+descLen > len(buf) {
			return fmt.Errorf("%w: truncated catalog entry", ErrCorruptStore)
		}
		name := string(buf[off : off+nameLen])
		off += nameLen
		desc := append([]byte{}, buf[off:off+descLen]...)
		obj, err := s.lm.OpenDescriptor(desc)
		if err != nil {
			return fmt.Errorf("object %q: %w", name, err)
		}
		off += descLen
		e := &catEntry{id: id, name: name, obj: obj, stableDesc: desc}
		s.catalog[name] = e
		s.byID[id] = e
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	return nil
}
