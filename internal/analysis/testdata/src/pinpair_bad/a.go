// Package pinpair_bad holds pin-discipline violations pinpair must
// report.
package pinpair_bad

import "buffer"

// leak never unpins on the success path.
func leak(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.Fix(pg) // want "Fix\\(pg\\) result can leak its pin"
	if err != nil {
		return err
	}
	_ = img.Data
	return nil
}

// leakOnOnePath unpins on the fall-through return but not on the early
// return.
func leakOnOnePath(pool *buffer.Pool, pg buffer.PageID, cond bool) error {
	img, err := pool.Fix(pg) // want "Fix\\(pg\\) result can leak its pin"
	if err != nil {
		return err
	}
	_ = img.Data
	if cond {
		return nil
	}
	return pool.Unpin(pg)
}

// leakFixNew leaks a freshly allocated frame.
func leakFixNew(pool *buffer.Pool, pg buffer.PageID) {
	img, err := pool.FixNew(pg) // want "FixNew\\(pg\\) result can leak its pin"
	if err != nil {
		return
	}
	pool.MarkDirty(pg)
	_ = img
}

// leakInLoop leaks when break exits before the unpin.
func leakInLoop(pool *buffer.Pool, pages []buffer.PageID) error {
	for _, pg := range pages {
		img, err := pool.Fix(pg) // want "Fix\\(pg\\) result can leak its pin"
		if err != nil {
			return err
		}
		if len(img.Data) == 0 {
			break
		}
		if err := pool.Unpin(pg); err != nil {
			return err
		}
	}
	return nil
}

// suppressedWithoutReason is ignored but gives no justification; the
// missing reason is itself a diagnostic.
func suppressedWithoutReason(pool *buffer.Pool, pg buffer.PageID) {
	//eoslint:ignore pinpair
	img, _ := pool.Fix(pg) // want "eoslint:ignore pinpair without a '-- reason' clause"
	_ = img
}
