package pairs_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/pairs"
)

func TestPin(t *testing.T) {
	analyzertest.Run(t, "../testdata", pairs.Analyzer, "pairs_pin_bad", "pairs_pin_clean")
}

func TestMutex(t *testing.T) {
	analyzertest.Run(t, "../testdata", pairs.Analyzer, "pairs_mutex_bad", "pairs_mutex_clean")
}

func TestTxn(t *testing.T) {
	analyzertest.Run(t, "../testdata", pairs.Analyzer, "pairs_txn_bad", "pairs_txn_clean")
}

func TestEpoch(t *testing.T) {
	analyzertest.Run(t, "../testdata", pairs.Analyzer, "pairs_epoch_bad", "pairs_epoch_clean")
}

func TestAlloc(t *testing.T) {
	analyzertest.Run(t, "../testdata", pairs.Analyzer, "pairs_alloc_bad", "pairs_alloc_clean")
}

func TestIOSubmit(t *testing.T) {
	analyzertest.Run(t, "../testdata", pairs.Analyzer, "pairs_iosubmit_bad", "pairs_iosubmit_clean")
}

func TestFileVol(t *testing.T) {
	analyzertest.Run(t, "../testdata", pairs.Analyzer, "pairs_filevol_bad", "pairs_filevol_clean")
}
