// Package unusedignore_clean holds only live, working suppressions:
// the audit must stay silent.
package unusedignore_clean

import "buffer"

// transfersPin suppresses a real pairs diagnostic with a reason.
func transfersPin(pool *buffer.Pool, pg buffer.PageID) []byte {
	//eoslint:ignore pairs -- pin transferred to the caller, released via Close
	img, err := pool.Fix(pg)
	if err != nil {
		return nil
	}
	return img
}

// lateRead suppresses a real useafterunpin diagnostic with a reason.
func lateRead(pool *buffer.Pool, pg buffer.PageID) []byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return nil
	}
	_ = pool.Unpin(pg)
	//eoslint:ignore useafterunpin -- debug-only dump tolerates a recycled frame
	return img
}
