package txn

import (
	"sync"
	"testing"
	"time"

	"github.com/eosdb/eos/internal/disk"
)

// collectingFree returns a freeFn recording every freed run, and the
// accessor for the total pages freed so far.
func collectingFree() (func([]Run) error, func() int) {
	var mu sync.Mutex
	total := 0
	free := func(runs []Run) error {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range runs {
			total += r.Pages
		}
		return nil
	}
	pages := func() int {
		mu.Lock()
		defer mu.Unlock()
		return total
	}
	return free, pages
}

func TestEpochQuiescentReclaim(t *testing.T) {
	free, freed := collectingFree()
	em := NewEpochManager(free)
	em.Retire([]Run{{Start: disk.PageNum(10), Pages: 4}, {Start: disk.PageNum(20), Pages: 2}})
	if got := em.PendingPages(); got != 6 {
		t.Fatalf("PendingPages = %d, want 6", got)
	}
	// No readers, no mutation in flight: one Reclaim matures everything
	// (it advances past the pessimistic +1 stamp on its own).
	if err := em.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if got := freed(); got != 6 {
		t.Fatalf("freed %d pages after quiescent Reclaim, want 6", got)
	}
	if got := em.PendingPages(); got != 0 {
		t.Fatalf("PendingPages = %d after Reclaim, want 0", got)
	}
}

func TestEpochPinBlocksCollection(t *testing.T) {
	free, freed := collectingFree()
	em := NewEpochManager(free)
	g := em.Enter()
	em.Retire([]Run{{Start: disk.PageNum(10), Pages: 8}})
	if err := em.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if got := freed(); got != 0 {
		t.Fatalf("freed %d pages while a reader is pinned, want 0", got)
	}
	// Exit releases the pin and reclaims what matured.
	if err := g.Exit(); err != nil {
		t.Fatal(err)
	}
	if got := freed(); got != 8 {
		t.Fatalf("freed %d pages after pin exit, want 8", got)
	}
	// Exit is idempotent.
	if err := g.Exit(); err != nil {
		t.Fatal(err)
	}
	if got := em.Pinned(); got != 0 {
		t.Fatalf("Pinned = %d after double Exit, want 0", got)
	}
}

func TestEpochMutationScopeCapsAdvance(t *testing.T) {
	free, freed := collectingFree()
	em := NewEpochManager(free)
	scope := em.BeginMutation()
	// Mid-operation retire of pages the still-published root references:
	// they must not mature while the scope is open, no matter how many
	// reclamation points run.
	em.Retire([]Run{{Start: disk.PageNum(10), Pages: 4}})
	for i := 0; i < 3; i++ {
		if err := em.Reclaim(); err != nil {
			t.Fatal(err)
		}
	}
	if got := freed(); got != 0 {
		t.Fatalf("freed %d pages inside an open mutation scope, want 0", got)
	}
	em.EndMutation(scope)
	if err := em.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if got := freed(); got != 4 {
		t.Fatalf("freed %d pages after scope closed, want 4", got)
	}
}

func TestEpochAdmitThrottlesOverBudget(t *testing.T) {
	free, _ := collectingFree()
	em := NewEpochManager(free)
	em.SetBudget(4)
	// Under budget: Admit returns immediately.
	em.Retire([]Run{{Start: disk.PageNum(10), Pages: 2}})
	if err := em.Admit(); err != nil {
		t.Fatal(err)
	}
	// Push over budget with a pinned reader holding the backlog, then
	// release the pin from another goroutine: Admit must return well
	// before its deadline once the backlog drains.
	g := em.Enter()
	em.Retire([]Run{{Start: disk.PageNum(20), Pages: 16}})
	done := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		done <- g.Exit()
	}()
	start := time.Now()
	if err := em.Admit(); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited >= admitWait {
		t.Fatalf("Admit waited the full deadline (%v) despite the backlog draining", waited)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := em.PendingPages(); got != 0 {
		t.Fatalf("PendingPages = %d after drain, want 0", got)
	}
}

func TestEpochStats(t *testing.T) {
	free, _ := collectingFree()
	em := NewEpochManager(free)
	em.Retire([]Run{{Start: disk.PageNum(10), Pages: 3}})
	if got := em.RetiredPages(); got != 3 {
		t.Fatalf("RetiredPages = %d, want 3", got)
	}
	if em.OldestAge() <= 0 {
		t.Fatal("OldestAge = 0 with a pending epoch")
	}
	before := em.Advances()
	if err := em.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if em.Advances() <= before {
		t.Fatal("Reclaim did not advance the epoch")
	}
	if em.OldestAge() != 0 {
		t.Fatal("OldestAge != 0 with nothing pending")
	}
}
