package wal

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestQuickEncodeDecodeRoundTrip: any record survives the codec.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(txn, obj uint64, typ8 uint8, off, n int64, data, old []byte) bool {
		r := &Record{
			LSN:     1,
			Txn:     txn,
			Type:    RecType(typ8%11 + 1),
			Object:  obj,
			Off:     off,
			N:       n,
			Data:    data,
			OldData: old,
		}
		buf := encode(r)
		got, size, err := decode(buf)
		if err != nil || size != len(buf) {
			return false
		}
		return got.Txn == r.Txn && got.Type == r.Type && got.Object == r.Object &&
			got.Off == r.Off && got.N == r.N &&
			bytes.Equal(got.Data, r.Data) && bytes.Equal(got.OldData, r.OldData)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics: arbitrary bytes either decode or error.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("decode panicked")
			}
		}()
		_, _, _ = decode(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickBitFlipsDetected: single bit corruption anywhere in an
// encoded record is caught by the checksum.
func TestQuickBitFlipsDetected(t *testing.T) {
	base := encode(&Record{LSN: 1, Txn: 7, Type: RecInsert, Object: 3, Off: 100, Data: []byte("payload bytes here")})
	f := func(pos16 uint16, bit8 uint8) bool {
		pos := int(pos16) % len(base)
		if pos < 4 {
			pos += 4 // flipping the stored checksum itself also must fail
		}
		buf := append([]byte{}, base...)
		buf[pos%len(buf)] ^= 1 << (bit8 % 8)
		_, _, err := decode(buf)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
