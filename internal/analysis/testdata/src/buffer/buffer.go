// Package buffer is a stand-in for the engine's buffer pool with the
// method shapes the analyzers match on (package name, receiver type
// name, method name).
package buffer

// PageID names a page.
type PageID struct{ Vol, Page uint32 }

// Image is a pinned page image.
type Image struct{ Data []byte }

// Pool is the stand-in buffer pool.
type Pool struct{}

func (p *Pool) Fix(pg PageID) (*Image, error)    { return &Image{}, nil }
func (p *Pool) FixNew(pg PageID) (*Image, error) { return &Image{}, nil }
func (p *Pool) Unpin(pg PageID) error            { return nil }
func (p *Pool) Discard(pg PageID) error          { return nil }
func (p *Pool) MarkDirty(pg PageID)              {}
