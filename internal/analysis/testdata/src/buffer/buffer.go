// Package buffer is a stand-in for the engine's buffer pool with the
// method shapes the analyzers match on (package name, receiver type
// name, method name).  Like the real pool, Fix and FixNew return the
// pinned frame's byte slice directly.
package buffer

// PageID names a page.
type PageID struct{ Vol, Page uint32 }

// Pool is the stand-in buffer pool.
type Pool struct{}

func (p *Pool) Fix(pg PageID) ([]byte, error)    { return make([]byte, 8), nil }
func (p *Pool) FixNew(pg PageID) ([]byte, error) { return make([]byte, 8), nil }
func (p *Pool) Unpin(pg PageID) error            { return nil }
func (p *Pool) Discard(pg PageID) error          { return nil }
func (p *Pool) MarkDirty(pg PageID) error        { return nil }
