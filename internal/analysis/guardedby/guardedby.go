// Package guardedby defines an Analyzer that enforces `eos:guardedby`
// field annotations: every access to an annotated struct field must
// happen while the named mutex is held on the same receiver.
//
// # Annotation grammar
//
// A struct field is annotated in its doc or line comment:
//
//	type shard struct {
//		mu     sync.Mutex
//		frames map[disk.PageNum]*frame // eos:guardedby mu
//	}
//
// The guard names a sibling field of mutex type; naming a field that
// does not exist in the struct is itself reported, so annotations
// cannot rot silently.  A dotted guard such as
//
//	root *segdir // eos:guardedby catEntry.latch
//
// declares that the guard lives outside the struct (the catalog entry
// latch of the object's owner, the pool that embeds the shard, ...).
// External guards are inventory: they document the locking contract
// for readers and reviewers but are not flow-checked, because the
// guard is not reachable from the accessing expression.
//
// A function that is documented to run with a lock already held
// declares it, in terms of its own parameter or receiver names:
//
//	// eos:requires sh.mu
//	func (p *Pool) allocFrameLocked(sh *shard, ...) ...
//
// An optional "(shared)" suffix seeds a read lock instead of an
// exclusive one.
//
// # Checking
//
// For every function the analyzer runs a must-hold dataflow over the
// control-flow graph: the set of lock tokens (expression strings such
// as "sh.mu") certainly held at each point, starting from the
// eos:requires seed, adding at Lock/RLock, removing at
// Unlock/RUnlock, and intersecting at join points.  A deferred unlock
// removes nothing — it runs at function exit.  Each load of an
// annotated field must see its guard held (shared suffices); each
// store — assignment through the field, including writes to its
// elements, ++/--, or taking its address — must see it held
// exclusively.
//
// Fields of sync/atomic types are exempt from flow checking: their
// accesses are serialized by the hardware, and the annotation on them
// documents which mutex orders them with neighboring plain fields.
// Function literals are analyzed as functions with an empty seed;
// a literal that runs under a caller-held lock needs an
// //eoslint:ignore with its justification (the lock relationship is
// not expressible across the closure boundary).
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/eosdb/eos/internal/analysis/ignore"
)

const doc = `check eos:guardedby field annotations with a must-hold lock analysis

An annotated field may only be loaded while its guard mutex is held
(read or write lock) and only be stored while it is held exclusively.
The held-lock set is tracked through the control-flow graph and
intersected at joins, so a lock released on any path to an access no
longer protects it.  See the package documentation for the annotation
grammar (eos:guardedby on fields, eos:requires on functions).`

// Analyzer is the guardedby analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "guardedby",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer, ignore.Analyzer},
	Run:      run,
}

const (
	guardPrefix    = "eos:guardedby"
	requiresPrefix = "eos:requires"
)

// fieldInfo is one annotated field.
type fieldInfo struct {
	structName string
	fieldName  string
	mutex      string // sibling field name, or dotted external path
	external   bool   // dotted: documented, not flow-checked
	exempt     bool   // sync/atomic-typed field: hardware-ordered
}

// mode is how strongly a lock is held.
type mode int

const (
	held     mode = 1 // shared (RLock)
	heldExcl mode = 2 // exclusive (Lock)
)

// lockState maps held lock tokens ("sh.mu") to their mode.  A nil map
// is the dataflow top (point not yet reached).
type lockState map[string]mode

func clone(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersect narrows a to the locks also held in b (weakest mode wins).
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k, v := range a {
		if w, ok := b[k]; ok {
			if w < v {
				v = w
			}
			out[k] = v
		}
	}
	return out
}

func equal(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

type checker struct {
	pass   *analysis.Pass
	ig     *ignore.Reporter
	fields map[*types.Var]*fieldInfo
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	c := &checker{
		pass:   pass,
		ig:     ignore.For(pass),
		fields: make(map[*types.Var]*fieldInfo),
	}

	c.collectAnnotations(insp)
	if len(c.fields) == 0 {
		return nil, nil
	}

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return
		}
		var g *cfg.CFG
		var seed lockState
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			g = cfgs.FuncDecl(fn)
			seed = parseRequires(fn.Doc)
		case *ast.FuncLit:
			g = cfgs.FuncLit(fn)
			seed = lockState{}
		}
		if g != nil {
			c.checkFunc(g, seed)
		}
	})
	return nil, nil
}

// collectAnnotations reads every eos:guardedby comment off struct
// fields and validates sibling guards.
func (c *checker) collectAnnotations(insp *inspector.Inspector) {
	insp.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		spec := n.(*ast.TypeSpec)
		st, ok := spec.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return
		}
		siblings := make(map[string]bool)
		for _, f := range st.Fields.List {
			for _, nm := range f.Names {
				siblings[nm.Name] = true
			}
		}
		for _, f := range st.Fields.List {
			guard, pos, ok := guardOf(f)
			if !ok {
				continue
			}
			external := strings.Contains(guard, ".")
			if !external && !siblings[guard] {
				c.pass.Reportf(pos, "eos:guardedby names %q, which is not a field of %s",
					guard, spec.Name.Name)
				continue
			}
			for _, nm := range f.Names {
				obj, ok := c.pass.TypesInfo.Defs[nm].(*types.Var)
				if !ok {
					continue
				}
				c.fields[obj] = &fieldInfo{
					structName: spec.Name.Name,
					fieldName:  nm.Name,
					mutex:      guard,
					external:   external,
					exempt:     isAtomicType(obj.Type()),
				}
			}
		}
	})
}

// guardOf extracts the eos:guardedby target from a field's doc or
// line comment.
func guardOf(f *ast.Field) (string, token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
			if !strings.HasPrefix(text, guardPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, guardPrefix)
			if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			return fields[0], cm.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// parseRequires builds the entry lock set from eos:requires lines in a
// function's doc comment.
func parseRequires(doc *ast.CommentGroup) lockState {
	seed := lockState{}
	if doc == nil {
		return seed
	}
	for _, cm := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
		if !strings.HasPrefix(text, requiresPrefix) {
			continue
		}
		rest := strings.TrimPrefix(text, requiresPrefix)
		if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		m := heldExcl
		if len(fields) > 1 && strings.HasPrefix(fields[1], "(shared") {
			m = held
		}
		seed[fields[0]] = m
	}
	return seed
}

// isAtomicType reports whether t (unwrapping pointers) is declared in
// sync/atomic.
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isMutexType reports whether t (unwrapping pointers) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkFunc runs the must-hold fixpoint over g and then reports.
func (c *checker) checkFunc(g *cfg.CFG, seed lockState) {
	blocks := g.Blocks
	if len(blocks) == 0 {
		return
	}
	n := len(blocks)
	idx := make(map[*cfg.Block]int, n)
	for i, b := range blocks {
		idx[b] = i
	}
	preds := make([][]int, n)
	for i, b := range blocks {
		for _, s := range b.Succs {
			j := idx[s]
			preds[j] = append(preds[j], i)
		}
	}
	in := make([]lockState, n)
	out := make([]lockState, n)

	work := []int{0}
	in[0] = clone(seed)
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		if in[i] == nil {
			continue
		}
		st := clone(in[i])
		for _, node := range blocks[i].Nodes {
			c.scanNode(node, st, false)
		}
		if equal(st, out[i]) && out[i] != nil {
			continue
		}
		out[i] = st
		for _, s := range blocks[i].Succs {
			j := idx[s]
			var merged lockState
			for _, p := range preds[j] {
				if out[p] == nil {
					continue
				}
				if merged == nil {
					merged = clone(out[p])
				} else {
					merged = intersect(merged, out[p])
				}
			}
			if merged != nil && (in[j] == nil || !equal(merged, in[j])) {
				in[j] = merged
				work = append(work, j)
			}
		}
	}

	// Report pass: replay each reached block with its final entry state.
	for i, b := range blocks {
		if !b.Live || in[i] == nil {
			continue
		}
		st := clone(in[i])
		for _, node := range b.Nodes {
			c.scanNode(node, st, true)
		}
	}
}

// scanNode applies node's lock events to st in source order and, when
// report is set, checks every annotated-field access against st.
func (c *checker) scanNode(node ast.Node, st lockState, report bool) {
	writes := writeRoots(node)
	ast.Inspect(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own function
		case *ast.DeferStmt:
			return false // deferred unlocks run at exit; locks in defers are not ours
		case *ast.CallExpr:
			c.applyLockCall(m, st)
			return true
		case *ast.SelectorExpr:
			if report {
				c.checkAccess(m, st, within(m, writes))
			}
			return true
		}
		return true
	})
}

// applyLockCall updates st for a Lock/RLock/Unlock/RUnlock call on a
// sync mutex.
func (c *checker) applyLockCall(call *ast.CallExpr, st lockState) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	var m mode
	var release bool
	switch sel.Sel.Name {
	case "Lock":
		m = heldExcl
	case "RLock":
		m = held
	case "Unlock", "RUnlock":
		release = true
	default:
		return
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return
	}
	tok := types.ExprString(sel.X)
	if release {
		delete(st, tok)
	} else {
		st[tok] = m
	}
}

// checkAccess reports sel if it touches an annotated field without the
// required lock strength.
func (c *checker) checkAccess(sel *ast.SelectorExpr, st lockState, write bool) {
	fieldObj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	info, ok := c.fields[fieldObj]
	if !ok || info.external || info.exempt {
		return
	}
	tok := types.ExprString(sel.X) + "." + info.mutex
	got := st[tok]
	switch {
	case write && got < heldExcl:
		if got == held {
			c.ig.Report(sel.Pos(),
				"write to %s.%s with only a read lock on %s (eos:guardedby %s)",
				info.structName, info.fieldName, tok, info.mutex)
		} else {
			c.ig.Report(sel.Pos(),
				"write to %s.%s without holding %s (eos:guardedby %s)",
				info.structName, info.fieldName, tok, info.mutex)
		}
	case !write && got < held:
		c.ig.Report(sel.Pos(),
			"read of %s.%s without holding %s (eos:guardedby %s)",
			info.structName, info.fieldName, tok, info.mutex)
	}
}

// writeRoots collects the store-context expressions of node:
// assignment targets, ++/-- operands, and &-taken operands.  An
// annotated selector inside any of them is a write.
func writeRoots(node ast.Node) []ast.Node {
	var roots []ast.Node
	ast.Inspect(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				roots = append(roots, lhs)
			}
		case *ast.IncDecStmt:
			roots = append(roots, m.X)
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				roots = append(roots, m.X)
			}
		}
		return true
	})
	return roots
}

// within reports whether sel lies inside any of the roots.
func within(sel ast.Node, roots []ast.Node) bool {
	for _, r := range roots {
		if sel.Pos() >= r.Pos() && sel.End() <= r.End() {
			return true
		}
	}
	return false
}
