package eos

import (
	"fmt"
	"io"

	"github.com/eosdb/eos/internal/lob"
)

// Reader adapts a large object to io.Reader, io.ReaderAt, io.Seeker and
// io.WriterTo, so objects plug into the standard streaming ecosystem
// (io.Copy to play the paper's digital sound recordings, bufio.Scanner
// over a stored document, and so on).  A Reader tracks its own position;
// multiple Readers over one object are independent.
//
// Reads observe the object's current content.  WriterTo streams in
// segment-size pieces, preserving the multi-page contiguous transfers
// that make EOS sequential reads fast.
type Reader struct {
	o   *Object
	pos int64
}

// NewReader returns a Reader positioned at byte 0.
func (o *Object) NewReader() *Reader { return &Reader{o: o} }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	size := r.o.Size()
	if r.pos >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if n > size-r.pos {
		n = size - r.pos
	}
	if err := r.o.ReadAt(p[:n], r.pos); err != nil {
		return 0, err
	}
	r.pos += n
	return int(n), nil
}

// ReadAt implements io.ReaderAt; it does not move the position.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	size := r.o.Size()
	if off < 0 {
		return 0, fmt.Errorf("eos: negative offset %d", off)
	}
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if n > size-off {
		n = size - off
		short = true
	}
	if err := r.o.ReadAt(p[:n], off); err != nil {
		return 0, err
	}
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.pos
	case io.SeekEnd:
		base = r.o.Size()
	default:
		return 0, fmt.Errorf("eos: invalid whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("eos: negative seek position %d", pos)
	}
	r.pos = pos
	return pos, nil
}

// WriteTo implements io.WriterTo, streaming the rest of the object in
// large chunks.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	const chunk = 1 << 20
	var total int64
	for {
		size := r.o.Size()
		if r.pos >= size {
			return total, nil
		}
		n := int64(chunk)
		if n > size-r.pos {
			n = size - r.pos
		}
		buf, err := r.o.Read(r.pos, n)
		if err != nil {
			return total, err
		}
		wn, err := w.Write(buf)
		total += int64(wn)
		r.pos += int64(wn)
		if err != nil {
			return total, err
		}
	}
}

// Segments lists the object's physical layout: each leaf segment's
// logical offset, length, first volume page, and page count.
func (o *Object) Segments() ([]lob.SegmentInfo, error) {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Segments()
}
