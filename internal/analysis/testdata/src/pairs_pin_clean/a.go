// Package pairs_pin_clean holds correct pin usage the pairs analyzer
// must accept without diagnostics.
package pairs_pin_clean

import "buffer"

// deferred is the canonical pattern: defer Unpin right after the error
// check.
func deferred(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.Fix(pg)
	if err != nil {
		return err
	}
	defer pool.Unpin(pg)
	_ = img
	return nil
}

// direct unpins explicitly on every return path.
func direct(pool *buffer.Pool, pg buffer.PageID, cond bool) error {
	img, err := pool.Fix(pg)
	if err != nil {
		return err
	}
	_ = img
	if cond {
		return pool.Unpin(pg)
	}
	return pool.Unpin(pg)
}

// deferredClosure releases the pin inside a deferred function literal.
func deferredClosure(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.FixNew(pg)
	if err != nil {
		return err
	}
	defer func() {
		_ = pool.Unpin(pg)
	}()
	img = append(img, 0)
	_ = pool.MarkDirty(pg)
	_ = img
	return nil
}

// discarded releases the frame via Discard instead of Unpin.
func discarded(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.FixNew(pg)
	if err != nil {
		return err
	}
	_ = img
	return pool.Discard(pg)
}

// loopPaired unpins before every way out of the loop body.
func loopPaired(pool *buffer.Pool, pages []buffer.PageID) error {
	for _, pg := range pages {
		img, err := pool.Fix(pg)
		if err != nil {
			return err
		}
		empty := len(img) == 0
		if err := pool.Unpin(pg); err != nil {
			return err
		}
		if empty {
			break
		}
	}
	return nil
}

// unpinPage is an unexported helper that releases the pin it is handed;
// the pairs analyzer exports a release fact for it.
func unpinPage(pool *buffer.Pool, pg buffer.PageID) {
	_ = pool.Unpin(pg)
}

// viaHelper releases through the helper on every path: the release
// fact makes the call count as the Unpin.
func viaHelper(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.Fix(pg)
	if err != nil {
		return err
	}
	_ = img
	unpinPage(pool, pg)
	return nil
}

// viaDeferredHelper defers the releasing helper.
func viaDeferredHelper(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.Fix(pg)
	if err != nil {
		return err
	}
	defer unpinPage(pool, pg)
	_ = img
	return nil
}

// suppressedWithReason documents why the pin outlives the function.
func suppressedWithReason(pool *buffer.Pool, pg buffer.PageID) []byte {
	//eoslint:ignore pairs -- pin is transferred to the caller, which unpins via Close
	img, err := pool.Fix(pg)
	if err != nil {
		return nil
	}
	return img
}
