// Package eos is a stand-in for the engine's root package with the
// transaction lifecycle shapes the pairs analyzer matches on.
package eos

// Store is the stand-in store.
type Store struct{}

// Begin starts a transaction.
func (s *Store) Begin() (*Txn, error) { return &Txn{}, nil }

// Txn is the stand-in transaction.
type Txn struct{}

func (t *Txn) Commit() error                    { return nil }
func (t *Txn) CommitNoForce() error             { return nil }
func (t *Txn) Abort() error                     { return nil }
func (t *Txn) Append(id uint64, b []byte) error { return nil }
