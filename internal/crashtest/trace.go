// Package crashtest is a systematic crash-state enumeration harness in
// the CrashMonkey/ALICE tradition.  It wraps the store's volumes in a
// tracing device that records every write and force barrier issued by a
// seeded mixed workload, then reconstructs the set of device states a
// power cut could have left behind — clean prefixes between barriers,
// torn multi-page writes, and sampled per-page subsets of the unforced
// writes in a force epoch — and runs full recovery plus machine-checked
// invariants against each one.
//
// The durability model matches what the engine may assume of a real
// disk: a single page (sector) write is atomic, writes become stable
// only when a covering Force returns, and between barriers the kernel
// and device may persist any subset of outstanding page writes in any
// order.  A multi-page write may additionally be torn: an arbitrary
// prefix of its pages reaches the platter.
package crashtest

import (
	"sync"

	"github.com/eosdb/eos/internal/disk"
)

// Kind labels a traced device event.
type Kind uint8

// Event kinds recorded by the tracing device.
const (
	KindWrite Kind = iota
	KindWriteRun
	KindForce
	KindForceAll
	KindForceAllExcept
)

func (k Kind) String() string {
	switch k {
	case KindWrite:
		return "write"
	case KindWriteRun:
		return "writerun"
	case KindForce:
		return "force"
	case KindForceAll:
		return "forceall"
	case KindForceAllExcept:
		return "forceallexcept"
	}
	return "unknown"
}

// Event is one recorded device request.  Write events carry a private
// copy of the written page images; force events carry their coverage.
type Event struct {
	Seq   int
	Dev   int // index of the traced device (0 = data, 1 = log)
	Kind  Kind
	Start disk.PageNum
	N     int    // pages written or forced (0 for ForceAll*)
	Data  []byte // concatenated page images for writes, len = N*pageSize
	Skip  map[disk.PageNum]bool
}

// Clock is the global event sequencer shared by every traced device in
// one run, so the interleaving of data- and log-volume requests is
// totally ordered.
type Clock struct {
	mu     sync.Mutex
	events []Event
}

// Seq reports the number of recorded events (the next sequence number).
func (c *Clock) Seq() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Events returns the recorded trace.  The caller must not mutate it.
func (c *Clock) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

func (c *Clock) record(ev Event) {
	c.mu.Lock()
	ev.Seq = len(c.events)
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Device wraps a disk.Device and records every write and force into the
// shared Clock.  Reads, stats, fault injection and crash calls pass
// through untouched, so the engine runs unmodified.
type Device struct {
	inner disk.Device
	clock *Clock
	id    int
}

// NewDevice wraps inner; id distinguishes the device in the trace.
func NewDevice(inner disk.Device, clock *Clock, id int) *Device {
	return &Device{inner: inner, clock: clock, id: id}
}

var _ disk.Device = (*Device)(nil)

// PageSize reports the wrapped device's page size.
func (d *Device) PageSize() int { return d.inner.PageSize() }

// NumPages reports the wrapped device's capacity.
func (d *Device) NumPages() disk.PageNum { return d.inner.NumPages() }

// ReadPages passes through to the wrapped device.
func (d *Device) ReadPages(start disk.PageNum, n int, buf []byte) error {
	return d.inner.ReadPages(start, n, buf)
}

// Read passes through to the wrapped device.
func (d *Device) Read(start disk.PageNum, n int) ([]byte, error) {
	return d.inner.Read(start, n)
}

// WritePages records a copy of the written pages, then forwards.
func (d *Device) WritePages(start disk.PageNum, n int, buf []byte) error {
	cp := make([]byte, len(buf))
	copy(cp, buf)
	d.clock.record(Event{Dev: d.id, Kind: KindWrite, Start: start, N: n, Data: cp})
	return d.inner.WritePages(start, n, buf)
}

// WriteRun records the gathered pages as one event, then forwards.
func (d *Device) WriteRun(start disk.PageNum, pages [][]byte) error {
	ps := d.inner.PageSize()
	cp := make([]byte, len(pages)*ps)
	for i, p := range pages {
		copy(cp[i*ps:], p)
	}
	d.clock.record(Event{Dev: d.id, Kind: KindWriteRun, Start: start, N: len(pages), Data: cp})
	return d.inner.WriteRun(start, pages)
}

// Force records the barrier and its coverage, then forwards.
func (d *Device) Force(start disk.PageNum, n int) error {
	d.clock.record(Event{Dev: d.id, Kind: KindForce, Start: start, N: n})
	return d.inner.Force(start, n)
}

// ForceAll records the barrier, then forwards.
func (d *Device) ForceAll() error {
	d.clock.record(Event{Dev: d.id, Kind: KindForceAll})
	return d.inner.ForceAll()
}

// ForceAllExcept records the barrier with a copy of skip, then forwards.
func (d *Device) ForceAllExcept(skip map[disk.PageNum]bool) error {
	var cp map[disk.PageNum]bool
	if len(skip) > 0 {
		cp = make(map[disk.PageNum]bool, len(skip))
		for p := range skip {
			cp[p] = true
		}
	}
	d.clock.record(Event{Dev: d.id, Kind: KindForceAllExcept, Skip: cp})
	return d.inner.ForceAllExcept(skip)
}

// DirtyPages passes through to the wrapped device.
func (d *Device) DirtyPages() int { return d.inner.DirtyPages() }

// Stats passes through to the wrapped device.
func (d *Device) Stats() disk.Stats { return d.inner.Stats() }

// ResetStats passes through to the wrapped device.
func (d *Device) ResetStats() { d.inner.ResetStats() }

// SetTracer passes through to the wrapped device.
func (d *Device) SetTracer(fn func(disk.TraceEvent)) { d.inner.SetTracer(fn) }

// FailAfter passes through to the wrapped device.
func (d *Device) FailAfter(n int64, err error) { d.inner.FailAfter(n, err) }

// ClearFault passes through to the wrapped device.
func (d *Device) ClearFault() { d.inner.ClearFault() }

// Crash passes through to the wrapped device.
func (d *Device) Crash() error { return d.inner.Crash() }

// Close passes through to the wrapped device.
func (d *Device) Close() error { return d.inner.Close() }
