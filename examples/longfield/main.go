// Longfield: transactional large objects with crash recovery (§4.5).
//
// A small content-management scenario: article bodies stored as large
// objects, edited under transactions.  The example shows atomic
// multi-operation commits, rollback on abort, the fast log-force-only
// commit, and recovery after a simulated power failure.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

func main() {
	vol := disk.MustNewVolume(1024, 16384, disk.DefaultCostModel())
	logVol := disk.MustNewVolume(1024, 4096, disk.DefaultCostModel())
	store, err := eos.Format(vol, logVol, eos.Options{Threshold: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Publish an article outside any transaction, then checkpoint.
	article, err := store.Create("articles/eos-review", 0)
	if err != nil {
		log.Fatal(err)
	}
	body := bytes.Repeat([]byte("The EOS large object manager stores byte strings of unlimited size. "), 2000)
	if err := article.AppendWithHint(body, int64(len(body))); err != nil {
		log.Fatal(err)
	}
	if err := store.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published article: %d KB\n", article.Size()>>10)

	// A reviewer edits the piece atomically: a correction in place, a
	// paragraph inserted, a redundant passage removed.
	tx, err := store.Begin()
	if err != nil {
		log.Fatal(err)
	}
	mustTx(tx.Replace("articles/eos-review", 0, []byte("THE"))) // capitalize
	mustTx(tx.Insert("articles/eos-review", 69, []byte("[EDITOR'S NOTE: reproduced in Go.] ")))
	mustTx(tx.Delete("articles/eos-review", 5000, 690))
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("editorial pass committed: %d KB\n", sizeOf(store, "articles/eos-review")>>10)

	// A vandal's edits are rolled back: logical undo restores content.
	before, _ := article.Read(0, 200)
	vandal, _ := store.Begin()
	mustTx(vandal.Replace("articles/eos-review", 0, bytes.Repeat([]byte("X"), 200)))
	mustTx(vandal.Delete("articles/eos-review", 0, 50000))
	if err := vandal.Abort(); err != nil {
		log.Fatal(err)
	}
	after, _ := article.Read(0, 200)
	fmt.Printf("vandal aborted: content restored = %v\n", bytes.Equal(before, after))

	// High-throughput ingestion uses the fast commit: only the log is
	// forced; data pages migrate lazily.
	for i := 0; i < 5; i++ {
		tx, err := store.Begin()
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("articles/draft-%d", i)
		mustTx(tx.Create(name, 0))
		mustTx(tx.Append(name, bytes.Repeat([]byte{byte(i)}, 20480)))
		if err := tx.CommitNoForce(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested 5 drafts with fast commits (log tail %d bytes)\n", store.LogTail())

	// Power failure!  Everything volatile is lost; the write-ahead log
	// replays the committed fast commits.
	if err := vol.Crash(); err != nil {
		log.Fatal(err)
	}
	if err := logVol.Crash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- simulated power failure --")

	store2, err := eos.Open(vol, logVol, eos.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered store: %d objects\n", len(store2.List()))
	for _, name := range store2.List() {
		o, err := store2.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %7d bytes\n", name, o.Size())
	}
	draft, err := store2.Open("articles/draft-3")
	if err != nil {
		log.Fatal("draft-3 lost in the crash: ", err)
	}
	got, _ := draft.Read(0, draft.Size())
	if !bytes.Equal(got, bytes.Repeat([]byte{3}, 20480)) {
		log.Fatal("draft-3 content corrupted")
	}
	if err := store2.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("redo recovery verified: committed fast commits survived, store check OK")
}

func mustTx(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func sizeOf(s *eos.Store, name string) int64 {
	o, err := s.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	return o.Size()
}
