package eos

import (
	"bytes"
	"testing"
)

// TestLoserReplaceUndoneAfterCrash exercises the steal hazard: an
// uncommitted transaction's in-place replace reaches the disk because a
// different transaction's commit forces the whole volume; after a crash,
// recovery must physically restore the pre-image from the log.
func TestLoserReplaceUndoneAfterCrash(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	a, _ := s.Create("victim", 0)
	base := pat(60, 8000)
	if err := a.Append(base); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Create("other", 0)
	if err := b.Append(pat(61, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Loser: replaces in place, never commits.
	loser, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := loser.Replace("victim", 3000, pat(62, 500)); err != nil {
		t.Fatal(err)
	}

	// Winner: commits on another object, forcing the volume — including
	// the loser's dirtied page.
	winner, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := winner.Append("other", pat(63, 100)); err != nil {
		t.Fatal(err)
	}
	if err := winner.Commit(); err != nil {
		t.Fatal(err)
	}

	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s2.Open("victim")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Read(0, v.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("loser replace survived the crash at byte %d", i)
			}
		}
	}
	o2, _ := s2.Open("other")
	if o2.Size() != 2100 {
		t.Errorf("winner's append lost: size = %d", o2.Size())
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestLoserReplaceAfterStructuralOpUndone covers the tricky variant: the
// loser replaced bytes whose logical offset only existed in its own
// uncommitted tree.  Physical undo restores whatever committed pages it
// dirtied; shadowed pages the committed tree never references are
// irrelevant.
func TestLoserReplaceAfterStructuralOpUndone(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	a, _ := s.Create("victim", 0)
	base := pat(64, 8000)
	if err := a.Append(base); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Create("other", 0)
	if err := b.Append(pat(65, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	loser, _ := s.Begin()
	// Shift the world by an uncommitted insert, then replace: the
	// replace's logical offset (5000) addresses different committed
	// bytes, but the extents pin the physical pages.
	if err := loser.Insert("victim", 1000, pat(66, 700)); err != nil {
		t.Fatal(err)
	}
	if err := loser.Replace("victim", 5000, pat(67, 400)); err != nil {
		t.Fatal(err)
	}

	winner, _ := s.Begin()
	if err := winner.Append("other", pat(68, 50)); err != nil {
		t.Fatal(err)
	}
	if err := winner.Commit(); err != nil {
		t.Fatal(err)
	}

	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s2.Open("victim")
	got, err := v.Read(0, v.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Error("victim not restored to committed state")
	}
	if err := s2.CheckNoLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedReplaceStillRedone: the undo pass must not disturb
// committed replaces.
func TestCommittedReplaceStillRedone(t *testing.T) {
	s, vol, logVol := newStore(t, Options{})
	a, _ := s.Create("v", 0)
	base := pat(69, 4000)
	if err := a.Append(base); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	if err := tx.Replace("v", 100, pat(70, 300)); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitNoForce(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	logVol.Crash()
	s2, err := Open(vol, logVol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, base...)
	copy(want[100:], pat(70, 300))
	v, _ := s2.Open("v")
	got, _ := v.Read(0, v.Size())
	if !bytes.Equal(got, want) {
		t.Error("committed replace lost or mangled by undo pass")
	}
}
