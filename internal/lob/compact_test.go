package lob

import (
	"errors"
	"math/rand"
	"testing"
)

func TestCompactRestoresContiguity(t *testing.T) {
	e := newEnv(t, 100, 16, 256, Config{Threshold: 1})
	base := e.freePages(t)
	o := e.m.NewObject(0)
	model := pattern(1, 20000)
	if err := o.AppendWithHint(model, int64(len(model))); err != nil {
		t.Fatal(err)
	}
	// Fragment heavily with T = 1.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 40; i++ {
		off := int64(rng.Intn(len(model)))
		ins := pattern(i, 20)
		if err := o.Insert(off, ins); err != nil {
			t.Fatal(err)
		}
		model = append(model[:off:off], append(append([]byte{}, ins...), model[off:]...)...)
	}
	uBefore, _ := o.Usage()
	if uBefore.SegmentCount < 20 {
		t.Fatalf("setup produced only %d segments", uBefore.SegmentCount)
	}

	if err := o.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	mustContent(t, o, model)
	mustCheck(t, o)
	uAfter, _ := o.Usage()
	if uAfter.SegmentCount >= uBefore.SegmentCount/4 {
		t.Errorf("segments %d -> %d: compaction ineffective", uBefore.SegmentCount, uAfter.SegmentCount)
	}
	// Page accounting balances: nothing leaked.
	free := e.freePages(t)
	if free+uAfter.SegmentPages+uAfter.IndexPages != base {
		t.Errorf("pages leaked: free %d + used %d != %d",
			free, uAfter.SegmentPages+uAfter.IndexPages, base)
	}

	// Sequential scan after compaction costs ~1 seek per segment.
	e.pool.FlushAll()
	e.vol.ResetStats()
	if _, err := o.Read(0, o.Size()); err != nil {
		t.Fatal(err)
	}
	if s := e.vol.Stats(); s.Seeks > int64(uAfter.SegmentCount+2) {
		t.Errorf("scan after compact: %d seeks for %d segments", s.Seeks, uAfter.SegmentCount)
	}
}

func TestCompactEmptyObject(t *testing.T) {
	e := newEnv(t, 100, 2, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 0 {
		t.Error("empty compact changed size")
	}
}

func TestCompactFailsCleanlyWithoutRoom(t *testing.T) {
	// Compaction needs space for a second copy; on a nearly full volume
	// it must fail without corrupting the object.
	e := newEnv(t, 100, 1, 64, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(2, 4000) // 40 of 64 pages
	if err := o.AppendWithHint(model, int64(len(model))); err != nil {
		t.Fatal(err)
	}
	err := o.Compact()
	if err == nil {
		t.Fatal("compact succeeded without room for a copy")
	}
	if errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("unexpected error class: %v", err)
	}
	mustContent(t, o, model)
	mustCheck(t, o)
}

func TestCompactLargeMultiSegment(t *testing.T) {
	// Objects larger than one max segment compact into a chain of
	// max-size segments.
	e := newEnv(t, 100, 16, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(3, 40000) // 400 pages; max segment 128
	if err := o.Append(model); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(20000, pattern(4, 55)); err != nil {
		t.Fatal(err)
	}
	model = append(model[:20000:20000], append(pattern(4, 55), model[20000:]...)...)
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	mustContent(t, o, model)
	mustCheck(t, o)
	pages, _ := o.SegmentPageCounts()
	for i, p := range pages[:len(pages)-1] {
		if p < 64 {
			t.Errorf("segment %d has %d pages; compaction should produce large segments: %v", i, p, pages)
		}
	}
}
