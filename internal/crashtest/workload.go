package crashtest

import (
	"fmt"
	"math/rand"

	"github.com/eosdb/eos"
)

// Commit is one oracle mark: a transaction whose Commit call entered at
// BeginSeq and returned at RetSeq, leaving the committed store content
// described by State (object name -> content hash).
//
// Both Commit and CommitNoForce force the log before returning, so for
// a crash at trace position P:
//
//   - every commit with RetSeq <= P is durably in the log (its commit
//     record was covered by a returned force) and MUST be visible;
//   - a commit with BeginSeq > P cannot have written its commit record
//     yet and MUST be invisible;
//   - in between, visibility depends on which unforced log pages the
//     power cut preserved.
type Commit struct {
	BeginSeq int
	RetSeq   int
	State    map[string]uint64
	// Sizes mirrors State with object lengths, for violation diagnostics.
	Sizes map[string]int
	// Contents is the full committed content, kept for byte-level
	// violation diagnostics.
	Contents map[string][]byte
}

// Oracle is the ground truth the sweep validates recovered states
// against.
type Oracle struct {
	// P0 is the trace position at which the freshly formatted store was
	// durable; crash states before it are not meaningful.
	P0 int
	// Commits holds one mark per successful commit, in commit order.
	Commits []Commit
}

// StateAt returns the committed content after k commits (k = 0 is the
// empty, freshly formatted store).
func (o *Oracle) StateAt(k int) map[string]uint64 {
	if k == 0 {
		return map[string]uint64{}
	}
	return o.Commits[k-1].State
}

// Bounds reports the inclusive range of commit counts a crash at trace
// position p may legally recover to.
func (o *Oracle) Bounds(p int) (minK, maxK int) {
	for _, c := range o.Commits {
		if c.RetSeq <= p {
			minK++
		}
		if c.BeginSeq <= p {
			maxK++
		}
	}
	return minK, maxK
}

// Match finds the commit count k in [minK, maxK] whose oracle state
// equals got.
func (o *Oracle) Match(got map[string]uint64, minK, maxK int) (int, bool) {
	for k := minK; k <= maxK; k++ {
		if mapsEqual(got, o.StateAt(k)) {
			return k, true
		}
	}
	return 0, false
}

func mapsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// WorkloadConfig tunes the seeded churn the sweep traces.
type WorkloadConfig struct {
	// Trace, when set, receives a line per workload action with the
	// clock position, for debugging sweep violations.
	Trace func(format string, args ...any)
	Seed        int64
	Txns        int // committed-or-aborted transactions to attempt
	Objects     int // object-name pool size (default 6)
	MaxWrite    int // max bytes per mutating op (default 1200)
	MaxObjBytes int // soft per-object size cap (default 48 KiB)
	CheckEvery  int // checkpoint every N transactions (default 10)
	// NoLoser skips the trailing uncommitted transaction (used by the
	// model-validation test, which needs the live store to hold exactly
	// the committed state).
	NoLoser bool
}

func (c *WorkloadConfig) defaults() {
	if c.Objects == 0 {
		c.Objects = 6
	}
	if c.MaxWrite == 0 {
		c.MaxWrite = 1200
	}
	if c.MaxObjBytes == 0 {
		c.MaxObjBytes = 48 << 10
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 10
	}
}

// RunWorkload drives the mixed churn against st (built over traced
// devices sharing clock) and returns the oracle.  It deliberately ends
// with an uncommitted transaction still in flight, so the trace tail
// exercises in-flight undo; the store is NOT closed.
func RunWorkload(st *eos.Store, clock *Clock, cfg WorkloadConfig) (*Oracle, error) {
	cfg.defaults()
	if cfg.Trace == nil {
		cfg.Trace = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	oracle := &Oracle{P0: clock.Seq()}
	model := map[string][]byte{} // committed content

	for i := 0; i < cfg.Txns; i++ {
		if i > 0 && i%cfg.CheckEvery == 0 {
			if err := st.Checkpoint(); err != nil {
				return nil, fmt.Errorf("checkpoint before txn %d: %w", i, err)
			}
		}
		tx, err := st.Begin()
		if err != nil {
			return nil, fmt.Errorf("begin txn %d: %w", i, err)
		}
		cfg.Trace("seq %d: txn %d begins", clock.Seq(), i)
		staged := map[string]*[]byte{} // nil pointer = destroyed in this txn
		nOps := 1 + rng.Intn(3)
		opErr := error(nil)
		for j := 0; j < nOps && opErr == nil; j++ {
			opErr = randomOp(tx, rng, cfg, model, staged)
		}
		if opErr != nil {
			// Space or log pressure: abort, checkpoint to drain, go on.
			if aerr := tx.Abort(); aerr != nil {
				return nil, fmt.Errorf("abort after op error %w: %w", opErr, aerr)
			}
			if cerr := st.Checkpoint(); cerr != nil {
				return nil, fmt.Errorf("checkpoint after aborted txn %d: %w", i, cerr)
			}
			continue
		}
		switch {
		case rng.Intn(10) == 0: // voluntary abort
			if err := tx.Abort(); err != nil {
				return nil, fmt.Errorf("abort txn %d: %w", i, err)
			}
			cfg.Trace("seq %d: txn %d aborted", clock.Seq(), i)
		default:
			force := rng.Intn(100) < 70
			beginSeq := clock.Seq()
			if force {
				err = tx.Commit()
			} else {
				err = tx.CommitNoForce()
			}
			if err != nil {
				return nil, fmt.Errorf("commit txn %d: %w", i, err)
			}
			retSeq := clock.Seq()
			cfg.Trace("seq %d-%d: txn %d committed (force=%v)", beginSeq, retSeq, i, force)
			applyStaged(model, staged)
			sizes := make(map[string]int, len(model))
			for n, c := range model {
				sizes[n] = len(c)
			}
			contents := make(map[string][]byte, len(model))
			for n, c := range model {
				contents[n] = append([]byte{}, c...)
			}
			oracle.Commits = append(oracle.Commits, Commit{
				BeginSeq: beginSeq,
				RetSeq:   retSeq,
				State:    snapshotHashes(model),
				Sizes:    sizes,
				Contents: contents,
			})
		}
	}

	if cfg.NoLoser {
		return oracle, nil
	}
	// Leave a loser in flight: its records sit in the log tail and its
	// in-place replaces may be partially durable — recovery must erase
	// every trace of it.
	//eoslint:ignore pairs -- the loser is deliberately left open: the sweep crashes with it in flight so recovery must erase it
	loser, err := st.Begin()
	if err != nil {
		return nil, fmt.Errorf("begin loser: %w", err)
	}
	staged := map[string]*[]byte{}
	for j := 0; j < 2; j++ {
		if err := randomOp(loser, rng, cfg, model, staged); err != nil {
			break // pressure errors are fine here; the point is open records
		}
	}
	// Push the loser's dirty pages toward the device without committing:
	// a soft checkpoint forces data while the transaction stays open.
	if err := st.Checkpoint(); err != nil {
		return nil, fmt.Errorf("soft checkpoint with loser in flight: %w", err)
	}
	return oracle, nil
}

// randomOp performs one mutating operation on tx, keeping model/staged
// bookkeeping in sync.  Errors are returned for the caller to abort on.
func randomOp(tx *eos.Txn, rng *rand.Rand, cfg WorkloadConfig, model map[string][]byte, staged map[string]*[]byte) error {
	name := fmt.Sprintf("o%d", rng.Intn(cfg.Objects))
	cur, exists := stagedValue(model, staged, name)

	if !exists {
		if err := tx.Create(name, 0); err != nil {
			return err
		}
		v := []byte{}
		staged[name] = &v
		cur = v
		// fall through to also write into the fresh object
	}

	data := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return b
	}

	roll := rng.Intn(100)
	big := len(cur) >= cfg.MaxObjBytes
	defer func() { cfg.Trace("        op on %s done (len was %d)", name, len(cur)) }()
	switch {
	case roll < 8 && exists: // destroy
		if err := tx.Destroy(name); err != nil {
			return err
		}
		staged[name] = nil
		return nil
	case roll < 40 && !big: // append
		d := data(1 + rng.Intn(cfg.MaxWrite))
		if err := tx.Append(name, d); err != nil {
			return err
		}
		nv := append(append([]byte{}, cur...), d...)
		staged[name] = &nv
		return nil
	case roll < 55 && !big: // insert
		off := int64(0)
		if len(cur) > 0 {
			off = int64(rng.Intn(len(cur) + 1))
		}
		d := data(1 + rng.Intn(cfg.MaxWrite))
		if err := tx.Insert(name, off, d); err != nil {
			return err
		}
		nv := make([]byte, 0, len(cur)+len(d))
		nv = append(nv, cur[:off]...)
		nv = append(nv, d...)
		nv = append(nv, cur[off:]...)
		staged[name] = &nv
		return nil
	case roll < 70 && len(cur) > 0: // delete a range
		off := int64(rng.Intn(len(cur)))
		n := int64(1 + rng.Intn(len(cur)-int(off)))
		if err := tx.Delete(name, off, n); err != nil {
			return err
		}
		nv := append(append([]byte{}, cur[:off]...), cur[off+n:]...)
		staged[name] = &nv
		return nil
	case roll < 90 && len(cur) > 0: // replace in place
		off := int64(rng.Intn(len(cur)))
		max := len(cur) - int(off)
		if max > cfg.MaxWrite {
			max = cfg.MaxWrite
		}
		d := data(1 + rng.Intn(max))
		if err := tx.Replace(name, off, d); err != nil {
			return err
		}
		nv := append([]byte{}, cur...)
		copy(nv[off:], d)
		staged[name] = &nv
		return nil
	case len(cur) > 0: // truncate
		newSize := int64(rng.Intn(len(cur)))
		if err := tx.Truncate(name, newSize); err != nil {
			return err
		}
		nv := append([]byte{}, cur[:newSize]...)
		staged[name] = &nv
		return nil
	default: // empty object: append something small
		d := data(1 + rng.Intn(64))
		if err := tx.Append(name, d); err != nil {
			return err
		}
		nv := append(append([]byte{}, cur...), d...)
		staged[name] = &nv
		return nil
	}
}

// stagedValue reads name through the transaction's staging overlay.
func stagedValue(model map[string][]byte, staged map[string]*[]byte, name string) ([]byte, bool) {
	if v, ok := staged[name]; ok {
		if v == nil {
			return nil, false
		}
		return *v, true
	}
	v, ok := model[name]
	return v, ok
}

func applyStaged(model map[string][]byte, staged map[string]*[]byte) {
	for name, v := range staged {
		if v == nil {
			delete(model, name)
		} else {
			model[name] = *v
		}
	}
}

func snapshotHashes(model map[string][]byte) map[string]uint64 {
	out := make(map[string]uint64, len(model))
	for name, content := range model {
		out[name] = hashBytes(content)
	}
	return out
}
