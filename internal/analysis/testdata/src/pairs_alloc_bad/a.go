// Package pairs_alloc_bad holds allocation-leak violations the pairs
// analyzer must report: pages allocated from the buddy system that are
// neither freed nor handed off before an error return.
package pairs_alloc_bad

import (
	"errors"

	"buddy"
	"lob"
)

// leakOnError bails out with an error after allocating without
// freeing the run.  (The condition read of pg does not transfer
// ownership.)
func leakOnError(m *buddy.Manager) error {
	pg, err := m.Alloc(4) // want "alloc leak: the resource from Alloc\\(...\\) in \"pg\" is not released on an error-return path"
	if err != nil {
		return err
	}
	if pg%2 != 0 {
		return errors.New("unaligned run")
	}
	return publish(m, pg)
}

// publish consumes the run on the success path (ownership transfer).
func publish(m *buddy.Manager, pg buddy.PageNum) error { return nil }

// viaAllocator leaks through the interface the large-object layer
// actually allocates with: interface dispatch must match too.
func viaAllocator(a lob.Allocator) error {
	pg, n, err := a.AllocUpTo(8) // want "alloc leak: the resource from AllocUpTo\\(...\\) in \"pg\" is not released on an error-return path"
	if err != nil {
		return err
	}
	if n < 8 {
		return errors.New("short run")
	}
	return record(a, pg, n)
}

// record consumes the run.
func record(a lob.Allocator, pg lob.PageNum, n int) error { return nil }
