package lob

import (
	"math/rand"
	"testing"

	"github.com/eosdb/eos/internal/disk"
)

// TestInsertDeleteNeverOverwriteLeafPages pins down the core §4.5 design
// property: "the last three kinds of updates [insert, delete, append] ...
// modify only the internal nodes of the large object tree without
// overwriting existing leaf pages".  The volume tracer records every
// data write during an operation; none may land on a data page the
// object owned before the operation (appends are exempt for their tail
// segment, which the paper fills in place before trimming).
func TestInsertDeleteNeverOverwriteLeafPages(t *testing.T) {
	e := newEnv(t, 100, 16, 256, Config{Threshold: 4})
	o := e.m.NewObject(0)
	model := pattern(1, 12000)
	if err := o.AppendWithHint(model, 12000); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		// Snapshot the pages the object owns now.
		runs, err := o.ReachablePages()
		if err != nil {
			t.Fatal(err)
		}
		owned := map[disk.PageNum]bool{}
		for _, r := range runs {
			for k := 0; k < r.Pages; k++ {
				owned[r.Start+disk.PageNum(k)] = true
			}
		}
		// Index pages travel through the pool and are flushed later; the
		// tracer below therefore observes only direct data-segment I/O.
		var overwrites []disk.PageNum
		e.vol.SetTracer(func(ev disk.TraceEvent) {
			if !ev.Write {
				return
			}
			for k := 0; k < ev.Pages; k++ {
				if p := ev.Start + disk.PageNum(k); owned[p] {
					overwrites = append(overwrites, p)
				}
			}
		})
		off := int64(rng.Intn(int(o.Size())))
		if i%2 == 0 {
			if err := o.Insert(off, pattern(i, 1+rng.Intn(300))); err != nil {
				t.Fatal(err)
			}
		} else {
			n := int64(1 + rng.Intn(400))
			if off+n > o.Size() {
				n = o.Size() - off
			}
			if n > 0 {
				if err := o.Delete(off, n); err != nil {
					t.Fatal(err)
				}
			}
		}
		e.vol.SetTracer(nil)
		if len(overwrites) > 0 {
			t.Fatalf("op %d overwrote %d pre-existing data pages (e.g. %d)",
				i, len(overwrites), overwrites[0])
		}
	}
	mustCheck(t, o)
}

// TestPaperScaleGeometry exercises the paper's real numbers: 4 KB pages,
// 2^13-page (32 MB) maximum segments, buddy spaces of ~16k pages, and an
// object spanning several maximum-size segments.
func TestPaperScaleGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("80 MB volume")
	}
	const ps = 4096
	// Three spaces of 16000 pages each: ~196 MB of addressable data.
	e := newEnv(t, ps, 3, 16000, Config{Threshold: 16})
	if got := e.m.alloc.MaxSegmentPages(); got != 1<<13 {
		t.Fatalf("max segment = %d pages, want %d", got, 1<<13)
	}
	o := e.m.NewObject(0)
	const size = 40 << 20 // spans two 32 MB max segments
	data := pattern(3, size)
	if err := o.AppendWithHint(data, size); err != nil {
		t.Fatal(err)
	}
	u, err := o.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.MaxSegmentPgs != 1<<13 {
		t.Errorf("largest segment = %d pages, want a maximum-size segment", u.MaxSegmentPgs)
	}
	if u.SegmentCount > 4 {
		t.Errorf("segments = %d, want few maximal segments", u.SegmentCount)
	}

	// Spot-check content at far offsets.
	for _, off := range []int64{0, 31 << 20, size - 4096} {
		got, err := o.Read(off, 4096)
		if err != nil {
			t.Fatal(err)
		}
		for k := range got {
			if got[k] != data[off+int64(k)] {
				t.Fatalf("content mismatch at %d+%d", off, k)
			}
		}
	}

	// A middle insert and delete at this scale stay cheap.
	e.vol.ResetStats()
	if err := o.Insert(20<<20, pattern(4, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(10<<20, 100000); err != nil {
		t.Fatal(err)
	}
	if s := e.vol.Stats(); s.PagesMoved() > 200 {
		t.Errorf("updates on a 40 MB object moved %d pages", s.PagesMoved())
	}
	mustCheck(t, o)
	if err := o.Destroy(); err != nil {
		t.Fatal(err)
	}
}
