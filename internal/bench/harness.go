// Package bench implements the experiment harness that regenerates every
// quantitative claim and worked example of the paper (see DESIGN.md §3
// for the experiment index E1–E13).  Each experiment produces a Table;
// cmd/eosbench prints them, and the repository-root benchmark file wraps
// them in testing.B targets.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
)

// Table is one experiment's result: headers, rows, and the paper claim
// it reproduces.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being checked
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// FprintCSV renders the table as CSV (one header row, then data rows),
// for feeding plots.
func (t *Table) FprintCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, r := range t.Rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"e1", "allocation map encoding and skip-scan (Fig 2-3)", E1AmapLocate},
		{"e2", "one directory access per alloc/free (§3.3)", E2AllocDirectoryIO},
		{"e3", "arbitrary-size alloc/free walkthrough (Fig 4)", E3Figure4},
		{"e4", "search cost worked example (§4.2, Fig 5)", E4SearchCost},
		{"e5", "storage utilization vs threshold T (§4.4)", E5UtilizationVsT},
		{"e6", "clustering preservation under updates (§4.4)", E6SeqReadAfterUpdates},
		{"e7", "cross-system comparison (§2, [Bili91b])", E7Comparison},
		{"e8", "internal fragmentation (§1 obj.5, [Selt91])", E8Fragmentation},
		{"e9", "superdirectory ablation (§3.3)", E9Superdirectory},
		{"e10", "adaptive threshold ablation (§4.4, [Bili91a])", E10AdaptiveT},
		{"e11", "append growth policies (§4.1, Fig 5a-b)", E11AppendGrowth},
		{"e12", "recovery overhead and correctness (§4.5)", E12Recovery},
		{"e13", "update cost vs object size (§1 obj.3)", E13UpdateCostVsObjectSize},
		{"e14", "EXODUS leaf size: search vs utilization (§2)", E14ExodusLeafSizeTension},
		{"e15", "object compaction after heavy editing", E15Compaction},
		{"e16", "application workload mix (§1 motivation)", E16ApplicationWorkloads},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Stack is one freshly formatted storage stack for an experiment.
type Stack struct {
	Vol   disk.Device
	Pool  *buffer.Pool
	Buddy *buddy.Manager
	LM    *lob.Manager
}

// Volume backend selection for the experiment harness.  The default
// simulator reports modelled seek/transfer costs; the file backend
// runs the same experiments against real temp-dir page files, where
// Stats().Micros is measured wall-clock time instead.  Set by
// cmd/eosbench's -backend flag before any stack is built.
var (
	// UseFileBackend routes NewStack* volumes to disk.FileVolume.
	UseFileBackend bool
	// FileBackendDir is where file-backed volumes are created (one
	// numbered file per stack); empty means os.TempDir().
	FileBackendDir string

	fileVolSeq atomic.Int64
)

// newBenchVolume builds one experiment volume on the selected backend.
func newBenchVolume(pageSize int, pages disk.PageNum) (disk.Device, error) {
	if !UseFileBackend {
		return disk.NewVolume(pageSize, pages, disk.DefaultCostModel())
	}
	dir := FileBackendDir
	if dir == "" {
		dir = os.TempDir()
	}
	name := fmt.Sprintf("eosbench-%d-%d.eos", os.Getpid(), fileVolSeq.Add(1))
	fv, err := disk.CreateFileVolume(filepath.Join(dir, name), pageSize, pages, disk.FileOptions{})
	if err != nil {
		return nil, err
	}
	fileVolsMu.Lock()
	fileVols = append(fileVols, fv)
	fileVolsMu.Unlock()
	return fv, nil
}

// Experiments build stacks freely and never tear them down (the
// simulator needs none), so file-backed volumes are tracked here and
// released in one sweep when the run ends.
var (
	fileVolsMu sync.Mutex
	fileVols   []*disk.FileVolume // eos:guardedby fileVolsMu
)

// CleanupFileVolumes closes and deletes every file-backed experiment
// volume created so far; cmd/eosbench defers it around the run.
func CleanupFileVolumes() {
	fileVolsMu.Lock()
	vols := fileVols
	fileVols = nil
	fileVolsMu.Unlock()
	for _, fv := range vols {
		_ = fv.Close()
		_ = os.Remove(fv.Path())
	}
}

// stackGeometry is the default experiment geometry: 1 KB pages, which
// give 2 MB maximum segments and ~3.8 MB buddy spaces.
const (
	benchPageSize = 1024
	benchSpaceCap = 3920
)

// NewStack formats a stack of numSpaces buddy spaces with the given lob
// configuration.
func NewStack(numSpaces int, cfg lob.Config) (*Stack, error) {
	return NewStackGeometry(benchPageSize, numSpaces, benchSpaceCap, cfg, true)
}

// NewStackGeometry formats a stack with explicit geometry.
func NewStackGeometry(pageSize, numSpaces, capacity int, cfg lob.Config, superdir bool) (*Stack, error) {
	pages := disk.PageNum(1 + numSpaces*(capacity+1))
	vol, err := newBenchVolume(pageSize, pages)
	if err != nil {
		return nil, err
	}
	// A single shard pins the global-LRU eviction order so every
	// experiment's seek and page counts stay run-to-run deterministic.
	pool, err := buffer.NewPoolShards(vol, 256, 1)
	if err != nil {
		return nil, err
	}
	bm, err := buddy.FormatVolume(pool, vol, 1, numSpaces, capacity, superdir)
	if err != nil {
		return nil, err
	}
	lm, err := lob.NewManager(vol, pool, bm, cfg)
	if err != nil {
		return nil, err
	}
	return &Stack{Vol: vol, Pool: pool, Buddy: bm, LM: lm}, nil
}

// ResetIO flushes caches and zeroes the I/O counters so a measurement
// starts cold.
func (s *Stack) ResetIO() error {
	if err := s.Pool.FlushAll(); err != nil {
		return err
	}
	s.Vol.ResetStats()
	return nil
}

// ColdIO additionally drops the buffer pool, so index pages are
// re-fetched from disk.
func (s *Stack) ColdIO() error {
	if err := s.Pool.FlushAll(); err != nil {
		return err
	}
	s.Pool.DiscardAll()
	s.Vol.ResetStats()
	return nil
}

// Pattern produces deterministic bytes for workloads.
func Pattern(seed, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(seed*131 + i*7)
	}
	return out
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// fmtMS renders simulated microseconds as milliseconds.
func fmtMS(us int64) string { return fmt.Sprintf("%.2fms", float64(us)/1000) }

// fmtI renders an int64.
func fmtI(v int64) string { return fmt.Sprintf("%d", v) }
