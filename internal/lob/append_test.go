package lob

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestAppenderIsAWriter(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	var w io.Writer = o.OpenAppender(0)
	data := pattern(40, 777)
	n, err := w.Write(data)
	if err != nil || n != len(data) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if err := w.(*Appender).Close(); err != nil {
		t.Fatal(err)
	}
	mustContent(t, o, data)
}

func TestAppenderClosedRejectsWrites(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	a := o.OpenAppender(0)
	if _, err := a.Write(pattern(41, 10)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
	if _, err := a.Write([]byte{1}); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestAppenderKeepsTailUntrimmedUntilClose(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	a := o.OpenAppender(0)
	// Two sub-page writes share the same doubling segment.
	if _, err := a.Write(pattern(42, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(pattern(43, 60)); err != nil {
		t.Fatal(err)
	}
	// Before Close the tail may hold extra allocated pages.
	u, _ := o.Usage()
	preClosePages := u.SegmentPages
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	u, _ = o.Usage()
	if u.SegmentPages > preClosePages {
		t.Errorf("trim grew the object: %d -> %d pages", preClosePages, u.SegmentPages)
	}
	if u.SegmentPages != 2 { // 120 bytes on 100-byte pages
		t.Errorf("pages after trim = %d, want 2", u.SegmentPages)
	}
	mustContent(t, o, append(pattern(42, 60), pattern(43, 60)...))
}

func TestSetGrowthHintShapesSegments(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	for _, g := range []int{3, 5, 2} {
		o.SetGrowthHint(g)
		if err := o.Append(pattern(g, g*100)); err != nil {
			t.Fatal(err)
		}
	}
	pages, err := o.SegmentPageCounts()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(pages) != "[3 5 2]" {
		t.Errorf("segment pages = %v, want [3 5 2]", pages)
	}
	// Out-of-range hints are clamped.
	o.SetGrowthHint(0)
	o.SetGrowthHint(1 << 30)
	if o.nextGrow != e.m.alloc.MaxSegmentPages() {
		t.Errorf("oversized hint not clamped: %d", o.nextGrow)
	}
}

func TestAppendSpillsAcrossSpaces(t *testing.T) {
	// An object larger than one buddy space must spread its segments
	// over several spaces.
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	data := pattern(44, 60000) // 600 pages over 256-page spaces
	if err := o.AppendWithHint(data, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	mustContent(t, o, data)
	mustCheck(t, o)
	u, _ := o.Usage()
	if u.SegmentCount < 3 {
		t.Errorf("segments = %d, want >= 3 (spread over spaces)", u.SegmentCount)
	}
	if err := o.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendOutOfSpace(t *testing.T) {
	e := newEnv(t, 100, 1, 64, Config{Threshold: 1})
	o := e.m.NewObject(0)
	// 64 data pages available; ask for far more.
	err := o.AppendWithHint(pattern(45, 20000), 20000)
	if err == nil {
		t.Fatal("append beyond volume capacity succeeded")
	}
	// The object remains internally consistent (partial append applied).
	mustCheck(t, o)
}

func TestReachablePagesCoversEverything(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 1, MaxRootEntries: 3})
	base := e.freePages(t)
	o := e.m.NewObject(0)
	for i := 0; i < 40; i++ {
		o.SetGrowthHint(1 + i%3)
		if err := o.Append(pattern(i, 150)); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, o)
	runs, err := o.ReachablePages()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := make(map[int64]bool)
	for _, r := range runs {
		total += r.Pages
		for i := 0; i < r.Pages; i++ {
			p := int64(r.Start) + int64(i)
			if seen[p] {
				t.Fatalf("page %d reported twice", p)
			}
			seen[p] = true
		}
	}
	free := e.freePages(t)
	if free+total != base {
		t.Errorf("reachable %d + free %d != initial %d", total, free, base)
	}
}

func TestZeroLengthOpsAreNoOps(t *testing.T) {
	e := newEnv(t, 100, 2, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	if err := o.Append(pattern(46, 500)); err != nil {
		t.Fatal(err)
	}
	u1, _ := o.Usage()
	if err := o.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(250, nil); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(250, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Replace(250, nil); err != nil {
		t.Fatal(err)
	}
	u2, _ := o.Usage()
	if u1 != u2 {
		t.Errorf("zero-length ops changed usage: %+v -> %+v", u1, u2)
	}
	mustContent(t, o, pattern(46, 500))
}

func TestFaultDuringInsertSurfacesError(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 4})
	o := e.m.NewObject(0)
	if err := o.Append(pattern(47, 3000)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	for after := int64(0); after < 5; after++ {
		e.vol.FailAfter(after, boom)
		err := o.Insert(1500, pattern(48, 50))
		e.vol.ClearFault()
		if err != nil && !errors.Is(err, boom) {
			t.Errorf("after %d: unexpected error %v", after, err)
		}
	}
	// Reads still work once faults clear.
	if _, err := o.Read(0, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRebindSwitchesManager(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	if err := o.Append(pattern(49, 500)); err != nil {
		t.Fatal(err)
	}
	// A second manager over the same stack.
	m2, err := NewManager(e.vol, e.pool, e.bm, Config{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	o.Rebind(m2)
	if err := o.Insert(100, pattern(50, 30)); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().Inserts != 1 {
		t.Error("operation not routed through the rebound manager")
	}
	want := append(pattern(49, 500)[:100:100], append(pattern(50, 30), pattern(49, 500)[100:]...)...)
	got, _ := o.Read(0, o.Size())
	if !bytes.Equal(got, want) {
		t.Error("content wrong after rebind")
	}
}
