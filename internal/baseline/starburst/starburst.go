// Package starburst implements the Starburst long field manager (Lehman &
// Lindsay, VLDB 1989) as a comparison baseline for the EOS large object
// manager.
//
// A long field is stored in buddy-allocated segments.  When the eventual
// size is unknown, successive segments double in size until the maximum
// segment size is reached; when known, maximum-size segments are used.
// The last segment is trimmed.  The long field descriptor holds pointers
// to all segments.
//
// Reads, appends, and in-place replacement are efficient.  Byte inserts
// and deletes are not: as §2 of the EOS paper puts it, "these operations
// require all segments to the right of and including the segment on which
// the update is performed to be copied into new segments" — Starburst's
// long fields were intended for large, mostly read-only objects.
package starburst

import (
	"errors"
	"fmt"

	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
)

// ErrOutOfBounds is returned for ranges outside the long field.
var ErrOutOfBounds = errors.New("starburst: byte range out of bounds")

// segment is one buddy-allocated run of pages holding bytes of the field.
type segment struct {
	start disk.PageNum
	bytes int64
	pages int // allocated pages (>= ceil(bytes/ps) while untrimmed)
}

// LongField is one Starburst long field.
type LongField struct {
	vol      disk.Device
	alloc    lob.Allocator
	segs     []segment
	size     int64
	nextGrow int
}

// New creates an empty long field over the volume and allocator.
func New(vol disk.Device, alloc lob.Allocator) *LongField {
	return &LongField{vol: vol, alloc: alloc, nextGrow: 1}
}

// Size returns the field length in bytes.
func (f *LongField) Size() int64 { return f.size }

func (f *LongField) checkRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > f.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, off, off+n, f.size)
	}
	return nil
}

func pagesFor(b int64, ps int) int {
	if b <= 0 {
		return 0
	}
	return int((b + int64(ps) - 1) / int64(ps))
}

// Append appends data; sizeHint > 0 sizes the allocation when the final
// length is known in advance.
func (f *LongField) Append(data []byte) error { return f.AppendWithHint(data, 0) }

// AppendWithHint appends data using the growth policy.
func (f *LongField) AppendWithHint(data []byte, sizeHint int64) error {
	if err := f.appendRaw(data, sizeHint); err != nil {
		return err
	}
	return f.trim()
}

func (f *LongField) appendRaw(data []byte, sizeHint int64) error {
	ps := f.vol.PageSize()
	maxSeg := f.alloc.MaxSegmentPages()
	remaining := data
	for len(remaining) > 0 {
		// Fill free room in the last segment.
		if n := len(f.segs); n > 0 {
			tail := &f.segs[n-1]
			room := int64(tail.pages)*int64(ps) - tail.bytes
			if room > 0 {
				w := room
				if int64(len(remaining)) < w {
					w = int64(len(remaining))
				}
				if err := f.writeAt(tail, tail.bytes, remaining[:w]); err != nil {
					return err
				}
				tail.bytes += w
				f.size += w
				remaining = remaining[w:]
				continue
			}
		}
		want := f.nextGrow
		if sizeHint > 0 {
			// Known size: use maximum-size segments.
			want = maxSeg
		}
		if want > maxSeg {
			want = maxSeg
		}
		start, got, err := f.alloc.AllocUpTo(want)
		if err != nil {
			return err
		}
		f.nextGrow = got * 2
		if f.nextGrow > maxSeg {
			f.nextGrow = maxSeg
		}
		f.segs = append(f.segs, segment{start: start, bytes: 0, pages: got})
	}
	return nil
}

// trim frees the unused pages at the right end of the last segment.
func (f *LongField) trim() error {
	if len(f.segs) == 0 {
		return nil
	}
	tail := &f.segs[len(f.segs)-1]
	used := pagesFor(tail.bytes, f.vol.PageSize())
	if used < tail.pages {
		if err := f.alloc.Free(tail.start+disk.PageNum(used), tail.pages-used); err != nil {
			return err
		}
		tail.pages = used
	}
	if tail.bytes == 0 {
		f.segs = f.segs[:len(f.segs)-1]
	}
	return nil
}

// writeAt writes data at byte offset off within one segment.
func (f *LongField) writeAt(s *segment, off int64, data []byte) error {
	ps := int64(f.vol.PageSize())
	first := off / ps
	last := (off + int64(len(data)) - 1) / ps
	npages := int(last - first + 1)
	raw := make([]byte, npages*int(ps))
	// Preserve surrounding bytes on partially overwritten boundary pages.
	headPartial := off%ps != 0
	tailPartial := (off+int64(len(data)))%ps != 0
	if headPartial || (tailPartial && last == first) {
		if err := f.vol.ReadPages(s.start+disk.PageNum(first), 1, raw[:ps]); err != nil {
			return err
		}
	}
	if tailPartial && last != first {
		if err := f.vol.ReadPages(s.start+disk.PageNum(last), 1, raw[(npages-1)*int(ps):]); err != nil {
			return err
		}
	}
	copy(raw[off-first*ps:], data)
	return f.vol.WritePages(s.start+disk.PageNum(first), npages, raw)
}

// readAt reads n bytes at byte offset off within one segment.
func (f *LongField) readAt(s *segment, off int64, buf []byte) error {
	ps := int64(f.vol.PageSize())
	first := off / ps
	last := (off + int64(len(buf)) - 1) / ps
	npages := int(last - first + 1)
	raw := make([]byte, npages*int(ps))
	if err := f.vol.ReadPages(s.start+disk.PageNum(first), npages, raw); err != nil {
		return err
	}
	copy(buf, raw[off-first*ps:])
	return nil
}

// locate finds the segment containing byte off and the offset of that
// segment's first byte.
func (f *LongField) locate(off int64) (idx int, segStart int64) {
	var cum int64
	for i := range f.segs {
		if off < cum+f.segs[i].bytes {
			return i, cum
		}
		cum += f.segs[i].bytes
	}
	return len(f.segs) - 1, cum - f.segs[len(f.segs)-1].bytes
}

// Read returns n bytes from byte offset off.
func (f *LongField) Read(off, n int64) ([]byte, error) {
	if err := f.checkRange(off, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	pos := int64(0)
	var cum int64
	for i := range f.segs {
		if pos == n {
			break
		}
		s := &f.segs[i]
		start, end := cum, cum+s.bytes
		cum = end
		if off+pos >= end {
			continue
		}
		take := end - (off + pos)
		if take > n-pos {
			take = n - pos
		}
		if err := f.readAt(s, off+pos-start, out[pos:pos+take]); err != nil {
			return nil, err
		}
		pos += take
	}
	return out, nil
}

// Replace overwrites bytes in place.
func (f *LongField) Replace(off int64, data []byte) error {
	if err := f.checkRange(off, int64(len(data))); err != nil {
		return err
	}
	pos := int64(0)
	var cum int64
	for i := range f.segs {
		if pos == int64(len(data)) {
			break
		}
		s := &f.segs[i]
		start, end := cum, cum+s.bytes
		cum = end
		if off+pos >= end {
			continue
		}
		take := end - (off + pos)
		if take > int64(len(data))-pos {
			take = int64(len(data)) - pos
		}
		if err := f.writeAt(s, off+pos-start, data[pos:pos+take]); err != nil {
			return err
		}
		pos += take
	}
	return nil
}

// Insert inserts data at byte off.  Everything from the segment containing
// off rightward is copied into new segments — the cost the EOS design
// avoids.
func (f *LongField) Insert(off int64, data []byte) error {
	if off < 0 || off > f.size {
		return fmt.Errorf("%w: insert at %d of %d", ErrOutOfBounds, off, f.size)
	}
	if len(data) == 0 {
		return nil
	}
	if off == f.size {
		return f.AppendWithHint(data, 0)
	}
	return f.rewriteTail(off, data, 0)
}

// Delete removes n bytes starting at off, rewriting the tail.
func (f *LongField) Delete(off, n int64) error {
	if err := f.checkRange(off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	return f.rewriteTail(off, nil, n)
}

// rewriteTail rebuilds the field from the segment containing byte off
// (off < size): the prefix of that segment is preserved by copying, ins
// is inserted at off, del bytes are dropped, and the old segments are
// freed.
func (f *LongField) rewriteTail(off int64, ins []byte, del int64) error {
	idx, segStart := f.locate(off)
	// Read the tail from segStart to the end.
	tailLen := f.size - segStart
	tail := make([]byte, tailLen)
	pos := int64(0)
	for i := idx; i < len(f.segs); i++ {
		s := &f.segs[i]
		if err := f.readAt(s, 0, tail[pos:pos+s.bytes]); err != nil {
			return err
		}
		pos += s.bytes
	}
	// Build the new tail.
	cut := off - segStart
	newTail := make([]byte, 0, tailLen+int64(len(ins))-del)
	newTail = append(newTail, tail[:cut]...)
	newTail = append(newTail, ins...)
	newTail = append(newTail, tail[cut+del:]...)

	// Free the old segments from idx on.
	for i := idx; i < len(f.segs); i++ {
		s := &f.segs[i]
		if s.pages > 0 {
			if err := f.alloc.Free(s.start, s.pages); err != nil {
				return err
			}
		}
	}
	f.segs = f.segs[:idx]
	f.size = segStart
	// Reset growth to continue the pattern from the surviving prefix.
	f.nextGrow = 1
	if idx > 0 {
		f.nextGrow = f.segs[idx-1].pages * 2
		if max := f.alloc.MaxSegmentPages(); f.nextGrow > max {
			f.nextGrow = max
		}
	}
	return f.AppendWithHint(newTail, int64(len(newTail)))
}

// Destroy frees every segment.
func (f *LongField) Destroy() error {
	for i := range f.segs {
		s := &f.segs[i]
		if s.pages > 0 {
			if err := f.alloc.Free(s.start, s.pages); err != nil {
				return err
			}
		}
	}
	f.segs = nil
	f.size = 0
	f.nextGrow = 1
	return nil
}

// Usage reports the storage footprint: data bytes, allocated data pages,
// and descriptor (index) pages — the descriptor is assumed to fit one
// page, as in Starburst.
func (f *LongField) Usage() (dataBytes int64, dataPages, indexPages int) {
	for i := range f.segs {
		dataPages += f.segs[i].pages
	}
	return f.size, dataPages, 1
}

// SegmentCount reports the number of segments holding the field.
func (f *LongField) SegmentCount() int { return len(f.segs) }
