// Package pairs_iosubmit_bad holds dispatcher-batch violations the
// pairs analyzer must report: a successful Submit whose batch can
// reach a function exit without Wait, leaving the request's buffers
// owned by the dispatcher.
package pairs_iosubmit_bad

import "disk"

// submitNoWait fires a request and never harvests the completion.
func submitNoWait(b *disk.Batch, sqe disk.SQE) error {
	if err := b.Submit(sqe); err != nil { // want "iosubmit leak: Submit\\(b\\) can reach a function exit without Wait\\(b\\)"
		return err
	}
	return nil
}

// waitSkippedOnBranch harvests completions on only one branch: the
// early return abandons every request already submitted.
func waitSkippedOnBranch(d *disk.Dispatcher, sqes []disk.SQE, stop bool) error {
	b := d.NewBatch()
	for _, sqe := range sqes {
		if err := b.Submit(sqe); err != nil { // want "iosubmit leak: Submit\\(b\\) can reach a function exit without Wait\\(b\\)"
			return err
		}
	}
	if stop {
		return nil
	}
	_, _ = b.Wait()
	return nil
}
