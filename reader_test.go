package eos

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func readerObject(t *testing.T, content []byte) *Object {
	t.Helper()
	s, _, _ := newStore(t, Options{})
	o, err := s.Create("r", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Append(content); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestReaderIOCopy(t *testing.T) {
	content := pat(100, 50000)
	o := readerObject(t, content)
	var buf bytes.Buffer
	n, err := io.Copy(&buf, o.NewReader())
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) || !bytes.Equal(buf.Bytes(), content) {
		t.Errorf("io.Copy moved %d bytes; content match=%v", n, bytes.Equal(buf.Bytes(), content))
	}
}

func TestReaderSmallReads(t *testing.T) {
	content := pat(101, 1000)
	o := readerObject(t, content)
	r := o.NewReader()
	var got []byte
	buf := make([]byte, 7)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, content) {
		t.Error("chunked reads lost data")
	}
}

func TestReaderSeek(t *testing.T) {
	content := pat(102, 1000)
	o := readerObject(t, content)
	r := o.NewReader()

	if pos, err := r.Seek(100, io.SeekStart); err != nil || pos != 100 {
		t.Fatalf("SeekStart = (%d, %v)", pos, err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, content[100:110]) {
		t.Error("read after SeekStart wrong")
	}
	if pos, err := r.Seek(-10, io.SeekCurrent); err != nil || pos != 100 {
		t.Fatalf("SeekCurrent = (%d, %v)", pos, err)
	}
	if pos, err := r.Seek(-50, io.SeekEnd); err != nil || pos != 950 {
		t.Fatalf("SeekEnd = (%d, %v)", pos, err)
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, content[950:]) {
		t.Error("tail read wrong")
	}
	if _, err := r.Seek(-1, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
	if _, err := r.Seek(0, 99); err == nil {
		t.Error("bad whence accepted")
	}
	// Seeking past the end is allowed; reads there return EOF.
	if _, err := r.Seek(5000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(buf); err != io.EOF {
		t.Errorf("read past end: %v", err)
	}
}

func TestReaderReadAt(t *testing.T) {
	content := pat(103, 500)
	o := readerObject(t, content)
	r := o.NewReader()
	buf := make([]byte, 50)
	if n, err := r.ReadAt(buf, 200); err != nil || n != 50 {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	if !bytes.Equal(buf, content[200:250]) {
		t.Error("ReadAt content wrong")
	}
	// Short read at the end returns io.EOF with the bytes.
	if n, err := r.ReadAt(buf, 480); err != io.EOF || n != 20 {
		t.Errorf("short ReadAt = (%d, %v)", n, err)
	}
	if _, err := r.ReadAt(buf, 500); err != io.EOF {
		t.Errorf("ReadAt past end: %v", err)
	}
	if _, err := r.ReadAt(buf, -1); err == nil {
		t.Error("negative ReadAt accepted")
	}
	// Position untouched by ReadAt.
	first := make([]byte, 4)
	if _, err := io.ReadFull(r, first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, content[:4]) {
		t.Error("ReadAt moved the position")
	}
}

func TestReaderWriteTo(t *testing.T) {
	content := pat(104, 30000)
	o := readerObject(t, content)
	r := o.NewReader()
	if _, err := r.Seek(10000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20000 || !bytes.Equal(buf.Bytes(), content[10000:]) {
		t.Errorf("WriteTo moved %d bytes", n)
	}
}

func TestReaderWithBufioScanner(t *testing.T) {
	// The paper's document-processing use case: line-oriented scanning.
	text := strings.Repeat("line one\nline two\nthe third line\n", 500)
	o := readerObject(t, []byte(text))
	sc := bufio.NewScanner(o.NewReader())
	lines := 0
	for sc.Scan() {
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 1500 {
		t.Errorf("scanned %d lines, want 1500", lines)
	}
}

func TestSegmentsLayout(t *testing.T) {
	s, _, _ := newStore(t, Options{})
	o, err := s.Create("layout", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown-size appends produce the doubling layout.
	a := o.OpenAppender(0)
	total := 0
	for i := 0; i < 12; i++ {
		chunk := pat(i, 700)
		if _, err := a.Write(chunk); err != nil {
			t.Fatal(err)
		}
		total += len(chunk)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := o.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("segments = %d, want several", len(segs))
	}
	var off, bytesSum int64
	for i, sg := range segs {
		if sg.LogicalOff != off {
			t.Errorf("segment %d: logical offset %d, want %d", i, sg.LogicalOff, off)
		}
		if sg.Bytes <= 0 || sg.Pages <= 0 {
			t.Errorf("segment %d: degenerate %+v", i, sg)
		}
		off += sg.Bytes
		bytesSum += sg.Bytes
	}
	if bytesSum != int64(total) {
		t.Errorf("segments cover %d bytes, want %d", bytesSum, total)
	}
}
