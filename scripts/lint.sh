#!/usr/bin/env bash
# Static-analysis entry point: identical locally and in CI.
#
#   scripts/lint.sh            run every available linter
#   scripts/lint.sh eoslint    run only the eoslint suite
#   scripts/lint.sh --ssa      run only the whole-program passes
#                              (deadlock, walfirstip, leaksip,
#                              forcedom, racecheck)
#   scripts/lint.sh --fixtures smoke-check the analyzers against their
#                              bad fixtures: every pass must still
#                              produce diagnostics there (guards
#                              against a silently-neutered pass)
#
# eoslint (the repo's own go/analysis suite) always runs.  The external
# tools — golangci-lint and govulncheck — run when installed and are
# skipped with a notice otherwise, so an offline checkout can still
# lint the storage-engine invariants that matter most.
set -u
cd "$(dirname "$0")/.."

only="${1:-all}"
failed=0

step() {
    echo "==> $1"
}

if [ "$only" = "--ssa" ] || [ "$only" = "ssa" ]; then
    step "eoslint -ssa (deadlock/WAL-dominance/leak/force-ordering/lockset passes)"
    go run ./cmd/eoslint -ssa ./...
    exit $?
fi

if [ "$only" = "--fixtures" ] || [ "$only" = "fixtures" ]; then
    step "analyzer fixture smoke (every bad fixture must still trip its pass)"
    go test -count=1 -run TestBadFixturesProduceDiagnostics ./internal/analysis/
    exit $?
fi

step "eoslint (pin/latch/atomic/WAL/error invariants)"
if ! go run ./cmd/eoslint ./...; then
    failed=1
fi

if [ "$only" = "eoslint" ]; then
    exit "$failed"
fi

step "eoslint -ssa (deadlock/WAL-dominance/leak/force-ordering/lockset passes)"
if ! go run ./cmd/eoslint -ssa ./...; then
    failed=1
fi

step "go vet self-check (the linter codebase itself stays clean)"
if ! go vet ./internal/analysis/... ./cmd/eoslint; then
    failed=1
fi

if command -v golangci-lint >/dev/null 2>&1; then
    step "golangci-lint"
    if ! golangci-lint run ./...; then
        failed=1
    fi
else
    step "golangci-lint not installed; skipping (CI installs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
    step "govulncheck"
    if ! govulncheck ./...; then
        failed=1
    fi
else
    step "govulncheck not installed; skipping (CI installs it)"
fi

exit "$failed"
