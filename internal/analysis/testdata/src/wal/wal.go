// Package wal is a stand-in for the engine's write-ahead log with the
// method shape walfirst matches on.
package wal

// Record is one log record.
type Record struct {
	Type    int
	Payload []byte
}

// Log is the stand-in write-ahead log.
type Log struct{}

// Append appends a record and returns its LSN.
func (l *Log) Append(rec Record) (int64, error) { return 0, nil }

// Record types, mirroring the engine's vocabulary: forcedom anchors
// its abort-ordering rule on RecAbort literals.
const (
	RecUpdate = 1
	RecCommit = 2
	RecAbort  = 3
)

// Force makes every appended record durable.
func (l *Log) Force() error { return nil }

// ForceLSN makes every record at or below lsn durable.
func (l *Log) ForceLSN(lsn int64) error { return nil }
