package lob

import "fmt"

// Versioned root publish for lock-free snapshot reads.
//
// Shadowing (§4.5) makes every committed root the name of an immutable
// tree: insert, delete and append write fresh index and data pages, so
// the pages a committed root references are never overwritten by later
// structural updates (replace is the one in-place update, and it is
// page-atomic).  A RootVersion captures one such root — a deep copy of
// the root node's entries plus the size and LSN that go with it — in a
// single atomically published value, so a reader can pick it up with
// one atomic load and read through it without the object latch.
//
// The entries are copied because the live root node is spliced in
// place by updates; everything BELOW the root is an on-disk page that
// shadowing never overwrites.  Reclamation of the superseded pages is
// the caller's business: EOS retires freed runs into an epoch manager
// and returns them to the buddy system only when no published root
// that names them can still be held by a reader.

// RootVersion is one published, committed version of an object.  It is
// immutable and safe for concurrent use by any number of readers.
type RootVersion struct {
	m    *Manager
	root *node
	size int64
	lsn  uint64
	seq  uint64
	prev *RootVersion // next-older retained version, nil at the tail
}

// Publish atomically installs the object's current state as its newest
// committed version, retaining up to keep older versions for readers
// that want to pin a slightly stale root.  The caller must hold the
// same exclusion it holds for reading the root (the object latch or a
// committed transaction's exclusive lock), and must call Publish
// BEFORE the pages the superseded version referenced can be freed.
func (o *Object) Publish(keep int) {
	v := &RootVersion{
		m:    o.m,
		root: &node{level: o.root.level, entries: append([]entry(nil), o.root.entries...)},
		size: o.size,
		lsn:  o.lsn.Load(),
	}
	if old := o.published.Load(); old != nil {
		v.seq = old.seq + 1
		v.prev = old
		cut := v
		for i := 0; i < keep && cut.prev != nil; i++ {
			cut = cut.prev
		}
		cut.prev = nil
	}
	o.published.Store(v)
}

// Published returns the newest published version, or nil if the object
// has never been published (e.g. it was created by a transaction that
// has not committed).
func (o *Object) Published() *RootVersion { return o.published.Load() }

// Size returns the version's object length in bytes.
func (v *RootVersion) Size() int64 { return v.size }

// LSN returns the log sequence number the version was published at.
func (v *RootVersion) LSN() uint64 { return v.lsn }

// Seq returns the version's publish sequence number (monotonic per
// object).
func (v *RootVersion) Seq() uint64 { return v.seq }

// Prev returns the next-older retained version, or nil.
func (v *RootVersion) Prev() *RootVersion { return v.prev }

// ReadAt reads len(buf) bytes starting at byte off of the version.  It
// takes no locks: the version's tree is immutable, and the caller's
// epoch pin keeps its pages from being reused.
func (v *RootVersion) ReadAt(buf []byte, off int64) error {
	if off < 0 || off+int64(len(buf)) > v.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, off, off+int64(len(buf)), v.size)
	}
	v.m.st.snapshotReads.Add(1)
	return v.m.readRange(v.root, buf, off)
}

// Read returns n bytes starting at off of the version.
func (v *RootVersion) Read(off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	if err := v.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// SegmentRangeAt reports the logical byte range [start, start+n) of the
// version's leaf segment containing byte off, for segment-at-a-time
// streaming.
func (v *RootVersion) SegmentRangeAt(off int64) (start, n int64, err error) {
	if off < 0 || off >= v.size {
		return 0, 0, fmt.Errorf("%w: byte %d of %d", ErrOutOfBounds, off, v.size)
	}
	nd := v.root
	var base int64
	for {
		i, childStart := nd.childIndex(off - base)
		e := nd.entries[i]
		if nd.level == 1 {
			return base + childStart, e.bytes, nil
		}
		base += childStart
		nd, err = v.m.readNode(e.ptr)
		if err != nil {
			return 0, 0, err
		}
	}
}
