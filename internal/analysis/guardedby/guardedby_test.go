package guardedby_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analyzertest.Run(t, "../testdata", guardedby.Analyzer, "guardedby_bad", "guardedby_clean")
}
