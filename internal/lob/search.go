package lob

import (
	"sync"

	"github.com/eosdb/eos/internal/disk"
)

// The search operation (§4.2) locates byte B by binary-searching the
// counts on the path from the root; at the leaf, byte B within segment S
// is in page S + floor(B/PS), and a range confined to one segment is
// transferred in a single multi-page request — the payoff of physical
// contiguity.

// segmentVisitor receives each (segment, in-segment offset, length)
// triple covering a byte range, in logical order.
type segmentVisitor func(seg entry, segOff int64, n int64) error

// walkRange visits the segments covering [off, off+n) of nd's subtree.
func (m *Manager) walkRange(nd *node, off, n int64, visit segmentVisitor) error {
	var cum int64
	for _, e := range nd.entries {
		if n == 0 {
			return nil
		}
		start, end := cum, cum+e.bytes
		cum = end
		if off >= end {
			continue
		}
		take := end - off
		if take > n {
			take = n
		}
		if nd.level == 1 {
			if err := visit(e, off-start, take); err != nil {
				return err
			}
		} else {
			child, err := m.readNode(e.ptr)
			if err != nil {
				return err
			}
			if err := m.walkRange(child, off-start, take, visit); err != nil {
				return err
			}
		}
		off += take
		n -= take
	}
	return nil
}

// ReadAt reads len(buf) bytes starting at byte off into buf.
//
// With Config.ReadWorkers > 1 a range spanning several segments fans its
// per-segment multi-page transfers out to the manager's bounded worker
// pool so they overlap; otherwise the segments are transferred strictly
// in logical order, which also keeps the volume's seek accounting
// deterministic for the experiment harness.
func (o *Object) ReadAt(buf []byte, off int64) error {
	if err := o.checkRange(off, int64(len(buf))); err != nil {
		return err
	}
	o.m.st.reads.Add(1)
	return o.m.readRange(o.root, buf, off)
}

// readRange reads len(buf) bytes starting at byte off of root's subtree.
// It is shared by the live read path (under the object latch) and the
// snapshot read path (over an immutable published root, no locks): the
// walk itself only ever descends committed index pages.
func (m *Manager) readRange(root *node, buf []byte, off int64) error {
	if m.readSem != nil {
		return m.readRangeFanOut(root, buf, off)
	}
	pos := 0
	return m.walkRange(root, off, int64(len(buf)), func(seg entry, segOff, n int64) error {
		if err := m.readSegRange(seg.ptr, segOff, buf[pos:pos+int(n)]); err != nil {
			return err
		}
		pos += int(n)
		return nil
	})
}

// segSpan is one segment's share of a read: n bytes starting segOff
// bytes into the segment whose data pages begin at ptr, destined for
// buf[pos:pos+n].
type segSpan struct {
	ptr    disk.PageNum
	segOff int64
	pos    int
	n      int
}

// readRangeFanOut overlaps a multi-segment read's data transfers.  The
// index walk stays sequential — node reads go through the buffer pool
// and are usually hits — collecting the segment spans; the spans are
// then dispatched concurrently, at most ReadWorkers in flight across
// the whole manager.  Each span writes a disjoint slice of buf, so the
// workers need no coordination beyond the first-error capture.
func (m *Manager) readRangeFanOut(root *node, buf []byte, off int64) error {
	var spans []segSpan
	pos := 0
	if err := m.walkRange(root, off, int64(len(buf)), func(seg entry, segOff, n int64) error {
		spans = append(spans, segSpan{ptr: seg.ptr, segOff: segOff, pos: pos, n: int(n)})
		pos += int(n)
		return nil
	}); err != nil {
		return err
	}
	if len(spans) == 0 {
		return nil
	}
	if len(spans) == 1 {
		s := spans[0]
		return m.readSegRange(s.ptr, s.segOff, buf[s.pos:s.pos+s.n])
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for _, s := range spans {
		m.readSem <- struct{}{}
		wg.Add(1)
		go func(s segSpan) {
			defer func() {
				<-m.readSem
				wg.Done()
			}()
			if err := m.readSegRange(s.ptr, s.segOff, buf[s.pos:s.pos+s.n]); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(s)
	}
	wg.Wait()
	return firstErr
}

// SegmentRangeAt reports the logical byte range [start, start+n) of the
// leaf segment containing byte off.  The sequential prefetcher uses it
// to size its readahead to exactly one segment, preserving the paper's
// one-request-per-segment transfer discipline.
func (o *Object) SegmentRangeAt(off int64) (start, n int64, err error) {
	if err := o.checkRange(off, 1); err != nil {
		return 0, 0, err
	}
	e, entryStart, _, err := o.findSegment(off)
	if err != nil {
		return 0, 0, err
	}
	return entryStart, e.bytes, nil
}

// Read returns n bytes starting at off.
func (o *Object) Read(off, n int64) ([]byte, error) {
	if err := o.checkRange(off, n); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if err := o.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// Replace overwrites len(data) bytes starting at off with data.  Replace
// modifies leaf pages in place without touching any index node — the one
// EOS update that is logged rather than shadowed (§4.5).
func (o *Object) Replace(off int64, data []byte) error {
	if err := o.checkRange(off, int64(len(data))); err != nil {
		return err
	}
	o.bumpVersion()
	o.m.st.replaces.Add(1)
	pos := int64(0)
	return o.m.walkRange(o.root, off, int64(len(data)), func(seg entry, segOff, n int64) error {
		err := o.m.replaceInSegment(seg, segOff, data[pos:pos+n])
		pos += n
		return err
	})
}

// Extent is a physical location of object bytes: Len bytes starting Off
// bytes into volume page Page.
type Extent struct {
	Page disk.PageNum
	Off  int
	Len  int
}

// RangeExtents maps the logical byte range [off, off+n) to its physical
// page extents, in order.  The transaction layer logs a replace's
// extents so that recovery can physically undo uncommitted in-place
// writes that reached the disk.
func (o *Object) RangeExtents(off, n int64) ([]Extent, error) {
	if err := o.checkRange(off, n); err != nil {
		return nil, err
	}
	ps := int64(o.m.vol.PageSize())
	var out []Extent
	err := o.m.walkRange(o.root, off, n, func(seg entry, segOff, take int64) error {
		for take > 0 {
			page := seg.ptr + disk.PageNum(segOff/ps)
			inPage := segOff % ps
			l := ps - inPage
			if l > take {
				l = take
			}
			out = append(out, Extent{Page: page, Off: int(inPage), Len: int(l)})
			segOff += l
			take -= l
		}
		return nil
	})
	return out, err
}

// replaceInSegment rewrites bytes [segOff, segOff+len(data)) of one
// segment: boundary pages are read-modified, interior pages overwritten
// outright, and the whole affected page run is written back in a single
// contiguous request.
func (m *Manager) replaceInSegment(seg entry, segOff int64, data []byte) error {
	ps := int64(m.vol.PageSize())
	first := segOff / ps
	last := (segOff + int64(len(data)) - 1) / ps
	npages := int(last - first + 1)
	raw := make([]byte, npages*int(ps))

	headPartial := segOff%ps != 0
	tailPartial := (segOff+int64(len(data)))%ps != 0
	if headPartial || (tailPartial && last == first) {
		if err := m.vol.ReadPages(seg.ptr+disk.PageNum(first), 1, raw[:ps]); err != nil {
			return err
		}
	}
	if tailPartial && last != first {
		if err := m.vol.ReadPages(seg.ptr+disk.PageNum(last), 1, raw[(npages-1)*int(ps):]); err != nil {
			return err
		}
	}
	copy(raw[segOff-first*ps:], data)
	if m.cfg.OnDataWrite != nil {
		m.cfg.OnDataWrite(seg.ptr+disk.PageNum(first), npages)
	}
	return m.vol.WritePages(seg.ptr+disk.PageNum(first), npages, raw)
}
