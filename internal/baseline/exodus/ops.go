package exodus

import (
	"fmt"

	"github.com/eosdb/eos/internal/disk"
)

// Read returns n bytes starting at off.
func (o *Object) Read(off, n int64) ([]byte, error) {
	if err := o.checkRange(off, n); err != nil {
		return nil, err
	}
	out := make([]byte, 0, n)
	var walk func(nd *node, off, n int64) error
	walk = func(nd *node, off, n int64) error {
		var cum int64
		for _, e := range nd.entries {
			if n == 0 {
				return nil
			}
			start, end := cum, cum+e.bytes
			cum = end
			if off >= end {
				continue
			}
			take := end - off
			if take > n {
				take = n
			}
			if nd.level == 1 {
				data, err := o.readBlock(e)
				if err != nil {
					return err
				}
				out = append(out, data[off-start:off-start+take]...)
			} else {
				child, err := o.readNode(e.ptr)
				if err != nil {
					return err
				}
				if err := walk(child, off-start, take); err != nil {
					return err
				}
			}
			off += take
			n -= take
		}
		return nil
	}
	if err := walk(o.root, off, n); err != nil {
		return nil, err
	}
	return out, nil
}

// Replace overwrites bytes in place.
func (o *Object) Replace(off int64, data []byte) error {
	if err := o.checkRange(off, int64(len(data))); err != nil {
		return err
	}
	pos := int64(0)
	var walk func(nd *node, off, n int64) error
	walk = func(nd *node, off, n int64) error {
		var cum int64
		for _, e := range nd.entries {
			if n == 0 {
				return nil
			}
			start, end := cum, cum+e.bytes
			cum = end
			if off >= end {
				continue
			}
			take := end - off
			if take > n {
				take = n
			}
			if nd.level == 1 {
				blk, err := o.readBlock(e)
				if err != nil {
					return err
				}
				copy(blk[off-start:], data[pos:pos+take])
				if _, err := o.writeBlock(e.ptr, blk); err != nil {
					return err
				}
				pos += take
			} else {
				child, err := o.readNode(e.ptr)
				if err != nil {
					return err
				}
				// The recursion advances pos itself.
				if err := walk(child, off-start, take); err != nil {
					return err
				}
			}
			off += take
			n -= take
		}
		return nil
	}
	return walk(o.root, off, int64(len(data)))
}

// Append appends data at the end.
func (o *Object) Append(data []byte) error { return o.Insert(o.size, data) }

// Insert inserts data at byte off: the target leaf block is read,
// spliced in memory, and written back — splitting into balanced blocks
// when it overflows, exactly as in B-trees.
func (o *Object) Insert(off int64, data []byte) error {
	if off < 0 || off > o.size {
		return fmt.Errorf("%w: insert at %d of %d", ErrOutOfBounds, off, o.size)
	}
	if len(data) == 0 {
		return nil
	}
	if err := o.insertNode(o.root, off, data); err != nil {
		return err
	}
	if err := o.normalizeRoot(); err != nil {
		return err
	}
	o.size += int64(len(data))
	return nil
}

// insertNode inserts into the subtree of nd (held in memory by the
// caller) and leaves nd.entries updated, possibly beyond maxFanout; the
// caller splits as needed.
func (o *Object) insertNode(nd *node, off int64, data []byte) error {
	if nd.level == 1 {
		if len(nd.entries) == 0 {
			parts := o.splitBytes(data)
			for _, p := range parts {
				e, err := o.writeBlock(0, p)
				if err != nil {
					return err
				}
				nd.entries = append(nd.entries, e)
			}
			return nil
		}
		i, start := nd.childIndex(off)
		e := nd.entries[i]
		blk, err := o.readBlock(e)
		if err != nil {
			return err
		}
		cut := off - start
		merged := make([]byte, 0, int64(len(blk))+int64(len(data)))
		merged = append(merged, blk[:cut]...)
		merged = append(merged, data...)
		merged = append(merged, blk[cut:]...)
		if int64(len(merged)) <= o.leafCap() {
			ne, err := o.writeBlock(e.ptr, merged)
			if err != nil {
				return err
			}
			nd.entries[i] = ne
			return nil
		}
		parts := o.splitBytes(merged)
		repl := make([]entry, 0, len(parts))
		for k, p := range parts {
			pg := disk.PageNum(0)
			if k == 0 {
				pg = e.ptr
			}
			ne, err := o.writeBlock(pg, p)
			if err != nil {
				return err
			}
			repl = append(repl, ne)
		}
		nd.splice(i, i+1, repl)
		return nil
	}

	i, start := nd.childIndex(off)
	child, err := o.readNode(nd.entries[i].ptr)
	if err != nil {
		return err
	}
	if err := o.insertNode(child, off-start, data); err != nil {
		return err
	}
	repl, err := o.writeBackChild(nd.entries[i].ptr, child)
	if err != nil {
		return err
	}
	nd.splice(i, i+1, repl)
	return nil
}

func (n *node) splice(i, j int, repl []entry) {
	out := make([]entry, 0, len(n.entries)-(j-i)+len(repl))
	out = append(out, n.entries[:i]...)
	out = append(out, repl...)
	out = append(out, n.entries[j:]...)
	n.entries = out
}

// writeBackChild persists a child node, splitting on overflow or freeing
// on emptiness.
func (o *Object) writeBackChild(old disk.PageNum, child *node) ([]entry, error) {
	if len(child.entries) == 0 {
		if err := o.freeNodePage(old); err != nil {
			return nil, err
		}
		return nil, nil
	}
	max := o.maxFanout()
	if len(child.entries) <= max {
		p, err := o.writeNode(old, child)
		if err != nil {
			return nil, err
		}
		return []entry{{child.size(), p}}, nil
	}
	nParts := (len(child.entries) + max - 1) / max
	base := len(child.entries) / nParts
	extra := len(child.entries) % nParts
	var out []entry
	pos := 0
	for k := 0; k < nParts; k++ {
		n := base
		if k < extra {
			n++
		}
		part := &node{level: child.level, entries: child.entries[pos : pos+n]}
		pos += n
		pg := disk.PageNum(0)
		if k == 0 {
			pg = old
		}
		p, err := o.writeNode(pg, part)
		if err != nil {
			return nil, err
		}
		out = append(out, entry{part.size(), p})
	}
	return out, nil
}

// normalizeRoot keeps the root within one page and pulls up lone chains.
func (o *Object) normalizeRoot() error {
	max := o.maxFanout()
	for len(o.root.entries) > max {
		repl, err := o.writeBackChild(0, o.root)
		if err != nil {
			return err
		}
		o.root = &node{level: o.root.level + 1, entries: repl}
	}
	for o.root.level > 1 && len(o.root.entries) == 1 {
		child, err := o.readNode(o.root.entries[0].ptr)
		if err != nil {
			return err
		}
		if err := o.freeNodePage(o.root.entries[0].ptr); err != nil {
			return err
		}
		o.root = child
	}
	if len(o.root.entries) == 0 {
		o.root = &node{level: 1}
	}
	return nil
}

// Delete removes n bytes starting at off.
func (o *Object) Delete(off, n int64) error {
	if err := o.checkRange(off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if err := o.deleteNode(o.root, off, off+n); err != nil {
		return err
	}
	if err := o.normalizeRoot(); err != nil {
		return err
	}
	o.size -= n
	return nil
}

// deleteNode removes [lo, hi) from nd's subtree, merging underfull leaf
// blocks and index nodes with siblings.
func (o *Object) deleteNode(nd *node, lo, hi int64) error {
	if nd.level == 1 {
		return o.deleteLeafRange(nd, lo, hi)
	}
	ci, ciStart := nd.childIndex(lo)
	cj, cjStart := nd.childIndex(hi - 1)

	// Free strictly interior children entirely.
	for k := ci + 1; k < cj; k++ {
		if err := o.freeSubtree(nd.entries[k], nd.level); err != nil {
			return err
		}
	}
	var newChildren []entry
	if ci == cj {
		child, err := o.readNode(nd.entries[ci].ptr)
		if err != nil {
			return err
		}
		if err := o.deleteNode(child, lo-ciStart, hi-ciStart); err != nil {
			return err
		}
		newChildren, err = o.writeBackChild(nd.entries[ci].ptr, child)
		if err != nil {
			return err
		}
	} else {
		lchild, err := o.readNode(nd.entries[ci].ptr)
		if err != nil {
			return err
		}
		leftEnd := ciStart + nd.entries[ci].bytes
		if err := o.deleteNode(lchild, lo-ciStart, leftEnd-ciStart); err != nil {
			return err
		}
		left, err := o.writeBackChild(nd.entries[ci].ptr, lchild)
		if err != nil {
			return err
		}
		rchild, err := o.readNode(nd.entries[cj].ptr)
		if err != nil {
			return err
		}
		if err := o.deleteNode(rchild, 0, hi-cjStart); err != nil {
			return err
		}
		right, err := o.writeBackChild(nd.entries[cj].ptr, rchild)
		if err != nil {
			return err
		}
		newChildren = append(left, right...)
	}
	nd.splice(ci, cj+1, newChildren)

	// Fix underfull boundary children.
	for _, c := range newChildren {
		idx := -1
		for k, e := range nd.entries {
			if e.ptr == c.ptr {
				idx = k
				break
			}
		}
		if idx >= 0 {
			if err := o.fixUnderflow(nd, idx); err != nil {
				return err
			}
		}
	}
	return nil
}

// deleteLeafRange removes [lo, hi) from a leaf-parent: interior blocks
// freed outright, boundary blocks rewritten, underfull boundaries merged.
func (o *Object) deleteLeafRange(nd *node, lo, hi int64) error {
	var out []entry
	var cum int64
	var boundary []int // indexes (in out) of rewritten blocks
	for _, e := range nd.entries {
		start, end := cum, cum+e.bytes
		cum = end
		if end <= lo || start >= hi {
			out = append(out, e)
			continue
		}
		if lo <= start && end <= hi {
			if err := o.freeBlock(e.ptr); err != nil {
				return err
			}
			continue
		}
		// Boundary block: keep the surviving bytes.
		blk, err := o.readBlock(e)
		if err != nil {
			return err
		}
		var keep []byte
		if start < lo {
			keep = append(keep, blk[:lo-start]...)
		}
		if end > hi {
			keep = append(keep, blk[max64(hi-start, 0):]...)
		}
		if len(keep) == 0 {
			if err := o.freeBlock(e.ptr); err != nil {
				return err
			}
			continue
		}
		ne, err := o.writeBlock(e.ptr, keep)
		if err != nil {
			return err
		}
		boundary = append(boundary, len(out))
		out = append(out, ne)
	}
	nd.entries = out

	// B-tree invariant: merge boundary blocks below half capacity with a
	// neighbour.
	for bi := len(boundary) - 1; bi >= 0; bi-- {
		if err := o.fixLeafUnderflow(nd, boundary[bi]); err != nil {
			return err
		}
	}
	return nil
}

// fixLeafUnderflow merges or redistributes the leaf block at idx with a
// neighbour when it is below half capacity.
func (o *Object) fixLeafUnderflow(nd *node, idx int) error {
	if idx >= len(nd.entries) || len(nd.entries) < 2 {
		return nil
	}
	if nd.entries[idx].bytes*2 >= o.leafCap() {
		return nil
	}
	sib := idx + 1
	if idx > 0 {
		sib = idx - 1
	}
	li, ri := idx, sib
	if sib < idx {
		li, ri = sib, idx
	}
	a, err := o.readBlock(nd.entries[li])
	if err != nil {
		return err
	}
	b, err := o.readBlock(nd.entries[ri])
	if err != nil {
		return err
	}
	merged := append(append([]byte{}, a...), b...)
	if int64(len(merged)) <= o.leafCap() {
		ne, err := o.writeBlock(nd.entries[li].ptr, merged)
		if err != nil {
			return err
		}
		if err := o.freeBlock(nd.entries[ri].ptr); err != nil {
			return err
		}
		nd.splice(li, ri+1, []entry{ne})
		return nil
	}
	parts := o.splitBytes(merged)
	le, err := o.writeBlock(nd.entries[li].ptr, parts[0])
	if err != nil {
		return err
	}
	re, err := o.writeBlock(nd.entries[ri].ptr, parts[1])
	if err != nil {
		return err
	}
	nd.entries[li] = le
	nd.entries[ri] = re
	return nil
}

// fixUnderflow merges or redistributes an underfull index child.
func (o *Object) fixUnderflow(nd *node, idx int) error {
	child, err := o.readNode(nd.entries[idx].ptr)
	if err != nil {
		return err
	}
	if len(child.entries) >= o.minFanout() || len(nd.entries) < 2 {
		return nil
	}
	sib := idx + 1
	if idx > 0 {
		sib = idx - 1
	}
	li, ri := idx, sib
	if sib < idx {
		li, ri = sib, idx
	}
	lnode, err := o.readNode(nd.entries[li].ptr)
	if err != nil {
		return err
	}
	rnode, err := o.readNode(nd.entries[ri].ptr)
	if err != nil {
		return err
	}
	merged := &node{level: lnode.level}
	merged.entries = append(merged.entries, lnode.entries...)
	junction := len(merged.entries)
	merged.entries = append(merged.entries, rnode.entries...)
	if merged.level > 1 {
		for _, j := range []int{junction - 1, junction} {
			if j >= 0 && j < len(merged.entries) {
				if err := o.fixUnderflow(merged, j); err != nil {
					return err
				}
			}
		}
	}
	if len(merged.entries) <= o.maxFanout() {
		p, err := o.writeNode(nd.entries[li].ptr, merged)
		if err != nil {
			return err
		}
		if err := o.freeNodePage(nd.entries[ri].ptr); err != nil {
			return err
		}
		nd.splice(li, ri+1, []entry{{merged.size(), p}})
		return nil
	}
	half := len(merged.entries) / 2
	ln := &node{level: merged.level, entries: merged.entries[:half]}
	rn := &node{level: merged.level, entries: merged.entries[half:]}
	lp, err := o.writeNode(nd.entries[li].ptr, ln)
	if err != nil {
		return err
	}
	rp, err := o.writeNode(nd.entries[ri].ptr, rn)
	if err != nil {
		return err
	}
	nd.entries[li] = entry{ln.size(), lp}
	nd.entries[ri] = entry{rn.size(), rp}
	return nil
}

// freeSubtree releases every block and node below an entry.
func (o *Object) freeSubtree(e entry, level int) error {
	if level == 1 {
		return o.freeBlock(e.ptr)
	}
	child, err := o.readNode(e.ptr)
	if err != nil {
		return err
	}
	for _, ce := range child.entries {
		if err := o.freeSubtree(ce, child.level); err != nil {
			return err
		}
	}
	return o.freeNodePage(e.ptr)
}

// Destroy frees the whole object.
func (o *Object) Destroy() error {
	for _, e := range o.root.entries {
		if err := o.freeSubtree(e, o.root.level); err != nil {
			return err
		}
	}
	o.root = &node{level: 1}
	o.size = 0
	return nil
}

// Usage reports data bytes, allocated data pages, and index pages.
func (o *Object) Usage() (dataBytes int64, dataPages, indexPages int, err error) {
	var walk func(nd *node) error
	walk = func(nd *node) error {
		for _, e := range nd.entries {
			if nd.level == 1 {
				dataPages += o.leafPages
				continue
			}
			child, err := o.readNode(e.ptr)
			if err != nil {
				return err
			}
			indexPages++
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(o.root); err != nil {
		return 0, 0, 0, err
	}
	return o.size, dataPages, indexPages, nil
}

// BlockCount reports the number of leaf blocks.
func (o *Object) BlockCount() (int, error) {
	count := 0
	var walk func(nd *node) error
	walk = func(nd *node) error {
		for _, e := range nd.entries {
			if nd.level == 1 {
				count++
				continue
			}
			child, err := o.readNode(e.ptr)
			if err != nil {
				return err
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	return count, walk(o.root)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Check validates the tree: levels descend by one, counts match subtree
// contents, leaf blocks fit the fixed capacity, and non-root index nodes
// respect the occupancy floor.
func (o *Object) Check() error {
	var walk func(nd *node, isRoot bool) (int64, error)
	walk = func(nd *node, isRoot bool) (int64, error) {
		if !isRoot {
			if len(nd.entries) < o.minFanout() || len(nd.entries) > o.maxFanout() {
				return 0, fmt.Errorf("%w: node with %d entries (want %d..%d)",
					ErrCorrupt, len(nd.entries), o.minFanout(), o.maxFanout())
			}
		}
		var total int64
		for _, e := range nd.entries {
			if e.bytes <= 0 {
				return 0, fmt.Errorf("%w: non-positive entry", ErrCorrupt)
			}
			if nd.level == 1 {
				if e.bytes > o.leafCap() {
					return 0, fmt.Errorf("%w: leaf block of %d bytes exceeds capacity %d",
						ErrCorrupt, e.bytes, o.leafCap())
				}
				total += e.bytes
				continue
			}
			child, err := o.readNode(e.ptr)
			if err != nil {
				return 0, err
			}
			if child.level != nd.level-1 {
				return 0, fmt.Errorf("%w: level %d child under level %d", ErrCorrupt, child.level, nd.level)
			}
			sub, err := walk(child, false)
			if err != nil {
				return 0, err
			}
			if sub != e.bytes {
				return 0, fmt.Errorf("%w: entry %d bytes, subtree %d", ErrCorrupt, e.bytes, sub)
			}
			total += e.bytes
		}
		return total, nil
	}
	total, err := walk(o.root, true)
	if err != nil {
		return err
	}
	if total != o.size {
		return fmt.Errorf("%w: tree total %d != size %d", ErrCorrupt, total, o.size)
	}
	return nil
}
