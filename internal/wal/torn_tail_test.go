package wal

import (
	"bytes"
	"testing"

	"github.com/eosdb/eos/internal/disk"
)

// Torn-tail corpus: a crash can leave the final log record in any
// partially-written state — header torn mid-write, payload torn,
// arbitrary garbage, or stale bytes from a previous log epoch sitting
// at the write position.  In every case Recover must treat the damage
// as end-of-log: return exactly the intact prefix, position the tail at
// its end, and leave the log appendable (new records overwrite the torn
// region and survive a second recovery).

// tornCase mutates the raw volume image in place.  lastOff/lastSize
// delimit the final (victim) record; firstOff/firstSize the first one.
type tornCase struct {
	name string
	mut  func(img []byte, lastOff, lastSize, firstOff, firstSize int)
}

func tornTailCorpus() []tornCase {
	return []tornCase{
		{"zeroed-record", func(img []byte, off, size, _, _ int) {
			// The write never reached the device at all: the size field
			// reads 0 < recHeaderSize, which Scan treats as a clean end.
			for i := off; i < off+size; i++ {
				img[i] = 0
			}
		}},
		{"torn-mid-header", func(img []byte, off, size, _, _ int) {
			// CRC and size landed, the rest of the header did not.
			for i := off + 8; i < off+size; i++ {
				img[i] = 0
			}
		}},
		{"torn-mid-payload", func(img []byte, off, size, _, _ int) {
			// Header intact, payload bytes lost: checksum must catch it.
			for i := off + recHeaderSize; i < off+size; i++ {
				img[i] ^= 0x5A
			}
		}},
		{"garbage-tail", func(img []byte, off, size, _, _ int) {
			// Arbitrary junk: the size field decodes to nonsense.
			for i := off; i < off+size; i++ {
				img[i] = 0xA5
			}
		}},
		{"stale-epoch-record", func(img []byte, off, size, firstOff, firstSize int) {
			// A fully intact record from another position (as a reused
			// log region would contain): CRC passes, but its LSN does
			// not match base+off+1, so Scan must still stop.
			if firstSize > size {
				firstSize = size
			}
			copy(img[off:off+firstSize], img[firstOff:firstOff+firstSize])
		}},
	}
}

// buildTornLog appends a prefix of records plus one victim record,
// forces everything, and returns the volume along with the victim's
// byte offset/size and the first record's offset/size.
func buildTornLog(t *testing.T, victim *Record) (vol *disk.Volume, prefixLSNs []uint64, lastOff, lastSize, firstOff, firstSize int) {
	t.Helper()
	l, v := newLog(t, 64)
	prefix := []*Record{
		{Txn: 1, Type: RecBegin},
		{Txn: 1, Type: RecInsert, Object: 3, Off: 0, Data: []byte("durable payload")},
		{Txn: 1, Type: RecCommit},
	}
	for _, r := range prefix {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		prefixLSNs = append(prefixLSNs, lsn)
	}
	firstOff = int(prefixLSNs[0]) - 1
	firstSize = int(prefixLSNs[1]) - 1 - firstOff
	lsn, err := l.Append(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	lastOff = int(lsn) - 1
	lastSize = int(l.Tail()) - lastOff
	return v, prefixLSNs, lastOff, lastSize, firstOff, firstSize
}

func TestRecoverTornTailCorpus(t *testing.T) {
	for _, tc := range tornTailCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			victim := &Record{Txn: 2, Type: RecAppend, Object: 3, Data: []byte("torn away")}
			vol, prefixLSNs, lastOff, lastSize, firstOff, firstSize := buildTornLog(t, victim)

			img, err := vol.Read(0, int(vol.NumPages()))
			if err != nil {
				t.Fatal(err)
			}
			tc.mut(img, lastOff, lastSize, firstOff, firstSize)
			if err := vol.WritePages(0, int(vol.NumPages()), img); err != nil {
				t.Fatal(err)
			}

			l2, recs, err := Recover(vol, 0)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if len(recs) != len(prefixLSNs) {
				t.Fatalf("recovered %d records, want intact prefix of %d", len(recs), len(prefixLSNs))
			}
			for i, r := range recs {
				if r.LSN != prefixLSNs[i] {
					t.Errorf("record %d: LSN %d, want %d", i, r.LSN, prefixLSNs[i])
				}
			}
			if got := l2.Tail(); got != int64(lastOff) {
				t.Errorf("tail at %d, want end of intact prefix %d", got, lastOff)
			}

			// The log must remain usable: a fresh append lands where the
			// torn record was and survives another recovery.
			fresh := &Record{Txn: 9, Type: RecAppend, Object: 3, Data: []byte("after the tear")}
			lsn, err := l2.Append(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if lsn != uint64(lastOff)+1 {
				t.Errorf("fresh record at LSN %d, want %d (overwriting the tear)", lsn, lastOff+1)
			}
			if err := l2.Force(); err != nil {
				t.Fatal(err)
			}
			_, recs2, err := Recover(vol, 0)
			if err != nil {
				t.Fatalf("second Recover: %v", err)
			}
			if len(recs2) != len(prefixLSNs)+1 {
				t.Fatalf("after re-append recovered %d records, want %d", len(recs2), len(prefixLSNs)+1)
			}
			last := recs2[len(recs2)-1]
			if last.LSN != lsn || !bytes.Equal(last.Data, fresh.Data) {
				t.Errorf("fresh record did not round-trip: %+v", last)
			}
		})
	}
}

// TestRecoverTornMultiPageRecord tears a record that spans pages at the
// page boundary: the first page of the record is durable, the rest is
// not — the shape a real partial flush produces.
func TestRecoverTornMultiPageRecord(t *testing.T) {
	big := &Record{Txn: 2, Type: RecAppend, Object: 3, Data: bytes.Repeat([]byte{0xCD}, 700)}
	vol, prefixLSNs, lastOff, lastSize, _, _ := buildTornLog(t, big)
	if lastSize <= 256 {
		t.Fatalf("victim record must span pages, got %d bytes", lastSize)
	}

	img, err := vol.Read(0, int(vol.NumPages()))
	if err != nil {
		t.Fatal(err)
	}
	// Zero every page of the record after the first.
	ps := 256
	secondPage := (lastOff/ps + 1) * ps
	for i := secondPage; i < lastOff+lastSize; i++ {
		img[i] = 0
	}
	if err := vol.WritePages(0, int(vol.NumPages()), img); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := Recover(vol, 0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recs) != len(prefixLSNs) {
		t.Fatalf("recovered %d records, want intact prefix of %d", len(recs), len(prefixLSNs))
	}
	if got := l2.Tail(); got != int64(lastOff) {
		t.Errorf("tail at %d, want %d", got, lastOff)
	}
}
