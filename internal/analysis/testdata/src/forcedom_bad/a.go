// Package forcedom_bad seeds the five crash-ordering bug shapes PR 8's
// crash-point sweep found dynamically, one per §8.1 contract, plus an
// interprocedural and a skipped-force variant.  Every shape must be
// reported.
package forcedom_bad

import (
	"os"
	"sync/atomic"

	"buddy"
	"disk"
	"lob"
	"wal"
)

// Store mirrors the engine root: checkpoint meta writers, the backing
// volume, and the quarantine barrier stamp.
type Store struct {
	vol            *disk.FileVolume
	buddy          *buddy.Manager
	barrierDurable atomic.Uint64
}

func (s *Store) writeHeader() error  { return nil }
func (s *Store) writeCatalog() error { return nil }

// Txn mirrors the transaction type the -recv flag roots rule 1 on.
type Txn struct {
	log *wal.Log
	obj *lob.Object
	s   *Store
}

// Replace is shape 1 (PR 8: unforced pre-images): the update record is
// appended but never forced before the in-place overwrite.
func (t *Txn) Replace(off int64, p []byte) error {
	if _, err := t.log.Append(wal.Record{Type: wal.RecUpdate}); err != nil {
		return err
	}
	return t.obj.Replace(off, p) // want "in-place overwrite Object.Replace is not dominated by a WAL force"
}

// ReplaceVia is shape 1 across a call: the overwrite hides in a
// helper, so only the interprocedural summary can see it.
func (t *Txn) ReplaceVia(off int64, p []byte) error {
	if _, err := t.log.Append(wal.Record{Type: wal.RecUpdate}); err != nil {
		return err
	}
	return t.applyReplace(off, p) // want "call can overwrite previously-forced object state in place before a WAL force .*applyReplace"
}

func (t *Txn) applyReplace(off int64, p []byte) error {
	return t.obj.Replace(off, p)
}

// ReplaceMaybe is shape 1 with a skipped force: the force exists but
// the fast path goes around it, so it does not dominate the overwrite.
func (t *Txn) ReplaceMaybe(off int64, p []byte, fast bool) error {
	if _, err := t.log.Append(wal.Record{Type: wal.RecUpdate}); err != nil {
		return err
	}
	if !fast {
		if err := t.log.Force(); err != nil {
			return err
		}
	}
	return t.obj.Replace(off, p) // want "in-place overwrite Object.Replace is not dominated by a WAL force"
}

// Checkpoint is shape 2 (PR 8: checkpoint ordering): the header and
// catalog reach disk before the data pages they index are forced.
func (s *Store) Checkpoint() error {
	if err := s.writeHeader(); err != nil { // want "checkpoint metadata write Store.writeHeader is not dominated by a device force"
		return err
	}
	if err := s.writeCatalog(); err != nil { // want "checkpoint metadata write Store.writeCatalog is not dominated by a device force"
		return err
	}
	return s.vol.ForceAll()
}

// Abort is shape 3 (PR 8: abort-before-compensation): the abort record
// is constructed and appended before compensations are durable.
func (t *Txn) Abort() error {
	rec := wal.Record{Type: wal.RecAbort} // want "abort-record construction .* is not dominated by a device force"
	if _, err := t.log.Append(rec); err != nil {
		return err
	}
	return t.s.vol.ForceAll()
}

// Release is shape 4 (PR 8: freed-extent reuse): extents return to the
// allocator without consulting the quarantine barrier.
func (s *Store) Release(start buddy.PageNum, n int) error {
	return s.buddy.Free(start, n) // want "freed-extent release Manager.Free is not dominated by a barrierDurable quarantine stamp"
}

// ReleaseStamped keeps the package quarantine-aware (rule 4 activates
// only where the barrier is operated) and shows the discharged shape.
func (s *Store) ReleaseStamped(start buddy.PageNum, n int) error {
	if s.barrierDurable.Load() == 0 {
		return nil
	}
	return s.buddy.Free(start, n)
}

// Save is shape 5 (SaveFile atomicity): the rename reaches a success
// exit with no owning-directory sync.
func Save(tmp, path string) error {
	if err := os.Rename(tmp, path); err != nil { // want "renamed file can vanish on crash"
		return err
	}
	return nil
}

// SaveVia leaves the rename open through a helper: the helper's
// rename-open summary propagates to the caller's success exit.
func SaveVia(tmp, path string) error {
	if err := renameOnly(tmp, path); err != nil { // want "call leaves a renamed file with no owning-directory sync .*renameOnly"
		return err
	}
	return nil
}

func renameOnly(tmp, path string) error {
	return os.Rename(tmp, path)
}
