package bench

import (
	"bytes"
	"fmt"

	"github.com/eosdb/eos"
	"github.com/eosdb/eos/internal/disk"
)

// E12Recovery measures the §4.5 recovery design: per-operation log
// volume (replace logs old + new values; insert/delete/append log the
// operation and its parameters), shadowed index pages, and crash
// recovery correctness via the LSN-guarded redo.
func E12Recovery() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "recovery overhead and crash correctness (§4.5)",
		Claim:   "replace is logged; insert/delete/append shadow index pages and never overwrite leaf pages; the root LSN makes redo idempotent",
		Headers: []string{"operation", "op bytes", "log bytes", "shadowed index pages", "commit pages forced"},
	}
	mkStore := func() (*eos.Store, *disk.Volume, *disk.Volume, error) {
		vol, err := disk.NewVolume(1024, 8192, disk.DefaultCostModel())
		if err != nil {
			return nil, nil, nil, err
		}
		logVol, err := disk.NewVolume(1024, 4096, disk.DefaultCostModel())
		if err != nil {
			return nil, nil, nil, err
		}
		// A small root forces real index nodes so shadowing is visible.
		s, err := eos.Format(vol, logVol, eos.Options{Threshold: 8, MaxRootEntries: 4})
		return s, vol, logVol, err
	}

	s, vol, _, err := mkStore()
	if err != nil {
		return nil, err
	}
	o, err := s.Create("obj", 0)
	if err != nil {
		return nil, err
	}
	// Build the object from chunked appends so it has many segments and
	// a real index tree.
	ap := o.OpenAppender(0)
	for w := 0; w < 1<<20; w += 8192 {
		if _, err := ap.Write(Pattern(w, 8192)); err != nil {
			return nil, err
		}
	}
	if err := ap.Close(); err != nil {
		return nil, err
	}
	if err := s.Checkpoint(); err != nil {
		return nil, err
	}

	type op struct {
		name string
		run  func(tx *eos.Txn) error
	}
	const opBytes = 1024
	ops := []op{
		{"replace", func(tx *eos.Txn) error { return tx.Replace("obj", 5000, Pattern(2, opBytes)) }},
		{"insert", func(tx *eos.Txn) error { return tx.Insert("obj", 5000, Pattern(3, opBytes)) }},
		{"delete", func(tx *eos.Txn) error { return tx.Delete("obj", 5000, opBytes) }},
		{"append", func(tx *eos.Txn) error { return tx.Append("obj", Pattern(4, opBytes)) }},
	}
	for _, op := range ops {
		logBefore := s.LogTail()
		tx, err := s.Begin()
		if err != nil {
			return nil, err
		}
		if err := op.run(tx); err != nil {
			_ = tx.Abort()
			return nil, err
		}
		shadowed := tx.LOBStats().ShadowedIndexPages
		vol.ResetStats()
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		commitIO := vol.Stats()
		t.AddRow(op.name, fmt.Sprint(opBytes),
			fmtI(s.LogTail()-logBefore),
			fmtI(shadowed),
			fmtI(commitIO.PagesWritten))
	}

	// Crash-recovery drill: commit transactions whose data pages never
	// reach the disk, crash, reopen, and verify contents byte for byte.
	s2, vol2, logVol2, err := mkStore()
	if err != nil {
		return nil, err
	}
	o2, err := s2.Create("d", 0)
	if err != nil {
		return nil, err
	}
	base := Pattern(5, 200<<10)
	if err := o2.Append(base); err != nil {
		return nil, err
	}
	if err := s2.Checkpoint(); err != nil {
		return nil, err
	}
	model := append([]byte{}, base...)
	for i := 0; i < 10; i++ {
		tx, err := s2.Begin()
		if err != nil {
			return nil, err
		}
		data := Pattern(6+i, 2048)
		off := int64(i * 1000)
		if err := tx.Insert("d", off, data); err != nil {
			_ = tx.Abort()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
	}
	if err := vol2.Crash(); err != nil {
		return nil, err
	}
	if err := logVol2.Crash(); err != nil {
		return nil, err
	}
	vol2.ResetStats()
	s3, err := eos.Open(vol2, logVol2, eos.Options{})
	if err != nil {
		return nil, err
	}
	recoveryIO := vol2.Stats()
	o3, err := s3.Open("d")
	if err != nil {
		return nil, err
	}
	got, err := o3.Read(0, o3.Size())
	if err != nil {
		return nil, err
	}
	verdict := "VERIFIED"
	if !bytes.Equal(got, model) {
		verdict = "MISMATCH"
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("crash drill: 10 committed txns, data forces withheld, crash, reopen: content %s", verdict),
		fmt.Sprintf("recovery I/O: %d pages read, %d written (free-space rebuild + redo + checkpoint)",
			recoveryIO.PagesRead, recoveryIO.PagesWritten))
	return t, nil
}
