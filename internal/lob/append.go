package lob

import (
	"fmt"

	"github.com/eosdb/eos/internal/disk"
)

// Append semantics follow §4.1.  When the eventual object size is known
// in advance it is given as a hint and segments just large enough are
// allocated.  When it is unknown, successive segments double in size
// until the maximum segment size is reached (the Starburst growth scheme
// the paper adopts), and at the end of a multi-append sequence the last
// segment is trimmed — its unused pages at the right end are given back
// to the free space, which is trivial because the buddy system frees with
// one-page precision.

// Appender streams bytes onto the end of an object.  Close trims the
// tail segment.  It implements io.Writer.
type Appender struct {
	o      *Object
	hint   int64
	closed bool
}

// OpenAppender starts an append sequence.  sizeHint, when positive, is
// the expected number of bytes the whole sequence will add (plus the
// current size); 0 means unknown.
func (o *Object) OpenAppender(sizeHint int64) *Appender {
	return &Appender{o: o, hint: sizeHint}
}

// Write appends p to the object.
func (a *Appender) Write(p []byte) (int, error) {
	if a.closed {
		return 0, fmt.Errorf("lob: appender closed")
	}
	if err := a.o.appendBytes(p, a.hint); err != nil {
		return 0, err
	}
	a.hint -= int64(len(p))
	return len(p), nil
}

// Close ends the sequence and trims the tail segment.
func (a *Appender) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	return a.o.Trim()
}

// Append appends data in one step (open, write, trim).
func (o *Object) Append(data []byte) error {
	return o.AppendWithHint(data, 0)
}

// AppendWithHint appends data, using sizeHint (total bytes expected to
// follow, including data) to size the allocation when positive.
func (o *Object) AppendWithHint(data []byte, sizeHint int64) error {
	if err := o.appendBytes(data, sizeHint); err != nil {
		return err
	}
	return o.Trim()
}

// SetGrowthHint overrides the doubling schedule: the next segment
// allocated by an append without a size hint will request the given
// number of pages.  Applications with knowledge of their chunk sizes can
// use this to lay out exact segment patterns.
func (o *Object) SetGrowthHint(pages int) {
	if pages < 1 {
		pages = 1
	}
	if max := o.m.alloc.MaxSegmentPages(); pages > max {
		pages = max
	}
	o.nextGrow = pages
}

// Trim frees the unused pages at the right end of the tail segment.
func (o *Object) Trim() error {
	if o.tailAlloc == 0 {
		return nil
	}
	_, tailLen, err := o.tailEntry()
	if err != nil {
		return err
	}
	used := pagesFor(tailLen, o.m.vol.PageSize())
	if used < o.tailAlloc {
		if err := o.m.alloc.Free(o.tailStart+disk.PageNum(used), o.tailAlloc-used); err != nil {
			return err
		}
	}
	o.tailAlloc = 0
	o.tailStart = 0
	return nil
}

// tailEntry returns the last leaf entry's start byte offset and length.
func (o *Object) tailEntry() (startByte, length int64, err error) {
	e, start, _, err := o.findSegment(o.size)
	if err != nil {
		return 0, 0, err
	}
	return start, e.bytes, nil
}

func (o *Object) appendBytes(data []byte, sizeHint int64) error {
	if len(data) == 0 {
		return nil
	}
	o.bumpVersion()
	o.m.st.appends.Add(1)
	m := o.m
	ps := m.vol.PageSize()
	maxSeg := m.alloc.MaxSegmentPages()

	remaining := data
	for len(remaining) > 0 {
		// Fill free room in the untrimmed tail segment first.
		if o.tailAlloc > 0 {
			tailStartByte, tailLen, err := o.tailEntry()
			if err != nil {
				return err
			}
			room := int64(o.tailAlloc)*int64(ps) - tailLen
			if room > 0 {
				w := room
				if int64(len(remaining)) < w {
					w = int64(len(remaining))
				}
				if err := o.writeTail(tailLen, remaining[:w]); err != nil {
					return err
				}
				repl := []entry{{bytes: tailLen + w, ptr: o.tailStart}}
				if err := o.spliceLeafRange(tailStartByte, o.size, repl, true, true); err != nil {
					return err
				}
				remaining = remaining[w:]
				continue
			}
		}

		// Allocate a new tail segment: hint-sized when the size is known,
		// else the doubling schedule.
		want := o.nextGrow
		if sizeHint > 0 {
			if hinted := pagesFor(sizeHint-int64(len(data)-len(remaining)), ps); hinted > 0 {
				want = hinted
			}
		}
		if want > maxSeg {
			want = maxSeg
		}
		if want < 1 {
			want = 1
		}
		start, got, err := m.alloc.AllocUpTo(want)
		if err != nil {
			return err
		}
		m.st.segmentsAllocated.Add(1)
		o.nextGrow = got * 2
		if o.nextGrow > maxSeg {
			o.nextGrow = maxSeg
		}
		w := int64(got) * int64(ps)
		if int64(len(remaining)) < w {
			w = int64(len(remaining))
		}
		if err := m.writeSegment(start, remaining[:w]); err != nil {
			return err
		}
		newTail := entry{bytes: w, ptr: start}
		if o.size == 0 && len(o.root.entries) == 0 {
			if err := o.spliceLeafRange(0, 0, []entry{newTail}, false, false); err != nil {
				return err
			}
		} else {
			prevTail, tailStartByte, _, err := o.findSegment(o.size)
			if err != nil {
				return err
			}
			repl := []entry{prevTail, newTail}
			if err := o.spliceLeafRange(tailStartByte, o.size, repl, true, true); err != nil {
				return err
			}
		}
		o.tailStart = start
		o.tailAlloc = got
		remaining = remaining[w:]
	}
	return nil
}

// writeTail appends w bytes at byte offset tailLen of the tail segment.
// Only the partial last page (if any) is read back; the affected page run
// is written in one contiguous request.
func (o *Object) writeTail(tailLen int64, data []byte) error {
	m := o.m
	ps := int64(m.vol.PageSize())
	first := tailLen / ps
	last := (tailLen + int64(len(data)) - 1) / ps
	npages := int(last - first + 1)
	raw := make([]byte, npages*int(ps))
	if tailLen%ps != 0 {
		if err := m.vol.ReadPages(o.tailStart+disk.PageNum(first), 1, raw[:ps]); err != nil {
			return err
		}
	}
	copy(raw[tailLen-first*ps:], data)
	if m.cfg.OnDataWrite != nil {
		m.cfg.OnDataWrite(o.tailStart+disk.PageNum(first), npages)
	}
	return m.vol.WritePages(o.tailStart+disk.PageNum(first), npages, raw)
}
