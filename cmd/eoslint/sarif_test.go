package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const vetStream = `# github.com/eosdb/eos/internal/wal
{
	"github.com/eosdb/eos/internal/wal": {
		"deadlock": [
			{
				"posn": "/src/eos/internal/wal/log.go:42:2",
				"message": "interprocedural lock order inversion: call chain a → b"
			}
		],
		"pairs": []
	}
}
# github.com/eosdb/eos/internal/buffer
{
	"github.com/eosdb/eos/internal/buffer": {
		"leaksip": [
			{
				"posn": "/src/eos/internal/buffer/pool.go:7:10",
				"message": "interprocedural pin leak: call chain pinPage acquires pg"
			}
		]
	}
}
# github.com/eosdb/eos/internal/eos
{
	"github.com/eosdb/eos/internal/eos": {
		"forcedom": [
			{
				"posn": "/src/eos/internal/eos/txn.go:100:9",
				"message": "in-place overwrite Object.Replace is not dominated by a WAL force of its pre-image record",
				"related": [
					{
						"posn": "/src/eos/internal/eos/txn.go:90:12",
						"message": "candidate WAL force of its pre-image record here does not dominate the overwrite"
					}
				]
			}
		]
	}
}
`

func TestCollectDiagnostics(t *testing.T) {
	diags := collectDiagnostics([]byte(vetStream))
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %+v", len(diags), diags)
	}
	byAnalyzer := map[string]diag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = d
	}
	d, ok := byAnalyzer["deadlock"]
	if !ok {
		t.Fatalf("no deadlock diagnostic in %+v", diags)
	}
	if d.File != "/src/eos/internal/wal/log.go" || d.Line != 42 || d.Column != 2 {
		t.Errorf("deadlock posn parsed as %q:%d:%d", d.File, d.Line, d.Column)
	}
	if !strings.Contains(d.Message, "lock order inversion") {
		t.Errorf("deadlock message = %q", d.Message)
	}
	if _, ok := byAnalyzer["leaksip"]; !ok {
		t.Errorf("no leaksip diagnostic in %+v", diags)
	}
	fd, ok := byAnalyzer["forcedom"]
	if !ok {
		t.Fatalf("no forcedom diagnostic in %+v", diags)
	}
	if len(fd.Related) != 1 {
		t.Fatalf("forcedom diagnostic has %d related positions, want 1", len(fd.Related))
	}
	r := fd.Related[0]
	if r.File != "/src/eos/internal/eos/txn.go" || r.Line != 90 || r.Column != 12 {
		t.Errorf("related posn parsed as %q:%d:%d", r.File, r.Line, r.Column)
	}
	if !strings.Contains(r.Message, "does not dominate") {
		t.Errorf("related message = %q", r.Message)
	}
}

func TestCollectDiagnosticsEmpty(t *testing.T) {
	if diags := collectDiagnostics([]byte("# pkg\n{\"pkg\": {\"pairs\": []}}\n")); len(diags) != 0 {
		t.Fatalf("clean stream produced %+v", diags)
	}
}

func TestSplitPosn(t *testing.T) {
	for _, tc := range []struct {
		posn string
		file string
		line int
		col  int
	}{
		{"/a/b.go:10:3", "/a/b.go", 10, 3},
		{"b.go:7:1", "b.go", 7, 1},
		{"b.go", "b.go", 1, 1},
	} {
		file, line, col := splitPosn(tc.posn)
		if file != tc.file || line != tc.line || col != tc.col {
			t.Errorf("splitPosn(%q) = %q,%d,%d want %q,%d,%d",
				tc.posn, file, line, col, tc.file, tc.line, tc.col)
		}
	}
}

func TestWriteSARIF(t *testing.T) {
	diags := collectDiagnostics([]byte(vetStream))
	var buf bytes.Buffer
	if err := writeSARIF(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "eoslint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// The rule inventory covers the whole suite, including the three
	// whole-program passes, regardless of which analyzers fired.
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		if r.ShortDesc.Text == "" || strings.Contains(r.ShortDesc.Text, "\n") {
			t.Errorf("rule %s shortDescription = %q", r.ID, r.ShortDesc.Text)
		}
	}
	for _, want := range []string{"pairs", "lockorder", "deadlock", "walfirstip", "leaksip", "forcedom", "racecheck", "unusedignore"} {
		if !ruleIDs[want] {
			t.Errorf("rule inventory missing %q (have %v)", want, ruleIDs)
		}
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	var sawRelated bool
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result ruleId %q not in rule inventory", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result has %d locations", len(res.Locations))
		}
		loc := res.Locations[0].Physical
		if loc.Artifact.URIBaseID != "%SRCROOT%" {
			t.Errorf("uriBaseId = %q", loc.Artifact.URIBaseID)
		}
		if loc.Region.StartLine == 0 {
			t.Errorf("missing startLine in %+v", loc)
		}
		for _, rel := range res.Related {
			sawRelated = true
			if rel.Physical.Artifact.URIBaseID != "%SRCROOT%" {
				t.Errorf("related uriBaseId = %q", rel.Physical.Artifact.URIBaseID)
			}
			if rel.Physical.Region.StartLine != 90 || rel.Physical.Region.StartColumn != 12 {
				t.Errorf("related region = %+v", rel.Physical.Region)
			}
			if rel.Message == nil || !strings.Contains(rel.Message.Text, "does not dominate") {
				t.Errorf("related message = %+v", rel.Message)
			}
		}
	}
	if !sawRelated {
		t.Errorf("no result carried relatedLocations")
	}
}
