package lob

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
)

// env bundles a fresh storage stack for one test.
type env struct {
	vol  *disk.Volume
	pool *buffer.Pool
	bm   *buddy.Manager
	m    *Manager
}

// newEnv builds a volume of numSpaces buddy spaces with the given
// capacity each.
func newEnv(t testing.TB, pageSize, numSpaces, capacity int, cfg Config) *env {
	t.Helper()
	pages := disk.PageNum(1 + numSpaces*(capacity+1))
	vol := disk.MustNewVolume(pageSize, pages, disk.DefaultCostModel())
	pool := buffer.MustNewPool(vol, 64)
	bm, err := buddy.FormatVolume(pool, vol, 1, numSpaces, capacity, true)
	if err != nil {
		t.Fatalf("FormatVolume: %v", err)
	}
	m, err := NewManager(vol, pool, bm, cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return &env{vol: vol, pool: pool, bm: bm, m: m}
}

func (e *env) freePages(t testing.TB) int {
	t.Helper()
	n, err := e.bm.FreePages()
	if err != nil {
		t.Fatalf("FreePages: %v", err)
	}
	return n
}

// pattern generates a deterministic, position-identifiable byte sequence.
func pattern(seed, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte((seed*131 + i*7) ^ (i >> 8))
	}
	return out
}

func mustContent(t *testing.T, o *Object, want []byte) {
	t.Helper()
	if o.Size() != int64(len(want)) {
		t.Fatalf("size = %d, want %d", o.Size(), len(want))
	}
	if len(want) == 0 {
		return
	}
	got, err := o.Read(0, int64(len(want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("content differs at byte %d of %d (got %d want %d)", i, len(want), got[i], want[i])
			}
		}
	}
}

func mustCheck(t *testing.T, o *Object) {
	t.Helper()
	if err := o.Check(); err != nil {
		t.Fatalf("tree check: %v", err)
	}
}

func TestCreateWithHintSingleSegment(t *testing.T) {
	// Figure 5.a: a 1820-byte object created with a size hint occupies
	// one ceil(1820/100) = 19-page segment addressed by a one-pair root.
	e := newEnv(t, 100, 2, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	data := pattern(1, 1820)
	if err := o.AppendWithHint(data, 1820); err != nil {
		t.Fatal(err)
	}
	mustContent(t, o, data)
	mustCheck(t, o)
	u, err := o.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.SegmentCount != 1 {
		t.Errorf("segments = %d, want 1", u.SegmentCount)
	}
	if u.SegmentPages != 19 {
		t.Errorf("segment pages = %d, want 19", u.SegmentPages)
	}
	if u.TreeHeight != 1 || len(o.root.entries) != 1 {
		t.Errorf("height=%d rootEntries=%d, want height 1, 1 entry", u.TreeHeight, len(o.root.entries))
	}
}

func TestAppendUnknownSizeDoubling(t *testing.T) {
	// Figure 5.b: appending 1820 bytes in sub-page chunks with unknown
	// final size grows segments 1, 2, 4, 8 pages, then the last segment
	// is trimmed to 4 pages: [100, 200, 400, 800, 320] bytes.
	e := newEnv(t, 100, 2, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	data := pattern(2, 1820)
	a := o.OpenAppender(0)
	for off := 0; off < len(data); off += 70 {
		end := off + 70
		if end > len(data) {
			end = len(data)
		}
		if _, err := a.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	mustContent(t, o, data)
	mustCheck(t, o)
	pages, err := o.SegmentPageCounts()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 8, 4}
	if fmt.Sprint(pages) != fmt.Sprint(want) {
		t.Errorf("segment pages = %v, want %v (doubling growth + trim)", pages, want)
	}
	// Trim means zero wasted pages beyond the last partial page.
	u, _ := o.Usage()
	if u.SegmentPages != 19 {
		t.Errorf("segment pages total = %d, want 19", u.SegmentPages)
	}
}

func TestSearchFigure5Cost(t *testing.T) {
	// §4.2 worked example: reading 320 bytes from byte 1470 of the
	// Figure 5.c object costs 3 seeks + 6 page transfers (one internal
	// node + 4 pages of one segment + 1 page of the next, excluding the
	// root); the same read on the single-segment object of Figure 5.a is
	// 1 seek + 4 contiguous page transfers.
	e := newEnv(t, 100, 2, 256, Config{Threshold: 1})
	m := e.m

	// Build Figure 5.c explicitly: root -> [child(1020), child(800)],
	// right child -> segments of 280, 430, 90 bytes.
	mkSeg := func(n int64, seed int) entry {
		segs, err := m.allocSegments(n)
		if err != nil || len(segs) != 1 {
			t.Fatalf("allocSegments(%d): %v (%d segs)", n, err, len(segs))
		}
		if err := m.writeSegment(segs[0].ptr, pattern(seed, int(n))); err != nil {
			t.Fatal(err)
		}
		return segs[0]
	}
	// The left child holds 1020 bytes (two segments to satisfy the
	// occupancy floor; it is never read in this example).
	leftChild := &node{level: 1, entries: []entry{mkSeg(520, 9), mkSeg(500, 10)}}
	rightChild := &node{level: 1, entries: []entry{mkSeg(280, 11), mkSeg(430, 12), mkSeg(90, 13)}}
	lp, err := m.writeNode(0, leftChild)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := m.writeNode(0, rightChild)
	if err != nil {
		t.Fatal(err)
	}
	o := m.NewObject(1)
	o.root = &node{level: 2, entries: []entry{
		{bytes: 1020, ptr: lp}, {bytes: 800, ptr: rp},
	}}
	o.size = 1820
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}

	// Cold caches, fresh counters.
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.pool.DiscardAll()
	e.vol.ResetStats()
	if _, err := o.Read(1470, 320); err != nil {
		t.Fatal(err)
	}
	s := e.vol.Stats()
	if s.Seeks != 3 {
		t.Errorf("Figure 5.c read: %d seeks, want 3", s.Seeks)
	}
	if s.PagesRead != 6 {
		t.Errorf("Figure 5.c read: %d page transfers, want 6 (1 index + 4 + 1)", s.PagesRead)
	}

	// Figure 5.a equivalent: single segment.
	o2 := m.NewObject(0)
	if err := o2.AppendWithHint(pattern(14, 1820), 1820); err != nil {
		t.Fatal(err)
	}
	e.vol.ResetStats()
	if _, err := o2.Read(1470, 320); err != nil {
		t.Fatal(err)
	}
	s = e.vol.Stats()
	if s.Seeks != 1 {
		t.Errorf("Figure 5.a read: %d seeks, want 1", s.Seeks)
	}
	if s.PagesRead != 4 {
		t.Errorf("Figure 5.a read: %d page transfers, want 4", s.PagesRead)
	}
}

func TestReadBounds(t *testing.T) {
	e := newEnv(t, 100, 2, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	if err := o.Append(pattern(3, 500)); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, n int64 }{
		{-1, 10}, {0, 501}, {500, 1}, {200, -1}, {501, 0},
	}
	for _, c := range cases {
		if _, err := o.Read(c.off, c.n); !errors.Is(err, ErrOutOfBounds) {
			t.Errorf("Read(%d,%d): err = %v, want ErrOutOfBounds", c.off, c.n, err)
		}
	}
	// Zero-length read at the boundary is fine.
	if _, err := o.Read(500, 0); err != nil {
		t.Errorf("Read(500,0): %v", err)
	}
}

func TestReplaceInPlace(t *testing.T) {
	e := newEnv(t, 100, 2, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(4, 1337)
	if err := o.Append(model); err != nil {
		t.Fatal(err)
	}
	u1, _ := o.Usage()

	for _, c := range []struct {
		off int64
		n   int
	}{
		{0, 1}, {0, 100}, {50, 200}, {99, 2}, {1300, 37}, {700, 637}, {0, 1337},
	} {
		repl := pattern(int(c.off)+77, c.n)
		if err := o.Replace(c.off, repl); err != nil {
			t.Fatalf("Replace(%d,%d): %v", c.off, c.n, err)
		}
		copy(model[c.off:], repl)
		mustContent(t, o, model)
	}
	// Replace never grows or moves the object.
	u2, _ := o.Usage()
	if u1 != u2 {
		t.Errorf("usage changed across replaces: %+v -> %+v", u1, u2)
	}
	if err := o.Replace(1330, pattern(0, 8)); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("overlong replace: err = %v", err)
	}
}

func TestReplaceTouchesNoIndexPages(t *testing.T) {
	// §4.5: replace "modifies the leaf pages without affecting the
	// internal nodes of the tree".
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	if err := o.Append(pattern(5, 5000)); err != nil {
		t.Fatal(err)
	}
	rootBefore := fmt.Sprint(o.root.entries)
	if err := o.Replace(2345, pattern(6, 789)); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(o.root.entries) != rootBefore {
		t.Error("replace altered the root")
	}
	mustCheck(t, o)
}

func TestInsertMiddleSmall(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(7, 1900)
	if err := o.AppendWithHint(model, 1900); err != nil {
		t.Fatal(err)
	}
	ins := pattern(8, 40)
	if err := o.Insert(955, ins); err != nil {
		t.Fatal(err)
	}
	model = append(model[:955:955], append(append([]byte{}, ins...), model[955:]...)...)
	mustContent(t, o, model)
	mustCheck(t, o)

	// The split produced (up to) three segments: L, N, R.
	u, _ := o.Usage()
	if u.SegmentCount < 2 || u.SegmentCount > 3 {
		t.Errorf("segments after insert = %d, want 2..3", u.SegmentCount)
	}
}

func TestInsertCostIndependentOfObjectSize(t *testing.T) {
	// §1 objective 3: piece-wise operation cost depends on the bytes
	// involved, not the object size.  A small middle insert must not
	// read or write more than a handful of pages regardless of size.
	for _, objPages := range []int{10, 100, 1000} {
		e := newEnv(t, 512, 8, 1024, Config{Threshold: 1})
		o := e.m.NewObject(0)
		n := objPages * 512
		if err := o.AppendWithHint(pattern(9, n), int64(n)); err != nil {
			t.Fatal(err)
		}
		e.vol.ResetStats()
		if err := o.Insert(int64(n/2), pattern(10, 64)); err != nil {
			t.Fatal(err)
		}
		s := e.vol.Stats()
		if s.PagesMoved() > 12 {
			t.Errorf("object of %d pages: insert moved %d pages, want <= 12", objPages, s.PagesMoved())
		}
	}
}

func TestInsertAtStartAndEnd(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(11, 730)
	if err := o.Append(model); err != nil {
		t.Fatal(err)
	}
	head := pattern(12, 55)
	if err := o.Insert(0, head); err != nil {
		t.Fatal(err)
	}
	model = append(append([]byte{}, head...), model...)
	mustContent(t, o, model)

	tail := pattern(13, 66)
	if err := o.Insert(int64(len(model)), tail); err != nil {
		t.Fatal(err)
	}
	model = append(model, tail...)
	mustContent(t, o, model)
	mustCheck(t, o)

	if err := o.Insert(int64(len(model))+1, []byte{1}); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("insert past end: err = %v", err)
	}
}

func TestInsertIntoEmptyObject(t *testing.T) {
	e := newEnv(t, 100, 2, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	data := pattern(14, 250)
	if err := o.Insert(0, data); err != nil {
		t.Fatal(err)
	}
	mustContent(t, o, data)
	mustCheck(t, o)
}

func TestInsertLargerThanMaxSegment(t *testing.T) {
	// PS=100 gives max segment 128 pages; inserting 300 pages of bytes
	// must split N across several segments.
	e := newEnv(t, 100, 8, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(15, 500)
	if err := o.Append(model); err != nil {
		t.Fatal(err)
	}
	big := pattern(16, 30000)
	if err := o.Insert(250, big); err != nil {
		t.Fatal(err)
	}
	model = append(model[:250:250], append(append([]byte{}, big...), model[250:]...)...)
	mustContent(t, o, model)
	mustCheck(t, o)
}

func TestDeleteMiddle(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(17, 1900)
	if err := o.AppendWithHint(model, 1900); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(700, 441); err != nil {
		t.Fatal(err)
	}
	model = append(model[:700:700], model[700+441:]...)
	mustContent(t, o, model)
	mustCheck(t, o)
}

func TestDeleteCleanCutTouchesNoDataPages(t *testing.T) {
	// §4.3.2: "deletions where the last byte to be deleted happens to be
	// the last byte of a page ... can be completed without accessing any
	// segment".
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(18, 2000)
	if err := o.AppendWithHint(model, 2000); err != nil {
		t.Fatal(err)
	}
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.vol.ResetStats()
	// Delete bytes [500,800): ends at byte 799, the last byte of page 7.
	if err := o.Delete(500, 300); err != nil {
		t.Fatal(err)
	}
	s := e.vol.Stats()
	if s.PagesRead != 0 {
		t.Errorf("clean-cut delete read %d pages, want 0", s.PagesRead)
	}
	model = append(model[:500:500], model[800:]...)
	mustContent(t, o, model)
	mustCheck(t, o)
}

func TestTruncateAndDestroyFreeEverything(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 4})
	base := e.freePages(t)
	o := e.m.NewObject(0)
	model := pattern(19, 40000)
	if err := o.Append(model); err != nil {
		t.Fatal(err)
	}
	// Truncation reads no data pages.
	e.vol.ResetStats()
	if err := o.Truncate(20000); err != nil {
		t.Fatal(err)
	}
	if s := e.vol.Stats(); s.PagesRead > 3 { // index nodes only
		t.Errorf("truncate read %d pages, want only index nodes", s.PagesRead)
	}
	mustContent(t, o, model[:20000])
	mustCheck(t, o)

	if err := o.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 0 {
		t.Errorf("size after truncate(0) = %d", o.Size())
	}
	if got := e.freePages(t); got != base {
		t.Errorf("free pages after truncate(0) = %d, want %d (no leaks)", got, base)
	}

	// Rebuild and destroy.
	if err := o.Append(pattern(20, 12345)); err != nil {
		t.Fatal(err)
	}
	if err := o.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := e.freePages(t); got != base {
		t.Errorf("free pages after destroy = %d, want %d (no leaks)", got, base)
	}
	if err := e.bm.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteWholeObjectViaRange(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 1})
	base := e.freePages(t)
	o := e.m.NewObject(0)
	if err := o.Append(pattern(21, 3000)); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(0, 3000); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 0 {
		t.Errorf("size = %d", o.Size())
	}
	if got := e.freePages(t); got != base {
		t.Errorf("free pages = %d, want %d", got, base)
	}
}

func TestThresholdKeepsSegmentsSafe(t *testing.T) {
	// §4.4: with threshold T, an update may not leave two adjacent
	// segments one of which is smaller than T when they fit in one.
	// After a small middle insert with T=8, no resulting boundary
	// segment may be unsafe unless it has no mergeable neighbour.
	const T = 8
	e := newEnv(t, 100, 8, 256, Config{Threshold: T})
	o := e.m.NewObject(0)
	model := pattern(22, 3000) // 30 pages
	if err := o.AppendWithHint(model, 3000); err != nil {
		t.Fatal(err)
	}
	ins := pattern(23, 25)
	if err := o.Insert(1501, ins); err != nil {
		t.Fatal(err)
	}
	model = append(model[:1501:1501], append(append([]byte{}, ins...), model[1501:]...)...)
	mustContent(t, o, model)
	mustCheck(t, o)

	pages, err := o.SegmentPageCounts()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pages {
		if p >= T {
			continue
		}
		// An unsafe segment is tolerable only if merging with either
		// neighbour would exceed the maximum segment size — impossible
		// here — or it has no neighbour... which cannot happen mid-list.
		if len(pages) > 1 {
			t.Errorf("segment %d has %d pages (< T=%d) after threshold insert: %v", i, p, T, pages)
		}
	}
}

func TestThresholdOneFragmentsFreely(t *testing.T) {
	// T=1 disables page reshuffling; repeated middle inserts fragment
	// the object into small segments (the failure mode §4.4 describes).
	e := newEnv(t, 100, 16, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	model := pattern(24, 4000)
	if err := o.AppendWithHint(model, 4000); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		off := int64(rng.Intn(int(o.Size())))
		ins := pattern(i, 10)
		if err := o.Insert(off, ins); err != nil {
			t.Fatal(err)
		}
		model = append(model[:off:off], append(append([]byte{}, ins...), model[off:]...)...)
	}
	mustContent(t, o, model)
	u, _ := o.Usage()
	if u.SegmentCount < 20 {
		t.Errorf("T=1 after 20 inserts: %d segments, expected heavy fragmentation", u.SegmentCount)
	}

	// The same workload under T=8 stays far less fragmented.
	e2 := newEnv(t, 100, 16, 256, Config{Threshold: 8})
	o2 := e2.m.NewObject(0)
	model2 := pattern(24, 4000)
	if err := o2.AppendWithHint(model2, 4000); err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		off := int64(rng.Intn(int(o2.Size())))
		if err := o2.Insert(off, pattern(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	u2, _ := o2.Usage()
	if u2.SegmentCount >= u.SegmentCount {
		t.Errorf("T=8 segments (%d) not fewer than T=1 segments (%d)", u2.SegmentCount, u.SegmentCount)
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	e := newEnv(t, 100, 4, 256, Config{Threshold: 4})
	o := e.m.NewObject(0)
	model := pattern(25, 2500)
	if err := o.Append(model); err != nil {
		t.Fatal(err)
	}
	o.SetLSN(42)
	desc := o.EncodeDescriptor()

	o2, err := e.m.OpenDescriptor(desc)
	if err != nil {
		t.Fatal(err)
	}
	mustContent(t, o2, model)
	mustCheck(t, o2)
	if o2.LSN() != 42 {
		t.Errorf("LSN = %d, want 42", o2.LSN())
	}
	if o2.Threshold() != 4 {
		t.Errorf("threshold = %d, want 4", o2.Threshold())
	}
	// Continue operating on the reopened object.
	if err := o2.Insert(1000, pattern(26, 99)); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, o2)

	if _, err := e.m.OpenDescriptor([]byte("garbage")); err == nil {
		t.Error("garbage descriptor accepted")
	}
}

func TestDeepTreeGrowsAndShrinks(t *testing.T) {
	// PS=100 gives fanout 5, so a few hundred segments force a 3+ level
	// tree; deleting everything must collapse it back.
	e := newEnv(t, 100, 32, 256, Config{Threshold: 1, MaxRootEntries: 4})
	base := e.freePages(t)
	o := e.m.NewObject(0)
	var model []byte
	// Many small appends with trims create many 1-page segments.
	for i := 0; i < 300; i++ {
		chunk := pattern(i, 90)
		if err := o.Append(chunk); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		model = append(model, chunk...)
		o.nextGrow = 1 // force 1-page segments to deepen the tree
	}
	mustContent(t, o, model)
	mustCheck(t, o)
	if o.root.level < 3 {
		t.Errorf("tree height = %d, want >= 3", o.root.level)
	}

	// Random deletions shrink it back down.
	rng := rand.New(rand.NewSource(9))
	for o.Size() > 0 {
		n := int64(1 + rng.Intn(2000))
		if n > o.Size() {
			n = o.Size()
		}
		off := int64(0)
		if o.Size() > n {
			off = int64(rng.Intn(int(o.Size() - n + 1)))
		}
		if err := o.Delete(off, n); err != nil {
			t.Fatalf("delete(%d,%d) size=%d: %v", off, n, o.Size(), err)
		}
		model = append(model[:off:off], model[off+n:]...)
		mustCheck(t, o)
	}
	if len(model) != 0 {
		t.Fatal("model bookkeeping broken")
	}
	if got := e.freePages(t); got != base {
		t.Errorf("free pages = %d, want %d after emptying", got, base)
	}
	if o.root.level != 1 {
		t.Errorf("root level = %d after emptying, want 1", o.root.level)
	}
}

// TestRandomOpsAgainstModel is the workhorse: random appends, inserts,
// deletes, replaces and reads cross-checked byte for byte against an
// in-memory model, under several page sizes, thresholds, and manager
// modes, verifying tree invariants and page conservation throughout.
func TestRandomOpsAgainstModel(t *testing.T) {
	configs := []struct {
		name     string
		pageSize int
		spaces   int
		capacity int
		cfg      Config
	}{
		{"ps100-t1", 100, 24, 256, Config{Threshold: 1}},
		{"ps100-t4", 100, 24, 256, Config{Threshold: 4}},
		{"ps100-t8-shadow", 100, 24, 256, Config{Threshold: 8, ShadowIndexPages: true}},
		{"ps256-t4-adaptive", 256, 8, 512, Config{Threshold: 4, AdaptiveThreshold: true}},
		{"ps512-t16", 512, 4, 1024, Config{Threshold: 16}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t, tc.pageSize, tc.spaces, tc.capacity, tc.cfg)
			base := e.freePages(t)
			o := e.m.NewObject(0)
			var model []byte
			rng := rand.New(rand.NewSource(int64(tc.pageSize)))
			maxBytes := tc.spaces * tc.capacity * tc.pageSize / 4

			for op := 0; op < 400; op++ {
				kind := rng.Intn(10)
				switch {
				case kind < 3 && len(model) < maxBytes: // append
					n := 1 + rng.Intn(3*tc.pageSize)
					data := pattern(op, n)
					if err := o.Append(data); err != nil {
						t.Fatalf("op %d append(%d): %v", op, n, err)
					}
					model = append(model, data...)
				case kind < 6 && len(model) < maxBytes: // insert
					n := 1 + rng.Intn(2*tc.pageSize)
					off := int64(rng.Intn(len(model) + 1))
					data := pattern(op, n)
					if err := o.Insert(off, data); err != nil {
						t.Fatalf("op %d insert(%d,%d): %v", op, off, n, err)
					}
					model = append(model[:off:off], append(append([]byte{}, data...), model[off:]...)...)
				case kind < 8 && len(model) > 0: // delete
					n := int64(1 + rng.Intn(len(model)))
					off := int64(rng.Intn(len(model) - int(n) + 1))
					if err := o.Delete(off, n); err != nil {
						t.Fatalf("op %d delete(%d,%d) size=%d: %v", op, off, n, len(model), err)
					}
					model = append(model[:off:off], model[off+n:]...)
				case kind == 8 && len(model) > 0: // replace
					n := 1 + rng.Intn(min(len(model), 2*tc.pageSize))
					off := int64(rng.Intn(len(model) - n + 1))
					data := pattern(op, n)
					if err := o.Replace(off, data); err != nil {
						t.Fatalf("op %d replace(%d,%d): %v", op, off, n, err)
					}
					copy(model[off:], data)
				default: // read a random slice
					if len(model) == 0 {
						continue
					}
					n := 1 + rng.Intn(len(model))
					off := int64(rng.Intn(len(model) - n + 1))
					got, err := o.Read(off, int64(n))
					if err != nil {
						t.Fatalf("op %d read(%d,%d): %v", op, off, n, err)
					}
					if !bytes.Equal(got, model[off:off+int64(n)]) {
						t.Fatalf("op %d read(%d,%d): content mismatch", op, off, n)
					}
				}
				if o.Size() != int64(len(model)) {
					t.Fatalf("op %d: size %d != model %d", op, o.Size(), len(model))
				}
				if op%25 == 0 {
					mustCheck(t, o)
					mustContent(t, o, model)
				}
			}
			mustCheck(t, o)
			mustContent(t, o, model)

			if err := o.Destroy(); err != nil {
				t.Fatal(err)
			}
			if got := e.freePages(t); got != base {
				t.Errorf("free pages after destroy = %d, want %d (leak)", got, base)
			}
			if err := e.bm.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUtilizationFormula(t *testing.T) {
	// §4.4: for segments of size T the per-segment utilization averages
	// 1 - 1/2T.  Build objects whose segments are exactly T pages with
	// uniformly random final-page fill and verify the measured mean.
	for _, T := range []int{4, 16, 64} {
		want := 1 - 1/(2*float64(T))
		var sum float64
		const trials = 200
		rng := rand.New(rand.NewSource(int64(T)))
		ps := 100
		for i := 0; i < trials; i++ {
			fill := 1 + rng.Intn(ps) // bytes in last page
			segBytes := (T-1)*ps + fill
			sum += float64(segBytes) / float64(T*ps)
		}
		got := sum / trials
		if diff := got - want; diff > 0.02 || diff < -0.02 {
			t.Errorf("T=%d: mean utilization %.3f, want ~%.3f", T, got, want)
		}
	}
}

func TestCompactLeafNodeMergesUnsafeRuns(t *testing.T) {
	// [Bili91a]: a leaf parent about to split first scans itself and, for
	// any run of two or more adjacent segments with fewer than T pages,
	// allocates a single larger segment for the group.
	e := newEnv(t, 100, 8, 256, Config{Threshold: 4, AdaptiveThreshold: true})
	m := e.m

	// Build a leaf parent of five small segments (1 page each) around one
	// large (6-page) segment: runs [0,1] and [3,4] should each coalesce.
	var model []byte
	nd := &node{level: 1}
	mk := func(n int64, seed int) {
		segs, err := m.allocSegments(n)
		if err != nil || len(segs) != 1 {
			t.Fatalf("allocSegments(%d): %v", n, err)
		}
		data := pattern(seed, int(n))
		if err := m.writeSegment(segs[0].ptr, data); err != nil {
			t.Fatal(err)
		}
		model = append(model, data...)
		nd.entries = append(nd.entries, segs[0])
	}
	mk(80, 1)
	mk(90, 2)
	mk(600, 3)
	mk(70, 4)
	mk(100, 5)

	if err := m.compactLeafNode(nd, 4); err != nil {
		t.Fatal(err)
	}
	if len(nd.entries) != 3 {
		t.Fatalf("entries after compaction = %d, want 3", len(nd.entries))
	}
	if st := m.Stats(); st.LeafCompactions != 2 || st.SegmentsCompacted != 4 {
		t.Errorf("stats = %+v, want 2 compactions of 4 segments", st)
	}

	// Content must be preserved byte for byte.
	var got []byte
	var off int64
	for _, en := range nd.entries {
		buf := make([]byte, en.bytes)
		if err := m.readSegRange(en.ptr, 0, buf); err != nil {
			t.Fatal(err)
		}
		got = append(got, buf...)
		off += en.bytes
	}
	if !bytes.Equal(got, model) {
		t.Error("compaction corrupted content")
	}

	// Safe segments are untouched: the 600-byte segment survives as-is.
	if nd.entries[1].bytes != 600 {
		t.Errorf("middle entry = %d bytes, want 600", nd.entries[1].bytes)
	}
}

func TestAdaptiveThresholdScalesWithOccupancy(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 2, AdaptiveThreshold: true})
	o := e.m.NewObject(0)
	fan := maxFanout(100)
	if got := o.effectiveThreshold(fan / 4); got != 2 {
		t.Errorf("low occupancy T = %d, want 2", got)
	}
	if got := o.effectiveThreshold(fan); got <= 2 {
		t.Errorf("full-parent T = %d, want > 2", got)
	}
	// Without the option the threshold is constant.
	e2 := newEnv(t, 100, 8, 256, Config{Threshold: 2})
	o2 := e2.m.NewObject(0)
	if got := o2.effectiveThreshold(fan); got != 2 {
		t.Errorf("static T = %d, want 2", got)
	}
}

func TestSequentialReadSeeksReflectSegments(t *testing.T) {
	// Good sequential access (§1 objective 3): a full scan of an object
	// held in k segments costs about k seeks.
	e := newEnv(t, 100, 8, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	data := pattern(31, 12800) // 128 pages
	if err := o.AppendWithHint(data, 12800); err != nil {
		t.Fatal(err)
	}
	u, _ := o.Usage()
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.vol.ResetStats()
	if _, err := o.Read(0, o.Size()); err != nil {
		t.Fatal(err)
	}
	s := e.vol.Stats()
	maxSeeks := int64(u.SegmentCount + u.IndexPages + 2)
	if s.Seeks > maxSeeks {
		t.Errorf("full scan: %d seeks for %d segments (+%d index), want <= %d",
			s.Seeks, u.SegmentCount, u.IndexPages, maxSeeks)
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	n := &node{level: 3, entries: []entry{
		{bytes: 100, ptr: 7}, {bytes: 1, ptr: 9}, {bytes: 1 << 40, ptr: 12345},
	}}
	img := make([]byte, 256)
	if err := encodeNode(n, img); err != nil {
		t.Fatal(err)
	}
	got, err := decodeNode(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.level != 3 || len(got.entries) != 3 {
		t.Fatalf("decoded %+v", got)
	}
	for i := range n.entries {
		if got.entries[i] != n.entries[i] {
			t.Errorf("entry %d: %+v != %+v", i, got.entries[i], n.entries[i])
		}
	}

	// Corruption cases.
	if _, err := decodeNode(make([]byte, 256)); err == nil {
		t.Error("zero page decoded")
	}
	if _, err := decodeNode([]byte{1}); err == nil {
		t.Error("short page decoded")
	}
}

func TestChildIndex(t *testing.T) {
	n := &node{level: 2, entries: []entry{
		{bytes: 100, ptr: 1}, {bytes: 50, ptr: 2}, {bytes: 200, ptr: 3},
	}}
	cases := []struct {
		off       int64
		wantIdx   int
		wantStart int64
	}{
		{0, 0, 0}, {99, 0, 0}, {100, 1, 100}, {149, 1, 100},
		{150, 2, 150}, {349, 2, 150}, {350, 2, 150}, // off==size -> last
	}
	for _, c := range cases {
		i, s := n.childIndex(c.off)
		if i != c.wantIdx || s != c.wantStart {
			t.Errorf("childIndex(%d) = (%d,%d), want (%d,%d)", c.off, i, s, c.wantIdx, c.wantStart)
		}
	}
}

func TestPagesFor(t *testing.T) {
	cases := []struct {
		b    int64
		ps   int
		want int
	}{
		{0, 100, 0}, {1, 100, 1}, {100, 100, 1}, {101, 100, 2}, {1820, 100, 19},
	}
	for _, c := range cases {
		if got := pagesFor(c.b, c.ps); got != c.want {
			t.Errorf("pagesFor(%d,%d) = %d, want %d", c.b, c.ps, got, c.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestQuickDescriptorRoundTrip: arbitrary valid objects survive the
// descriptor codec.
func TestQuickDescriptorRoundTrip(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 2})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := e.m.NewObject(1 + int(seed%7&3))
		total := 0
		for i := 0; i < 1+rng.Intn(5); i++ {
			n := 1 + rng.Intn(500)
			if err := o.Append(pattern(int(seed)+i, n)); err != nil {
				return false
			}
			total += n
		}
		desc := o.EncodeDescriptor()
		o2, err := e.m.OpenDescriptor(desc)
		if err != nil || o2.Size() != int64(total) || o2.Threshold() != o.Threshold() {
			return false
		}
		a, err1 := o.Read(0, o.Size())
		b, err2 := o2.Read(0, o2.Size())
		ok := err1 == nil && err2 == nil && bytes.Equal(a, b)
		o.Destroy()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestReshuffleStatsAccumulate: the reshuffling counters move when byte
// or page reshuffling fires.
func TestReshuffleStatsAccumulate(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 8})
	o := e.m.NewObject(0)
	if err := o.AppendWithHint(pattern(1, 5000), 5000); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(2050, pattern(2, 30)); err != nil {
		t.Fatal(err)
	}
	st := e.m.Stats()
	if st.BytesReshuffled == 0 {
		t.Error("no bytes reshuffled recorded for a threshold insert")
	}
	if st.PagesReshuffled == 0 {
		t.Error("no pages reshuffled recorded for a threshold insert")
	}
}
