package forcedom_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/forcedom"
)

func TestForcedom(t *testing.T) {
	analyzertest.Run(t, "../testdata", forcedom.Analyzer, "forcedom_bad", "forcedom_clean")
}
