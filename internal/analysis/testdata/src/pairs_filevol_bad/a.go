// Package pairs_filevol_bad holds file-volume lifecycle violations
// the pairs analyzer must report: a volume opened or created on a
// path that then returns an error without closing it, leaking the
// descriptor and keeping the page file pinned.
package pairs_filevol_bad

import (
	"errors"

	"disk"
)

// leakOnSetupError opens the volume, then fails a later setup step
// without closing it.
func leakOnSetupError(path string, ready bool) (*disk.FileVolume, error) {
	v, err := disk.OpenFileVolume(path, disk.FileOptions{}) // want "filevol leak: the resource from OpenFileVolume\\(...\\) in \"v\" is not released on an error-return path"
	if err != nil {
		return nil, err
	}
	if !ready {
		return nil, errors.New("not ready")
	}
	return v, nil
}

// leakOnSecondOpen creates the data volume, then leaks it when the
// log volume fails to create — the exact shape of a two-volume store
// constructor with a missing cleanup.
func leakOnSecondOpen(dataPath, logPath string) (*disk.FileVolume, *disk.FileVolume, error) {
	dv, err := disk.CreateFileVolume(dataPath, 512, 64, disk.FileOptions{}) // want "filevol leak: the resource from CreateFileVolume\\(...\\) in \"dv\" is not released on an error-return path"
	if err != nil {
		return nil, nil, err
	}
	lv, err := disk.CreateFileVolume(logPath, 512, 16, disk.FileOptions{})
	if err != nil {
		return nil, nil, err
	}
	return dv, lv, nil
}
