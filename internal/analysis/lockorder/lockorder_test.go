package lockorder_test

import (
	"testing"

	"github.com/eosdb/eos/internal/analysis/analyzertest"
	"github.com/eosdb/eos/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analyzertest.Run(t, "../testdata", lockorder.Analyzer, "lockorder_bad", "lockorder_clean")
}
