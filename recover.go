package eos

import (
	"fmt"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
	"github.com/eosdb/eos/internal/wal"
)

// Crash recovery (§4.5).
//
// The durable-state invariants the transaction layer maintains:
//
//   - Uncommitted STRUCTURAL work never becomes durable: insert, delete
//     and append shadow index pages and never overwrite live data pages,
//     and catalog writes substitute the last committed descriptor for
//     any transaction-dirty object.
//   - Every volume force is accompanied by a catalog write (commits,
//     aborts, checkpoints all go through the same path), so durable page
//     content and the durable catalog always describe the same state.
//   - A force never includes pages another live transaction has written
//     in place, so the only uncommitted in-place writes that can be
//     durable are those of transactions still in flight at the crash —
//     whose locks were never released and whose logged physical extents
//     are therefore still accurate.
//
// The recovery procedure:
//
//  1. Scan the log; classify transactions as committed, aborted, or in
//     flight.
//  2. UNDO pass: for in-flight transactions' replace records, in reverse
//     log order, restore the logged pre-image at each physical extent
//     where the post-image is present (replace is the only in-place
//     update; §4.5 makes it the logged one for exactly this reason).
//  3. Rebuild the buddy directories from scratch: reformat every space,
//     then reserve exactly the pages reachable from the catalog's
//     descriptors.  This both reclaims pages leaked by half-finished
//     commits and protects every live page before redo allocates.
//  4. REDO pass: re-execute, in log order, each committed operation the
//     catalog state has not seen — the LSN each object root carries
//     makes this idempotent, exactly as the paper requires.  (LSNs are
//     monotonic across log truncations: each epoch's records start at
//     the base the store header records, so a root's LSN always ranks
//     correctly against every record of every epoch and is never
//     zeroed.)
//  5. Take a checkpoint and truncate the log.

func (s *Store) recover() error {
	log, recs, err := wal.Recover(s.logVol, s.lsnBase)
	if err != nil {
		return err
	}
	if s.opts.SerialWAL {
		if err := log.SetGroupCommit(false); err != nil {
			return err
		}
	}
	s.log = log

	committed := make(map[uint64]bool)
	ended := make(map[uint64]bool)
	maxTxn := uint64(0)
	for _, r := range recs {
		switch r.Type {
		case wal.RecCommit:
			committed[r.Txn] = true
			ended[r.Txn] = true
		case wal.RecAbort:
			ended[r.Txn] = true
		}
		if r.Txn > maxTxn {
			maxTxn = r.Txn
		}
	}
	s.nextTxn = maxTxn + 1

	// Undo pass: physically restore the pre-images of replaces by
	// transactions that were IN FLIGHT at the crash, in reverse log
	// order.  Replace is the only in-place update; a checkpoint or
	// another transaction's commit may have forced an in-flight
	// transaction's page, and the logged extents point at exactly the
	// bytes to put back.  (The extents are still accurate: an in-flight
	// transaction never released its locks or applied its deferred
	// frees, so its pages cannot have been restructured or reused.
	// Ended transactions never need this: a commit's replaces are
	// re-applied by redo if lost, and an abort writes its record only
	// AFTER its compensations are durably forced — an abort record in
	// the log proves the rollback is fully on disk.)
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Type != wal.RecReplace || ended[r.Txn] {
			continue
		}
		if err := s.undoReplace(r); err != nil {
			return fmt.Errorf("eos: undo of replace (lsn %d): %w", r.LSN, err)
		}
	}

	if err := s.rebuildFreeSpace(); err != nil {
		return err
	}

	for _, r := range recs {
		if !committed[r.Txn] {
			continue
		}
		if err := s.redo(r); err != nil {
			return fmt.Errorf("eos: redo of %s (lsn %d): %w", r.Type, r.LSN, err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// undoReplace writes a replace record's pre-image back to its physical
// extents — but only where the record's post-image is actually present,
// i.e. where the loser's in-place write reached the disk.  Extents whose
// durable content is something else (the write was never forced, or the
// page had been legitimately reused and captured by a newer catalog
// force) are left alone.  Idempotent: re-running finds the pre-image in
// place and skips.
func (s *Store) undoReplace(r *wal.Record) error {
	ps := int64(s.vol.PageSize())
	pos := 0
	for _, x := range r.Extents {
		if int64(x.Off)+int64(x.Len) > ps || pos+int(x.Len) > len(r.OldData) || pos+int(x.Len) > len(r.Data) {
			return fmt.Errorf("%w: bad extent in replace record", ErrCorruptStore)
		}
		raw := make([]byte, ps)
		if err := s.vol.ReadPages(disk.PageNum(x.Page), 1, raw); err != nil {
			return err
		}
		if bytesEqual(raw[x.Off:int(x.Off)+int(x.Len)], r.Data[pos:pos+int(x.Len)]) {
			copy(raw[x.Off:], r.OldData[pos:pos+int(x.Len)])
			if err := s.vol.WritePages(disk.PageNum(x.Page), 1, raw); err != nil {
				return err
			}
		}
		pos += int(x.Len)
	}
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// redo re-executes one committed operation if the object has not seen it.
func (s *Store) redo(r *wal.Record) error {
	s.mu.Lock()
	e := s.byID[r.Object]
	s.mu.Unlock()

	switch r.Type {
	case wal.RecCreate:
		if e != nil {
			return nil // create already durable
		}
		s.mu.Lock()
		e = &catEntry{id: r.Object, name: string(r.Data), obj: s.lm.NewObject(int(r.N))}
		s.catalog[e.name] = e
		s.byID[e.id] = e
		if r.Object >= s.nextID {
			s.nextID = r.Object + 1
		}
		s.mu.Unlock()
		e.obj.SetLSN(r.LSN)
		e.setStableDesc(e.obj.EncodeDescriptor())
		return nil
	case wal.RecDestroy:
		if e == nil {
			return nil // destroy already durable
		}
		if err := e.obj.Destroy(); err != nil {
			return err
		}
		s.mu.Lock()
		delete(s.catalog, e.name)
		delete(s.byID, e.id)
		s.mu.Unlock()
		return nil
	case wal.RecAppend, wal.RecInsert, wal.RecDelete, wal.RecReplace:
		if e == nil {
			// Object destroyed by a later committed operation; the
			// destroy's redo (or durable state) governs.
			return nil
		}
		if e.obj.LSN() >= r.LSN {
			return nil // effect already durable: idempotent skip
		}
		var err error
		switch r.Type {
		case wal.RecAppend:
			err = e.obj.Append(r.Data)
		case wal.RecInsert:
			err = e.obj.Insert(r.Off, r.Data)
		case wal.RecDelete:
			err = e.obj.Delete(r.Off, r.N)
		case wal.RecReplace:
			err = e.obj.Replace(r.Off, r.Data)
		}
		if err != nil {
			return err
		}
		e.obj.SetLSN(r.LSN)
		// The re-executed operation is committed state: the checkpoint
		// that ends recovery persists stableDesc, so it must carry the
		// post-redo root or the redone update would be lost when the
		// log truncates.
		e.setStableDesc(e.obj.EncodeDescriptor())
		return nil
	}
	return nil // control records
}

// rebuildFreeSpace reformats every buddy space and reserves the pages
// reachable from the catalog.
func (s *Store) rebuildFreeSpace() error {
	// The directories are rebuilt from catalog reachability alone, so
	// any quarantined runs (only possible if recovery ever becomes
	// callable on a live store) are subsumed: unreachable pages come
	// back as free space directly.
	s.quarMu.Lock()
	s.quar = nil
	s.quarMu.Unlock()
	bm := buddy.NewManager(s.pool, !s.opts.DisableSuperdirectory)
	page := disk.PageNum(1 + catalogRegionPages(s.opts))
	for i := 0; i < s.opts.NumSpaces; i++ {
		sp, err := buddy.FormatSpace(s.pool, page, page+1, s.opts.SpaceCapacity, s.vol)
		if err != nil {
			return err
		}
		bm.AddSpace(sp)
		page += disk.PageNum(s.opts.SpaceCapacity + 1)
	}
	s.buddy = bm
	var err error
	prevObjs := make(map[string]*catEntry, len(s.catalog))
	s.mu.Lock()
	for n, e := range s.catalog {
		prevObjs[n] = e
	}
	s.mu.Unlock()
	s.lm, err = lob.NewManager(s.vol, s.pool, &epochAlloc{s: s}, s.lobConfig())
	if err != nil {
		return err
	}
	for _, e := range prevObjs {
		// Reattach the loaded descriptor to the new manager and reserve
		// its pages.
		desc := e.obj.EncodeDescriptor()
		obj, err := s.lm.OpenDescriptor(desc)
		if err != nil {
			return err
		}
		e.obj = obj
		e.setStableDesc(desc)
		runs, err := obj.ReachablePages()
		if err != nil {
			return err
		}
		for _, run := range runs {
			if err := bm.Reserve(run.Start, run.Pages); err != nil {
				return fmt.Errorf("eos: reserving %d+%d for %q: %w", run.Start, run.Pages, e.name, err)
			}
		}
	}
	return nil
}
