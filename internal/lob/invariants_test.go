package lob

import (
	"math/rand"
	"testing"
)

// TestNoPinLeaks: every operation must leave the buffer pool fully
// unpinned, or long runs exhaust the frames.
func TestNoPinLeaks(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 4, MaxRootEntries: 3})
	o := e.m.NewObject(0)
	assert := func(stage string) {
		t.Helper()
		if n := e.pool.PinnedFrames(); n != 0 {
			t.Fatalf("%s: %d frames left pinned", stage, n)
		}
	}
	model := pattern(1, 8000)
	if err := o.AppendWithHint(model, 8000); err != nil {
		t.Fatal(err)
	}
	assert("append")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		off := int64(rng.Intn(int(o.Size())))
		switch i % 4 {
		case 0:
			if err := o.Insert(off, pattern(i, 130)); err != nil {
				t.Fatal(err)
			}
			assert("insert")
		case 1:
			n := int64(1 + rng.Intn(200))
			if off+n > o.Size() {
				n = o.Size() - off
			}
			if n > 0 {
				if err := o.Delete(off, n); err != nil {
					t.Fatal(err)
				}
			}
			assert("delete")
		case 2:
			n := 1 + rng.Intn(100)
			if off+int64(n) > o.Size() {
				off = o.Size() - int64(n)
			}
			if err := o.Replace(off, pattern(i, n)); err != nil {
				t.Fatal(err)
			}
			assert("replace")
		default:
			if _, err := o.Read(0, o.Size()); err != nil {
				t.Fatal(err)
			}
			assert("read")
		}
	}
	if err := o.Destroy(); err != nil {
		t.Fatal(err)
	}
	assert("destroy")
}

// TestInsertAddsAtMostTwoEntries verifies §4.3.1: "unless Nc is larger
// than the maximum segment size, the algorithm will add at most two new
// entries in the parent of the leaf segment" — one segment becomes at
// most three (L, N, R).
func TestInsertAddsAtMostTwoEntries(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 1}) // no page reshuffle
	o := e.m.NewObject(0)
	if err := o.AppendWithHint(pattern(1, 10000), 10000); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		before, err := o.segmentList()
		if err != nil {
			t.Fatal(err)
		}
		// Small insert: Nc is far below the maximum segment size.
		off := int64(rng.Intn(int(o.Size())))
		if err := o.Insert(off, pattern(i, 50)); err != nil {
			t.Fatal(err)
		}
		after, err := o.segmentList()
		if err != nil {
			t.Fatal(err)
		}
		if len(after)-len(before) > 2 {
			t.Fatalf("insert %d added %d entries (want <= 2)", i, len(after)-len(before))
		}
	}
}

// TestDeleteCanAddEntries verifies the paper's observation that "unlike
// the B-tree algorithms ... a partial segment delete may create new
// entries": deleting the middle of one segment yields up to three.
func TestDeleteCanAddEntries(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 1})
	o := e.m.NewObject(0)
	if err := o.AppendWithHint(pattern(2, 2000), 2000); err != nil {
		t.Fatal(err)
	}
	before, _ := o.segmentList()
	if len(before) != 1 {
		t.Fatalf("setup: %d segments", len(before))
	}
	// Delete strictly inside the single segment, not page-aligned.
	if err := o.Delete(550, 433); err != nil {
		t.Fatal(err)
	}
	after, _ := o.segmentList()
	if len(after) < 2 || len(after) > 3 {
		t.Errorf("segments after interior delete = %d, want 2..3", len(after))
	}
	mustCheck(t, o)
}

// TestInsertAtMaxSegmentBoundary: inserting exactly a maximum segment's
// worth of bytes keeps every invariant.
func TestInsertAtMaxSegmentBoundary(t *testing.T) {
	e := newEnv(t, 100, 8, 256, Config{Threshold: 1})
	maxSegBytes := e.m.alloc.MaxSegmentPages() * 100
	o := e.m.NewObject(0)
	model := pattern(3, 1000)
	if err := o.Append(model); err != nil {
		t.Fatal(err)
	}
	big := pattern(4, maxSegBytes)
	if err := o.Insert(500, big); err != nil {
		t.Fatal(err)
	}
	model = append(model[:500:500], append(append([]byte{}, big...), model[500:]...)...)
	mustContent(t, o, model)
	mustCheck(t, o)
}

// TestSingleByteObject: the smallest possible object exercises every
// boundary in the arithmetic.
func TestSingleByteObject(t *testing.T) {
	e := newEnv(t, 100, 2, 256, Config{Threshold: 4})
	o := e.m.NewObject(0)
	if err := o.Append([]byte{42}); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(0, 1)
	if err != nil || got[0] != 42 {
		t.Fatalf("read = %v, %v", got, err)
	}
	if err := o.Replace(0, []byte{43}); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(1, []byte{44}); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(0, []byte{41}); err != nil {
		t.Fatal(err)
	}
	mustContent(t, o, []byte{41, 43, 44})
	if err := o.Delete(1, 1); err != nil {
		t.Fatal(err)
	}
	mustContent(t, o, []byte{41, 44})
	if err := o.Delete(0, 2); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 0 {
		t.Errorf("size = %d", o.Size())
	}
	mustCheck(t, o)
}
