package eos

import (
	"fmt"
	"sync"

	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
	"github.com/eosdb/eos/internal/txn"
	"github.com/eosdb/eos/internal/wal"
)

// deferredAlloc wraps the buddy manager so that pages freed by a
// transaction stay allocated until the transaction ends — the effect of
// the hierarchical release locks §4.5 cites from Starburst: "segments
// that are descendants of a locked segment are also locked, and thus
// they remain unallocated until the holding transaction releases the
// locks".  Because freed pages are never reused mid-transaction and
// index updates are shadowed, an abort can restore a destroyed object
// from its descriptor alone.
type deferredAlloc struct {
	inner lob.Allocator
	mu    sync.Mutex
	frees []pageRun
}

type pageRun struct {
	start disk.PageNum
	n     int
}

func (d *deferredAlloc) Alloc(n int) (disk.PageNum, error) { return d.inner.Alloc(n) }
func (d *deferredAlloc) AllocUpTo(n int) (disk.PageNum, int, error) {
	return d.inner.AllocUpTo(n)
}
func (d *deferredAlloc) MaxSegmentPages() int { return d.inner.MaxSegmentPages() }

func (d *deferredAlloc) Free(p disk.PageNum, n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frees = append(d.frees, pageRun{p, n})
	return nil
}

// mark returns the current length of the deferred list, so an operation's
// frees can be identified (and cancelled when undoing a destroy).
func (d *deferredAlloc) mark() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.frees)
}

// cancel drops the frees recorded in [lo, hi).
func (d *deferredAlloc) cancel(lo, hi int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := lo; i < hi && i < len(d.frees); i++ {
		d.frees[i] = pageRun{}
	}
}

// apply performs every surviving deferred free.
func (d *deferredAlloc) apply() error {
	d.mu.Lock()
	frees := d.frees
	d.frees = nil
	d.mu.Unlock()
	for _, r := range frees {
		if r.n == 0 {
			continue
		}
		if err := d.inner.Free(r.start, r.n); err != nil {
			return err
		}
	}
	return nil
}

// txnOp is one journal entry for logical undo.
type txnOp struct {
	typ      wal.RecType
	entry    *catEntry
	off      int64
	n        int64
	old      []byte // pre-images for replace/delete undo
	oldSize  int64  // for append undo
	freeLo   int
	freeHi   int
	snapshot []byte // descriptor snapshot for destroy undo
}

// Txn is one transaction over the store: strict two-phase object locks,
// write-ahead logging, shadowed index updates with deferred frees, and
// logical undo on abort.
//
// Every direct data-page write the transaction performs is recorded in
// its write set.  A commit forces the volume EXCEPT other live
// transactions' write sets, so no commit ever makes a concurrent
// transaction's in-place writes durable; an abort forces its own write
// set so its compensations are durable before its pages become
// reusable.  The only in-place writes recovery must undo are therefore
// those of transactions still in flight at the crash — whose locks were
// never released, so their logged extents are still accurate.
type Txn struct {
	s       *Store
	id      uint64
	alloc   *deferredAlloc
	lm      *lob.Manager
	touched map[uint64]*txnObj
	journal []txnOp
	done    bool

	wmu      sync.Mutex
	writeSet map[disk.PageNum]bool
}

// recordWrite adds a data-page run to the transaction's write set.
func (t *Txn) recordWrite(start disk.PageNum, pages int) {
	t.wmu.Lock()
	for i := 0; i < pages; i++ {
		t.writeSet[start+disk.PageNum(i)] = true
	}
	t.wmu.Unlock()
}

// writePages snapshots the write set.
func (t *Txn) writePages() []disk.PageNum {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	out := make([]disk.PageNum, 0, len(t.writeSet))
	for p := range t.writeSet {
		out = append(out, p)
	}
	return out
}

type txnObj struct {
	entry   *catEntry
	prevLSN uint64
	created bool
}

// Begin starts a transaction.
func (s *Store) Begin() (*Txn, error) {
	s.mu.Lock()
	id := s.nextTxn
	s.nextTxn++
	s.mu.Unlock()
	t := &Txn{
		s:        s,
		id:       id,
		alloc:    &deferredAlloc{inner: &epochAlloc{s: s}},
		touched:  make(map[uint64]*txnObj),
		writeSet: make(map[disk.PageNum]bool),
	}
	cfg := s.lobConfig()
	cfg.OnDataWrite = t.recordWrite
	var err error
	t.lm, err = lob.NewManager(s.vol, s.pool, t.alloc, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := s.log.Append(&wal.Record{Txn: id, Type: wal.RecBegin}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.liveTxns[id] = t
	s.mu.Unlock()
	return t, nil
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// LOBStats returns the large-object activity counters of this
// transaction (shadowed index pages, reshuffled bytes, and so on).
func (t *Txn) LOBStats() lob.Stats { return t.lm.Stats() }

func (t *Txn) check() error {
	if t.done {
		return ErrTxnDone
	}
	return nil
}

// lockKind classifies an operation for lock granularity purposes.
type lockKind int

const (
	lockRead       lockKind = iota // shared on the touched range
	lockReplace                    // exclusive on the touched range
	lockStructural                 // exclusive on the suffix from off
)

// touch acquires the transaction-duration lock for an operation on the
// named object and, for operations that restructure the object, reroutes
// its allocation through the transaction's deferred allocator.
//
// With whole-object locking (the default) every access locks the root.
// With Options.RangeLocking, reads share their byte range, replaces
// exclude theirs, and the length-changing operations exclude [off, ∞) —
// every byte after the operation's offset shifts, so the suffix is
// exactly the range affected (§4.5).
func (t *Txn) touch(name string, kind lockKind, off, n int64) (*catEntry, error) {
	t.s.mu.Lock()
	e, ok := t.s.catalog[name]
	t.s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	var err error
	if t.s.opts.RangeLocking {
		hi := off + n
		if hi <= off {
			hi = off + 1
		}
		switch kind {
		case lockRead:
			err = t.s.locks.LockRange(t.id, e.id, txn.Shared, off, hi)
		case lockReplace:
			err = t.s.locks.LockRange(t.id, e.id, txn.Exclusive, off, hi)
		case lockStructural:
			err = t.s.locks.LockRange(t.id, e.id, txn.Exclusive, off, txn.MaxRange)
		}
	} else {
		mode := txn.Exclusive
		if kind == lockRead {
			mode = txn.Shared
		}
		err = t.s.locks.LockObject(t.id, e.id, mode)
	}
	if err != nil {
		return nil, err
	}
	if kind == lockRead {
		return e, nil
	}
	// Under range locking only structural operations restructure the
	// tree (replace allocates nothing and leaves the descriptor alone).
	needsRebind := kind == lockStructural || !t.s.opts.RangeLocking
	if _, seen := t.touched[e.id]; !seen {
		t.touched[e.id] = &txnObj{entry: e, prevLSN: e.obj.LSN()}
		if needsRebind {
			e.obj.Rebind(t.lm)
			t.s.mu.Lock()
			e.txnDirty = t.id
			t.s.mu.Unlock()
		}
	} else if needsRebind && e.txnDirty != t.id {
		e.obj.Rebind(t.lm)
		t.s.mu.Lock()
		e.txnDirty = t.id
		t.s.mu.Unlock()
	}
	return e, nil
}

// Create makes a new object inside the transaction.
func (t *Txn) Create(name string, threshold int) error {
	if err := t.check(); err != nil {
		return err
	}
	t.s.mu.Lock()
	if _, ok := t.s.catalog[name]; ok {
		t.s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	e := &catEntry{id: t.s.nextID, name: name, obj: t.lm.NewObject(threshold), txnDirty: t.id}
	t.s.nextID++
	t.s.catalog[name] = e
	t.s.byID[e.id] = e
	t.s.mu.Unlock()
	if err := t.s.locks.LockObject(t.id, e.id, txn.Exclusive); err != nil {
		return err
	}
	t.touched[e.id] = &txnObj{entry: e, created: true}
	lsn, err := t.s.log.Append(&wal.Record{Txn: t.id, Type: wal.RecCreate, Object: e.id, Data: []byte(name), N: int64(threshold)})
	if err != nil {
		return err
	}
	e.obj.SetLSN(lsn)
	t.journal = append(t.journal, txnOp{typ: wal.RecCreate, entry: e})
	return nil
}

// Destroy removes an object inside the transaction.  Its pages stay
// intact (frees are deferred), so an abort restores it from the
// descriptor snapshot.
func (t *Txn) Destroy(name string) error {
	if err := t.check(); err != nil {
		return err
	}
	e, err := t.touch(name, lockStructural, 0, 0)
	if err != nil {
		return err
	}
	op := txnOp{typ: wal.RecDestroy, entry: e, snapshot: e.obj.EncodeDescriptor(), freeLo: t.alloc.mark()}
	if _, err := t.s.log.Append(&wal.Record{Txn: t.id, Type: wal.RecDestroy, Object: e.id}); err != nil {
		return err
	}
	e.latch.Lock()
	err = e.obj.Destroy()
	e.latch.Unlock()
	if err != nil {
		return err
	}
	op.freeHi = t.alloc.mark()
	t.s.mu.Lock()
	delete(t.s.catalog, e.name)
	delete(t.s.byID, e.id)
	t.s.mu.Unlock()
	t.journal = append(t.journal, op)
	return nil
}

// Append appends data at the end of the named object.
func (t *Txn) Append(name string, data []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	t.s.mu.Lock()
	var curSize int64
	if e, ok := t.s.catalog[name]; ok {
		curSize = e.obj.Size()
	}
	t.s.mu.Unlock()
	e, err := t.touch(name, lockStructural, curSize, 0)
	if err != nil {
		return err
	}
	oldSize := e.obj.Size()
	op := txnOp{typ: wal.RecAppend, entry: e, oldSize: oldSize, freeLo: t.alloc.mark()}
	lsn, err := t.s.log.Append(&wal.Record{Txn: t.id, Type: wal.RecAppend, Object: e.id, Off: oldSize, Data: data})
	if err != nil {
		return err
	}
	e.latch.Lock()
	err = e.obj.Append(data)
	e.latch.Unlock()
	if err != nil {
		return err
	}
	op.freeHi = t.alloc.mark()
	e.obj.SetLSN(lsn)
	t.journal = append(t.journal, op)
	return nil
}

// Insert inserts data at byte off of the named object.
func (t *Txn) Insert(name string, off int64, data []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	e, err := t.touch(name, lockStructural, off, 0)
	if err != nil {
		return err
	}
	op := txnOp{typ: wal.RecInsert, entry: e, off: off, n: int64(len(data)), freeLo: t.alloc.mark()}
	lsn, err := t.s.log.Append(&wal.Record{Txn: t.id, Type: wal.RecInsert, Object: e.id, Off: off, Data: data})
	if err != nil {
		return err
	}
	e.latch.Lock()
	err = e.obj.Insert(off, data)
	e.latch.Unlock()
	if err != nil {
		return err
	}
	op.freeHi = t.alloc.mark()
	e.obj.SetLSN(lsn)
	t.journal = append(t.journal, op)
	return nil
}

// Delete removes n bytes at byte off of the named object.
func (t *Txn) Delete(name string, off, n int64) error {
	if err := t.check(); err != nil {
		return err
	}
	e, err := t.touch(name, lockStructural, off, 0)
	if err != nil {
		return err
	}
	old, err := e.obj.Read(off, n)
	if err != nil {
		return err
	}
	op := txnOp{typ: wal.RecDelete, entry: e, off: off, n: n, old: old, freeLo: t.alloc.mark()}
	lsn, err := t.s.log.Append(&wal.Record{Txn: t.id, Type: wal.RecDelete, Object: e.id, Off: off, N: n, OldData: old})
	if err != nil {
		return err
	}
	e.latch.Lock()
	err = e.obj.Delete(off, n)
	e.latch.Unlock()
	if err != nil {
		return err
	}
	op.freeHi = t.alloc.mark()
	e.obj.SetLSN(lsn)
	t.journal = append(t.journal, op)
	return nil
}

// Truncate shortens the named object to newSize bytes (a tail delete;
// with newSize 0 it empties the object without reading any data page).
func (t *Txn) Truncate(name string, newSize int64) error {
	if err := t.check(); err != nil {
		return err
	}
	size, err := t.Size(name)
	if err != nil {
		return err
	}
	if newSize < 0 || newSize > size {
		return fmt.Errorf("eos: truncate to %d of %d", newSize, size)
	}
	if newSize == size {
		return nil
	}
	return t.Delete(name, newSize, size-newSize)
}

// Replace overwrites bytes of the named object in place; the old and new
// values are logged (§4.5: replace is the logged update, the other three
// shadow).
func (t *Txn) Replace(name string, off int64, data []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	e, err := t.touch(name, lockReplace, off, int64(len(data)))
	if err != nil {
		return err
	}
	e.latch.RLock()
	old, err := e.obj.Read(off, int64(len(data)))
	if err != nil {
		e.latch.RUnlock()
		return err
	}
	// Log the physical extents with the pre-image: replace is the one
	// in-place update, and an uncommitted replace page may reach the
	// disk when another transaction's commit forces the volume, so
	// recovery must be able to physically undo it.
	exts, err := e.obj.RangeExtents(off, int64(len(data)))
	if err != nil {
		e.latch.RUnlock()
		return err
	}
	wexts := make([]wal.Extent, len(exts))
	for i, x := range exts {
		wexts[i] = wal.Extent{Page: int64(x.Page), Off: int32(x.Off), Len: int32(x.Len)}
	}
	op := txnOp{typ: wal.RecReplace, entry: e, off: off, n: int64(len(data)), old: old, freeLo: t.alloc.mark()}
	lsn, err := t.s.log.Append(&wal.Record{Txn: t.id, Type: wal.RecReplace, Object: e.id, Off: off, Data: data, OldData: old, Extents: wexts})
	if err != nil {
		e.latch.RUnlock()
		return err
	}
	// WAL rule: the pre-image record must be durable BEFORE the in-place
	// write below reaches the device (data pages are write-through, so
	// the overwrite happens inside obj.Replace, not at some later
	// flush).  Skipping this force opens a crash window in which the old
	// bytes are gone from the disk but the log record that could restore
	// them is still sitting in the volatile tail buffer.
	if err := t.s.log.ForceLSN(lsn); err != nil {
		e.latch.RUnlock()
		return err
	}
	err = e.obj.Replace(off, data)
	e.latch.RUnlock()
	if err != nil {
		return err
	}
	op.freeHi = t.alloc.mark()
	e.obj.SetLSN(lsn)
	t.journal = append(t.journal, op)
	return nil
}

// Read returns n bytes at byte off of the named object under a shared
// lock (whole-object by default, byte-range with Options.RangeLocking).
func (t *Txn) Read(name string, off, n int64) ([]byte, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	e, err := t.touch(name, lockRead, off, n)
	if err != nil {
		return nil, err
	}
	e.latch.RLock()
	defer e.latch.RUnlock()
	return e.obj.Read(off, n)
}

// Size returns the named object's length.
func (t *Txn) Size(name string) (int64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	e, ok := t.s.catalog[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e.obj.Size(), nil
}

// Commit makes the transaction durable: the commit record is forced to
// the log, the deferred frees are applied, dirty pages are flushed and
// forced, and the catalog is updated with the new descriptors.
func (t *Txn) Commit() error { return t.commit(true) }

// CommitNoForce is the fast commit path: the commit record is appended
// to the group-commit buffer and made durable by a log force covering
// its LSN — usually another committer's batch (the piggyback case) or,
// with no concurrent commit traffic, a force this call leads itself.
// Data pages and the catalog stay volatile; if the system crashes,
// recovery re-executes the logged operations (redo), so durability is
// preserved at a fraction of the commit I/O — a later Commit or
// Checkpoint migrates everything to the data volume.
func (t *Txn) CommitNoForce() error { return t.commit(false) }

func (t *Txn) commit(force bool) error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	// A transaction that performed no mutating operation has nothing to
	// make durable: its commit record can stay in the log buffer (the
	// next leader force or checkpoint carries it), and there is no data
	// page or catalog state of its own to force.
	readOnly := len(t.journal) == 0
	rec := &wal.Record{Txn: t.id, Type: wal.RecCommit}
	if _, err := t.s.log.Append(rec); err != nil {
		return err
	}
	if !readOnly {
		// Group commit: block until some leader's force covers our
		// commit record — one batched log write per concurrent batch of
		// committers instead of one force per transaction.
		if err := t.s.log.ForceLSN(rec.LSN); err != nil {
			return err
		}
	}
	t.s.mu.Lock()
	for _, to := range t.touched {
		if to.entry.txnDirty == t.id {
			to.entry.txnDirty = 0
			to.entry.obj.Rebind(t.s.lm)
			// Refresh the fallback descriptor NOW: a catalog barrier
			// that runs while the next transaction holds this object
			// dirty persists stableDesc, and the durability quarantine
			// reasons that any barrier started after a commit writes
			// roots at least as new as that commit.  Leaving the
			// pre-commit image here would break that — a freed run
			// could be released while the durable catalog still held a
			// root that references it.
			to.entry.setStableDesc(to.entry.obj.EncodeDescriptor())
		}
	}
	t.s.mu.Unlock()
	// Publish the committed roots BEFORE applying the deferred frees:
	// the frees retire the superseded pages into the current epoch, and
	// the epoch-reclamation invariant requires every retired batch's
	// replacement root to be visible to snapshot readers before the
	// epoch that holds the batch can advance.
	t.publishTouched()
	// Apply the deferred frees; their directory updates ride along with
	// the data force below (or are reconstructed by recovery).
	if err := t.alloc.apply(); err != nil {
		return err
	}
	t.s.mu.Lock()
	delete(t.s.liveTxns, t.id)
	var err error
	if force && !readOnly {
		err = t.s.forceDurableLocked(t)
	}
	t.s.mu.Unlock()
	t.s.locks.ReleaseAll(t.id)
	if rerr := t.s.epochs.Reclaim(); err == nil {
		err = rerr
	}
	return err
}

// publishTouched installs each touched object's current root as its
// newest committed version.  Objects the transaction destroyed (no
// longer in the catalog) keep their last pre-destroy version for any
// snapshot still holding it.  The transaction's exclusive locks are
// still held, so no other committer can be publishing these objects.
func (t *Txn) publishTouched() {
	for _, to := range t.touched {
		t.s.mu.Lock()
		live := t.s.byID[to.entry.id] == to.entry
		t.s.mu.Unlock()
		if !live {
			continue
		}
		to.entry.latch.Lock()
		to.entry.obj.Publish(t.s.opts.SnapshotHistory)
		to.entry.latch.Unlock()
	}
}

// forceDurableLocked makes the committed state durable in two barriers,
// skipping pages other live transactions have written in place (minus
// any t also wrote).  The order is load-bearing: the data barrier
// (index and data pages) completes BEFORE the catalog that references
// those pages is written, so no crash state can hold a durable catalog
// root pointing at a page the device never received.  Caller holds
// s.mu; t may be nil (checkpoint-style force).
//
// eos:requires s.mu
func (s *Store) forceDurableLocked(t *Txn) error {
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	skip := make(map[disk.PageNum]bool)
	for _, other := range s.liveTxns {
		for _, p := range other.writePages() {
			skip[p] = true
		}
	}
	if t != nil {
		t.wmu.Lock()
		for p := range t.writeSet {
			delete(skip, p)
		}
		t.wmu.Unlock()
	}
	if err := s.vol.ForceAllExcept(skip); err != nil {
		return err
	}
	// Catalog barrier: header and catalog slot, written only now that
	// everything they reference is durable.  A torn slot write is
	// caught by the slot CRC and recovery falls back to the previous
	// slot, whose pages the durability quarantine keeps intact.
	barrier := s.barrierStarted.Add(1)
	if err := s.writeHeader(); err != nil {
		return err
	}
	if err := s.writeCatalog(); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.vol.Force(0, 1+catalogRegionPages(s.opts)); err != nil {
		return err
	}
	s.barrierDurable.Store(barrier)
	return s.releaseQuarantined()
}

// Abort rolls the transaction back: operations are undone logically in
// reverse order (delete undoes insert, re-insertion undoes delete, the
// logged pre-image undoes replace, truncation undoes append, the
// descriptor snapshot resurrects a destroyed object), surviving deferred
// frees are applied, and locks are released.  The abort record reaches
// the log only after the compensations and catalog are durable, so an
// "ended" classification at recovery always means the rollback is fully
// on disk.
//
// pre-image the forward operation already logged, and the abort record
// is forced only after the rollback is durable, so write-ahead
// coverage is provided by the forward records.
//
//eoslint:ignore walfirst -- logical undo: every compensation replays a
func (t *Txn) Abort() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	for i := len(t.journal) - 1; i >= 0; i-- {
		op := t.journal[i]
		o := op.entry.obj
		var err error
		switch op.typ {
		case wal.RecAppend:
			err = o.Truncate(op.oldSize)
		case wal.RecInsert:
			err = o.Delete(op.off, op.n)
		case wal.RecDelete:
			err = o.Insert(op.off, op.old)
		case wal.RecReplace:
			//eoslint:ignore forcedom -- undo replays the pre-image the forward Replace already logged and forced; recovery re-runs the same idempotent compensation
			err = o.Replace(op.off, op.old)
		case wal.RecCreate:
			err = o.Destroy()
			if err == nil {
				t.s.mu.Lock()
				delete(t.s.catalog, op.entry.name)
				delete(t.s.byID, op.entry.id)
				t.s.mu.Unlock()
			}
		case wal.RecDestroy:
			// The destroyed object's pages are intact: its frees were
			// deferred.  Cancel them and restore the descriptor.
			t.alloc.cancel(op.freeLo, op.freeHi)
			var obj *lob.Object
			obj, err = t.lm.OpenDescriptor(op.snapshot)
			if err == nil {
				//eoslint:ignore racecheck -- the aborting txn still holds this object's exclusive lock-table lock, so no other txn can reach entry.obj; snapshot readers swap roots under epoch protection
				op.entry.obj = obj
				t.s.mu.Lock()
				t.s.catalog[op.entry.name] = op.entry
				t.s.byID[op.entry.id] = op.entry
				t.s.mu.Unlock()
			}
		}
		if err != nil {
			return fmt.Errorf("eos: abort undo failed: %w", err)
		}
	}
	t.s.mu.Lock()
	for _, to := range t.touched {
		if to.entry.txnDirty == t.id {
			to.entry.txnDirty = 0
			to.entry.obj.Rebind(t.s.lm)
		}
		to.entry.obj.SetLSN(to.prevLSN)
		// The compensations may have rebuilt the tree into a different
		// (logically equal) shape whose old nodes are now retired, so
		// the restored root — not the pre-transaction stableDesc image
		// — must be what the next catalog barrier persists.
		to.entry.setStableDesc(to.entry.obj.EncodeDescriptor())
	}
	t.s.mu.Unlock()
	// The logical undos rebuilt the touched trees out of fresh pages, so
	// the surviving deferred frees include pages the last published
	// (pre-transaction) roots still name.  Republish the restored roots
	// before applying the frees — same invariant as commit.
	t.publishTouched()
	if err := t.alloc.apply(); err != nil {
		return err
	}
	t.s.mu.Lock()
	delete(t.s.liveTxns, t.id)
	// An abort must leave the durable state self-consistent: its
	// compensations were written in place, its frees may let pages be
	// reused, and neither may become durable without the catalog that
	// describes them.  So an abort forces exactly like a durable commit.
	err := t.s.forceDurableLocked(t)
	t.s.mu.Unlock()
	// The abort record is written only AFTER the compensations and the
	// catalog are durable.  Order is load-bearing: recovery does not
	// undo an ended transaction's replaces, so if the abort record
	// could become durable while a compensation write was still
	// volatile, a crash in between would leave the forward replace's
	// post-image in the recovered state with nothing to erase it.
	// Written this late, a crash before the record classifies the
	// transaction as in flight and the forward records' pre-images undo
	// it (idempotently: extents whose compensation did reach the disk
	// fail the post-image check and are left alone).
	if err == nil {
		rec := &wal.Record{Txn: t.id, Type: wal.RecAbort}
		if _, aerr := t.s.log.Append(rec); aerr != nil {
			err = aerr
		} else if ferr := t.s.log.ForceLSN(rec.LSN); ferr != nil {
			err = ferr
		}
	}
	t.s.locks.ReleaseAll(t.id)
	if rerr := t.s.epochs.Reclaim(); err == nil {
		err = rerr
	}
	return err
}
