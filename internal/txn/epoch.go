package txn

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/eosdb/eos/internal/disk"
)

// Epoch-based reclamation for lock-free snapshot reads.
//
// Shadowing (§4.5) means every committed root names an immutable tree:
// updates write fresh index and data pages and free the superseded ones.
// A snapshot reader captures a published root and reads through it with
// no locks, so the pages that root references must not return to the
// free space map — where they would be reallocated and overwritten —
// until no reader can still be holding a root that names them.
//
// The EpochManager implements that grace period.  Mutators RETIRE page
// runs instead of freeing them; each run is stamped with current+1, one
// past the epoch at retire time.  Readers PIN the current epoch on
// entry.  A run stamped e may flow to the real free routine only once
// e < current and no reader is pinned at an epoch <= e.
//
// The subtle case is a non-transactional mutator, which retires the
// superseded pages of the STILL-PUBLISHED root mid-operation and only
// publishes the new root at the end.  Those pages must not mature while
// the old root is still the one a new reader would capture.  Two rules
// make that window safe without any reader/writer lock:
//
//   - The pessimistic stamp: a run retired at epoch c is stamped c+1,
//     so one epoch advance is never enough to mature it.
//   - The advance guard: the epoch may not advance from e to e+1 while
//     any mutation that BEGAN before e is still in flight.  Mutation
//     scopes register their begin epoch in a multiset
//     (BeginMutation/EndMutation — two map operations under mu, no
//     blocking); Advance simply fails while an older scope is open and
//     is retried at the next reclamation point.
//
// Together they bound current <= b+1 <= c_r+1 = stamp for every run a
// still-open scope (begun at b, earliest retire at c_r >= b) has
// retired, so "stamp < current" cannot hold before the scope publishes
// and closes.  A reader that enters mid-scope pins c in {c_r, c_r+1}
// and the stamp c_r+1 >= its pin, so the pin protects every page of
// whichever root it captures.  Transactional commits are simpler: they
// publish every touched root BEFORE applying their deferred frees, so
// their retires never reference a published root at all.
//
// Nothing here blocks: mutators never wait for an advance, advances
// never wait for mutators (they just fail and retry), and readers only
// ever take mu for two map updates.  An earlier design ordered advances
// against whole mutations with an RWMutex held for the full operation;
// under a write storm every reclamation point forced that lock and
// serialized the write side (a convoy costing ~40% of mutator wall
// time).
//
// Lock order: mu is rank 33 — above the object latch (20), so Retire
// may be called while an operation holds its object's latch; the free
// routine is never invoked while holding mu.

// Run is a contiguous run of pages retired by a mutator and not yet
// returned to the free space map.
type Run struct {
	Start disk.PageNum
	Pages int
}

// EpochGuard pins one reader to the epoch it entered.  Every guard
// returned by Enter must Exit exactly once, on all paths.
type EpochGuard struct {
	em    *EpochManager
	epoch uint64
	done  bool // eos:guardedby em.mu
}

// EpochManager tracks reader epochs and retired page runs.  It is safe
// for concurrent use.
type EpochManager struct {
	// freeFn returns matured runs to the real free space map (and drops
	// any cached frames).  Called without mu held.
	freeFn func([]Run) error

	mu       sync.Mutex
	current  uint64               // eos:guardedby mu
	pins     map[uint64]int       // eos:guardedby mu
	inflight map[uint64]int       // eos:guardedby mu -- open mutation scopes by begin epoch
	retired  map[uint64][]Run     // eos:guardedby mu
	since    map[uint64]time.Time // eos:guardedby mu -- first retire into each epoch
	pending  int64                // eos:guardedby mu -- pages awaiting reclamation
	budget   int64                // eos:guardedby mu -- Admit throttles above this

	advances     atomic.Uint64 // epochs advanced (stat)
	retiredTotal atomic.Uint64 // pages ever retired (stat)
}

// NewEpochManager creates a manager routing matured runs to free.
func NewEpochManager(free func([]Run) error) *EpochManager {
	return &EpochManager{
		freeFn:   free,
		pins:     make(map[uint64]int),
		inflight: make(map[uint64]int),
		retired:  make(map[uint64][]Run),
		since:    make(map[uint64]time.Time),
	}
}

// Enter pins the calling reader to the current epoch.  The returned
// guard must Exit on all paths; the reader must capture published roots
// only after Enter returns.
func (em *EpochManager) Enter() *EpochGuard {
	em.mu.Lock()
	g := &EpochGuard{em: em, epoch: em.current}
	em.pins[g.epoch]++
	em.mu.Unlock()
	return g
}

// Exit releases the guard's pin and reclaims any runs that matured.
// Exiting twice is a no-op.
func (g *EpochGuard) Exit() error {
	em := g.em
	em.mu.Lock()
	if g.done {
		em.mu.Unlock()
		return nil
	}
	g.done = true
	if em.pins[g.epoch]--; em.pins[g.epoch] == 0 {
		delete(em.pins, g.epoch)
	}
	runs := em.collectLocked()
	em.mu.Unlock()
	if err := em.release(runs); err != nil {
		return err
	}
	return em.Reclaim()
}

// SetBudget bounds the retired-page backlog: Admit throttles incoming
// mutations while more than budget pages await reclamation.  Zero
// (the default) disables admission control.
func (em *EpochManager) SetBudget(budget int64) {
	em.mu.Lock()
	em.budget = budget
	em.mu.Unlock()
}

// Admission-control bounds: how long one over-budget mutation may be
// held back, and how often it rechecks.  The wait is a throttle, not a
// guarantee — when the deadline passes the mutation proceeds anyway
// and the allocation path deals with whatever pressure remains.
const (
	admitWait = 2 * time.Second
	admitPoll = 2 * time.Millisecond
)

// Admit throttles a mutator while the retired backlog is over budget.
// It must be called BEFORE the mutation opens its scope or takes its
// object latch: a waiter here holds nothing, so reader pins keep
// rotating, the epoch keeps advancing, and the backlog drains.  (The
// allocation-failure path cannot give that guarantee — a mutator
// mid-operation has its scope open, which caps the epoch advance and
// freezes maturation of everything retired during its wait.  Admission
// control keeps the backlog bounded so that path stays rare.)
func (em *EpochManager) Admit() error {
	em.mu.Lock()
	over := em.budget > 0 && em.pending > em.budget
	em.mu.Unlock()
	if !over {
		return nil
	}
	deadline := time.Now().Add(admitWait)
	for {
		if err := em.Reclaim(); err != nil {
			return err
		}
		em.mu.Lock()
		over = em.budget > 0 && em.pending > em.budget
		em.mu.Unlock()
		if !over || time.Now().After(deadline) {
			return nil
		}
		time.Sleep(admitPoll)
	}
}

// BeginMutation opens a mutation scope and returns its begin epoch,
// which the caller passes back to EndMutation.  While the scope is
// open the epoch can advance at most once, so the scope's mid-flight
// retires (stamped one past their retire epoch) cannot mature before
// the caller publishes its new root and closes the scope.
func (em *EpochManager) BeginMutation() uint64 {
	em.mu.Lock()
	b := em.current
	em.inflight[b]++
	em.mu.Unlock()
	return b
}

// EndMutation closes the mutation scope opened at begin epoch b.  The
// caller must have published its new root (or restored the old one)
// before calling EndMutation.
func (em *EpochManager) EndMutation(b uint64) {
	em.mu.Lock()
	if em.inflight[b]--; em.inflight[b] <= 0 {
		delete(em.inflight, b)
	}
	em.mu.Unlock()
}

// Retire parks page runs one past the current epoch.  Safe to call with
// or without a mutation scope open; transactional callers retire only
// after publishing the superseding roots.
func (em *EpochManager) Retire(runs []Run) {
	if len(runs) == 0 {
		return
	}
	var pages int64
	for _, r := range runs {
		pages += int64(r.Pages)
	}
	em.mu.Lock()
	e := em.current + 1
	em.retired[e] = append(em.retired[e], runs...)
	if _, ok := em.since[e]; !ok {
		em.since[e] = time.Now()
	}
	em.pending += pages
	em.mu.Unlock()
	em.retiredTotal.Add(uint64(pages))
}

// collectLocked removes and returns every run whose epoch has matured:
// stamped before the current epoch, with no reader pinned at or before
// the stamp.  Caller holds mu; the returned runs are released after mu
// is dropped.
//
// eos:requires em.mu
func (em *EpochManager) collectLocked() []Run {
	if len(em.retired) == 0 {
		return nil
	}
	minPinned, pinned := em.minPinnedLocked()
	var out []Run
	for e, runs := range em.retired {
		if e >= em.current {
			continue // superseding publish may still be in flight
		}
		if pinned && minPinned <= e {
			continue
		}
		out = append(out, runs...)
		delete(em.retired, e)
		delete(em.since, e)
	}
	return out
}

// eos:requires em.mu
func (em *EpochManager) minPinnedLocked() (uint64, bool) {
	var min uint64
	found := false
	for e := range em.pins {
		if !found || e < min {
			min, found = e, true
		}
	}
	return min, found
}

// advanceLocked bumps the epoch if no mutation scope begun before the
// current epoch is still open; it reports whether it advanced.  The
// begin-epoch test is what bounds advances to at most one per open
// scope — see the package comment's safety argument.
//
// eos:requires em.mu
func (em *EpochManager) advanceLocked() bool {
	for b := range em.inflight {
		if b < em.current {
			return false
		}
	}
	em.current++
	em.advances.Add(1)
	return true
}

// release hands matured runs to the free routine and settles the
// pending counter.  Called without mu held.
func (em *EpochManager) release(runs []Run) error {
	if len(runs) == 0 {
		return nil
	}
	var pages int64
	for _, r := range runs {
		pages += int64(r.Pages)
	}
	err := em.freeFn(runs)
	em.mu.Lock()
	em.pending -= pages
	em.mu.Unlock()
	return err
}

// Reclaim advances the epoch past every retired stamp (each step can
// fail harmlessly while an older mutation scope is open — nothing ever
// blocks) and frees whatever no reader still pins.  With no readers
// and no mutation in flight that is everything retired, so a quiescent
// store reclaims promptly; under load the work left behind is picked
// up at the next reclamation point.  Cheap enough to call after every
// mutation.
func (em *EpochManager) Reclaim() error {
	em.mu.Lock()
	var maxStamp uint64
	for e := range em.retired {
		if e > maxStamp {
			maxStamp = e
		}
	}
	for em.current <= maxStamp {
		if !em.advanceLocked() {
			break
		}
	}
	runs := em.collectLocked()
	em.mu.Unlock()
	return em.release(runs)
}

// Drain reclaims as much as possible; checkpoints call it so a
// quiescent store's retired pages are all back in the free space map
// before free-space accounting runs.  It is exactly Reclaim — the
// separate name records the intent at the call sites.
func (em *EpochManager) Drain() error { return em.Reclaim() }

// Advances reports how many times the global epoch has advanced.
func (em *EpochManager) Advances() uint64 { return em.advances.Load() }

// RetiredPages reports the cumulative number of pages ever retired.
func (em *EpochManager) RetiredPages() uint64 { return em.retiredTotal.Load() }

// PendingPages reports the pages currently retired but not yet freed.
func (em *EpochManager) PendingPages() int64 {
	em.mu.Lock()
	defer em.mu.Unlock()
	return em.pending
}

// Pinned reports how many readers currently hold epoch guards.
func (em *EpochManager) Pinned() int {
	em.mu.Lock()
	defer em.mu.Unlock()
	n := 0
	for _, c := range em.pins {
		n += c
	}
	return n
}

// OldestAge reports how long the oldest unreclaimed epoch has been
// holding retired pages (zero when nothing is pending).
func (em *EpochManager) OldestAge() time.Duration {
	em.mu.Lock()
	defer em.mu.Unlock()
	var oldest time.Time
	for _, t := range em.since {
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest)
}
