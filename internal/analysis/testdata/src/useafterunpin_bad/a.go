// Package useafterunpin_bad holds uses of a pinned page image after
// its release — every one must be reported.
package useafterunpin_bad

import "buffer"

// readAfterUnpin reads through the slice after releasing the pin.
func readAfterUnpin(pool *buffer.Pool, pg buffer.PageID) byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return 0
	}
	_ = pool.Unpin(pg)
	return img[0] // want "page image \"img\" returned after Unpin\\(pg\\)"
}

// writeAfterUnpin writes through the slice after releasing the pin:
// this corrupts whatever page owns the frame now.
func writeAfterUnpin(pool *buffer.Pool, pg buffer.PageID) {
	img, err := pool.FixNew(pg)
	if err != nil {
		return
	}
	_ = pool.Unpin(pg)
	img[0] = 1 // want "page image \"img\" used after Unpin\\(pg\\)"
}

// escapeAfterUnpin returns the whole slice after the pin is gone.
func escapeAfterUnpin(pool *buffer.Pool, pg buffer.PageID) []byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return nil
	}
	_ = pool.Unpin(pg)
	return img // want "page image \"img\" returned after Unpin\\(pg\\)"
}

// useAfterDiscard is the same bug through the discard path.
func useAfterDiscard(pool *buffer.Pool, pg buffer.PageID) int {
	img, err := pool.FixNew(pg)
	if err != nil {
		return 0
	}
	_ = pool.Discard(pg)
	return len(img) // want "page image \"img\" returned after Discard\\(pg\\)"
}

// goroutineCapture launches a goroutine holding the image after the
// unpin; it may run against a recycled frame.
func goroutineCapture(pool *buffer.Pool, pg buffer.PageID) {
	img, err := pool.Fix(pg)
	if err != nil {
		return
	}
	_ = pool.Unpin(pg)
	go func() {
		_ = img[0] // want "page image \"img\" captured by a function literal after Unpin\\(pg\\)"
	}()
}

// unpinOnOneBranch releases on one branch only; the use after the
// join is reachable from the released path.
func unpinOnOneBranch(pool *buffer.Pool, pg buffer.PageID, early bool) byte {
	img, err := pool.Fix(pg)
	if err != nil {
		return 0
	}
	if early {
		_ = pool.Unpin(pg)
	}
	b := img[0] // want "page image \"img\" used after Unpin\\(pg\\)"
	if !early {
		_ = pool.Unpin(pg)
	}
	return b
}

// suppressedWithoutReason is ignored but gives no justification.
func suppressedWithoutReason(pool *buffer.Pool, pg buffer.PageID) {
	img, err := pool.Fix(pg)
	if err != nil {
		return
	}
	_ = pool.Unpin(pg)
	//eoslint:ignore useafterunpin
	_ = img[0] // want "eoslint:ignore useafterunpin without a '-- reason' clause"
}
