package eosssa

import (
	"os"
	"sync/atomic"

	"buddy"
	"disk"
	"wal"
)

// Store mirrors the engine root type so the meta-write classification
// (unexported writeHeader/writeCatalog on a type named Store, same
// package) has a subject.
type Store struct {
	barrierDurable atomic.Uint64
}

func (s *Store) writeHeader() error  { return nil }
func (s *Store) writeCatalog() error { return nil }

// durability exercises every v4 durability-event kind in one function;
// the ssa probe asserts each classification.
func durability(t *Txn, v *disk.FileVolume, d disk.Device, m *buddy.Manager, s *Store) {
	t.log.Force()
	t.log.ForceLSN(7)
	v.ForceAll()
	d.Force(0, 1)
	disk.SyncDir(".")
	os.Rename("a", "b")
	s.writeHeader()
	s.writeCatalog()
	m.Free(0, 1)
	s.barrierDurable.Store(1)
	_ = s.barrierDurable.Load()
	rec := wal.Record{Type: wal.RecAbort}
	t.log.Append(rec)
	_ = wal.Record{Type: wal.RecCommit} // not an abort record: stays unclassified
}
