// Package pairs_pin_bad holds pin-discipline violations the pairs
// analyzer must report (the pin spec is the successor of the old
// pinpair checker).
package pairs_pin_bad

import "buffer"

// leak never unpins on the success path.
func leak(pool *buffer.Pool, pg buffer.PageID) error {
	img, err := pool.Fix(pg) // want "pin leak: Fix\\(pg\\) can reach a function exit without Unpin/Discard\\(pg\\)"
	if err != nil {
		return err
	}
	_ = img
	return nil
}

// leakOnOnePath unpins on the fall-through return but not on the early
// return.
func leakOnOnePath(pool *buffer.Pool, pg buffer.PageID, cond bool) error {
	img, err := pool.Fix(pg) // want "pin leak: Fix\\(pg\\) can reach a function exit without Unpin/Discard\\(pg\\)"
	if err != nil {
		return err
	}
	_ = img
	if cond {
		return nil
	}
	return pool.Unpin(pg)
}

// leakFixNew leaks a freshly allocated frame.
func leakFixNew(pool *buffer.Pool, pg buffer.PageID) {
	img, err := pool.FixNew(pg) // want "pin leak: FixNew\\(pg\\) can reach a function exit without Unpin/Discard\\(pg\\)"
	if err != nil {
		return
	}
	_ = pool.MarkDirty(pg)
	_ = img
}

// leakInLoop leaks when break exits before the unpin.
func leakInLoop(pool *buffer.Pool, pages []buffer.PageID) error {
	for _, pg := range pages {
		img, err := pool.Fix(pg) // want "pin leak: Fix\\(pg\\) can reach a function exit without Unpin/Discard\\(pg\\)"
		if err != nil {
			return err
		}
		if len(img) == 0 {
			break
		}
		if err := pool.Unpin(pg); err != nil {
			return err
		}
	}
	return nil
}

// touch reads the page but does not release it: calling it is not a
// release, so the pin still leaks.
func touch(pool *buffer.Pool, pg buffer.PageID) {
	_ = pool.MarkDirty(pg)
}

// helperIsNotARelease calls a helper without a release fact.
func helperIsNotARelease(pool *buffer.Pool, pg buffer.PageID) error {
	_, err := pool.Fix(pg) // want "pin leak: Fix\\(pg\\) can reach a function exit without Unpin/Discard\\(pg\\)"
	if err != nil {
		return err
	}
	touch(pool, pg)
	return nil
}

// suppressedWithoutReason is ignored but gives no justification; the
// missing reason is itself a diagnostic.
func suppressedWithoutReason(pool *buffer.Pool, pg buffer.PageID) {
	//eoslint:ignore pairs
	img, _ := pool.Fix(pg) // want "eoslint:ignore pairs without a '-- reason' clause"
	_ = img
}
