package ssa

// Call-graph construction: static calls resolve to their one callee;
// interface method calls resolve by class-hierarchy analysis (CHA)
// over every named type declared in the package and its imports — any
// concrete type implementing the interface contributes its method as a
// candidate callee.  Calls through func-typed values resolve to
// nothing (the passes treat them conservatively).
//
// The CHA horizon is the modular-analysis horizon: under the
// unitchecker protocol a package sees only itself and its (transitive)
// imports, so an implementation living in a package that imports this
// one is invisible here — but visible, with its exported summary
// facts, when that package is analyzed.

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// chaResolver caches the concrete-type universe and per-interface
// method resolutions.
type chaResolver struct {
	pass  *analysis.Pass
	types []types.Type // named (and pointer-to-named) concrete types in scope
	cache map[*types.Func][]*types.Func
	mscec typeutil.MethodSetCache
}

func newCHAResolver(pass *analysis.Pass) *chaResolver {
	r := &chaResolver{pass: pass, cache: make(map[*types.Func][]*types.Func)}
	seen := make(map[*types.Package]bool)
	var collect func(pkg *types.Package)
	collect = func(pkg *types.Package) {
		if pkg == nil || seen[pkg] {
			return
		}
		seen[pkg] = true
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			r.types = append(r.types, named, types.NewPointer(named))
		}
		for _, imp := range pkg.Imports() {
			collect(imp)
		}
	}
	collect(pass.Pkg)
	return r
}

// resolve returns the candidate callees of call: one function for a
// static call, the CHA candidates for an interface method call, nil
// for an unresolvable dynamic call.
func (r *chaResolver) resolve(call *ast.CallExpr) []*types.Func {
	info := r.pass.TypesInfo
	if fn := typeutil.StaticCallee(info, call); fn != nil {
		return []*types.Func{fn}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	iface, ok := selection.Recv().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	decl, ok := selection.Obj().(*types.Func)
	if !ok {
		return nil
	}
	if out, hit := r.cache[decl]; hit {
		return out
	}
	var out []*types.Func
	for _, t := range r.types {
		if !types.Implements(t, iface) {
			continue
		}
		ms := r.mscec.MethodSet(t)
		m := ms.Lookup(decl.Pkg(), decl.Name())
		if m == nil {
			continue
		}
		if fn, ok := m.Obj().(*types.Func); ok {
			out = append(out, fn)
		}
	}
	r.cache[decl] = out
	return out
}

// condense runs Tarjan's algorithm over the intra-package call graph
// and returns the strongly connected components in bottom-up order:
// Tarjan emits a component only once every component reachable from it
// has been emitted, so callees always precede callers.
func (pr *Program) condense() [][]*Func {
	index := make(map[*Func]int32, len(pr.Funcs))
	low := make(map[*Func]int32, len(pr.Funcs))
	onStack := make(map[*Func]bool, len(pr.Funcs))
	var stack []*Func
	var sccs [][]*Func
	var next int32

	var strongconnect func(f *Func)
	strongconnect = func(f *Func) {
		next++
		index[f] = next
		low[f] = next
		stack = append(stack, f)
		onStack[f] = true
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				for _, callee := range b.Instrs[i].Callees {
					g, inPkg := pr.ByObj[callee]
					if !inPkg {
						continue
					}
					if _, visited := index[g]; !visited {
						strongconnect(g)
						if low[g] < low[f] {
							low[f] = low[g]
						}
					} else if onStack[g] && index[g] < low[f] {
						low[f] = index[g]
					}
				}
			}
		}
		if low[f] == index[f] {
			var comp []*Func
			for {
				g := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[g] = false
				comp = append(comp, g)
				if g == f {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, f := range pr.Funcs {
		if _, visited := index[f]; !visited {
			strongconnect(f)
		}
	}
	return sccs
}
