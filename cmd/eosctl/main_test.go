package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// withStdin temporarily wires os.Stdin to the given bytes.
func withStdin(t *testing.T, data []byte, fn func()) {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), "stdin")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tmp)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	old := os.Stdin
	os.Stdin = f
	defer func() { os.Stdin = old }()
	fn()
}

// captureStdout collects what fn prints.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestCtlEndToEnd(t *testing.T) {
	for _, backend := range []string{"img", "file"} {
		t.Run(backend, func(t *testing.T) { testCtlEndToEnd(t, backend) })
	}
}

func testCtlEndToEnd(t *testing.T, backend string) {
	dir := t.TempDir()
	must := func(cmd string, args ...string) string {
		t.Helper()
		var out string
		out = captureStdout(t, func() {
			if err := run(dir, backend, cmd, args, 4096, 512, 8, false); err != nil {
				t.Fatalf("%s %v: %v", cmd, args, err)
			}
		})
		return out
	}

	if out := must("init"); !strings.Contains(out, "initialized") {
		t.Errorf("init output: %q", out)
	}

	payload := []byte("the quick brown fox jumps over the lazy dog")
	withStdin(t, payload, func() { must("put", "doc") })

	if out := must("get", "doc"); out != string(payload) {
		t.Errorf("get = %q", out)
	}

	withStdin(t, []byte("SLY "), func() { must("insert", "doc", "4") })
	want := "the SLY quick brown fox jumps over the lazy dog"
	if out := must("get", "doc"); out != want {
		t.Errorf("after insert: %q, want %q", out, want)
	}

	must("delete", "doc", "0", "4")
	if out := must("get", "doc"); out != want[4:] {
		t.Errorf("after delete: %q", out)
	}

	withStdin(t, []byte("!"), func() { must("append", "doc") })
	if out := must("get", "doc"); out != want[4:]+"!" {
		t.Errorf("after append: %q", out)
	}

	if out := must("ls"); !strings.Contains(out, "doc") {
		t.Errorf("ls: %q", out)
	}
	if out := must("stat", "doc"); !strings.Contains(out, "size:") {
		t.Errorf("stat: %q", out)
	}
	if out := must("stat"); !strings.Contains(out, "free data pages") {
		t.Errorf("store stat: %q", out)
	}
	if out := must("fsck"); !strings.Contains(out, "OK") {
		t.Errorf("fsck: %q", out)
	}

	must("rm", "doc")
	if out := must("ls"); strings.Contains(out, "doc") {
		t.Errorf("ls after rm: %q", out)
	}
	if out := must("fsck"); !strings.Contains(out, "OK") {
		t.Errorf("fsck after rm: %q", out)
	}
}

func TestCtlErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "img", "ls", nil, 1024, 512, 8, false); err == nil {
		t.Error("ls on uninitialized store succeeded")
	}
	if err := run(dir, "img", "init", nil, 4096, 512, 8, false); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, "img", "get", []string{"missing"}, 0, 0, 0, false); err == nil {
		t.Error("get of missing object succeeded")
	}
	if err := run(dir, "img", "bogus", nil, 0, 0, 0, false); err == nil {
		t.Error("unknown command succeeded")
	}
	if err := run(dir, "img", "insert", []string{"x"}, 0, 0, 0, false); err == nil {
		t.Error("insert with bad arity succeeded")
	}
	if err := run(dir, "img", "delete", []string{"x", "nan", "1"}, 0, 0, 0, false); err == nil {
		t.Error("delete with bad offset succeeded")
	}
	if err := run(dir, "tape", "ls", nil, 0, 0, 0, false); err == nil {
		t.Error("unknown backend succeeded")
	}
}

// TestCtlMigrate initializes an image store, writes an object, migrates
// it to the file backend, reads it back there, then migrates back to
// images and verifies again — the full round trip of the conversion
// path.
func TestCtlMigrate(t *testing.T) {
	dir := t.TempDir()
	do := func(backend, cmd string, args ...string) string {
		t.Helper()
		var out string
		out = captureStdout(t, func() {
			if err := run(dir, backend, cmd, args, 2048, 512, 8, false); err != nil {
				t.Fatalf("[%s] %s %v: %v", backend, cmd, args, err)
			}
		})
		return out
	}
	do("img", "init")
	payload := []byte("migration payload that must survive both directions")
	withStdin(t, payload, func() { do("img", "put", "doc") })

	do("img", "migrate", "file")
	if out := do("file", "get", "doc"); out != string(payload) {
		t.Errorf("get after migrate to file = %q", out)
	}
	if out := do("file", "fsck"); !strings.Contains(out, "OK") {
		t.Errorf("fsck on migrated store: %q", out)
	}
	// Mutate on the file backend, then migrate back and verify the
	// mutation travelled.
	withStdin(t, []byte("!"), func() { do("file", "append", "doc") })
	do("file", "migrate", "img")
	if out := do("img", "get", "doc"); out != string(payload)+"!" {
		t.Errorf("get after migrate back = %q", out)
	}
}
