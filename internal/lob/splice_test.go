package lob

import (
	"testing"
	"testing/quick"

	"github.com/eosdb/eos/internal/disk"
)

func TestSplitEntriesBalance(t *testing.T) {
	mk := func(n int) []entry {
		out := make([]entry, n)
		for i := range out {
			out[i] = entry{bytes: int64(i + 1), ptr: disk.PageNum(i + 100)}
		}
		return out
	}
	cases := []struct {
		n, max    int
		wantParts int
	}{
		{5, 5, 1}, {6, 5, 2}, {10, 5, 2}, {11, 5, 3}, {16, 5, 4}, {1, 5, 1},
	}
	for _, c := range cases {
		parts := splitEntries(mk(c.n), c.max)
		if len(parts) != c.wantParts {
			t.Errorf("splitEntries(%d,%d): %d parts, want %d", c.n, c.max, len(parts), c.wantParts)
			continue
		}
		total := 0
		for _, p := range parts {
			total += len(p)
			if len(p) > c.max {
				t.Errorf("splitEntries(%d,%d): part of %d > max", c.n, c.max, len(p))
			}
			if c.wantParts > 1 && len(p) < c.max/2 {
				t.Errorf("splitEntries(%d,%d): part of %d below half", c.n, c.max, len(p))
			}
		}
		if total != c.n {
			t.Errorf("splitEntries(%d,%d): entries lost", c.n, c.max)
		}
	}
}

func TestSplitEntriesQuick(t *testing.T) {
	f := func(n8, max8 uint8) bool {
		n := int(n8)%200 + 1
		max := int(max8)%20 + 4
		entries := make([]entry, n)
		for i := range entries {
			entries[i] = entry{bytes: 1, ptr: disk.PageNum(i)}
		}
		parts := splitEntries(entries, max)
		total, idx := 0, 0
		for _, p := range parts {
			if len(p) == 0 || len(p) > max {
				return false
			}
			// Order preserved.
			for _, e := range p {
				if e.ptr != disk.PageNum(idx) {
					return false
				}
				idx++
			}
			total += len(p)
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeSplice(t *testing.T) {
	n := &node{level: 1, entries: []entry{
		{10, 1}, {20, 2}, {30, 3}, {40, 4},
	}}
	n.splice(1, 3, []entry{{99, 9}})
	if len(n.entries) != 3 || n.entries[1].ptr != 9 || n.entries[2].ptr != 4 {
		t.Errorf("splice result: %+v", n.entries)
	}
	// Empty replacement removes.
	n.splice(0, 1, nil)
	if len(n.entries) != 2 || n.entries[0].ptr != 9 {
		t.Errorf("removal result: %+v", n.entries)
	}
	// Pure insertion.
	n.splice(1, 1, []entry{{5, 5}, {6, 6}})
	if len(n.entries) != 4 || n.entries[1].ptr != 5 || n.entries[2].ptr != 6 {
		t.Errorf("insertion result: %+v", n.entries)
	}
	if n.size() != 99+5+6+40 {
		t.Errorf("size = %d", n.size())
	}
}

// TestQuickNodeCodec: encode/decode round-trips arbitrary valid nodes.
func TestQuickNodeCodec(t *testing.T) {
	f := func(level8 uint8, lens []uint16) bool {
		if len(lens) == 0 || len(lens) > 15 {
			return true
		}
		n := &node{level: int(level8)%6 + 1}
		for i, l := range lens {
			n.entries = append(n.entries, entry{bytes: int64(l) + 1, ptr: disk.PageNum(i*7 + 3)})
		}
		img := make([]byte, 256)
		if err := encodeNode(n, img); err != nil {
			return true // too many entries for the page: fine
		}
		got, err := decodeNode(img)
		if err != nil || got.level != n.level || len(got.entries) != len(n.entries) {
			return false
		}
		for i := range n.entries {
			if got.entries[i] != n.entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
