// Package eosssa exercises the ssa facility's IR construction: block
// and dominator structure, instruction classification, static and CHA
// call resolution, and SCC ordering.  The ssa probe test asserts over
// the Program built from this package; there are no diagnostics.
package eosssa

import (
	"sync"

	"lob"
	"wal"
)

type Log struct{ mu sync.Mutex }

type Txn struct {
	log *wal.Log
	obj *lob.Object
}

func leaf() int { return 1 }

func mid() int { return leaf() }

// top has a diamond: the lock in the entry block dominates everything,
// neither branch dominates the join, and the join holds the WAL append
// and the mutation.
func top(t *Txn, l *Log, cond bool) int {
	l.mu.Lock()
	x := 0
	if cond {
		x = mid()
	} else {
		x = leaf()
	}
	l.mu.Unlock()
	t.log.Append(wal.Record{Type: 1})
	t.obj.Append(nil)
	return x
}

func pingA(n int) int {
	if n == 0 {
		return 0
	}
	return pingB(n - 1)
}

func pingB(n int) int { return pingA(n) }

// fakeAlloc implements lob.Allocator so CHA has a concrete candidate
// for the interface call below.
type fakeAlloc struct{}

func (fakeAlloc) Alloc(n int) (lob.PageNum, error)          { return 0, nil }
func (fakeAlloc) AllocUpTo(n int) (lob.PageNum, int, error) { return 0, n, nil }
func (fakeAlloc) Free(p lob.PageNum, n int) error           { return nil }
func (fakeAlloc) MaxSegmentPages() int                      { return 16 }

func callAlloc(a lob.Allocator) {
	a.Alloc(1)
}
