//go:build !linux

package disk

import (
	"fmt"
	"os"
)

// openFileVolume opens path.  Direct I/O is Linux-only; requesting it
// elsewhere fails cleanly rather than silently using the page cache.
func openFileVolume(path string, flag int, direct bool) (*os.File, error) {
	if direct {
		return nil, fmt.Errorf("disk: O_DIRECT is not supported on this platform")
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	return f, nil
}

// fdatasyncFile falls back to a full fsync where fdatasync is
// unavailable — strictly more durable, never less.
func fdatasyncFile(f *os.File) error { return f.Sync() }

// pwritevFull is the portable sequential fallback for the vectored run
// write: one positional write per page, same bytes at the same
// offsets.
func pwritevFull(f *os.File, bufs [][]byte, off int64) error {
	for _, b := range bufs {
		if _, err := f.WriteAt(b, off); err != nil {
			return err
		}
		off += int64(len(b))
	}
	return nil
}
