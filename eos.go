// Package eos is a storage system for large dynamic objects, a Go
// reproduction of the EOS large object manager (A. Biliris, "An Efficient
// Database Storage Structure for Large Dynamic Objects", ICDE 1992).
//
// A Store keeps named large objects — uninterpreted byte strings of
// unlimited size — on a simulated disk volume.  Objects are stored in
// variable-size segments of physically contiguous pages allocated by a
// binary buddy system whose entire bookkeeping lives on one directory
// page per space; a positional B-tree indexes byte offsets.  The store
// supports the paper's full operation set with costs proportional to the
// bytes touched:
//
//	obj.Append(data)          // grows by doubling, trimmed at the end
//	obj.Read(off, n)          // multi-page contiguous transfers
//	obj.Replace(off, data)    // in place, logged
//	obj.Insert(off, data)     // splits a segment into L, N, R
//	obj.Delete(off, n)        // subtree deletes never touch data pages
//
// The segment size threshold T (§4.4) bounds fragmentation from repeated
// updates; byte and page reshuffling keep storage utilization near 100%.
//
// Transactions (Store.Begin) provide object and byte-range locking,
// write-ahead logging, shadowed index pages, deferred frees (the effect
// of Starburst's release locks), logical undo on abort, and redo recovery
// on reopen after a crash (§4.5).
package eos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/eosdb/eos/internal/buddy"
	"github.com/eosdb/eos/internal/buffer"
	"github.com/eosdb/eos/internal/disk"
	"github.com/eosdb/eos/internal/lob"
	"github.com/eosdb/eos/internal/txn"
	"github.com/eosdb/eos/internal/wal"
)

// Errors returned by the store.
var (
	// ErrExists is returned when creating an object whose name is taken.
	ErrExists = errors.New("eos: object already exists")
	// ErrNotFound is returned for unknown object names.
	ErrNotFound = errors.New("eos: object not found")
	// ErrCorruptStore is returned when the store header or catalog fails
	// validation.
	ErrCorruptStore = errors.New("eos: corrupt store")
	// ErrTxnDone is returned when a finished transaction is reused.
	ErrTxnDone = errors.New("eos: transaction already committed or aborted")
)

const (
	storeMagic   = 0xE0557011
	storeVersion = 1
)

// Options configures a Store.  The zero value selects reasonable
// defaults for the volume's geometry.
type Options struct {
	// NumSpaces and SpaceCapacity lay out the buddy spaces; zero values
	// size them to fill the volume (capacity defaults to the maximum a
	// one-page directory supports, shrunk to fit).
	NumSpaces     int
	SpaceCapacity int
	// PoolFrames sizes the buffer pool (default 256).
	PoolFrames int
	// PoolShards splits the buffer pool into lock-sharded sub-pools keyed
	// by page number, so concurrent fixes of distinct index pages never
	// contend on one mutex.  0 sizes the shard count automatically from
	// PoolFrames; 1 pins the original single-lock pool, whose global LRU
	// makes eviction order (and therefore re-read seek counts) fully
	// deterministic for the experiment harness.
	PoolShards int
	// ReadConcurrency bounds the worker pool that overlaps one read's
	// per-segment transfers when the range spans several segments.  0 or
	// 1 keeps reads strictly sequential (the deterministic default).
	ReadConcurrency int
	// SequentialPrefetch makes readers obtained from Object.NewReader
	// detect sequential access and stage the next segment with an async
	// readahead, overlapping the transfer with the caller's processing of
	// the current one.  Readers can override per instance with
	// Reader.SetPrefetch.
	SequentialPrefetch bool
	// Threshold is the default segment size threshold T in pages
	// (default 8); objects may override it individually.
	Threshold int
	// AdaptiveThreshold enables the [Bili91a] fan-out-driven T.
	AdaptiveThreshold bool
	// Superdirectory enables the in-memory buddy superdirectory (§3.3);
	// on by default (disable only for the ablation experiment).
	DisableSuperdirectory bool
	// ShadowIndexPages makes insert/delete/append updates shadow the
	// index pages they touch (§4.5); on by default, required for
	// transactional use.
	DisableShadowing bool
	// CatalogPages reserves room for object descriptors (default 4).
	CatalogPages int
	// LockTimeout bounds lock waits (default 2s).
	LockTimeout time.Duration
	// MaxRootEntries bounds the root held in each descriptor.
	MaxRootEntries int
	// RangeLocking selects the finer §4.5 granularity: instead of
	// locking the object root, transactional reads lock the byte range
	// they touch (shared), replace locks its range exclusively, and the
	// length-changing operations — insert, delete, append — lock the
	// suffix from their offset (every byte after it shifts).  Disjoint
	// reads and replaces on one object then run concurrently; a short
	// per-object latch keeps index traversals physically safe.
	RangeLocking bool
	// SerialWAL disables the buffered log tail and leader/follower group
	// commit, reproducing the original serial write path: every log
	// append issues its own positional write and every commit forces the
	// log itself.  The write-path benchmarks use it as their baseline;
	// durability semantics are identical either way.
	SerialWAL bool
}

func (o Options) withDefaults(vol *disk.Volume) (Options, error) {
	if o.PoolFrames == 0 {
		o.PoolFrames = 256
	}
	if o.Threshold == 0 {
		o.Threshold = 8
	}
	if o.CatalogPages == 0 {
		o.CatalogPages = 4
	}
	if o.LockTimeout == 0 {
		o.LockTimeout = 2 * time.Second
	}
	_, maxCap, err := buddy.Layout(vol.PageSize())
	if err != nil {
		return o, err
	}
	avail := int(vol.NumPages()) - 1 - o.CatalogPages
	if o.SpaceCapacity == 0 {
		o.SpaceCapacity = maxCap
		if o.SpaceCapacity > avail-1 {
			o.SpaceCapacity = (avail - 1) &^ 3
		}
	}
	if o.NumSpaces == 0 {
		o.NumSpaces = avail / (o.SpaceCapacity + 1)
		if o.NumSpaces < 1 {
			o.NumSpaces = 1
		}
	}
	if o.SpaceCapacity < 4 || o.NumSpaces*(o.SpaceCapacity+1) > avail {
		return o, fmt.Errorf("eos: volume too small for %d spaces of %d pages",
			o.NumSpaces, o.SpaceCapacity)
	}
	return o, nil
}

// catEntry is one live catalog entry.  While a transaction has the
// object dirty, catalog writes use the last committed descriptor
// (stableDesc) so that uncommitted structural state never becomes
// durable; uncommitted in-place replaces can still reach the disk when
// another transaction's commit forces the volume, which is why replace
// records log their physical extents for recovery-time undo.
type catEntry struct {
	id         uint64
	name       string
	obj        *lob.Object
	txnDirty   uint64 // id of the transaction holding it dirty, or 0
	stableDesc []byte // last committed descriptor; nil = not yet durable

	// latch serializes physical access to the object's in-memory root
	// and index pages under range locking: structural updates write-
	// latch, reads and in-place replaces read-latch.  Held only for the
	// duration of one operation, never to transaction end (§3.3's
	// short-duration lock).
	latch sync.RWMutex
}

// Store is an EOS storage system instance over a data volume and a log
// volume.
type Store struct {
	vol    *disk.Volume
	logVol *disk.Volume
	pool   *buffer.Pool
	buddy  *buddy.Manager
	lm     *lob.Manager
	log    *wal.Log
	locks  *txn.LockTable
	opts   Options

	mu       sync.Mutex
	catalog  map[string]*catEntry
	byID     map[uint64]*catEntry
	nextID   uint64
	nextTxn  uint64
	liveTxns map[uint64]*Txn
}

// Format initializes a fresh store on vol, logging to logVol.
func Format(vol, logVol *disk.Volume, opts Options) (*Store, error) {
	opts, err := opts.withDefaults(vol)
	if err != nil {
		return nil, err
	}
	pool, err := buffer.NewPoolShards(vol, opts.PoolFrames, opts.PoolShards)
	if err != nil {
		return nil, err
	}
	firstSpacePage := disk.PageNum(1 + opts.CatalogPages)
	bm, err := buddy.FormatVolume(pool, vol, firstSpacePage, opts.NumSpaces, opts.SpaceCapacity, !opts.DisableSuperdirectory)
	if err != nil {
		return nil, err
	}
	s := &Store{
		vol:      vol,
		logVol:   logVol,
		pool:     pool,
		buddy:    bm,
		log:      wal.New(logVol),
		locks:    txn.NewLockTable(opts.LockTimeout),
		opts:     opts,
		catalog:  make(map[string]*catEntry),
		byID:     make(map[uint64]*catEntry),
		nextID:   1,
		nextTxn:  1,
		liveTxns: make(map[uint64]*Txn),
	}
	s.lm, err = lob.NewManager(vol, pool, bm, s.lobConfig())
	if err != nil {
		return nil, err
	}
	if opts.SerialWAL {
		if err := s.log.SetGroupCommit(false); err != nil {
			return nil, err
		}
	}
	if err := s.writeHeader(); err != nil {
		return nil, err
	}
	if err := s.writeCatalog(); err != nil {
		return nil, err
	}
	if err := s.Checkpoint(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) lobConfig() lob.Config {
	return lob.Config{
		Threshold:         s.opts.Threshold,
		MaxRootEntries:    s.opts.MaxRootEntries,
		ShadowIndexPages:  !s.opts.DisableShadowing,
		AdaptiveThreshold: s.opts.AdaptiveThreshold,
		ReadWorkers:       s.opts.ReadConcurrency,
	}
}

// PageSize reports the data volume's page size.
func (s *Store) PageSize() int { return s.vol.PageSize() }

// Volume returns the data volume (for I/O statistics).
func (s *Store) Volume() *disk.Volume { return s.vol }

// BuddyManager exposes the space manager (for statistics and fsck).
func (s *Store) BuddyManager() *buddy.Manager { return s.buddy }

// LOBStats returns the large object manager's activity counters.
func (s *Store) LOBStats() lob.Stats { return s.lm.Stats() }

// writeHeader persists the store header on page 0.
func (s *Store) writeHeader() error {
	img, err := s.pool.FixNew(0)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(0)
	binary.BigEndian.PutUint32(img[0:], storeMagic)
	img[4] = storeVersion
	binary.BigEndian.PutUint32(img[8:], uint32(s.opts.NumSpaces))
	binary.BigEndian.PutUint32(img[12:], uint32(s.opts.SpaceCapacity))
	binary.BigEndian.PutUint32(img[16:], uint32(s.opts.CatalogPages))
	binary.BigEndian.PutUint64(img[20:], s.nextID)
	return nil
}

// Open loads an existing store and performs crash recovery: the log is
// scanned, committed operations whose effects were lost are redone
// (guarded by the LSN each object root carries, §4.5), the free space
// map is rebuilt from the pages reachable from the catalog, and a fresh
// checkpoint is taken.
func Open(vol, logVol *disk.Volume, opts Options) (*Store, error) {
	opts, err := opts.withDefaults(vol)
	if err != nil {
		return nil, err
	}
	pool, err := buffer.NewPoolShards(vol, opts.PoolFrames, opts.PoolShards)
	if err != nil {
		return nil, err
	}
	// Header.
	img, err := pool.Fix(0)
	if err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(img[0:]) != storeMagic || img[4] != storeVersion {
		_ = pool.Unpin(0) // the corrupt-header error takes precedence
		return nil, fmt.Errorf("%w: bad header", ErrCorruptStore)
	}
	opts.NumSpaces = int(binary.BigEndian.Uint32(img[8:]))
	opts.SpaceCapacity = int(binary.BigEndian.Uint32(img[12:]))
	opts.CatalogPages = int(binary.BigEndian.Uint32(img[16:]))
	nextID := binary.BigEndian.Uint64(img[20:])
	if err := pool.Unpin(0); err != nil {
		return nil, err
	}

	// Spaces.
	bm := buddy.NewManager(pool, !opts.DisableSuperdirectory)
	page := disk.PageNum(1 + opts.CatalogPages)
	for i := 0; i < opts.NumSpaces; i++ {
		sp, err := buddy.OpenSpace(pool, page)
		if err != nil {
			return nil, err
		}
		bm.AddSpace(sp)
		page += disk.PageNum(opts.SpaceCapacity + 1)
	}

	s := &Store{
		vol:      vol,
		logVol:   logVol,
		pool:     pool,
		buddy:    bm,
		locks:    txn.NewLockTable(opts.LockTimeout),
		opts:     opts,
		catalog:  make(map[string]*catEntry),
		byID:     make(map[uint64]*catEntry),
		nextID:   nextID,
		nextTxn:  1,
		liveTxns: make(map[uint64]*Txn),
	}
	s.lm, err = lob.NewManager(vol, pool, bm, s.lobConfig())
	if err != nil {
		return nil, err
	}
	if err := s.readCatalog(); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Close checkpoints the store and rejects further transactions.  The
// volumes can then be saved or discarded.
func (s *Store) Close() error {
	s.mu.Lock()
	if len(s.liveTxns) > 0 {
		s.mu.Unlock()
		return fmt.Errorf("eos: %d transactions still live", len(s.liveTxns))
	}
	s.mu.Unlock()
	return s.Checkpoint()
}

// Checkpoint makes the current state durable: descriptors are written to
// the catalog, every dirty page is flushed and forced, and the log is
// truncated.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	// The log can be truncated only at quiescence: live transactions'
	// records (needed to undo their in-place writes, which the ForceAll
	// below may make durable) must survive.  With transactions in flight
	// this is a "soft" checkpoint: everything is durable, but the log
	// keeps growing until a quiescent checkpoint.
	resetLog := s.log != nil && len(s.liveTxns) == 0
	// WAL-first: a soft checkpoint (live transactions) forces the data
	// volume below while the log keeps growing, so any buffered log
	// records — including live transactions' replace pre-images, which
	// recovery needs to undo the in-place writes this force makes
	// durable — must reach the log device first.
	if s.log != nil {
		if err := s.log.Force(); err != nil {
			return err
		}
	}
	if resetLog {
		// LSNs are byte offsets into the log, so truncating it starts a
		// new epoch in which every record outranks the fully-durable
		// state this checkpoint writes.  Zero the LSN in every object
		// root (before encoding the descriptors!) so the idempotence
		// guard compares correctly in the new epoch.
		for _, e := range s.catalog {
			e.latch.Lock()
			e.obj.SetLSN(0)
			e.latch.Unlock()
		}
	}
	if err := s.writeHeader(); err != nil {
		return err
	}
	if err := s.writeCatalog(); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	s.vol.ForceAll()
	if resetLog {
		if err := s.log.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// Create makes a new empty object; threshold <= 0 uses the store default.
func (s *Store) Create(name string, threshold int) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.catalog[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	e := &catEntry{id: s.nextID, name: name, obj: s.lm.NewObject(threshold)}
	s.nextID++
	s.catalog[name] = e
	s.byID[e.id] = e
	return &Object{s: s, e: e}, nil
}

// Open returns a handle on an existing object.
func (s *Store) Open(name string) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.catalog[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &Object{s: s, e: e}, nil
}

// Destroy removes an object, returning all its pages to the free space.
func (s *Store) Destroy(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.catalog[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.latch.Lock()
	err := e.obj.Destroy()
	e.latch.Unlock()
	if err != nil {
		return err
	}
	delete(s.catalog, name)
	delete(s.byID, e.id)
	return nil
}

// CopyObject duplicates src's content into a new object named dst,
// streaming in large chunks so memory stays bounded.  The copy is laid
// out in maximal contiguous segments (like a hinted create).
func (s *Store) CopyObject(src, dst string) error {
	from, err := s.Open(src)
	if err != nil {
		return err
	}
	to, err := s.Create(dst, from.Threshold())
	if err != nil {
		return err
	}
	a := to.OpenAppender(from.Size())
	if _, err := from.NewReader().WriteTo(a); err != nil {
		_ = s.Destroy(dst) // best-effort rollback; the copy error takes precedence
		return err
	}
	if err := a.Close(); err != nil {
		_ = s.Destroy(dst)
		return err
	}
	return nil
}

// Rename changes an object's name.  Persisted at the next checkpoint or
// durable commit.
func (s *Store) Rename(oldName, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.catalog[oldName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, oldName)
	}
	if _, ok := s.catalog[newName]; ok {
		return fmt.Errorf("%w: %q", ErrExists, newName)
	}
	if e.txnDirty != 0 {
		return fmt.Errorf("eos: %q is in use by transaction %d", oldName, e.txnDirty)
	}
	delete(s.catalog, oldName)
	e.name = newName
	s.catalog[newName] = e
	return nil
}

// Stats aggregates the store's activity counters across layers.
type Stats struct {
	Disk   disk.Stats
	Pool   buffer.Stats
	Buddy  buddy.ManagerStats
	LOB    lob.Stats
	WAL    wal.Stats
	LogLen int64
	// PoolHitRate is the buffer pool hit fraction in [0, 1] (1 when the
	// pool has seen no traffic).
	PoolHitRate float64
}

// Stats returns a snapshot of all layer statistics.  Every layer keeps
// its counters in atomics, so the snapshot never blocks — or is blocked
// by — concurrent reads and updates.
func (s *Store) Stats() Stats {
	pool := s.pool.Stats()
	return Stats{
		Disk:        s.vol.Stats(),
		Pool:        pool,
		Buddy:       s.buddy.Stats(),
		LOB:         s.lm.Stats(),
		WAL:         s.log.Stats(),
		LogLen:      s.log.Tail(),
		PoolHitRate: pool.HitRate(),
	}
}

// List returns the object names in lexical order.
func (s *Store) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.catalog))
	for n := range s.catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FreePages reports the free data pages across all buddy spaces.
func (s *Store) FreePages() (int, error) { return s.buddy.FreePages() }

// LogTail reports the write-ahead log length in bytes (zero right after
// a checkpoint).
func (s *Store) LogTail() int64 { return s.log.Tail() }

// Check validates the buddy directories and every object tree.
func (s *Store) Check() error {
	if err := s.buddy.Check(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.catalog {
		if err := e.obj.Check(); err != nil {
			return fmt.Errorf("object %q: %w", e.name, err)
		}
	}
	return nil
}

// CheckNoLeaks verifies page accounting at quiescence: every data page
// is either free or reachable from some object descriptor.  It is not
// meaningful while transactions are in flight (deferred frees hold
// pages that no descriptor references).
func (s *Store) CheckNoLeaks() error {
	s.mu.Lock()
	reachable := 0
	for _, e := range s.catalog {
		runs, err := e.obj.ReachablePages()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		for _, r := range runs {
			reachable += r.Pages
		}
	}
	s.mu.Unlock()
	free, err := s.buddy.FreePages()
	if err != nil {
		return err
	}
	total := s.opts.NumSpaces * s.opts.SpaceCapacity
	if free+reachable != total {
		return fmt.Errorf("%w: %d free + %d reachable != %d total data pages (%d leaked)",
			ErrCorruptStore, free, reachable, total, total-free-reachable)
	}
	return nil
}

// Object is a handle on one named large object, offering the paper's
// operation set directly (the prototype's non-transactional mode: "EOS
// and the application run on a single process, with no support for
// transactions").  For transactional access use Store.Begin.
type Object struct {
	s *Store
	e *catEntry
}

// Name returns the object's name.
func (o *Object) Name() string { return o.e.name }

// Size returns the object's length in bytes.
func (o *Object) Size() int64 {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Size()
}

// Append appends data at the end of the object (§4.1).
func (o *Object) Append(data []byte) error {
	o.e.latch.Lock()
	defer o.e.latch.Unlock()
	return o.e.obj.Append(data)
}

// AppendWithHint appends data; a positive sizeHint (total expected bytes)
// lets the manager allocate a segment just large enough (§4.1).
func (o *Object) AppendWithHint(data []byte, sizeHint int64) error {
	o.e.latch.Lock()
	defer o.e.latch.Unlock()
	return o.e.obj.AppendWithHint(data, sizeHint)
}

// Appender streams appends into an object, write-latching the object
// around each Write so concurrent readers of other ranges stay safe.
// The appender itself is single-user.
type Appender struct {
	o *Object
	a *lob.Appender
}

// Write appends p to the object.
func (a *Appender) Write(p []byte) (int, error) {
	a.o.e.latch.Lock()
	defer a.o.e.latch.Unlock()
	return a.a.Write(p)
}

// Close ends the append sequence, trimming the tail segment.
func (a *Appender) Close() error {
	a.o.e.latch.Lock()
	defer a.o.e.latch.Unlock()
	return a.a.Close()
}

// OpenAppender streams appends; Close trims the tail segment.  The
// appender itself is single-user; other access is latched per write.
func (o *Object) OpenAppender(sizeHint int64) *Appender {
	return &Appender{o: o, a: o.e.obj.OpenAppender(sizeHint)}
}

// Read returns n bytes starting at byte off (§4.2).
func (o *Object) Read(off, n int64) ([]byte, error) {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Read(off, n)
}

// ReadAt fills buf from byte off.
func (o *Object) ReadAt(buf []byte, off int64) error {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.ReadAt(buf, off)
}

// Replace overwrites bytes in place (§4.2).  Replace never restructures
// the index, so it shares the latch with readers.
func (o *Object) Replace(off int64, data []byte) error {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Replace(off, data)
}

// Insert inserts data at byte off (§4.3.1).
func (o *Object) Insert(off int64, data []byte) error {
	o.e.latch.Lock()
	defer o.e.latch.Unlock()
	return o.e.obj.Insert(off, data)
}

// Delete removes n bytes starting at byte off (§4.3.2).
func (o *Object) Delete(off, n int64) error {
	o.e.latch.Lock()
	defer o.e.latch.Unlock()
	return o.e.obj.Delete(off, n)
}

// Truncate shortens the object to newSize bytes.
func (o *Object) Truncate(newSize int64) error {
	o.e.latch.Lock()
	defer o.e.latch.Unlock()
	return o.e.obj.Truncate(newSize)
}

// Compact rewrites the object into the fewest, largest contiguous
// segments the free space allows, restoring sequential-scan performance
// after heavy editing.
func (o *Object) Compact() error {
	o.e.latch.Lock()
	defer o.e.latch.Unlock()
	return o.e.obj.Compact()
}

// SetThreshold changes the object's segment size threshold T (§4.4).
func (o *Object) SetThreshold(t int) {
	o.e.latch.Lock()
	defer o.e.latch.Unlock()
	o.e.obj.SetThreshold(t)
}

// Threshold returns the object's T.
func (o *Object) Threshold() int {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Threshold()
}

// Usage reports the object's storage footprint.
func (o *Object) Usage() (lob.UsageInfo, error) {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Usage()
}

// Check validates the object's index structure.
func (o *Object) Check() error {
	o.e.latch.RLock()
	defer o.e.latch.RUnlock()
	return o.e.obj.Check()
}
