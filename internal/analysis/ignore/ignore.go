// Package ignore implements eoslint's diagnostic suppression comments.
//
// A comment of the form
//
//	//eoslint:ignore <name>[,<name>...] -- <reason>
//
// on the same line as a diagnostic, or on the line immediately above
// it, suppresses diagnostics from the named analyzers ("all" matches
// every analyzer).  The same directive inside a function's doc comment
// suppresses the named analyzers for the whole function body.  The
// reason is mandatory: an invariant exception with no stated
// justification is itself reported by each analyzer through Report.
//
// Directive parsing runs once per package as a tiny analyzer whose
// *List result is shared (via Requires) by every analyzer in the
// suite.  Sharing one List is what makes the exception inventory
// auditable: each successful suppression is recorded on the directive
// that did it, and the unusedignore analyzer — which runs after the
// rest of the suite — reports any directive that suppressed nothing.
package ignore

import (
	"fmt"
	"go/ast"
	"go/token"
	"reflect"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

const prefix = "eoslint:ignore"

// Analyzer parses the //eoslint:ignore directives of a package.  Every
// eoslint analyzer Requires it and reports through the resulting List,
// so all of them see the same directive instances and the audit can
// tell used directives from stale ones.
var Analyzer = &analysis.Analyzer{
	Name:       "eosignore",
	Doc:        "parse //eoslint:ignore suppression directives (internal prerequisite)\n\nNot a checker: it feeds the parsed directive table to the rest of the suite.",
	Run:        run,
	ResultType: reflect.TypeOf((*List)(nil)),
}

func run(pass *analysis.Pass) (interface{}, error) {
	return parseFiles(pass.Fset, pass.Files), nil
}

// Directive is one parsed //eoslint:ignore comment.
type Directive struct {
	Names  []string  // analyzer names the directive suppresses
	Reason string    // text after "--"; empty means unjustified
	Pos    token.Pos // position of the comment

	used bool // a diagnostic was suppressed through this directive
}

// span is a function body covered by a doc-comment directive.
type span struct {
	start, end token.Pos
	d          *Directive
}

// List holds the parsed suppression directives of one package.  It is
// shared by every analyzer of the suite (they may run concurrently),
// so the use-tracking is mutex-protected.
type List struct {
	fset *token.FileSet
	// byLine maps file:line to the directives ending on that line.
	byLine map[string][]*Directive
	// spans are function bodies suppressed by doc-comment directives.
	spans []span
	// all lists every directive in parse order, for the audit.
	all []*Directive

	mu sync.Mutex
}

// parseFiles builds the List for a set of parsed files.
func parseFiles(fset *token.FileSet, files []*ast.File) *List {
	l := &List{fset: fset, byLine: make(map[string][]*Directive)}
	byComment := make(map[*ast.Comment]*Directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parse(c.Text)
				if !ok {
					continue
				}
				d.Pos = c.Pos()
				l.all = append(l.all, d)
				byComment[c] = d
				pos := fset.Position(c.End())
				key := lineKey(pos.Filename, pos.Line)
				l.byLine[key] = append(l.byLine[key], d)
			}
		}
		// A directive in a function's doc comment covers its whole body.
		// The comment was already parsed above (doc comments appear in
		// the file comment list too); the span must reuse that instance
		// so a suppression through either route marks the same
		// directive used.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if d, ok := byComment[c]; ok {
					l.spans = append(l.spans, span{start: fn.Body.Pos(), end: fn.Body.End(), d: d})
				}
			}
		}
	}
	return l
}

// parse extracts a directive from one comment's text.
func parse(text string) (*Directive, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, prefix)
	// The directive name must end at the prefix: "eoslint:ignored" is
	// not a directive (and must not swallow part of an analyzer name).
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	rest = strings.TrimSpace(rest)
	var reason string
	if i := strings.Index(rest, "--"); i >= 0 {
		reason = strings.TrimSpace(rest[i+2:])
		rest = strings.TrimSpace(rest[:i])
	}
	names := strings.Split(rest, ",")
	out := names[:0]
	for _, n := range names {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return &Directive{Names: out, Reason: reason}, true
}

func lineKey(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// match returns the directive suppressing analyzer name at pos, if
// any, and records the use.
func (l *List) match(pos token.Pos, name string) (*Directive, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range l.byLine[lineKey(p.Filename, line)] {
			if d.covers(name) {
				d.used = true
				return d, true
			}
		}
	}
	for _, s := range l.spans {
		if pos < s.start || pos > s.end {
			continue
		}
		if s.d.covers(name) {
			s.d.used = true
			return s.d, true
		}
	}
	return nil, false
}

func (d *Directive) covers(name string) bool {
	for _, n := range d.Names {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}

// Unused returns, after the suite has run, every directive that never
// suppressed a diagnostic.  Only meaningful from an analyzer that
// Requires the whole suite (unusedignore).
func (l *List) Unused() []*Directive {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Directive
	for _, d := range l.all {
		if !d.used {
			out = append(out, d)
		}
	}
	return out
}

// All returns every parsed directive in parse order.
func (l *List) All() []*Directive {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Directive(nil), l.all...)
}

// Reporter filters one analyzer's diagnostics through the shared List.
type Reporter struct {
	pass *analysis.Pass
	list *List
}

// For returns the Reporter for pass.  The calling analyzer must list
// ignore.Analyzer in its Requires.
func For(pass *analysis.Pass) *Reporter {
	return &Reporter{pass: pass, list: pass.ResultOf[Analyzer].(*List)}
}

// Report emits a diagnostic for the analyzer of pass at pos unless an
// //eoslint:ignore directive covers it.  A covering directive with no
// "-- reason" clause is reported instead: exceptions to a storage
// invariant must say why they are safe.
func (r *Reporter) Report(pos token.Pos, format string, args ...interface{}) {
	d, ok := r.list.match(pos, r.pass.Analyzer.Name)
	if !ok {
		r.pass.Reportf(pos, format, args...)
		return
	}
	if d.Reason == "" {
		r.pass.Reportf(pos, "eoslint:ignore %s without a '-- reason' clause", r.pass.Analyzer.Name)
	}
}

// Suppressed reports whether a justified directive covers a diagnostic
// from this analyzer at pos, recording the use.  Whole-program
// analyzers consult it at summary time: an exception justified at its
// source should not propagate exposure to every caller.  A directive
// with no reason does not suppress here — the missing-reason complaint
// must still surface through Report.
func (r *Reporter) Suppressed(pos token.Pos) bool {
	d, ok := r.list.match(pos, r.pass.Analyzer.Name)
	return ok && d.Reason != ""
}

// ReportRelated is Report with secondary evidence positions attached
// (surfaced by the drivers as JSON "related" entries and by cmd/eoslint
// as SARIF relatedLocations).  Suppression works exactly as in Report.
func (r *Reporter) ReportRelated(pos token.Pos, related []analysis.RelatedInformation, format string, args ...interface{}) {
	d, ok := r.list.match(pos, r.pass.Analyzer.Name)
	if !ok {
		r.pass.Report(analysis.Diagnostic{
			Pos:     pos,
			Message: fmt.Sprintf(format, args...),
			Related: related,
		})
		return
	}
	if d.Reason == "" {
		r.pass.Reportf(pos, "eoslint:ignore %s without a '-- reason' clause", r.pass.Analyzer.Name)
	}
}
